//! The TCP serving frontend: bounded accept queue, event-loop workers
//! multiplexing suspendable sessions, admission control, and graceful
//! drain.
//!
//! Life of a connection:
//!
//! 1. The acceptor thread takes it off the (blocking) listener. If the
//!    server is draining or the accept queue is full, it answers with a
//!    busy hello frame ([`abnn2_core::handshake::reject_busy`]) and closes
//!    — the client surfaces [`ProtocolError::Overloaded`]. Otherwise the
//!    raw stream is queued.
//! 2. An **event-loop worker** claims it, wraps the socket in a
//!    non-blocking [`FrameBuffer`], and hosts one
//!    [`SessionDriver`] — the server-side protocol as a resumable state
//!    machine. Each worker sweeps up to `sessions_per_worker` live
//!    drivers: complete inbound frames are fed in, the driver advances as
//!    far as it can, and its effects (sends, phase marks) are applied to
//!    the socket and the metrics meter. A driver waiting on the peer
//!    costs no thread — it is simply parked until its socket turns
//!    readable — so peak thread count scales with *workers*, not clients.
//! 3. The [`PrecomputePool`] and the resume [`CheckpointStore`] are
//!    sharded per worker: each worker prefers its own pool shard (and
//!    steals from siblings rather than strand warm bundles), and
//!    checkpoints hash onto a shard by token, so any worker can resume a
//!    session that died on another.
//! 4. [`Server::begin_drain`] flips admission off while in-flight
//!    sessions run to completion; the acceptor is woken by a throwaway
//!    self-connection when the drain completes — no sleep-polling —
//!    and [`Server::shutdown`] additionally joins every thread.
//! 5. A **governor** ([`GovernorConfig`]) budgets every sweep: idle-parked
//!    sessions, non-draining peers, and inbound-quota violators are
//!    checkpointed (when resumable) and evicted, so one bad peer cannot
//!    pin a slot its warm siblings need. Each session sweep runs under
//!    `catch_unwind`: a panicking session is quarantined — torn down, its
//!    possibly-poisoned checkpoint discarded — while the worker and its
//!    sibling sessions keep running. A **supervisor** thread watches
//!    per-worker heartbeats and respawns dead or wedged workers; the
//!    respawned worker reuses its index, so its pool shard and checkpoint
//!    shard re-home automatically. Busy rejections carry a
//!    `retry_after_ms` hint derived from queue depth and occupancy.
//!
//! Byte accounting is preserved exactly: every driver effect is mirrored
//! through a per-session [`InstrumentedTransport`] meter, so per-phase
//! and per-tag counters equal the pre-event-loop blocking server's.
//!
//! [`CheckpointStore`]: abnn2_core::CheckpointStore

use crate::governor::{GovernorConfig, PRE_HANDSHAKE_BYTES, PRE_HANDSHAKE_FRAMES};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::pool::{PoolSnapshot, PrecomputePool};
use abnn2_core::bundle::{BundleKey, ClientBundle, ServerBundle};
use abnn2_core::driver::{DriverEffect, DriverStep, SessionDriver, SessionHost};
use abnn2_core::handshake::{reject_busy_with, ResumeToken, SessionParams};
use abnn2_core::resilient::DEFAULT_CHECKPOINT_CAPACITY;
use abnn2_core::OfflineMode;
use abnn2_core::{
    CheckpointStore, CommCeiling, ExecConfig, ProtocolError, SecureServer, ServedModel,
    SessionDeadlines,
};
use abnn2_net::{
    CommSnapshot, FrameBuffer, InstrumentedTransport, TcpTransport, Transport, TransportError,
};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Event-loop worker threads running protocol sessions.
    pub workers: usize,
    /// Accepted-but-unclaimed connections allowed to wait; beyond this the
    /// acceptor busy-rejects.
    pub queue_capacity: usize,
    /// Live sessions each worker multiplexes concurrently. Total session
    /// capacity is `workers * sessions_per_worker`; the default of 1
    /// reproduces the classic one-session-per-worker admission behaviour.
    pub sessions_per_worker: usize,
    /// Ready bundle pairs to keep per batch size *per worker shard*; zero
    /// disables the precompute pool (every session pays the interactive
    /// offline phase).
    pub pool_depth: usize,
    /// Batch sizes the pool precomputes for.
    pub pool_batches: Vec<usize>,
    /// Offline modes the pool keys bundles under. Dealer bundles are
    /// mode-independent *content*, but a session may only consume a
    /// bundle pooled under its own negotiated mode, so a deployment
    /// expecting silent-capable clients lists [`OfflineMode::Silent`]
    /// here too.
    pub pool_modes: Vec<OfflineMode>,
    /// Per-session transport deadlines.
    pub deadlines: SessionDeadlines,
    /// Total capacity of the resume-checkpoint store, split across one
    /// shard per worker (each shard holds at least one entry).
    pub checkpoint_capacity: usize,
    /// Execution options (activation variant must match the clients').
    pub exec: ExecConfig,
    /// Per-session resource budgets and supervisor rules.
    pub governor: GovernorConfig,
    /// Seed for the per-worker and pool RNGs.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_capacity: 8,
            sessions_per_worker: 1,
            pool_depth: 2,
            pool_batches: vec![1],
            pool_modes: vec![OfflineMode::Iknp],
            deadlines: SessionDeadlines::lan(),
            checkpoint_capacity: DEFAULT_CHECKPOINT_CAPACITY,
            exec: ExecConfig::new(),
            governor: GovernorConfig::default(),
            seed: 0xAB22_5E21,
        }
    }
}

/// Resume checkpoints sharded by token hash: one
/// [`CheckpointStore`] per worker, so checkpoint traffic from different
/// sessions contends on different locks. A token always hashes to the
/// same shard, which means any worker can claim a checkpoint no matter
/// which worker inserted it, and per-shard LRU eviction is deterministic
/// per token.
#[derive(Debug)]
pub struct ShardedCheckpointStore {
    shards: Vec<CheckpointStore>,
}

impl ShardedCheckpointStore {
    /// `capacity` is the total budget; each of the `shards` stores gets an
    /// equal slice (at least one entry each).
    #[must_use]
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards).max(1);
        ShardedCheckpointStore {
            shards: (0..shards).map(|_| CheckpointStore::new(per_shard)).collect(),
        }
    }

    fn shard(&self, token: &ResumeToken) -> &CheckpointStore {
        let lo = u64::from_le_bytes(token[..8].try_into().expect("8 bytes"));
        let hi = u64::from_le_bytes(token[8..].try_into().expect("8 bytes"));
        // Multiply-fold the halves so shard choice uses every token byte.
        let mixed = (lo ^ hi).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(mixed % self.shards.len() as u64) as usize]
    }

    /// Inserts (or refreshes) the checkpoint for `token` in its shard.
    pub fn insert(&self, token: ResumeToken, bundle: ServerBundle) {
        self.shard(&token).insert(token, bundle);
    }

    /// Removes and returns the checkpoint for `token`, if present.
    pub fn claim(&self, token: &ResumeToken) -> Option<ServerBundle> {
        self.shard(token).claim(token)
    }

    /// Drops the checkpoint for `token`, if present.
    pub fn remove(&self, token: &ResumeToken) {
        self.shard(token).remove(token);
    }

    /// Whether a checkpoint for `token` is currently held.
    #[must_use]
    pub fn contains(&self, token: &ResumeToken) -> bool {
        self.shard(token).contains(token)
    }

    /// Total checkpoints held across every shard.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(CheckpointStore::len).sum()
    }

    /// Whether every shard is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(CheckpointStore::is_empty)
    }
}

struct QueueState {
    conns: VecDeque<TcpStream>,
    draining: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    work: Condvar,
    server: Arc<SecureServer>,
    info_params: SessionParamsFactory,
    config: ServeConfig,
    store: ShardedCheckpointStore,
    /// One pool shard per worker (empty when `pool_depth` is zero).
    pools: Vec<PrecomputePool>,
    metrics: MetricsRegistry,
    /// The bound listen address, used for the drain-complete wake dial.
    addr: SocketAddr,
    /// Per-worker heartbeat: millis since `started`, bumped every loop
    /// iteration, read by the supervisor to detect wedged workers.
    hearts: Vec<AtomicU64>,
    /// Epoch for the heartbeat clock.
    started: Instant,
    /// Admission ordinal assigned to each live session, keyed by the
    /// governor's chaos knobs.
    session_seq: AtomicU64,
    /// Latch so a chaos injection (session or worker panic) fires once.
    chaos_fired: AtomicBool,
}

fn now_millis(shared: &Shared) -> u64 {
    u64::try_from(shared.started.elapsed().as_millis()).unwrap_or(u64::MAX)
}

/// Pre-captured pieces for building `SessionParams` per announced batch
/// without re-deriving digests on every connection.
struct SessionParamsFactory {
    model: abnn2_core::PublicModel,
    variant: abnn2_core::ReluVariant,
}

impl SessionParamsFactory {
    fn for_batch(&self, batch: usize) -> SessionParams {
        SessionParams::for_public(&self.model, self.variant, batch)
    }
}

/// A running multi-client inference service. Dropping the handle drains
/// and joins all threads.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    /// Worker handle table shared with the supervisor, which swaps in
    /// fresh handles when it respawns a worker.
    workers: Arc<Mutex<Vec<Option<JoinHandle<()>>>>>,
    supervisor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the acceptor, event-loop worker, and pool threads. Accepts
    /// any served topology — a `QuantizedNetwork` (MLP) or a
    /// `QuantizedCnn`.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listener.
    ///
    /// # Panics
    ///
    /// Panics when `config.pool_batches` holds a batch size the model's
    /// graph rejects (spatial graphs run with batch 1).
    pub fn start(
        model: impl Into<ServedModel>,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> std::io::Result<Self> {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.queue_capacity > 0, "need a positive accept queue");
        assert!(config.sessions_per_worker > 0, "need at least one session per worker");
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;

        let model = Arc::new(model.into());
        let pools = if config.pool_depth > 0 {
            (0..config.workers)
                .map(|i| {
                    PrecomputePool::start_with_modes(
                        Arc::clone(&model),
                        &config.pool_batches,
                        &config.pool_modes,
                        config.pool_depth,
                        // Distinct stream from the workers, distinct per shard.
                        (config.seed ^ 0x706F_6F6C).wrapping_add(i as u64),
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        let public = model.public();
        let server =
            Arc::new(SecureServer::for_model(model.as_ref().clone()).with_exec(config.exec));
        let store = ShardedCheckpointStore::new(config.checkpoint_capacity, config.workers);
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState { conns: VecDeque::new(), draining: false }),
            work: Condvar::new(),
            server,
            info_params: SessionParamsFactory { model: public, variant: config.exec.variant },
            config: config.clone(),
            store,
            pools,
            metrics: MetricsRegistry::new(),
            addr: bound,
            hearts: (0..config.workers).map(|_| AtomicU64::new(0)).collect(),
            started: Instant::now(),
            session_seq: AtomicU64::new(0),
            chaos_fired: AtomicBool::new(false),
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("abnn2-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &shared))
                .expect("spawn acceptor")
        };
        let workers: Arc<Mutex<Vec<Option<JoinHandle<()>>>>> = Arc::new(Mutex::new(
            (0..config.workers)
                .map(|i| Some(spawn_worker(&shared, i, config.seed.wrapping_add(1 + i as u64))))
                .collect(),
        ));
        let supervisor = {
            let shared = Arc::clone(&shared);
            let table = Arc::clone(&workers);
            std::thread::Builder::new()
                .name("abnn2-supervisor".into())
                .spawn(move || supervisor_loop(&shared, &table))
                .expect("spawn supervisor")
        };

        Ok(Server {
            addr: bound,
            shared,
            acceptor: Some(acceptor),
            workers,
            supervisor: Some(supervisor),
        })
    }

    /// The bound listen address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live metrics, with pool gauges summed across every worker shard.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot(pool_totals(&self.shared))
    }

    /// The sharded resume-checkpoint store reachable from all workers.
    #[must_use]
    pub fn checkpoint_store(&self) -> &ShardedCheckpointStore {
        &self.shared.store
    }

    /// Blocks until **every worker's pool shard** holds `count` ready
    /// pairs for batch size `batch` under every configured offline mode
    /// (or `timeout` passes). Returns false when no pool is attached or
    /// the target was not reached — callers use this to guarantee a warm
    /// first request on whichever worker claims it.
    #[must_use]
    pub fn warm_up(&self, batch: usize, count: usize, timeout: Duration) -> bool {
        if self.shared.pools.is_empty() {
            return false;
        }
        let base = BundleKey::for_graph(&self.shared.info_params.model.graph(), batch);
        let deadline = Instant::now() + timeout;
        self.shared.pools.iter().all(|p| {
            self.shared.config.pool_modes.iter().all(|&mode| {
                let remaining = deadline.saturating_duration_since(Instant::now());
                p.wait_ready(&base.with_mode(mode), count, remaining)
            })
        })
    }

    /// Stops admitting connections (new arrivals get a busy rejection)
    /// while in-flight and queued sessions run to completion. Idempotent,
    /// non-blocking.
    pub fn begin_drain(&self) {
        {
            let mut q = self.shared.queue.lock().expect("queue lock");
            q.draining = true;
        }
        self.shared.work.notify_all();
        for pool in &self.shared.pools {
            pool.shutdown();
        }
        // If nothing is in flight the drain is already complete; wake the
        // acceptor so it can observe that and exit without polling.
        if drain_complete(&self.shared) {
            wake_acceptor(&self.shared);
        }
    }

    /// Drains and joins every thread: in-flight sessions finish, new
    /// connections are rejected, and the call returns once the last worker
    /// exits. Idempotent; also run on drop.
    pub fn shutdown(&mut self) {
        self.begin_drain();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // The supervisor joins every worker once the drain completes.
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
        let mut table = self.workers.lock().expect("worker table");
        for h in table.iter_mut().filter_map(Option::take) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn pool_totals(shared: &Shared) -> PoolSnapshot {
    shared.pools.iter().fold(PoolSnapshot::default(), |acc, p| {
        let s = p.snapshot();
        PoolSnapshot {
            produced: acc.produced + s.produced,
            hits: acc.hits + s.hits,
            misses: acc.misses + s.misses,
            ready: acc.ready + s.ready,
        }
    })
}

/// Whether the acceptor may stop listening: draining was requested AND
/// every queued and in-flight session has finished. Exiting any earlier
/// would close the listener while sessions are still running, turning a
/// late dialer's typed busy rejection into a raw connection reset.
fn drain_complete(shared: &Shared) -> bool {
    let queued = {
        let q = shared.queue.lock().expect("queue lock");
        if !q.draining {
            return false;
        }
        q.conns.len()
    };
    queued == 0 && shared.metrics.snapshot(PoolSnapshot::default()).active == 0
}

/// Unblocks the acceptor's blocking `accept` with a throwaway
/// self-connection so it re-checks the drain state event-driven instead
/// of sleep-polling. Failures are ignored: if the listener is already
/// gone, there is nothing left to wake.
fn wake_acceptor(shared: &Shared) {
    let _ = TcpStream::connect(shared.addr);
}

fn acceptor_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Drain-complete wake (or a final straggler): stop
                // listening. The wake connection is simply dropped.
                if drain_complete(shared) {
                    return;
                }
                let rejected = {
                    let mut q = shared.queue.lock().expect("queue lock");
                    if q.draining || q.conns.len() >= shared.config.queue_capacity {
                        Some(stream)
                    } else {
                        q.conns.push_back(stream);
                        None
                    }
                };
                match rejected {
                    None => {
                        shared.metrics.connection_accepted();
                        shared.work.notify_one();
                    }
                    Some(stream) => {
                        shared.metrics.connection_rejected();
                        send_busy(shared, stream);
                    }
                }
            }
            Err(_) => {
                // Transient accept failure (aborted handshake, fd
                // pressure): back off briefly; drain wake-ups arrive as
                // successful accepts, not errors.
                if drain_complete(shared) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// Answers a connection the server will not serve with an in-protocol
/// busy frame, so the peer sees a typed `Overloaded` instead of a reset.
/// The frame carries a `retry_after_ms` hint sized to how loaded the
/// server actually is, so turned-away clients spread their retries
/// instead of hammering a full queue in lockstep. Failures are ignored —
/// the peer is being turned away either way.
fn send_busy(shared: &Shared, stream: TcpStream) {
    let hint = retry_after_hint(shared);
    let _ = stream.set_nonblocking(false);
    if let Ok(mut ch) = TcpTransport::from_stream(stream) {
        let _ = reject_busy_with(&mut ch, shared.info_params.for_batch(0), hint);
    }
}

/// Load-derived backoff hint: roughly one session-service quantum (25 ms)
/// per connection ahead of the rejected peer, plus a cold-pool penalty,
/// capped so a hint can never park a client for more than five seconds.
fn retry_after_hint(shared: &Shared) -> u32 {
    let active = shared.metrics.snapshot(PoolSnapshot::default()).active;
    let queued = shared.queue.lock().expect("queue lock").conns.len() as u64;
    let mut hint = 25 * (active + queued + 1);
    if !shared.pools.is_empty() && pool_totals(shared).ready == 0 {
        hint += 100;
    }
    u32::try_from(hint.min(5_000)).expect("capped at 5000")
}

/// Sink inner transport for the per-session metrics meter: sends vanish
/// (the real bytes ride the [`FrameBuffer`]), and `recv` serves the one
/// frame the event loop stuffed in to mirror a driver `Recv` effect.
#[derive(Debug, Default)]
struct SinkTransport {
    queued: Option<Vec<u8>>,
}

impl Transport for SinkTransport {
    fn send(&mut self, _payload: &[u8]) -> Result<(), TransportError> {
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        self.queued.take().ok_or(TransportError::WouldBlock)
    }

    fn snapshot(&self) -> CommSnapshot {
        CommSnapshot { bytes_sent: 0, bytes_received: 0, messages_sent: 0, vtime: Duration::ZERO }
    }
}

/// Per-worker [`SessionHost`]: parameters from the shared factory,
/// checkpoints from the token-sharded store, warm bundles from this
/// worker's pool shard first, stealing from siblings on a miss so a busy
/// worker cannot strand warm bundles in an idle worker's shard.
struct WorkerHost<'a> {
    shared: &'a Shared,
    worker: usize,
}

impl SessionHost for WorkerHost<'_> {
    fn params_for(&self, batch: usize) -> SessionParams {
        self.shared.info_params.for_batch(batch)
    }

    fn claim_checkpoint(&self, token: &ResumeToken) -> Option<ServerBundle> {
        self.shared.store.claim(token)
    }

    fn take_bundle(
        &self,
        params: &SessionParams,
        mode: OfflineMode,
    ) -> Option<(ServerBundle, ClientBundle)> {
        let pools = &self.shared.pools;
        if pools.is_empty() {
            return None;
        }
        // Keyed on the negotiated offline mode: an IKNP session can never
        // drain a silent-keyed bundle (or vice versa), so per-mode pool
        // accounting stays truthful under a mixed fleet.
        let key = BundleKey::from_params(params).with_mode(mode);
        (0..pools.len()).find_map(|i| pools[(self.worker + i) % pools.len()].take(&key))
    }
}

/// Outcome of one sweep of one live session.
enum Sweep {
    /// Still parked waiting for the peer; nothing happened.
    Idle,
    /// Frames moved or the driver advanced; still live.
    Progress,
    /// The session ended (`true` = completed successfully).
    Finished(bool),
}

fn spawn_worker(shared: &Arc<Shared>, worker: usize, seed: u64) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("abnn2-worker-{worker}"))
        .spawn(move || worker_loop(&shared, worker, seed))
        .expect("spawn worker")
}

/// Watches worker liveness and respawns casualties. A worker thread that
/// finished while the server is not draining died abnormally (an injected
/// chaos panic, or a bug severe enough to escape the per-session
/// `catch_unwind`); its replacement reuses the same worker index, so the
/// pool shard and checkpoint shard re-home automatically and queued
/// connections are simply claimed by the new thread. A worker whose
/// heartbeat is older than `wedge_timeout` while its thread is still
/// alive is presumed stuck inside a sweep; it is detached (a truly wedged
/// thread never reaches the claim loop again) and replaced the same way.
/// On drain the supervisor joins every worker and exits.
fn supervisor_loop(shared: &Arc<Shared>, table: &Mutex<Vec<Option<JoinHandle<()>>>>) {
    let mut generation: u64 = 0;
    loop {
        std::thread::sleep(Duration::from_millis(25));
        let draining = shared.queue.lock().expect("queue lock").draining;
        let mut t = table.lock().expect("worker table");
        if draining {
            // Workers exit on their own during a drain; once the last one
            // is finished, reap them all and retire.
            if t.iter().all(|h| h.as_ref().is_none_or(JoinHandle::is_finished)) {
                for h in t.iter_mut().filter_map(Option::take) {
                    let _ = h.join();
                }
                return;
            }
            continue;
        }
        for i in 0..t.len() {
            let dead = t[i].as_ref().is_some_and(JoinHandle::is_finished);
            let wedged = !dead
                && t[i].is_some()
                && shared.config.governor.wedge_timeout.is_some_and(|w| {
                    let age =
                        now_millis(shared).saturating_sub(shared.hearts[i].load(Ordering::Relaxed));
                    age > u64::try_from(w.as_millis()).unwrap_or(u64::MAX)
                });
            if !(dead || wedged) {
                continue;
            }
            // Draining is monotonic: re-check so a worker that exited
            // legitimately between the snapshot above and here is not
            // resurrected mid-drain.
            if shared.queue.lock().expect("queue lock").draining {
                break;
            }
            if dead {
                if let Some(h) = t[i].take() {
                    let _ = h.join();
                }
            } else {
                // Wedged but alive: detach the stuck thread. It holds no
                // lock (heartbeats are bumped right after lock release),
                // so the replacement can serve immediately.
                drop(t[i].take());
            }
            generation += 1;
            shared.hearts[i].store(now_millis(shared), Ordering::Relaxed);
            let seed = shared
                .config
                .seed
                .wrapping_add(1 + i as u64)
                .wrapping_add(0x5750_0000_0000_0000_u64.wrapping_mul(generation));
            t[i] = Some(spawn_worker(shared, i, seed));
            shared.metrics.worker_respawned();
        }
    }
}

/// One multiplexed session: a suspendable driver, its non-blocking frame
/// pump, and the metrics meter that mirrors the driver's effects.
struct LiveSession<'a> {
    driver: SessionDriver<WorkerHost<'a>>,
    fb: FrameBuffer,
    meter: InstrumentedTransport<SinkTransport>,
    /// Wall-clock of the last inbound frame, for the read timeout while
    /// the driver is parked.
    last_inbound: Instant,
    /// Deadline of the current phase budget (`Mark("setup")` arms the
    /// offline budget across setup+bundle+offline, `Mark("online")` the
    /// online budget — mirroring the blocking server's placement).
    phase_deadline: Option<Instant>,
    /// Admission ordinal, keyed by the governor's chaos knobs.
    ordinal: u64,
    /// Inbound frames accepted so far, against the governor quota.
    inbound_frames: u64,
    /// Inbound bytes accepted so far, against the governor quota.
    inbound_bytes: u64,
    /// Plan-keyed inbound ceiling, computed once the handshake fixes the
    /// batch; `None` until then (the pre-handshake allowance applies).
    quota: Option<CommCeiling>,
    /// Whether the driver has entered the online phase (`Mark("online")`
    /// observed), for the chaos session-panic injection.
    online: bool,
}

impl<'a> LiveSession<'a> {
    fn new(
        shared: &'a Shared,
        worker: usize,
        stream: TcpStream,
        rng: &mut StdRng,
    ) -> Result<Self, TransportError> {
        let fb = FrameBuffer::new(stream)?;
        let meter = InstrumentedTransport::new(SinkTransport::default());
        shared.metrics.register(meter.handle());
        let driver = SessionDriver::new(
            Arc::clone(&shared.server),
            WorkerHost { shared, worker },
            StdRng::seed_from_u64(rng.next_u64()),
        );
        Ok(LiveSession {
            driver,
            fb,
            meter,
            last_inbound: Instant::now(),
            phase_deadline: None,
            ordinal: shared.session_seq.fetch_add(1, Ordering::Relaxed),
            inbound_frames: 0,
            inbound_bytes: 0,
            quota: None,
            online: false,
        })
    }

    /// Feeds readable frames, advances the driver, applies its effects,
    /// and enforces deadlines and governor budgets. Returns what happened.
    fn sweep(&mut self, shared: &Shared) -> Sweep {
        // Chaos: the governed session panics at the top of its first
        // online-phase sweep, exercising the worker's quarantine path.
        if shared.config.governor.inject_panic_session == Some(self.ordinal)
            && self.online
            && !shared.chaos_fired.swap(true, Ordering::SeqCst)
        {
            panic!("governor chaos: injected session panic in online phase");
        }

        // Pull every complete inbound frame the kernel has for us. A read
        // error (EOF, reset) is noted but NOT acted on yet: the final
        // frames of a session routinely arrive in the same sweep as the
        // peer's close, and the driver must consume them before the error
        // is allowed to matter — exactly when the blocking path would have
        // seen it, at the next starved recv.
        let mut fed = false;
        let mut read_err: Option<ProtocolError> = None;
        loop {
            match self.fb.poll_read() {
                Ok(Some(frame)) => {
                    self.last_inbound = Instant::now();
                    self.inbound_frames += 1;
                    self.inbound_bytes += frame.len() as u64;
                    self.driver.feed(frame);
                    fed = true;
                }
                Ok(None) => break,
                Err(e) => {
                    read_err = Some(e.into());
                    break;
                }
            }
        }

        let step = self.driver.step();
        self.apply_effects(shared);
        // Push freshly queued (and any previously unfinished) output.
        let write_err: Option<ProtocolError> = self.fb.poll_write().err().map(Into::into);

        match step {
            // A post-completion read error is moot — the protocol never
            // reads again after the output shares — but a failed final
            // write is a failed session, as it was on the blocking path.
            DriverStep::Done => match write_err {
                Some(e) => self.finish_err(shared, e),
                None => self.finish_ok(shared),
            },
            DriverStep::Failed(e) => self.finish_err(shared, e),
            DriverStep::NeedRecv => {
                if let Some(e) = read_err.or(write_err) {
                    return self.finish_err(shared, e);
                }
                let now = Instant::now();
                if self.phase_deadline.is_some_and(|dl| now >= dl) {
                    return self.finish_err(shared, ProtocolError::TimedOut);
                }
                if let Some(rt) = shared.config.deadlines.read_timeout {
                    if now.duration_since(self.last_inbound) >= rt {
                        return self.finish_err(shared, ProtocolError::TimedOut);
                    }
                }
                let governor = &shared.config.governor;
                // Idle park budget: a parked session whose peer has sent
                // nothing for idle_timeout gives its slot back. Distinct
                // from read_timeout so operators can run generous blocking
                // deadlines with a tight multiplexing budget.
                if let Some(it) = governor.idle_timeout {
                    if now.duration_since(self.last_inbound) >= it {
                        return self.finish_evict(shared);
                    }
                }
                // Outbound cap: the peer is not draining its socket and
                // the frame buffer is absorbing the difference.
                if let Some(cap) = governor.max_outbound_bytes {
                    if self.fb.pending_write_bytes() as u64 > cap {
                        return self.finish_evict(shared);
                    }
                }
                if governor.inbound_quota && self.over_inbound_quota(shared) {
                    return self.finish_evict(shared);
                }
                if fed {
                    Sweep::Progress
                } else {
                    Sweep::Idle
                }
            }
        }
    }

    /// Whether the session has received more than the planner says a
    /// well-formed peer could ever send. Before the handshake fixes the
    /// batch a small fixed allowance applies; after it, the plan-keyed
    /// [`CommCeiling`] (computed once and cached).
    fn over_inbound_quota(&mut self, shared: &Shared) -> bool {
        if self.quota.is_none() {
            if let Some(batch) = self.driver.batch() {
                self.quota = shared.server.inbound_ceiling(batch).ok();
            }
        }
        match self.quota {
            Some(q) => self.inbound_frames > q.frames || self.inbound_bytes > q.bytes,
            None => {
                self.inbound_frames > PRE_HANDSHAKE_FRAMES
                    || self.inbound_bytes > PRE_HANDSHAKE_BYTES
            }
        }
    }

    /// Mirrors the driver's effects onto the socket (sends) and the
    /// metrics meter (everything), and arms phase budgets off the marks.
    fn apply_effects(&mut self, shared: &Shared) {
        for effect in self.driver.take_effects() {
            match effect {
                DriverEffect::Send(bytes) => {
                    self.fb.queue_send(&bytes);
                    // The sink cannot fail; metering counts phase + tag.
                    let _ = self.meter.send(&bytes);
                }
                DriverEffect::Flush => {}
                DriverEffect::Recv { tag, len } => {
                    // Synthesize a frame of the consumed shape: phase
                    // stats count the full payload, tag stats key off the
                    // leading byte.
                    let mut frame = vec![0u8; len];
                    if let Some(first) = frame.first_mut() {
                        *first = tag;
                    }
                    self.meter.inner_mut().queued = Some(frame);
                    let _ = self.meter.recv();
                }
                DriverEffect::Mark(label) => {
                    self.meter.enter_phase(&label);
                    let deadlines = &shared.config.deadlines;
                    match label.as_str() {
                        "setup" => {
                            self.phase_deadline =
                                deadlines.offline_budget.map(|b| Instant::now() + b);
                        }
                        "online" => {
                            self.online = true;
                            self.phase_deadline =
                                deadlines.online_budget.map(|b| Instant::now() + b);
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    fn finish_ok(&mut self, shared: &Shared) -> Sweep {
        if let Some(token) = self.driver.token() {
            shared.store.remove(&token);
        }
        self.flush_outbound();
        Sweep::Finished(true)
    }

    fn finish_err(&mut self, shared: &Shared, e: ProtocolError) -> Sweep {
        // Mirror the blocking server: a retryably dead session parks its
        // connection-independent offline state for a future resume.
        if e.is_retryable() {
            if let (Some(token), Some(bundle)) =
                (self.driver.token(), self.driver.take_checkpoint())
            {
                shared.store.insert(token, bundle);
            }
        }
        self.flush_outbound();
        Sweep::Finished(false)
    }

    /// Governor eviction: park the resumable offline state for a future
    /// resume, count the eviction, and give the slot back. Unlike
    /// [`finish_err`](Self::finish_err) this does NOT wait on
    /// `flush_outbound` — the peer being evicted is by definition not
    /// draining, and a 5-second courtesy flush per eviction would let
    /// slow peers serialize the very sweep the governor protects.
    fn finish_evict(&mut self, shared: &Shared) -> Sweep {
        if let (Some(token), Some(bundle)) = (self.driver.token(), self.driver.take_checkpoint()) {
            shared.store.insert(token, bundle);
        }
        shared.metrics.session_evicted();
        Sweep::Finished(false)
    }

    /// Best-effort bounded drain of queued output (the negotiation reply,
    /// the final logit shares) before the socket closes.
    fn flush_outbound(&mut self) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.fb.has_pending_write() && Instant::now() < deadline {
            match self.fb.poll_write() {
                Ok(true) | Err(_) => break,
                Ok(false) => std::thread::sleep(Duration::from_millis(1)),
            }
        }
    }
}

fn worker_loop(shared: &Shared, worker: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sessions: Vec<LiveSession<'_>> = Vec::new();
    loop {
        shared.hearts[worker].store(now_millis(shared), Ordering::Relaxed);

        // Chaos: die right before claiming, while the queue is non-empty
        // and no lock is held — the queued connection must survive the
        // crash and be served by the supervisor's replacement worker.
        if shared.config.governor.inject_worker_panic == Some(worker) {
            let armed = !shared.queue.lock().expect("queue lock").conns.is_empty();
            if armed && !shared.chaos_fired.swap(true, Ordering::SeqCst) {
                panic!("governor chaos: injected worker panic");
            }
        }

        // Claim queued connections up to the multiplexing cap; block on
        // the condvar only when there is nothing at all to do — and only
        // in bounded slices, so the heartbeat keeps beating while idle.
        {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                while sessions.len() < shared.config.sessions_per_worker {
                    let Some(stream) = q.conns.pop_front() else {
                        break;
                    };
                    // Counted before the lock drops so `drain_complete`
                    // never sees an empty queue with the pop unaccounted.
                    shared.metrics.session_started();
                    match LiveSession::new(shared, worker, stream, &mut rng) {
                        Ok(live) => sessions.push(live),
                        Err(_) => shared.metrics.session_ended(false),
                    }
                }
                if !sessions.is_empty() {
                    break;
                }
                if q.draining {
                    drop(q);
                    if drain_complete(shared) {
                        wake_acceptor(shared);
                    }
                    return;
                }
                q = shared.work.wait_timeout(q, Duration::from_millis(100)).expect("queue lock").0;
                shared.hearts[worker].store(now_millis(shared), Ordering::Relaxed);
            }
        }

        // Sweep every live session once, each under its own unwind guard:
        // a panicking session is quarantined — its possibly-poisoned
        // checkpoint discarded so a resume can never replay the state
        // that panicked — while this worker and the sibling sessions in
        // this very Vec keep running.
        let mut progressed = false;
        let mut ended = 0usize;
        sessions.retain_mut(|live| match catch_unwind(AssertUnwindSafe(|| live.sweep(shared))) {
            Ok(Sweep::Idle) => true,
            Ok(Sweep::Progress) => {
                progressed = true;
                true
            }
            Ok(Sweep::Finished(ok)) => {
                shared.metrics.session_ended(ok);
                progressed = true;
                ended += 1;
                false
            }
            Err(_) => {
                if let Some(token) = live.driver.token() {
                    shared.store.remove(&token);
                }
                shared.metrics.session_panicked();
                shared.metrics.session_ended(false);
                progressed = true;
                ended += 1;
                false
            }
        });
        if ended > 0 && drain_complete(shared) {
            wake_acceptor(shared);
        }
        if !progressed {
            // Every session is parked on its socket: yield briefly
            // instead of spinning the sweep loop hot.
            std::thread::sleep(Duration::from_micros(500));
        }
    }
}
