//! The TCP serving frontend: bounded accept queue, worker pool, admission
//! control, and graceful drain.
//!
//! Life of a connection:
//!
//! 1. The acceptor thread takes it off the listener. If the server is
//!    draining or the accept queue is full, it answers with a busy hello
//!    frame ([`abnn2_core::handshake::reject_busy`]) and closes — the
//!    client surfaces [`ProtocolError::Overloaded`]. Otherwise the raw
//!    stream is queued.
//! 2. A worker dequeues it, wraps it in an
//!    [`InstrumentedTransport`], and runs
//!    one protocol session: handshake (resume and warm-bundle negotiation)
//!    → base-OT setup → offline phase *or* pooled-bundle handoff → online
//!    phase. Checkpoints go through the same bounded
//!    [`CheckpointStore`] the PR-2 resilient
//!    drivers use, so a client can disconnect and resume against any
//!    worker.
//! 3. [`Server::begin_drain`] flips admission off while in-flight sessions
//!    run to completion; [`Server::shutdown`] additionally joins every
//!    thread.

use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::pool::{PoolSnapshot, PrecomputePool};
use abnn2_core::bundle::{BundleKey, ClientBundle, ServerBundle};
use abnn2_core::frames::Bundle;
use abnn2_core::handshake::{handshake_server_ext, reject_busy, SessionParams};
use abnn2_core::inference::ServerOffline;
use abnn2_core::resilient::DEFAULT_CHECKPOINT_CAPACITY;
use abnn2_core::session::ServerSession;
use abnn2_core::{
    CheckpointStore, ExecConfig, ProtocolError, SecureServer, ServedModel, SessionDeadlines,
};
use abnn2_net::{InstrumentedTransport, TcpTransport, Transport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads running protocol sessions.
    pub workers: usize,
    /// Accepted-but-unclaimed connections allowed to wait; beyond this the
    /// acceptor busy-rejects.
    pub queue_capacity: usize,
    /// Ready bundle pairs to keep per batch size; zero disables the
    /// precompute pool (every session pays the interactive offline phase).
    pub pool_depth: usize,
    /// Batch sizes the pool precomputes for.
    pub pool_batches: Vec<usize>,
    /// Per-session transport deadlines.
    pub deadlines: SessionDeadlines,
    /// Capacity of the shared resume-checkpoint store.
    pub checkpoint_capacity: usize,
    /// Execution options (activation variant must match the clients').
    pub exec: ExecConfig,
    /// Seed for the per-worker and pool RNGs.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_capacity: 8,
            pool_depth: 2,
            pool_batches: vec![1],
            deadlines: SessionDeadlines::lan(),
            checkpoint_capacity: DEFAULT_CHECKPOINT_CAPACITY,
            exec: ExecConfig::new(),
            seed: 0xAB22_5E21,
        }
    }
}

struct QueueState {
    conns: VecDeque<TcpStream>,
    draining: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    work: Condvar,
    server: SecureServer,
    info_params: SessionParamsFactory,
    config: ServeConfig,
    store: Arc<CheckpointStore>,
    pool: Option<PrecomputePool>,
    metrics: MetricsRegistry,
}

/// Pre-captured pieces for building `SessionParams` per announced batch
/// without re-deriving digests on every connection.
struct SessionParamsFactory {
    model: abnn2_core::PublicModel,
    variant: abnn2_core::ReluVariant,
}

impl SessionParamsFactory {
    fn for_batch(&self, batch: usize) -> SessionParams {
        SessionParams::for_public(&self.model, self.variant, batch)
    }
}

/// A running multi-client inference service. Dropping the handle drains
/// and joins all threads.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the acceptor, worker, and pool threads. Accepts any served
    /// topology — a `QuantizedNetwork` (MLP) or a `QuantizedCnn`.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listener.
    ///
    /// # Panics
    ///
    /// Panics when `config.pool_batches` holds a batch size the model's
    /// graph rejects (spatial graphs run with batch 1).
    pub fn start(
        model: impl Into<ServedModel>,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> std::io::Result<Self> {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.queue_capacity > 0, "need a positive accept queue");
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let model = Arc::new(model.into());
        let pool = (config.pool_depth > 0).then(|| {
            PrecomputePool::start(
                Arc::clone(&model),
                &config.pool_batches,
                config.pool_depth,
                config.seed ^ 0x706F_6F6C, // distinct stream from the workers
            )
        });
        let public = model.public();
        let server = SecureServer::for_model(model.as_ref().clone()).with_exec(config.exec);
        let store = Arc::new(CheckpointStore::new(config.checkpoint_capacity));
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState { conns: VecDeque::new(), draining: false }),
            work: Condvar::new(),
            server,
            info_params: SessionParamsFactory { model: public, variant: config.exec.variant },
            config: config.clone(),
            store,
            pool,
            metrics: MetricsRegistry::new(),
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("abnn2-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &shared))
                .expect("spawn acceptor")
        };
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let seed = config.seed.wrapping_add(1 + i as u64);
                std::thread::Builder::new()
                    .name(format!("abnn2-worker-{i}"))
                    .spawn(move || worker_loop(&shared, seed))
                    .expect("spawn worker")
            })
            .collect();

        Ok(Server { addr: bound, shared, acceptor: Some(acceptor), workers })
    }

    /// The bound listen address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live metrics, including pool gauges when a pool is attached.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let pool = self.shared.pool.as_ref().map_or(PoolSnapshot::default(), |p| p.snapshot());
        self.shared.metrics.snapshot(pool)
    }

    /// The resume-checkpoint store shared by all workers.
    #[must_use]
    pub fn checkpoint_store(&self) -> &Arc<CheckpointStore> {
        &self.shared.store
    }

    /// Blocks until the pool holds `count` ready pairs for batch size
    /// `batch` (or `timeout` passes). Returns false when no pool is
    /// attached or the target was not reached — callers use this to
    /// guarantee a warm first request.
    #[must_use]
    pub fn warm_up(&self, batch: usize, count: usize, timeout: Duration) -> bool {
        let Some(pool) = self.shared.pool.as_ref() else {
            return false;
        };
        let key = BundleKey::for_graph(&self.shared.info_params.model.graph(), batch);
        pool.wait_ready(&key, count, timeout)
    }

    /// Stops admitting connections (new arrivals get a busy rejection)
    /// while in-flight and queued sessions run to completion. Idempotent,
    /// non-blocking.
    pub fn begin_drain(&self) {
        {
            let mut q = self.shared.queue.lock().expect("queue lock");
            q.draining = true;
        }
        self.shared.work.notify_all();
        if let Some(pool) = self.shared.pool.as_ref() {
            pool.shutdown();
        }
    }

    /// Drains and joins every thread: in-flight sessions finish, new
    /// connections are rejected, and the call returns once the last worker
    /// exits. Idempotent; also run on drop.
    pub fn shutdown(&mut self) {
        self.begin_drain();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Whether the acceptor may stop listening: draining was requested AND
/// every queued and in-flight session has finished. Exiting any earlier
/// would close the listener while sessions are still running, turning a
/// late dialer's typed busy rejection into a raw connection reset.
fn drain_complete(shared: &Shared) -> bool {
    let queued = {
        let q = shared.queue.lock().expect("queue lock");
        if !q.draining {
            return false;
        }
        q.conns.len()
    };
    queued == 0 && shared.metrics.snapshot(PoolSnapshot::default()).active == 0
}

fn acceptor_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Accepted sockets must be blocking regardless of what
                // they inherited from the nonblocking listener.
                let _ = stream.set_nonblocking(false);
                let rejected = {
                    let mut q = shared.queue.lock().expect("queue lock");
                    if q.draining || q.conns.len() >= shared.config.queue_capacity {
                        Some(stream)
                    } else {
                        q.conns.push_back(stream);
                        None
                    }
                };
                match rejected {
                    None => {
                        shared.metrics.connection_accepted();
                        shared.work.notify_one();
                    }
                    Some(stream) => {
                        shared.metrics.connection_rejected();
                        send_busy(shared, stream);
                    }
                }
            }
            Err(_) => {
                if drain_complete(shared) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// Answers a connection the server will not serve with an in-protocol
/// busy frame, so the peer sees a typed `Overloaded` instead of a reset.
/// Failures are ignored — the peer is being turned away either way.
fn send_busy(shared: &Shared, stream: TcpStream) {
    if let Ok(mut ch) = TcpTransport::from_stream(stream) {
        let _ = reject_busy(&mut ch, shared.info_params.for_batch(0));
    }
}

fn worker_loop(shared: &Shared, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    loop {
        let stream = {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(s) = q.conns.pop_front() {
                    // Counted before the lock drops so `drain_complete`
                    // never sees an empty queue with the pop unaccounted.
                    shared.metrics.session_started();
                    break Some(s);
                }
                if q.draining {
                    break None;
                }
                q = shared.work.wait(q).expect("queue lock");
            }
        };
        let Some(stream) = stream else {
            return;
        };
        let ok = serve_connection(shared, stream, &mut rng).is_ok();
        shared.metrics.session_ended(ok);
    }
}

/// Runs one full protocol session over an accepted stream.
fn serve_connection(
    shared: &Shared,
    stream: TcpStream,
    rng: &mut StdRng,
) -> Result<(), ProtocolError> {
    let tcp = TcpTransport::from_stream(stream)?;
    let mut ch = InstrumentedTransport::new(tcp);
    shared.metrics.register(ch.handle());
    ch.set_read_timeout(shared.config.deadlines.read_timeout)?;

    ch.enter_phase("handshake");
    let mut claimed: Option<ServerBundle> = None;
    let mut pooled: Option<(ServerBundle, ClientBundle)> = None;
    let (batch, token, reply) = handshake_server_ext(
        &mut ch,
        |b| shared.info_params.for_batch(b),
        |t| {
            claimed = shared.store.claim(t);
            claimed.is_some()
        },
        |params| {
            pooled = shared.pool.as_ref().and_then(|p| p.take(&BundleKey::from_params(params)));
            pooled.is_some()
        },
    )?;

    // `checkpoint` holds the connection-independent state a reconnecting
    // client could resume from. It stays *out* of the store while this
    // session is live — that is what makes a concurrently presented
    // duplicate token downgrade to a fresh run instead of sharing triplets
    // — and goes back only if the session dies retryably.
    let mut checkpoint: Option<ServerBundle> = claimed;
    let outcome = (|| -> Result<(), ProtocolError> {
        ch.set_phase_budget(shared.config.deadlines.offline_budget)?;
        ch.enter_phase("setup");
        let session = ServerSession::setup(&mut ch, rng)?;

        let state = if reply.resume {
            let bundle = checkpoint.clone().expect("accepted resume implies a claimed checkpoint");
            if bundle.batch != batch {
                return Err(ProtocolError::Malformed("resumed checkpoint batch mismatch"));
            }
            ServerOffline::from_bundle(session, bundle)
        } else if reply.bundle {
            let (sb, cb) = pooled.take().expect("accepted bundle implies a pooled pair");
            ch.enter_phase("bundle");
            ch.send_frame(&Bundle(cb.encode(shared.info_params.model.config().ring)))?;
            ch.flush()?;
            let state = ServerOffline::from_bundle(session, sb);
            checkpoint = Some(state.to_bundle());
            state
        } else {
            ch.enter_phase("offline");
            let state = shared.server.offline_with(&mut ch, session, batch)?;
            checkpoint = Some(state.to_bundle());
            state
        };

        ch.enter_phase("online");
        ch.set_phase_budget(shared.config.deadlines.online_budget)?;
        shared.server.online(&mut ch, state)?;
        ch.set_phase_budget(None)?;
        Ok(())
    })();
    match outcome {
        Ok(()) => {
            shared.store.remove(&token);
            Ok(())
        }
        Err(e) => {
            if e.is_retryable() {
                if let Some(bundle) = checkpoint.take() {
                    shared.store.insert(token, bundle);
                }
            }
            Err(e)
        }
    }
}
