//! Background precompute pool for offline-triplet bundles.
//!
//! A dedicated producer thread manufactures dealer-mode bundle pairs
//! ([`abnn2_core::bundle::dealer_bundle_for`]) and parks them in a bounded
//! per-key buffer. The serving path consumes pairs with a non-blocking
//! [`take`](PrecomputePool::take): a hit means the session skips the
//! interactive offline phase; a miss simply falls back to the cold path —
//! the pool can only make requests faster, never wrong, because warm and
//! cold bundles satisfy the same triplet invariant `U + V = W·R`.

use abnn2_core::bundle::{dealer_bundle_for, BundleKey, ClientBundle, ServerBundle};
use abnn2_core::OfflineMode;
use abnn2_core::{SecureGraph, ServedModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Point-in-time view of the pool's counters and buffer fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolSnapshot {
    /// Bundle pairs manufactured since start.
    pub produced: u64,
    /// Successful [`take`](PrecomputePool::take) calls (warm sessions).
    pub hits: u64,
    /// Missed takes (cold sessions while the pool was drained).
    pub misses: u64,
    /// Bundle pairs currently buffered across all keys.
    pub ready: usize,
}

struct PoolState {
    buffers: HashMap<BundleKey, Vec<(ServerBundle, ClientBundle)>>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signaled on every take (producer refills) and on every push
    /// (warm-up waiters).
    changed: Condvar,
    produced: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Bounded buffer of ready offline-triplet bundle pairs, filled by a
/// background thread. See the module docs.
pub struct PrecomputePool {
    shared: Arc<PoolShared>,
    producer: Mutex<Option<JoinHandle<()>>>,
    keys: Vec<BundleKey>,
    depth: usize,
}

impl std::fmt::Debug for PrecomputePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrecomputePool")
            .field("keys", &self.keys)
            .field("depth", &self.depth)
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

impl PrecomputePool {
    /// Starts a pool keeping up to `depth` ready pairs for each batch size
    /// in `batches`, producing from `model` (MLP or CNN) with a
    /// deterministic RNG seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero, `batches` is empty, or a batch size does
    /// not fit the model's graph (spatial graphs run with batch 1) — a
    /// pool that can hold nothing is a configuration bug, not a runtime
    /// condition.
    #[must_use]
    pub fn start(model: Arc<ServedModel>, batches: &[usize], depth: usize, seed: u64) -> Self {
        Self::start_with_modes(model, batches, &[OfflineMode::Iknp], depth, seed)
    }

    /// Like [`start`](Self::start), but keys bundles under every offline
    /// mode in `modes` (cross product with `batches`). The dealer bundle
    /// *content* is mode-independent — only the key differs — but keying
    /// per mode means a session can only ever drain a bundle pooled for
    /// its own negotiated mode.
    ///
    /// # Panics
    ///
    /// As [`start`](Self::start); additionally panics when `modes` is
    /// empty.
    #[must_use]
    pub fn start_with_modes(
        model: Arc<ServedModel>,
        batches: &[usize],
        modes: &[OfflineMode],
        depth: usize,
        seed: u64,
    ) -> Self {
        assert!(depth > 0, "pool depth must be positive");
        assert!(!batches.is_empty(), "pool needs at least one batch size");
        assert!(!modes.is_empty(), "pool needs at least one offline mode");
        let graph = model.graph();
        let entries: Vec<(BundleKey, SecureGraph)> = batches
            .iter()
            .flat_map(|&b| {
                let sg = SecureGraph::new(graph.clone(), b)
                    .expect("pool batch size must fit the served graph");
                let graph = &graph;
                modes
                    .iter()
                    .map(move |&m| (BundleKey::for_graph(graph, b).with_mode(m), sg.clone()))
            })
            .collect();
        let keys: Vec<BundleKey> = entries.iter().map(|(k, _)| *k).collect();
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState { buffers: HashMap::new(), shutdown: false }),
            changed: Condvar::new(),
            produced: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        });

        let producer = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("abnn2-pool".into())
                .spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed);
                    producer_loop(&shared, &model, &entries, depth, &mut rng);
                })
                .expect("spawn pool producer")
        };

        PrecomputePool { shared, producer: Mutex::new(Some(producer)), keys, depth }
    }

    /// The keys this pool produces for.
    #[must_use]
    pub fn keys(&self) -> &[BundleKey] {
        &self.keys
    }

    /// Pops a ready pair for `key`, if one is buffered. Never blocks: a
    /// miss is the caller's cue to run the cold offline path.
    #[must_use]
    pub fn take(&self, key: &BundleKey) -> Option<(ServerBundle, ClientBundle)> {
        let mut state = self.shared.state.lock().expect("pool lock");
        let taken = state.buffers.get_mut(key).and_then(Vec::pop);
        drop(state);
        if taken.is_some() {
            self.shared.hits.fetch_add(1, Ordering::Relaxed);
            // The producer may be parked on a full pool; wake it to refill.
            self.shared.changed.notify_all();
        } else {
            self.shared.misses.fetch_add(1, Ordering::Relaxed);
        }
        taken
    }

    /// Blocks until at least `count` pairs are buffered for `key`, or
    /// `timeout` elapses. Returns whether the target was reached. Lets
    /// deployments (and tests) warm the pool before opening the doors.
    #[must_use]
    pub fn wait_ready(&self, key: &BundleKey, count: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().expect("pool lock");
        loop {
            let ready = state.buffers.get(key).map_or(0, Vec::len);
            if ready >= count {
                return true;
            }
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (s, timed_out) = self.shared.changed.wait_timeout(state, left).expect("pool lock");
            state = s;
            if timed_out.timed_out() {
                return state.buffers.get(key).map_or(0, Vec::len) >= count;
            }
        }
    }

    /// Current counters and buffer fill.
    #[must_use]
    pub fn snapshot(&self) -> PoolSnapshot {
        let ready =
            self.shared.state.lock().expect("pool lock").buffers.values().map(Vec::len).sum();
        PoolSnapshot {
            produced: self.shared.produced.load(Ordering::Relaxed),
            hits: self.shared.hits.load(Ordering::Relaxed),
            misses: self.shared.misses.load(Ordering::Relaxed),
            ready,
        }
    }

    /// Stops the producer thread and joins it. Idempotent; also run by
    /// `Drop`.
    pub fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            state.shutdown = true;
        }
        self.shared.changed.notify_all();
        if let Some(handle) = self.producer.lock().expect("producer lock").take() {
            let _ = handle.join();
        }
    }
}

impl Drop for PrecomputePool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn producer_loop(
    shared: &PoolShared,
    model: &ServedModel,
    entries: &[(BundleKey, SecureGraph)],
    depth: usize,
    rng: &mut StdRng,
) {
    loop {
        // Find the emptiest buffer below target depth, or park until a
        // take (or shutdown) changes the picture.
        let todo = {
            let mut state = shared.state.lock().expect("pool lock");
            loop {
                if state.shutdown {
                    return;
                }
                let next = entries
                    .iter()
                    .map(|(k, sg)| (state.buffers.get(k).map_or(0, Vec::len), k, sg))
                    .filter(|&(len, _, _)| len < depth)
                    .min_by_key(|&(len, _, _)| len);
                match next {
                    Some((_, key, sg)) => break (*key, sg),
                    None => state = shared.changed.wait(state).expect("pool lock"),
                }
            }
        };

        // Generate outside the lock: dealer bundles are pure local compute
        // and must not block takers.
        let (key, sg) = todo;
        let pair = dealer_bundle_for(model, sg, rng);
        let mut state = shared.state.lock().expect("pool lock");
        if state.shutdown {
            return;
        }
        state.buffers.entry(key).or_default().push(pair);
        drop(state);
        shared.produced.fetch_add(1, Ordering::Relaxed);
        shared.changed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_math::{FragmentScheme, Ring};
    use abnn2_nn::quant::{QuantConfig, QuantizedNetwork};
    use abnn2_nn::Network;

    fn tiny() -> QuantizedNetwork {
        let net = Network::new(&[6, 5, 3], 21);
        QuantizedNetwork::quantize(
            &net,
            QuantConfig {
                ring: Ring::new(32),
                frac_bits: 8,
                weight_frac_bits: 2,
                scheme: FragmentScheme::signed_bit_fields(&[2, 2]),
            },
        )
    }

    #[test]
    fn pool_fills_serves_hits_and_refills() {
        let model = Arc::new(ServedModel::from(tiny()));
        let graph = model.graph();
        let pool = PrecomputePool::start(Arc::clone(&model), &[1, 2], 2, 99);
        let k1 = BundleKey::for_graph(&graph, 1);
        let k2 = BundleKey::for_graph(&graph, 2);

        assert!(pool.wait_ready(&k1, 2, Duration::from_secs(10)), "pool must fill");
        assert!(pool.wait_ready(&k2, 2, Duration::from_secs(10)), "pool must fill");

        let (sb, cb) = pool.take(&k1).expect("warm take");
        assert_eq!(sb.batch, 1);
        assert_eq!(cb.batch, 1);

        // A key the pool does not produce is a miss, not a block.
        let other = BundleKey { batch: 77, ..k1 };
        assert!(pool.take(&other).is_none());

        // The taken slot refills.
        assert!(pool.wait_ready(&k1, 2, Duration::from_secs(10)), "pool must refill");

        let snap = pool.snapshot();
        assert_eq!(snap.hits, 1);
        assert_eq!(snap.misses, 1);
        assert!(snap.produced >= 5, "4 initial + 1 refill, got {}", snap.produced);

        pool.shutdown();
        pool.shutdown(); // idempotent
    }

    #[test]
    fn shutdown_unblocks_promptly() {
        let model = Arc::new(ServedModel::from(tiny()));
        let key = BundleKey::for_graph(&model.graph(), 1);
        let pool = PrecomputePool::start(Arc::clone(&model), &[1], 1, 7);
        assert!(pool.wait_ready(&key, 1, Duration::from_secs(10)));
        pool.shutdown();
        // Post-shutdown takes drain what is buffered, then miss.
        let _ = pool.take(&key);
        assert!(pool.take(&key).is_none());
    }
}
