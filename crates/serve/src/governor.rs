//! Per-session resource budgets and chaos-injection knobs.
//!
//! The [`Server`](crate::Server) event loop is cooperative: one slow,
//! stalled, or malicious peer must not be able to pin a worker slot or
//! grow an outbound queue without bound while warm siblings wait. The
//! governor gives every sweep a budget to enforce:
//!
//! * **idle parking** — a session parked in `NeedRecv` that has produced
//!   no inbound frame within [`idle_timeout`](GovernorConfig::idle_timeout)
//!   is checkpointed (when resumable) and evicted. This is independent of
//!   the protocol-level [`SessionDeadlines`](abnn2_core::SessionDeadlines):
//!   deadlines bound one *blocking* read, the governor bounds how long a
//!   *multiplexed* session may occupy a slot without progress.
//! * **outbound cap** — a peer that stops draining its socket leaves
//!   queued bytes in the worker's [`FrameBuffer`](abnn2_net::FrameBuffer).
//!   Past [`max_outbound_bytes`](GovernorConfig::max_outbound_bytes) the
//!   session is evicted instead of buffering the whole offline phase.
//! * **inbound quota** — once the handshake fixes the batch, the planner
//!   ([`SecureGraph::inbound_ceiling`](abnn2_core::SecureGraph::inbound_ceiling))
//!   knows an upper bound on what a well-formed client ever sends. A peer
//!   exceeding that ceiling (frames or bytes) is evicted; before the
//!   handshake a small fixed allowance applies.
//!
//! The supervisor side: workers heartbeat every loop iteration, and a
//! `wedge_timeout` (plus thread-death detection) lets the supervisor
//! respawn a worker and re-home its queue. The two `inject_*` knobs exist
//! for chaos tests and the `--governor-smoke` CI job; they default off.

use std::time::Duration;

/// Resource budgets enforced per sweep, plus chaos-injection knobs.
///
/// All limits are optional; `GovernorConfig::default()` enforces only the
/// outbound cap (256 MiB) — generous enough that no honest workload ever
/// hits it. Tests and operators tighten from there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GovernorConfig {
    /// Evict a `NeedRecv`-parked session that has received no inbound
    /// frame for this long. `None` disables idle eviction.
    pub idle_timeout: Option<Duration>,
    /// Evict a session whose outbound queue (bytes accepted by the frame
    /// buffer but not yet drained by the peer's socket) exceeds this.
    /// `None` disables the cap.
    pub max_outbound_bytes: Option<u64>,
    /// Enforce the plan-keyed inbound quota: after the handshake fixes
    /// the batch, the session may receive at most the planner's
    /// [`CommCeiling`](abnn2_core::CommCeiling) (frames and bytes);
    /// before the handshake, [`PRE_HANDSHAKE_FRAMES`] /
    /// [`PRE_HANDSHAKE_BYTES`] apply.
    pub inbound_quota: bool,
    /// Supervisor: respawn a worker whose heartbeat is older than this
    /// while its thread is still alive (wedged). `None` means only dead
    /// threads are respawned. Long crypto steps are legitimate — keep
    /// this well above the slowest single protocol step.
    pub wedge_timeout: Option<Duration>,
    /// Chaos: panic inside the sweep of the Nth admitted session (0-based
    /// admission ordinal) once it reaches the online phase. Exercises the
    /// quarantine path; `None` in production.
    pub inject_panic_session: Option<u64>,
    /// Chaos: panic the given worker's thread once, while the accept
    /// queue is non-empty and before it claims a connection. Exercises
    /// the supervisor respawn path; `None` in production.
    pub inject_worker_panic: Option<usize>,
}

/// Inbound frames a session may receive before the handshake completes.
pub const PRE_HANDSHAKE_FRAMES: u64 = 8;
/// Inbound bytes a session may receive before the handshake completes.
pub const PRE_HANDSHAKE_BYTES: u64 = 16 * 1024;

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            idle_timeout: None,
            max_outbound_bytes: Some(256 * 1024 * 1024),
            inbound_quota: true,
            wedge_timeout: None,
            inject_panic_session: None,
            inject_worker_panic: None,
        }
    }
}

impl GovernorConfig {
    /// Budgets for tests: tight idle/outbound limits so misbehaving peers
    /// are evicted within `idle`, quotas on.
    #[must_use]
    pub fn strict(idle: Duration, max_outbound_bytes: u64) -> Self {
        GovernorConfig {
            idle_timeout: Some(idle),
            max_outbound_bytes: Some(max_outbound_bytes),
            inbound_quota: true,
            ..GovernorConfig::default()
        }
    }
}
