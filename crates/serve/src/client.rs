//! Client driver for the serving frontend.
//!
//! [`ServeClient`] wraps a [`SecureClient`] with everything a caller
//! talking to a [`Server`](crate::Server) needs: TCP connection minting,
//! reconnect-and-resume under a [`RetryPolicy`], warm-bundle negotiation,
//! and per-phase instrumentation. The returned [`ServeReport`] carries the
//! merged phase stats across all attempts, so callers (and the acceptance
//! tests) can verify a warm request moved *zero* offline-phase bytes.

use abnn2_core::bundle::ClientBundle;
use abnn2_core::frames::Bundle;
use abnn2_core::handshake::{handshake_client_ext, HelloRequest, ResumeToken, SessionParams};
use abnn2_core::inference::ClientOffline;
use abnn2_core::session::ClientSession;
use abnn2_core::{
    ProtocolError, PublicModel, PublicModelInfo, ReluVariant, SecureClient, SecureGraph,
    SessionDeadlines,
};
use abnn2_math::Matrix;
use abnn2_net::{
    InstrumentHandle, InstrumentedTransport, PhaseStats, ResilientDriver, RetryPolicy,
    TcpTransport, Transport,
};
use rand::Rng;
use std::net::SocketAddr;
use std::time::Duration;

/// Outcome of one served request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeReport {
    /// Connection attempts consumed (1 = no failure).
    pub attempts: u32,
    /// Whether any attempt resumed from a checkpoint.
    pub resumed: bool,
    /// Whether the final attempt ran warm (server-supplied bundle instead
    /// of an interactive offline phase).
    pub warm: bool,
    /// Per-phase traffic merged across all attempts, in first-seen order.
    pub phases: Vec<(String, PhaseStats)>,
}

impl ServeReport {
    /// Total traffic for the phase, zero if the phase never ran.
    ///
    /// Matches the exact phase name *and* any sub-phase labelled
    /// `"{name}:..."`, so `phase("offline")` still covers the per-op
    /// labels (`offline:op0/dense`, …) the graph executor emits.
    #[must_use]
    pub fn phase(&self, name: &str) -> PhaseStats {
        let prefix = format!("{name}:");
        let mut total = PhaseStats::default();
        for (n, s) in &self.phases {
            if n == name || n.starts_with(&prefix) {
                total.merge(s);
            }
        }
        total
    }
}

/// A reconnecting, bundle-aware client for the serving frontend.
#[derive(Debug, Clone)]
pub struct ServeClient {
    client: SecureClient,
    variant: ReluVariant,
    policy: RetryPolicy,
    deadlines: SessionDeadlines,
    request_bundle: bool,
    silent: bool,
}

impl ServeClient {
    /// Client for the MLP described by `info`, requesting warm bundles,
    /// with the default retry policy and LAN deadlines.
    #[must_use]
    pub fn new(info: PublicModelInfo) -> Self {
        Self::for_model(info)
    }

    /// Client for any served topology (MLP or CNN) described by a
    /// [`PublicModel`], requesting warm bundles, with the default retry
    /// policy and LAN deadlines.
    #[must_use]
    pub fn for_model(model: impl Into<PublicModel>) -> Self {
        // Match ServeConfig's default ExecConfig so a default client and a
        // default server negotiate successfully out of the box.
        let variant = abnn2_core::ExecConfig::new().variant;
        ServeClient {
            client: SecureClient::for_model(model).with_variant(variant),
            variant,
            policy: RetryPolicy::default(),
            deadlines: SessionDeadlines::lan(),
            request_bundle: true,
            silent: false,
        }
    }

    /// Selects the activation variant (must match the server's).
    #[must_use]
    pub fn with_variant(mut self, variant: ReluVariant) -> Self {
        self.variant = variant;
        self.client = self.client.with_variant(variant);
        self
    }

    /// Replaces the retry policy.
    #[must_use]
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the deadline budget.
    #[must_use]
    pub fn with_deadlines(mut self, deadlines: SessionDeadlines) -> Self {
        self.deadlines = deadlines;
        self
    }

    /// Whether to ask the server for a precomputed bundle (default true).
    /// With `false` every request pays the interactive offline phase.
    #[must_use]
    pub fn with_bundles(mut self, request: bool) -> Self {
        self.request_bundle = request;
        self
    }

    /// Whether to advertise silent-OT capability in the hello (default
    /// false). When the server grants it, the cold offline phase expands
    /// OT correlations locally from LPN instead of streaming IKNP columns;
    /// falls back to IKNP transparently against older servers.
    #[must_use]
    pub fn with_silent(mut self, silent: bool) -> Self {
        self.silent = silent;
        self
    }

    /// Runs one batch of predictions against the server at `addr`,
    /// reconnecting and resuming as needed. Returns the raw logits
    /// (`out_dim × batch`), bit-identical to
    /// `QuantizedNetwork::forward_exact`, plus a [`ServeReport`].
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Overloaded`] when the server refuses admission
    /// and the retry budget is exhausted. A busy rejection carries the
    /// server's `retry_after_ms` hint; this driver honors it — sleeping
    /// the hinted amount (or its own jittered backoff when the hint is
    /// zero) before re-dialing, each wait consuming one attempt from the
    /// retry policy — so turned-away clients back off instead of
    /// hot-looping against a full queue. Otherwise the first fatal error
    /// or the last transient one once the retry policy is exhausted.
    pub fn run<R: Rng + ?Sized>(
        &self,
        addr: SocketAddr,
        inputs_fp: &[Vec<u64>],
        rng: &mut R,
    ) -> Result<(Matrix, ServeReport), ProtocolError> {
        let batch = inputs_fp.len();
        if batch == 0 {
            return Err(ProtocolError::Dimension("batch must be positive"));
        }
        let ours = SessionParams::for_public(self.client.public_model(), self.variant, batch);
        let graph = SecureGraph::new(self.client.public_model().graph(), batch)?;
        let mut token: ResumeToken = [0; 16];
        rng.fill(&mut token);

        let mut checkpoint: Option<ClientBundle> = None;
        let mut attempts = 0u32;
        let mut resumed = false;
        let mut warm = false;
        let mut handles: Vec<InstrumentHandle> = Vec::new();
        let mut shed_waits = 0u32;

        // Admission loop: a busy rejection is not retryable inside the
        // resilient driver (re-dialing instantly would hammer a full
        // queue), so it is retried out here, after honoring the server's
        // backoff hint.
        let result = loop {
            match self.run_once(
                addr,
                ours,
                &graph,
                &token,
                inputs_fp,
                rng,
                &mut checkpoint,
                &mut attempts,
                &mut resumed,
                &mut warm,
                &mut handles,
            ) {
                Err(ProtocolError::Overloaded { retry_after_ms })
                    if shed_waits + 1 < self.policy.max_attempts.max(1) =>
                {
                    let wait = if retry_after_ms > 0 {
                        Duration::from_millis(u64::from(retry_after_ms))
                    } else {
                        self.policy.backoff(shed_waits)
                    };
                    if !wait.is_zero() {
                        std::thread::sleep(wait);
                    }
                    shed_waits += 1;
                }
                other => break other,
            }
        };

        let phases = merge_handles(&handles);
        let logits = result?;
        Ok((logits, ServeReport { attempts, resumed, warm, phases }))
    }

    /// One pass of the resilient (reconnect-and-resume) driver; the
    /// admission loop in [`run`](Self::run) re-invokes this after a busy
    /// rejection.
    #[allow(clippy::too_many_arguments)]
    fn run_once<R: Rng + ?Sized>(
        &self,
        addr: SocketAddr,
        ours: SessionParams,
        graph: &SecureGraph,
        token: &ResumeToken,
        inputs_fp: &[Vec<u64>],
        rng: &mut R,
        checkpoint: &mut Option<ClientBundle>,
        attempts: &mut u32,
        resumed: &mut bool,
        warm: &mut bool,
        handles: &mut Vec<InstrumentHandle>,
    ) -> Result<Matrix, ProtocolError> {
        let batch = inputs_fp.len();
        let base_attempts = *attempts;
        let driver = ResilientDriver::new(self.policy);
        driver.run(
            |_attempt| TcpTransport::connect(addr).map(InstrumentedTransport::new),
            |ch, attempt| -> Result<Matrix, ProtocolError> {
                *attempts = base_attempts + attempt + 1;
                handles.push(ch.handle());
                ch.set_read_timeout(self.deadlines.read_timeout)?;

                ch.enter_phase("handshake");
                let request = HelloRequest {
                    resume: checkpoint.is_some(),
                    bundle: self.request_bundle && checkpoint.is_none(),
                    silent: self.silent,
                };
                let reply = handshake_client_ext(ch, ours, token, request)?;

                ch.set_phase_budget(self.deadlines.offline_budget)?;
                ch.enter_phase("setup");
                let session = ClientSession::setup_with(ch, reply.mode(), rng)?;

                let state = if reply.resume {
                    *resumed = true;
                    let bundle = checkpoint.clone().expect("resume implies checkpoint");
                    ClientOffline::from_bundle(session, bundle)
                } else if reply.bundle {
                    *warm = true;
                    ch.enter_phase("bundle");
                    let Bundle(bytes) = ch.recv_frame()?;
                    let bundle = ClientBundle::decode(&bytes, graph)?;
                    *checkpoint = Some(bundle.clone());
                    ClientOffline::from_bundle(session, bundle)
                } else {
                    // Cold path: the server had neither our checkpoint nor
                    // a pooled bundle.
                    *warm = false;
                    *checkpoint = None;
                    ch.enter_phase("offline");
                    let state = self.client.offline_with(ch, session, batch, rng)?;
                    *checkpoint = Some(state.to_bundle());
                    state
                };

                ch.enter_phase("online");
                ch.set_phase_budget(self.deadlines.online_budget)?;
                let y = self.client.online_raw(ch, state, inputs_fp, rng)?;
                ch.set_phase_budget(None)?;
                Ok(y)
            },
        )
    }
}

/// Folds per-attempt instrument handles into one phase list, first-seen
/// order preserved.
fn merge_handles(handles: &[InstrumentHandle]) -> Vec<(String, PhaseStats)> {
    let mut order: Vec<String> = Vec::new();
    let mut merged: std::collections::HashMap<String, PhaseStats> =
        std::collections::HashMap::new();
    for handle in handles {
        for (name, stats) in handle.phases() {
            merged
                .entry(name.clone())
                .or_insert_with(|| {
                    order.push(name.clone());
                    PhaseStats::default()
                })
                .merge(&stats);
        }
    }
    order
        .into_iter()
        .map(|name| {
            let stats = merged[&name];
            (name, stats)
        })
        .collect()
}
