//! Thread-safe serving metrics.
//!
//! One [`MetricsRegistry`] serves a whole [`Server`](crate::Server):
//! admission counters are lock-free atomics, and per-phase traffic is
//! aggregated lazily from each connection's
//! [`InstrumentHandle`]. Handles whose
//! transport has finished are folded into a frozen accumulator on the next
//! registration, so the registry's memory stays proportional to *live*
//! sessions, not total sessions served.

use abnn2_net::{InstrumentHandle, PhaseStats, TagStats};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::pool::PoolSnapshot;

/// Point-in-time view of a server's counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Connections admitted into the accept queue.
    pub accepted: u64,
    /// Connections refused with a busy frame (queue full or draining).
    pub rejected: u64,
    /// Sessions that ran the protocol to completion.
    pub completed: u64,
    /// Sessions that ended in a protocol or transport error.
    pub failed: u64,
    /// Sessions the governor evicted for exceeding a resource budget
    /// (idle park deadline, outbound-queue cap, or inbound quota). Also
    /// counted in `failed`.
    pub evicted: u64,
    /// Sessions quarantined after panicking mid-protocol; their worker
    /// and sibling sessions kept running. Also counted in `failed`.
    pub panicked: u64,
    /// Event-loop workers the supervisor respawned after detecting a
    /// dead or wedged worker thread.
    pub worker_respawns: u64,
    /// Sessions currently being served by a worker.
    pub active: u64,
    /// Precompute-pool counters (zeroed when the pool is disabled).
    pub pool: PoolSnapshot,
    /// Per-phase traffic summed over every session ever registered, in
    /// first-seen phase order (`handshake`, `setup`, `bundle`/`offline`,
    /// `online` for a typical server).
    pub phases: Vec<(String, PhaseStats)>,
    /// Per-frame-tag traffic summed over every session ever registered,
    /// ordered by tag byte ([`abnn2_net::wire::tags`] names them). Byte
    /// counts exclude the tag byte itself.
    pub tags: Vec<(u8, TagStats)>,
}

impl MetricsSnapshot {
    /// Total traffic for the phase, zero if the phase never ran.
    ///
    /// Matches the exact phase name *and* any sub-phase labelled
    /// `"{name}:..."`, so `phase("offline")` still covers the per-op
    /// labels (`offline:op0/dense`, …) the graph executor emits.
    #[must_use]
    pub fn phase(&self, name: &str) -> PhaseStats {
        let prefix = format!("{name}:");
        let mut total = PhaseStats::default();
        for (n, s) in &self.phases {
            if n == name || n.starts_with(&prefix) {
                total.merge(s);
            }
        }
        total
    }

    /// Total traffic carried under the frame tag, zero if the tag was
    /// never seen.
    #[must_use]
    pub fn tag(&self, tag: u8) -> TagStats {
        self.tags.iter().find(|&&(t, _)| t == tag).map(|&(_, s)| s).unwrap_or_default()
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): admission counters, the active-session and
    /// pool-ready gauges, and per-phase / per-frame-tag traffic as
    /// labelled counters. Tags are labelled with both the raw byte and the
    /// wire name from [`abnn2_net::wire::tags::name`]; tag byte counts
    /// exclude the tag byte itself, exactly as [`MetricsSnapshot::tags`]
    /// reports them.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        counter(
            "abnn2_serve_connections_accepted_total",
            "Connections admitted into the accept queue.",
            self.accepted,
        );
        counter(
            "abnn2_serve_connections_rejected_total",
            "Connections refused with a busy frame.",
            self.rejected,
        );
        counter(
            "abnn2_serve_sessions_completed_total",
            "Sessions that ran the protocol to completion.",
            self.completed,
        );
        counter(
            "abnn2_serve_sessions_failed_total",
            "Sessions that ended in a protocol or transport error.",
            self.failed,
        );
        counter(
            "abnn2_serve_sessions_evicted_total",
            "Sessions evicted by the governor for exceeding a resource budget.",
            self.evicted,
        );
        counter(
            "abnn2_serve_sessions_panicked_total",
            "Sessions quarantined after panicking mid-protocol.",
            self.panicked,
        );
        counter(
            "abnn2_serve_worker_respawns_total",
            "Event-loop workers respawned by the supervisor.",
            self.worker_respawns,
        );
        counter(
            "abnn2_serve_pool_produced_total",
            "Offline bundle pairs manufactured by the precompute pool.",
            self.pool.produced,
        );
        counter(
            "abnn2_serve_pool_hits_total",
            "Sessions served from a warm pool bundle.",
            self.pool.hits,
        );
        counter(
            "abnn2_serve_pool_misses_total",
            "Bundle requests that fell back to the cold offline phase.",
            self.pool.misses,
        );

        let _ =
            writeln!(out, "# HELP abnn2_serve_sessions_active Sessions currently being served.");
        let _ = writeln!(out, "# TYPE abnn2_serve_sessions_active gauge");
        let _ = writeln!(out, "abnn2_serve_sessions_active {}", self.active);
        let _ = writeln!(
            out,
            "# HELP abnn2_serve_pool_ready Bundle pairs currently buffered in the pool."
        );
        let _ = writeln!(out, "# TYPE abnn2_serve_pool_ready gauge");
        let _ = writeln!(out, "abnn2_serve_pool_ready {}", self.pool.ready);

        let _ = writeln!(
            out,
            "# HELP abnn2_serve_phase_bytes_total Payload bytes per protocol phase and direction."
        );
        let _ = writeln!(out, "# TYPE abnn2_serve_phase_bytes_total counter");
        for (name, s) in &self.phases {
            let _ = writeln!(
                out,
                "abnn2_serve_phase_bytes_total{{phase=\"{name}\",direction=\"sent\"}} {}",
                s.bytes_sent
            );
            let _ = writeln!(
                out,
                "abnn2_serve_phase_bytes_total{{phase=\"{name}\",direction=\"received\"}} {}",
                s.bytes_received
            );
        }
        let _ = writeln!(
            out,
            "# HELP abnn2_serve_phase_messages_total Messages per protocol phase and direction."
        );
        let _ = writeln!(out, "# TYPE abnn2_serve_phase_messages_total counter");
        for (name, s) in &self.phases {
            let _ = writeln!(
                out,
                "abnn2_serve_phase_messages_total{{phase=\"{name}\",direction=\"sent\"}} {}",
                s.messages_sent
            );
            let _ = writeln!(
                out,
                "abnn2_serve_phase_messages_total{{phase=\"{name}\",direction=\"received\"}} {}",
                s.messages_received
            );
        }

        let _ = writeln!(
            out,
            "# HELP abnn2_serve_tag_bytes_total Frame payload bytes per wire tag and direction \
             (tag byte excluded)."
        );
        let _ = writeln!(out, "# TYPE abnn2_serve_tag_bytes_total counter");
        for &(tag, s) in &self.tags {
            let name = abnn2_net::wire::tags::name(tag);
            let _ = writeln!(
                out,
                "abnn2_serve_tag_bytes_total{{tag=\"0x{tag:02x}\",name=\"{name}\",\
                 direction=\"sent\"}} {}",
                s.bytes_sent
            );
            let _ = writeln!(
                out,
                "abnn2_serve_tag_bytes_total{{tag=\"0x{tag:02x}\",name=\"{name}\",\
                 direction=\"received\"}} {}",
                s.bytes_received
            );
        }
        let _ = writeln!(
            out,
            "# HELP abnn2_serve_tag_messages_total Frames per wire tag and direction."
        );
        let _ = writeln!(out, "# TYPE abnn2_serve_tag_messages_total counter");
        for &(tag, s) in &self.tags {
            let name = abnn2_net::wire::tags::name(tag);
            let _ = writeln!(
                out,
                "abnn2_serve_tag_messages_total{{tag=\"0x{tag:02x}\",name=\"{name}\",\
                 direction=\"sent\"}} {}",
                s.messages_sent
            );
            let _ = writeln!(
                out,
                "abnn2_serve_tag_messages_total{{tag=\"0x{tag:02x}\",name=\"{name}\",\
                 direction=\"received\"}} {}",
                s.messages_received
            );
        }
        out
    }
}

#[derive(Default)]
struct PhaseAggregate {
    /// Folded totals of finished sessions, keyed by phase name; the value's
    /// second field is the first-seen rank, for stable reporting order.
    frozen: HashMap<String, (PhaseStats, usize)>,
    /// Folded per-frame-tag totals of finished sessions.
    frozen_tags: BTreeMap<u8, TagStats>,
    /// Handles of sessions that may still be producing traffic.
    live: Vec<InstrumentHandle>,
}

impl PhaseAggregate {
    fn fold_into_frozen(&mut self, handle: &InstrumentHandle) {
        for (name, stats) in handle.phases() {
            let rank = self.frozen.len();
            self.frozen.entry(name).or_insert((PhaseStats::default(), rank)).0.merge(&stats);
        }
        for (tag, stats) in handle.tags() {
            self.frozen_tags.entry(tag).or_default().merge(&stats);
        }
    }

    fn compact(&mut self) {
        let mut i = 0;
        while i < self.live.len() {
            if self.live[i].is_finished() {
                let handle = self.live.swap_remove(i);
                self.fold_into_frozen(&handle);
            } else {
                i += 1;
            }
        }
    }

    fn totals(&self) -> Vec<(String, PhaseStats)> {
        let mut merged = self.frozen.clone();
        for handle in &self.live {
            for (name, stats) in handle.phases() {
                let rank = merged.len();
                merged.entry(name).or_insert((PhaseStats::default(), rank)).0.merge(&stats);
            }
        }
        let mut out: Vec<(String, PhaseStats, usize)> =
            merged.into_iter().map(|(n, (s, rank))| (n, s, rank)).collect();
        out.sort_by_key(|&(_, _, rank)| rank);
        out.into_iter().map(|(n, s, _)| (n, s)).collect()
    }

    fn tag_totals(&self) -> Vec<(u8, TagStats)> {
        let mut merged = self.frozen_tags.clone();
        for handle in &self.live {
            for (tag, stats) in handle.tags() {
                merged.entry(tag).or_default().merge(&stats);
            }
        }
        merged.into_iter().collect()
    }
}

/// Shared counters and per-phase aggregation for one serving frontend.
#[derive(Default)]
pub struct MetricsRegistry {
    accepted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    evicted: AtomicU64,
    panicked: AtomicU64,
    worker_respawns: AtomicU64,
    active: AtomicU64,
    phases: Mutex<PhaseAggregate>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("snapshot", &self.snapshot(PoolSnapshot::default()))
            .finish()
    }
}

impl MetricsRegistry {
    /// Fresh registry with all counters at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an admitted connection.
    pub fn connection_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a busy-rejected connection.
    pub fn connection_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks a session as started (bumps the active gauge).
    pub fn session_started(&self) {
        self.active.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks a session as ended, recording its outcome.
    pub fn session_ended(&self, ok: bool) {
        self.active.fetch_sub(1, Ordering::Relaxed);
        if ok {
            self.completed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a governor eviction (the session also ends as failed via
    /// [`session_ended`](Self::session_ended)).
    pub fn session_evicted(&self) {
        self.evicted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a quarantined panicking session (the session also ends as
    /// failed via [`session_ended`](Self::session_ended)).
    pub fn session_panicked(&self) {
        self.panicked.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a worker respawn by the supervisor.
    pub fn worker_respawned(&self) {
        self.worker_respawns.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds a session's instrument handle to the per-phase aggregation.
    /// Finished sessions are folded into the frozen totals as a side
    /// effect, bounding live-handle growth.
    pub fn register(&self, handle: InstrumentHandle) {
        let mut agg = self.phases.lock().expect("metrics lock");
        agg.compact();
        agg.live.push(handle);
    }

    /// Point-in-time snapshot; `pool` supplies the precompute-pool gauges
    /// (pass `PoolSnapshot::default()` when no pool is attached).
    #[must_use]
    pub fn snapshot(&self, pool: PoolSnapshot) -> MetricsSnapshot {
        let agg = self.phases.lock().expect("metrics lock");
        MetricsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            worker_respawns: self.worker_respawns.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
            pool,
            phases: agg.totals(),
            tags: agg.tag_totals(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_net::{Endpoint, InstrumentedTransport, NetworkModel, Transport};

    #[test]
    fn counters_and_phase_aggregation() {
        let reg = MetricsRegistry::new();
        reg.connection_accepted();
        reg.connection_accepted();
        reg.connection_rejected();
        reg.session_started();
        reg.session_ended(true);
        reg.session_started();
        reg.session_ended(false);

        let (a, mut b) = Endpoint::pair(NetworkModel::instant());
        let mut t = InstrumentedTransport::new(a);
        reg.register(t.handle());
        t.enter_phase("online");
        t.send_u64(12345).unwrap();
        let _ = b.recv_u64().unwrap();

        let snap = reg.snapshot(PoolSnapshot::default());
        assert_eq!(snap.accepted, 2);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.active, 0);
        // One u64 frame: 1 tag byte + 8 payload bytes.
        assert_eq!(snap.phase("online").bytes_sent, 9);
        assert_eq!(snap.phase("nonexistent"), PhaseStats::default());
        // Per-tag counters exclude the tag byte.
        assert_eq!(snap.tag(abnn2_net::wire::tags::U64).bytes_sent, 8);
        assert_eq!(snap.tag(abnn2_net::wire::tags::U64).messages_sent, 1);
        assert_eq!(snap.tag(abnn2_net::wire::tags::BLOCKS), TagStats::default());
    }

    #[test]
    fn prometheus_rendering_covers_every_counter_family() {
        let reg = MetricsRegistry::new();
        reg.connection_accepted();
        reg.connection_rejected();
        reg.session_started();
        reg.session_ended(true);

        let (a, mut b) = Endpoint::pair(NetworkModel::instant());
        let mut t = InstrumentedTransport::new(a);
        reg.register(t.handle());
        t.enter_phase("online");
        t.send_u64(42).unwrap();
        let _ = b.recv_u64().unwrap();

        let text = reg.snapshot(PoolSnapshot::default()).render_prometheus();
        assert!(text.contains("abnn2_serve_connections_accepted_total 1"));
        assert!(text.contains("abnn2_serve_connections_rejected_total 1"));
        assert!(text.contains("abnn2_serve_sessions_completed_total 1"));
        assert!(text.contains("abnn2_serve_sessions_active 0"));
        // One u64 frame in the online phase: 9 bytes with the tag byte...
        assert!(
            text.contains("abnn2_serve_phase_bytes_total{phase=\"online\",direction=\"sent\"} 9")
        );
        // ...and 8 without it under the tag family, labelled by wire name.
        let tag = abnn2_net::wire::tags::U64;
        let name = abnn2_net::wire::tags::name(tag);
        assert!(text.contains(&format!(
            "abnn2_serve_tag_bytes_total{{tag=\"0x{tag:02x}\",name=\"{name}\",direction=\"sent\"}} 8"
        )));
        // Every sample line belongs to a HELPed family.
        for family in [
            "abnn2_serve_phase_messages_total",
            "abnn2_serve_tag_messages_total",
            "abnn2_serve_pool_ready",
        ] {
            assert!(text.contains(&format!("# TYPE {family} ")), "missing TYPE for {family}");
        }
    }

    #[test]
    fn finished_sessions_fold_into_frozen_totals() {
        let reg = MetricsRegistry::new();
        for _ in 0..3 {
            let (a, mut b) = Endpoint::pair(NetworkModel::instant());
            let mut t = InstrumentedTransport::new(a);
            reg.register(t.handle());
            t.enter_phase("online");
            t.send_u64(7).unwrap();
            let _ = b.recv_u64().unwrap();
            // Dropping the transport finishes its handle.
        }
        // Registration compacts; a fresh live session keeps counting.
        let (a, _b) = Endpoint::pair(NetworkModel::instant());
        let t = InstrumentedTransport::new(a);
        reg.register(t.handle());
        {
            let agg = reg.phases.lock().unwrap();
            assert_eq!(agg.live.len(), 1, "finished handles must be folded away");
            assert!(!agg.frozen.is_empty());
        }
        let snap = reg.snapshot(PoolSnapshot::default());
        assert_eq!(snap.phase("online").bytes_sent, 27);
        assert_eq!(snap.phase("online").messages_sent, 3);
        // Frozen tag totals survive compaction: 3 × 8 payload bytes.
        assert_eq!(snap.tag(abnn2_net::wire::tags::U64).bytes_sent, 24);
    }
}
