//! `abnn2-serve`: a concurrent multi-client secure-inference service.
//!
//! The protocol crates answer "how do two parties run one prediction";
//! this crate answers "how does one model holder serve *many* clients at
//! once without paying the offline phase on the critical path". Four
//! pieces:
//!
//! * [`Server`] — a TCP frontend with a bounded accept queue and a fixed
//!   set of **event-loop workers**. Each worker multiplexes up to
//!   `sessions_per_worker` live sessions, each a suspendable
//!   [`SessionDriver`](abnn2_core::driver::SessionDriver) state machine
//!   (handshake → base-OT setup → offline-or-bundle → online) fed by a
//!   non-blocking [`FrameBuffer`](abnn2_net::FrameBuffer), so peak thread
//!   count scales with workers, not connected clients. When the queue is
//!   full or the server is draining, new connections are rejected *in
//!   protocol* (a busy hello frame) so clients see a typed
//!   [`ProtocolError::Overloaded`], never a hang. Resume checkpoints live
//!   in a [`ShardedCheckpointStore`] (one shard per worker, tokens hashed
//!   to shards) reachable from any worker.
//! * [`PrecomputePool`] — a background producer thread that keeps a
//!   bounded buffer of ready offline-triplet bundle pairs per
//!   [`BundleKey`] (model digest, scheme digest, batch). The server runs
//!   one pool shard per worker; a worker takes from its own shard first
//!   and steals from siblings on a miss. A client that
//!   asks for a bundle in its hello skips the interactive offline phase
//!   entirely: the server pops a pair, sends the client half in a
//!   dedicated `"bundle"` instrumentation phase, and proceeds straight to
//!   the online phase. See DESIGN.md §6 for the dealer trust model this
//!   implies — the pool is an opt-in trade of offline latency for trust.
//! * [`GovernorConfig`] — per-session resource budgets enforced by every
//!   worker sweep (idle-park eviction, outbound-queue byte cap,
//!   plan-keyed inbound quotas) plus the supervisor rules: each session
//!   step runs under `catch_unwind` so a panicking session is
//!   quarantined — torn down, its checkpoint discarded — while its worker
//!   and sibling sessions keep running, and a supervisor thread respawns
//!   dead or wedged workers. Overload rejections carry a
//!   `retry_after_ms` hint derived from queue depth and occupancy, which
//!   [`ServeClient`] honors with bounded backoff.
//! * [`MetricsRegistry`] — thread-safe serving metrics: admission
//!   counters, live session gauge, pool hit/miss counters, and per-phase
//!   traffic aggregated across every connection's
//!   [`InstrumentHandle`](abnn2_net::InstrumentHandle).
//! * [`ServeClient`] — the matching client driver: reconnect-and-resume
//!   (shared with PR 2), warm-bundle negotiation, and a per-request
//!   [`ServeReport`] with per-phase byte counts.
//!
//! Logits are bit-identical to
//! [`QuantizedNetwork::forward_exact`](abnn2_nn::quant::QuantizedNetwork::forward_exact)
//! on every path — cold, warm, resumed, or downgraded.
//!
//! [`ProtocolError::Overloaded`]: abnn2_core::ProtocolError::Overloaded

pub mod client;
pub mod governor;
pub mod metrics;
pub mod pool;
pub mod server;

pub use abnn2_core::bundle::BundleKey;
pub use client::{ServeClient, ServeReport};
pub use governor::GovernorConfig;
pub use metrics::{MetricsRegistry, MetricsSnapshot};
pub use pool::{PoolSnapshot, PrecomputePool};
pub use server::{ServeConfig, Server, ShardedCheckpointStore};
