//! Suspendable server-side session engine (§3g of DESIGN.md).
//!
//! [`SessionDriver`] re-expresses the server side of the protocol —
//! hello/handshake → base OT → IKNP/KK13 offline → blinded-input/online →
//! output — as a resumable state machine whose only I/O is a stream of
//! [`DriverEffect`]s: frames to send, flushes, and phase marks. Inbound
//! frames are [`fed`](SessionDriver::feed) in whole; when the driver needs
//! a frame that has not arrived it parks with [`DriverStep::NeedRecv`]
//! instead of blocking a thread, which lets one event-loop worker
//! multiplex many live sessions over readiness-based I/O.
//!
//! # How suspension works
//!
//! The protocol stack (base OT, IKNP, KK13, garbled circuits) is written
//! as straight-line blocking code against the [`Transport`] trait, and
//! rewriting it in continuation-passing style would fork every
//! cryptographic code path. The driver instead exploits three properties
//! of the *server* side:
//!
//! 1. every phase is a **deterministic** function of its entry state, the
//!    RNG stream, and the prefix of inbound frames it consumes (the server
//!    phases after base-OT setup consume no randomness at all);
//! 2. all server session state ([`ServerSession`], [`ServerOffline`]) is
//!    cheaply cloneable, so each phase keeps its entry snapshot;
//! 3. the protocol is strictly turn-based, so a phase consumes a small,
//!    bounded number of frames.
//!
//! Each [`step`](SessionDriver::step) therefore *replays* the current
//! phase from its entry snapshot against the buffered inbox. A recv past
//! the end of the inbox raises [`TransportError::WouldBlock`], marks the
//! attempt starved, and parks the driver; effects performed before the
//! starvation point are externalized once and suppressed by count on the
//! next attempt. When the phase function returns `Ok`, its consumed
//! frames leave the inbox and the machine advances. The transcript this
//! produces is byte-identical to the blocking path — `tests/graph_parity.rs`
//! pins that equivalence against pre-refactor goldens — and
//! [`drive_blocking`] reimplements the blocking flow as a thin adapter
//! over the driver.

use crate::bundle::{ClientBundle, ServerBundle};
use crate::frames::Bundle;
use crate::handshake::{handshake_server_ext, HelloReply, ResumeToken, SessionParams};
use crate::inference::{SecureServer, ServerOffline};
use crate::session::ServerSession;
use crate::ProtocolError;
use abnn2_net::{CommSnapshot, Transport, TransportError};
use abnn2_ot::OfflineMode;
use rand::rngs::StdRng;
use std::sync::Arc;
use std::time::Duration;

/// Where a session's side data (parameters, resume checkpoints, warm
/// bundles) comes from. The serving layer implements this over its
/// per-worker stores; [`NullHost`] declines everything for the plain
/// blocking flow.
///
/// The driver consults each method at most once per session, during the
/// handshake phase, and only for a parameter-matched peer — so a claim or
/// take may have side effects (removal from a store) without risking
/// double consumption on replay.
pub trait SessionHost {
    /// Our session parameters for the batch size the client announced.
    fn params_for(&self, batch: usize) -> SessionParams;

    /// Claims (removes) the resume checkpoint for `token`, if held.
    fn claim_checkpoint(&self, token: &ResumeToken) -> Option<ServerBundle>;

    /// Takes a warm precomputed bundle pair matching the negotiated
    /// parameters *and offline mode*, if one is ready. Answering `Some`
    /// commits the session to sending the client half right after base-OT
    /// setup. Bundles pooled for silent sessions must never be handed to
    /// IKNP sessions (the pool keys on [`crate::bundle::BundleKey`], which
    /// includes the mode).
    fn take_bundle(
        &self,
        params: &SessionParams,
        mode: OfflineMode,
    ) -> Option<(ServerBundle, ClientBundle)>;
}

/// A host that never resumes and never deals bundles: the
/// [`SecureServer::run`] flow, where the server announces fixed
/// parameters regardless of the client's batch (a mismatch is a
/// negotiation failure, not something to adopt).
#[derive(Debug, Clone)]
pub struct NullHost {
    /// The parameters announced to every client.
    pub ours: SessionParams,
}

impl SessionHost for NullHost {
    fn params_for(&self, _batch: usize) -> SessionParams {
        self.ours
    }
    fn claim_checkpoint(&self, _token: &ResumeToken) -> Option<ServerBundle> {
        None
    }
    fn take_bundle(
        &self,
        _params: &SessionParams,
        _mode: OfflineMode,
    ) -> Option<(ServerBundle, ClientBundle)> {
        None
    }
}

/// One externally visible I/O action of a driver step, in execution
/// order. `Send` and `Flush` must be performed against the peer
/// connection; `Recv` and `Mark` are bookkeeping mirrors (a frame was
/// consumed from the inbox / the session entered an instrumentation
/// phase) so an event loop can meter per-phase traffic and arm phase
/// budgets without looking inside the protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriverEffect {
    /// Send this frame (tag byte + payload) to the peer.
    Send(Vec<u8>),
    /// Push any write-coalescing buffer down to the wire.
    Flush,
    /// The driver consumed one inbound frame with this leading tag byte
    /// and this total length (tag byte included).
    Recv {
        /// The frame's leading tag byte (0 for an empty frame).
        tag: u8,
        /// The frame's total length in bytes.
        len: usize,
    },
    /// The session entered the named instrumentation phase.
    Mark(String),
}

/// Outcome of one [`SessionDriver::step`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriverStep {
    /// Parked: the driver needs at least one more inbound frame
    /// ([`SessionDriver::feed`]) before it can advance.
    NeedRecv,
    /// The session ran to completion.
    Done,
    /// The session failed. Pending effects (e.g. the hello reply of a
    /// failed negotiation) must still be externalized.
    Failed(ProtocolError),
}

/// Deterministic replay channel: protocol code runs against the buffered
/// inbox; a recv past its end raises [`TransportError::WouldBlock`] and
/// flags starvation, and outbound traffic is captured as
/// [`DriverEffect`]s. Events performed by an earlier starved attempt of
/// the same phase are suppressed by count on replay — sound because each
/// phase is a deterministic function of its entry snapshot and the inbox
/// prefix it reads.
#[derive(Debug, Default)]
struct ReplayTransport {
    /// Buffered inbound frames; consumed only when a phase completes.
    inbox: Vec<Vec<u8>>,
    /// Next inbox index the current attempt will read.
    cursor: usize,
    /// Events already externalized by earlier attempts of this phase.
    committed: usize,
    /// Events performed so far by the current attempt.
    events: usize,
    /// Fresh effects from the current attempt, in order.
    effects: Vec<DriverEffect>,
    /// The current attempt read past the end of the inbox.
    starved: bool,
    sent: u64,
    received: u64,
    messages_sent: u64,
}

impl ReplayTransport {
    fn begin_attempt(&mut self) {
        debug_assert!(self.effects.is_empty(), "effects drained between attempts");
        self.cursor = 0;
        self.events = 0;
        self.starved = false;
    }

    /// Counts one event; returns whether it is fresh (not yet
    /// externalized by an earlier attempt) and records its effect if so.
    fn note_event(&mut self, effect: impl FnOnce() -> DriverEffect) -> bool {
        let fresh = self.events >= self.committed;
        self.events += 1;
        if fresh {
            self.effects.push(effect());
        }
        fresh
    }
}

impl Transport for ReplayTransport {
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        let len = payload.len() as u64;
        if self.note_event(|| DriverEffect::Send(payload.to_vec())) {
            self.sent += len;
            self.messages_sent += 1;
        }
        Ok(())
    }

    fn send_owned(&mut self, payload: Vec<u8>) -> Result<(), TransportError> {
        let len = payload.len() as u64;
        if self.note_event(|| DriverEffect::Send(payload)) {
            self.sent += len;
            self.messages_sent += 1;
        }
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        let Some(frame) = self.inbox.get(self.cursor) else {
            self.starved = true;
            return Err(TransportError::WouldBlock);
        };
        let frame = frame.clone();
        self.cursor += 1;
        let (tag, len) = (frame.first().copied().unwrap_or(0), frame.len());
        if self.note_event(|| DriverEffect::Recv { tag, len }) {
            self.received += len as u64;
        }
        Ok(frame)
    }

    fn flush(&mut self) -> Result<(), TransportError> {
        self.note_event(|| DriverEffect::Flush);
        Ok(())
    }

    fn snapshot(&self) -> CommSnapshot {
        CommSnapshot {
            bytes_sent: self.sent,
            bytes_received: self.received,
            messages_sent: self.messages_sent,
            vtime: Duration::ZERO,
        }
    }

    fn mark_phase(&mut self, label: &str) {
        let label = label.to_string();
        self.note_event(|| DriverEffect::Mark(label));
    }
}

/// The machine's position in the protocol. Each live variant holds the
/// entry snapshot its phase replays from.
enum State {
    Handshake,
    Setup {
        batch: usize,
        reply: HelloReply,
        claimed: Option<ServerBundle>,
        pooled: Option<(ServerBundle, ClientBundle)>,
    },
    Offline {
        session: ServerSession,
        batch: usize,
    },
    Online {
        state: ServerOffline,
    },
    Done,
    Failed(ProtocolError),
}

/// Resumable server-side protocol session. See the module docs for the
/// replay mechanics; see [`drive_blocking`] for the synchronous adapter
/// and `abnn2-serve` for the event-loop host.
pub struct SessionDriver<H: SessionHost> {
    server: Arc<SecureServer>,
    host: H,
    rng: StdRng,
    replay: ReplayTransport,
    state: State,
    token: Option<ResumeToken>,
    batch: Option<usize>,
    checkpoint: Option<ServerBundle>,
    pending: Vec<DriverEffect>,
    /// Inbox length at the last starvation, to skip no-progress replays.
    parked_at: Option<usize>,
}

impl<H: SessionHost> std::fmt::Debug for SessionDriver<H> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionDriver")
            .field("phase", &self.phase())
            .field("inbox", &self.replay.inbox.len())
            .field("pending_effects", &self.pending.len())
            .finish()
    }
}

impl<H: SessionHost> SessionDriver<H> {
    /// A driver at the start of the handshake. `rng` feeds base-OT setup
    /// (the only server phase that consumes randomness).
    #[must_use]
    pub fn new(server: Arc<SecureServer>, host: H, rng: StdRng) -> Self {
        SessionDriver {
            server,
            host,
            rng,
            replay: ReplayTransport::default(),
            state: State::Handshake,
            token: None,
            batch: None,
            checkpoint: None,
            pending: Vec::new(),
            parked_at: None,
        }
    }

    /// Buffers one complete inbound frame for the next [`step`](Self::step).
    pub fn feed(&mut self, frame: Vec<u8>) {
        self.replay.inbox.push(frame);
    }

    /// Drains the effects produced so far, in execution order. `Send` and
    /// `Flush` effects must be applied to the peer connection — including
    /// after [`DriverStep::Failed`], which may leave a negotiation reply
    /// pending.
    pub fn take_effects(&mut self) -> Vec<DriverEffect> {
        std::mem::take(&mut self.pending)
    }

    /// The resume token the client presented (known once the handshake
    /// phase has completed).
    #[must_use]
    pub fn token(&self) -> Option<ResumeToken> {
        self.token
    }

    /// The batch size the client negotiated (known once the handshake
    /// phase has completed). Serving governors key per-session resource
    /// quotas off the plan this batch selects.
    #[must_use]
    pub fn batch(&self) -> Option<usize> {
        self.batch
    }

    /// Removes and returns the connection-independent offline state a
    /// reconnecting client could resume from. The hosting layer inserts
    /// it into a checkpoint store when the session dies retryably.
    pub fn take_checkpoint(&mut self) -> Option<ServerBundle> {
        self.checkpoint.take()
    }

    /// The error a failed driver stopped with.
    #[must_use]
    pub fn error(&self) -> Option<ProtocolError> {
        match self.state {
            State::Failed(e) => Some(e),
            _ => None,
        }
    }

    /// The top-level phase the machine is in: `"handshake"`, `"setup"`,
    /// `"offline"`, `"online"`, `"done"`, or `"failed"`. Event loops key
    /// phase deadline budgets off this.
    #[must_use]
    pub fn phase(&self) -> &'static str {
        match self.state {
            State::Handshake => "handshake",
            State::Setup { .. } => "setup",
            State::Offline { .. } => "offline",
            State::Online { .. } => "online",
            State::Done => "done",
            State::Failed(_) => "failed",
        }
    }

    /// Advances the machine as far as the buffered inbox allows: phases
    /// complete and chain until one parks on a missing frame, fails, or
    /// the session finishes. Idempotent once `Done`/`Failed` is reached.
    pub fn step(&mut self) -> DriverStep {
        loop {
            match self.state {
                State::Done => return DriverStep::Done,
                State::Failed(e) => return DriverStep::Failed(e),
                _ => {}
            }
            // Replaying with no new frames since the last starvation
            // cannot make progress; skip the wasted work.
            if let Some(n) = self.parked_at {
                if self.replay.inbox.len() == n {
                    return DriverStep::NeedRecv;
                }
            }
            self.parked_at = None;

            // Each attempt runs on a clone of the RNG so a starved
            // attempt leaves the stream untouched and the replay is
            // bit-reproducible.
            let mut rng = self.rng.clone();
            self.replay.begin_attempt();
            let outcome = self.run_phase(&mut rng);
            let cursor = self.replay.cursor;
            let events = self.replay.events;
            self.pending.append(&mut self.replay.effects);
            match outcome {
                Ok(next) => {
                    self.replay.inbox.drain(..cursor);
                    self.replay.committed = 0;
                    self.rng = rng;
                    self.state = next;
                }
                Err(_) if self.replay.starved => {
                    self.replay.committed = events;
                    self.parked_at = Some(self.replay.inbox.len());
                    return DriverStep::NeedRecv;
                }
                Err(e) => {
                    self.state = State::Failed(e);
                }
            }
        }
    }

    /// Runs the current phase over the replay channel, returning the next
    /// state. Mutations of driver fields other than the replay channel
    /// happen only after the phase's last recv, so starved attempts leave
    /// the driver unchanged.
    fn run_phase(&mut self, rng: &mut StdRng) -> Result<State, ProtocolError> {
        let ch = &mut self.replay;
        match &mut self.state {
            State::Handshake => {
                ch.mark_phase("handshake");
                let host = &self.host;
                let mut claimed = None;
                let mut pooled = None;
                // The host closures run exactly once: the handshake's
                // only suspension point is its initial recv, before they
                // are consulted, and everything after that recv is
                // non-blocking.
                let (batch, token, reply) = handshake_server_ext(
                    ch,
                    |b| host.params_for(b),
                    |t| {
                        claimed = host.claim_checkpoint(t);
                        claimed.is_some()
                    },
                    |p, mode| {
                        pooled = host.take_bundle(p, mode);
                        pooled.is_some()
                    },
                )?;
                self.token = Some(token);
                self.batch = Some(batch);
                Ok(State::Setup { batch, reply, claimed, pooled })
            }
            State::Setup { batch, reply, claimed, pooled } => {
                let (batch, reply) = (*batch, *reply);
                ch.mark_phase("setup");
                let session = ServerSession::setup_with(ch, reply.mode(), rng)?;
                if reply.resume {
                    let bundle =
                        claimed.clone().expect("accepted resume implies a claimed checkpoint");
                    if bundle.batch != batch {
                        return Err(ProtocolError::Malformed("resumed checkpoint batch mismatch"));
                    }
                    self.checkpoint = Some(bundle.clone());
                    Ok(State::Online { state: ServerOffline::from_bundle(session, bundle) })
                } else if reply.bundle {
                    let (sb, cb) = pooled.clone().expect("accepted bundle implies a pooled pair");
                    ch.mark_phase("bundle");
                    ch.send_frame(&Bundle(cb.encode(self.server.model.config().ring)))?;
                    ch.flush()?;
                    let state = ServerOffline::from_bundle(session, sb);
                    self.checkpoint = Some(state.to_bundle());
                    Ok(State::Online { state })
                } else {
                    Ok(State::Offline { session, batch })
                }
            }
            State::Offline { session, batch } => {
                let batch = *batch;
                ch.mark_phase("offline");
                let state = self.server.offline_with(ch, session.clone(), batch, rng)?;
                self.checkpoint = Some(state.to_bundle());
                Ok(State::Online { state })
            }
            State::Online { state } => {
                ch.mark_phase("online");
                self.server.online(ch, state.clone())?;
                ch.flush()?;
                Ok(State::Done)
            }
            State::Done | State::Failed(_) => unreachable!("step() returns before run_phase"),
        }
    }
}

/// What a completed [`drive_frames`] run observed about the driver's
/// suspension behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DriveStats {
    /// How many times the driver parked on a missing frame and was fed
    /// one from the transport.
    pub suspensions: u32,
}

/// Runs a [`SessionDriver`] to completion over a blocking transport,
/// applying every externalized effect and feeding every parked recv. A
/// peer fault — negotiation mismatch, malformed frame, disconnect —
/// surfaces as a typed [`ProtocolError`] return; this loop never panics
/// on peer behavior. `observe` sees each effect before it is applied
/// (pass `|_| {}` when the caller does not care).
///
/// # Errors
///
/// Returns the driver's [`ProtocolError`] or any transport failure. The
/// driver's pending effects — including a negotiation reply produced
/// *after* the failure — are applied before the error is returned, so
/// the peer observes the symmetric error instead of hanging.
pub fn drive_frames<T: Transport, H: SessionHost>(
    ch: &mut T,
    driver: &mut SessionDriver<H>,
    mut observe: impl FnMut(&DriverEffect),
) -> Result<DriveStats, ProtocolError> {
    let mut stats = DriveStats::default();
    loop {
        let step = driver.step();
        for effect in driver.take_effects() {
            observe(&effect);
            match effect {
                DriverEffect::Send(bytes) => ch.send_owned(bytes)?,
                DriverEffect::Flush => ch.flush()?,
                DriverEffect::Mark(label) => ch.mark_phase(&label),
                DriverEffect::Recv { .. } => {}
            }
        }
        match step {
            DriverStep::Done => return Ok(stats),
            DriverStep::Failed(e) => return Err(e),
            DriverStep::NeedRecv => {
                stats.suspensions += 1;
                driver.feed(ch.recv()?);
            }
        }
    }
}

/// Runs a [`SessionDriver`] to completion over a blocking transport: the
/// pre-event-loop server flow, now a thin adapter over [`drive_frames`].
/// Effects map one-to-one onto transport calls, so the wire transcript is
/// byte-identical to the historical straight-line implementation.
///
/// # Errors
///
/// Returns the driver's [`ProtocolError`] or any transport failure.
pub fn drive_blocking<T: Transport, H: SessionHost>(
    ch: &mut T,
    driver: &mut SessionDriver<H>,
) -> Result<(), ProtocolError> {
    drive_frames(ch, driver, |_| {}).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handshake::handshake_client;
    use crate::inference::SecureClient;
    use abnn2_math::{FragmentScheme, Ring};
    use abnn2_net::{wire, Endpoint, NetworkModel};
    use abnn2_nn::quant::{QuantConfig, QuantizedNetwork};
    use abnn2_nn::Network;
    use rand::SeedableRng;

    fn tiny_model() -> QuantizedNetwork {
        let net = Network::new(&[10, 6, 4], 77);
        QuantizedNetwork::quantize(
            &net,
            QuantConfig {
                ring: Ring::new(32),
                frac_bits: 8,
                weight_frac_bits: 2,
                scheme: FragmentScheme::signed_bit_fields(&[2, 2]),
            },
        )
    }

    fn params_for(server: &SecureServer, batch: usize) -> SessionParams {
        let sg = server.secure_graph(batch).expect("graph");
        SessionParams::for_graph(sg.graph(), server.exec.variant, batch)
    }

    fn driver_for(server: &Arc<SecureServer>, seed: u64) -> SessionDriver<NullHost> {
        let ours = params_for(server, 1);
        SessionDriver::new(Arc::clone(server), NullHost { ours }, StdRng::seed_from_u64(seed))
    }

    /// A fresh driver with nothing fed parks immediately, emitting only
    /// the handshake phase mark, and re-stepping without new frames
    /// neither loops nor duplicates effects.
    #[test]
    fn empty_driver_parks_on_the_hello() {
        let server = Arc::new(SecureServer::new(tiny_model()));
        let mut driver = driver_for(&server, 1);
        assert_eq!(driver.step(), DriverStep::NeedRecv);
        assert_eq!(driver.take_effects(), vec![DriverEffect::Mark("handshake".into())]);
        assert_eq!(driver.phase(), "handshake");
        assert_eq!(driver.step(), DriverStep::NeedRecv);
        assert!(driver.take_effects().is_empty());
    }

    /// Frame-at-a-time event pump: every inbound frame is fed
    /// individually, so the driver suspends at each protocol recv and
    /// replays each phase many times — yet the session produces
    /// bit-exact logits and sends the hello reply exactly once.
    #[test]
    fn suspension_at_every_recv_is_bit_exact() {
        let q = tiny_model();
        let x: Vec<u64> = (0..10).map(|j| (j * 37 + 5) & 0xFFF).collect();
        let expected = q.forward_exact(&x);
        let server = Arc::new(SecureServer::new(q));
        let client = SecureClient::new(server.public_info());
        let (mut sch, mut cch) = Endpoint::pair(NetworkModel::instant());

        let (suspensions, hello_replies, y) = std::thread::scope(|scope| {
            let x2 = x.clone();
            let cli = scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(11);
                let state = client.offline(&mut cch, 1, &mut rng).expect("offline");
                client
                    .online_raw(&mut cch, state, std::slice::from_ref(&x2), &mut rng)
                    .expect("online")
            });
            let mut driver = driver_for(&server, 10);
            let mut hello_replies = 0u32;
            let stats = drive_frames(&mut sch, &mut driver, |effect| {
                if let DriverEffect::Send(bytes) = effect {
                    if bytes.first() == Some(&wire::tags::HELLO) {
                        hello_replies += 1;
                    }
                }
            })
            .expect("server");
            (stats.suspensions, hello_replies, cli.join().expect("client thread"))
        });

        assert_eq!(y.col(0), expected, "driver-served logits must equal forward_exact");
        assert_eq!(hello_replies, 1, "replay must suppress duplicate hello replies");
        // The session has real protocol depth: hello, base OTs, KK13
        // extensions, GC rounds, blinded input — each a separate park.
        assert!(suspensions >= 8, "expected many suspension points, got {suspensions}");
    }

    /// `drive_blocking` replaces the old straight-line server flow.
    #[test]
    fn drive_blocking_completes_a_session() {
        let q = tiny_model();
        let x: Vec<u64> = (0..10).map(|j| (j * 13 + 1) & 0xFFF).collect();
        let expected = q.forward_exact(&x);
        let server = Arc::new(SecureServer::new(q));
        let client = SecureClient::new(server.public_info());
        let (mut sch, mut cch) = Endpoint::pair(NetworkModel::instant());
        let y = std::thread::scope(|scope| {
            let x2 = x.clone();
            let cli = scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(21);
                let state = client.offline(&mut cch, 1, &mut rng).expect("offline");
                client
                    .online_raw(&mut cch, state, std::slice::from_ref(&x2), &mut rng)
                    .expect("online")
            });
            let mut driver = driver_for(&server, 20);
            drive_blocking(&mut sch, &mut driver).expect("server");
            cli.join().expect("client thread")
        });
        assert_eq!(y.col(0), expected);
    }

    /// A mismatched client fails negotiation on both sides: the drive
    /// loop returns the typed error — it never panics on a peer fault —
    /// and still externalizes the hello reply after `Failed` so the peer
    /// observes the symmetric error instead of hanging.
    #[test]
    fn negotiation_failure_externalizes_the_reply() {
        let server = Arc::new(SecureServer::new(tiny_model()));
        let other = SecureServer::new(QuantizedNetwork::quantize(
            &Network::new(&[10, 8, 4], 78),
            QuantConfig {
                ring: Ring::new(32),
                frac_bits: 8,
                weight_frac_bits: 2,
                scheme: FragmentScheme::signed_bit_fields(&[2, 2]),
            },
        ));
        let theirs = params_for(&other, 1);
        let (mut sch, mut cch) = Endpoint::pair(NetworkModel::instant());
        std::thread::scope(|scope| {
            let cli = scope.spawn(move || handshake_client(&mut cch, theirs, &[0u8; 16], false));
            let mut driver = driver_for(&server, 30);
            let mut sent_reply = false;
            let err = drive_frames(&mut sch, &mut driver, |effect| {
                if matches!(effect, DriverEffect::Send(_)) {
                    sent_reply = true;
                }
            })
            .expect_err("mismatched session must fail, not complete");
            assert!(matches!(err, ProtocolError::Negotiation { .. }), "server got {err}");
            assert!(sent_reply, "failed negotiation must still send the hello reply");
            assert_eq!(driver.phase(), "failed");
            let cli_err = cli.join().expect("client thread").expect_err("client must fail too");
            assert!(matches!(cli_err, ProtocolError::Negotiation { .. }), "client got {cli_err}");
        });
    }
}
