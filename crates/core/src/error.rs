//! Protocol-level error type.

use abnn2_gc::GcError;
use abnn2_net::TransportError;
use abnn2_ot::OtError;

/// Errors raised by the ABNN² protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// The peer disconnected.
    Channel,
    /// An oblivious-transfer subprotocol failed.
    Ot(OtError),
    /// A garbled-circuit subprotocol failed.
    Gc(GcError),
    /// A received message had an unexpected length or structure.
    Malformed(&'static str),
    /// Caller-supplied dimensions are inconsistent.
    Dimension(&'static str),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Channel => write!(f, "peer disconnected during protocol"),
            ProtocolError::Ot(e) => write!(f, "oblivious transfer failed: {e}"),
            ProtocolError::Gc(e) => write!(f, "garbled circuit failed: {e}"),
            ProtocolError::Malformed(what) => write!(f, "malformed protocol message: {what}"),
            ProtocolError::Dimension(what) => write!(f, "dimension mismatch: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Ot(e) => Some(e),
            ProtocolError::Gc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransportError> for ProtocolError {
    fn from(e: TransportError) -> Self {
        match e {
            TransportError::Closed => ProtocolError::Channel,
            TransportError::Malformed(what) => ProtocolError::Malformed(what),
        }
    }
}

impl From<OtError> for ProtocolError {
    fn from(e: OtError) -> Self {
        ProtocolError::Ot(e)
    }
}

impl From<GcError> for ProtocolError {
    fn from(e: GcError) -> Self {
        ProtocolError::Gc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        assert_eq!(ProtocolError::from(TransportError::Closed), ProtocolError::Channel);
        assert_eq!(
            ProtocolError::from(TransportError::Malformed("u64 message length")),
            ProtocolError::Malformed("u64 message length")
        );
        let e = ProtocolError::from(OtError::InvalidPoint);
        assert!(e.to_string().contains("oblivious transfer"));
        assert!(std::error::Error::source(&e).is_some());
        let e = ProtocolError::from(GcError::Channel);
        assert!(matches!(e, ProtocolError::Gc(_)));
        assert!(ProtocolError::Dimension("batch").to_string().contains("batch"));
    }
}
