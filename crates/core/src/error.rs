//! Protocol-level error type.

use crate::handshake::SessionParams;
use abnn2_gc::GcError;
use abnn2_net::TransportError;
use abnn2_ot::OtError;

/// Errors raised by the ABNN² protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// The peer disconnected.
    Channel,
    /// The peer went silent past the configured transport deadline.
    TimedOut,
    /// An oblivious-transfer subprotocol failed.
    Ot(OtError),
    /// A garbled-circuit subprotocol failed.
    Gc(GcError),
    /// The session handshake frame itself was unreadable (wrong magic,
    /// wrong length): the peer is not speaking this protocol at all.
    Handshake(&'static str),
    /// The handshake completed but the two parties want incompatible
    /// sessions; both views are carried so either side can log the delta.
    Negotiation {
        /// The parameters this party proposed.
        ours: SessionParams,
        /// The parameters the peer proposed.
        theirs: SessionParams,
    },
    /// A received message had an unexpected length or structure.
    Malformed(&'static str),
    /// Caller-supplied dimensions are inconsistent.
    Dimension(&'static str),
    /// The server refused admission: its accept queue is full or it is
    /// draining for shutdown. Deliberately *not* retryable under the
    /// resilient drivers' immediate reconnect loop — hammering an
    /// overloaded server makes the overload worse; callers that want to
    /// retry should wait at least the server's hint first.
    Overloaded {
        /// Server-suggested wait before the next admission attempt,
        /// derived from its live-session occupancy and precompute-pool
        /// depth. `0` means the server offered no hint (e.g. an older
        /// peer); callers fall back to their own backoff.
        retry_after_ms: u32,
    },
}

impl ProtocolError {
    /// Whether reconnecting and retrying could plausibly clear the error:
    /// transient link conditions (`Channel`, `TimedOut`, and their nested
    /// OT/GC counterparts) are retryable; protocol violations, negotiation
    /// failures, and caller bugs are fatal.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        match self {
            ProtocolError::Channel | ProtocolError::TimedOut => true,
            ProtocolError::Ot(e) => e.is_retryable(),
            ProtocolError::Gc(e) => e.is_retryable(),
            ProtocolError::Handshake(_)
            | ProtocolError::Negotiation { .. }
            | ProtocolError::Malformed(_)
            | ProtocolError::Dimension(_)
            | ProtocolError::Overloaded { .. } => false,
        }
    }
}

impl abnn2_net::Retryable for ProtocolError {
    fn is_retryable(&self) -> bool {
        ProtocolError::is_retryable(self)
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Channel => write!(f, "peer disconnected during protocol"),
            ProtocolError::TimedOut => write!(f, "peer silent past deadline during protocol"),
            ProtocolError::Ot(e) => write!(f, "oblivious transfer failed: {e}"),
            ProtocolError::Gc(e) => write!(f, "garbled circuit failed: {e}"),
            ProtocolError::Handshake(what) => write!(f, "handshake failed: {what}"),
            ProtocolError::Negotiation { ours, theirs } => write!(
                f,
                "session negotiation failed: we proposed {ours:?}, peer proposed {theirs:?}"
            ),
            ProtocolError::Malformed(what) => write!(f, "malformed protocol message: {what}"),
            ProtocolError::Dimension(what) => write!(f, "dimension mismatch: {what}"),
            ProtocolError::Overloaded { retry_after_ms } => {
                write!(
                    f,
                    "server refused admission (overloaded or draining; retry after {retry_after_ms} ms)"
                )
            }
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Ot(e) => Some(e),
            ProtocolError::Gc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransportError> for ProtocolError {
    fn from(e: TransportError) -> Self {
        match e {
            TransportError::Closed => ProtocolError::Channel,
            // WouldBlock is an event-loop starvation signal; the session
            // driver intercepts it before it can escape, so mapping the
            // stray case to the retryable TimedOut is honest.
            TransportError::TimedOut | TransportError::WouldBlock => ProtocolError::TimedOut,
            TransportError::Malformed(what) => ProtocolError::Malformed(what),
        }
    }
}

impl From<OtError> for ProtocolError {
    fn from(e: OtError) -> Self {
        ProtocolError::Ot(e)
    }
}

impl From<GcError> for ProtocolError {
    fn from(e: GcError) -> Self {
        ProtocolError::Gc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        assert_eq!(ProtocolError::from(TransportError::Closed), ProtocolError::Channel);
        assert_eq!(
            ProtocolError::from(TransportError::Malformed("u64 message length")),
            ProtocolError::Malformed("u64 message length")
        );
        let e = ProtocolError::from(OtError::InvalidPoint);
        assert!(e.to_string().contains("oblivious transfer"));
        assert!(std::error::Error::source(&e).is_some());
        let e = ProtocolError::from(GcError::Channel);
        assert!(matches!(e, ProtocolError::Gc(_)));
        assert!(ProtocolError::Dimension("batch").to_string().contains("batch"));
        assert_eq!(ProtocolError::from(TransportError::TimedOut), ProtocolError::TimedOut);
    }

    #[test]
    fn retryability_tracks_transience() {
        use crate::handshake::SessionParams;
        use crate::inference::PublicModelInfo;
        use crate::relu::ReluVariant;
        use abnn2_math::{FragmentScheme, Ring};
        use abnn2_nn::quant::QuantConfig;

        assert!(ProtocolError::Channel.is_retryable());
        assert!(ProtocolError::TimedOut.is_retryable());
        assert!(ProtocolError::Ot(OtError::TimedOut).is_retryable());
        assert!(ProtocolError::Gc(GcError::Ot(OtError::Channel)).is_retryable());
        assert!(!ProtocolError::Ot(OtError::InvalidPoint).is_retryable());
        assert!(!ProtocolError::Malformed("x").is_retryable());
        assert!(!ProtocolError::Dimension("x").is_retryable());
        assert!(!ProtocolError::Handshake("bad magic").is_retryable());

        let info = PublicModelInfo {
            dims: vec![4, 2],
            config: QuantConfig {
                ring: Ring::new(32),
                frac_bits: 8,
                weight_frac_bits: 4,
                scheme: FragmentScheme::binary(),
            },
        };
        let p = SessionParams::for_model(&info, ReluVariant::Oblivious, 1);
        let e = ProtocolError::Negotiation { ours: p, theirs: p };
        assert!(!e.is_retryable());
        assert!(e.to_string().contains("negotiation"));
    }
}
