//! ABNN²: secure two-party arbitrary-bitwidth quantized NN predictions.
//!
//! This crate implements the paper's contribution on top of the substrate
//! crates (`abnn2-ot`, `abnn2-gc`, `abnn2-net`, `abnn2-nn`):
//!
//! * [`sharing`] — additive secret sharing over ℤ_{2^ℓ} (§2.3),
//! * [`matmul`] — the quantized matrix-multiplication triplet protocols of
//!   §4.1: the fragment-wise 1-out-of-N OT method, the **multi-batch**
//!   message packing (§4.1.2), and the **one-batch** correlated-OT trick
//!   that sends N−1 instead of N messages (§4.1.3),
//! * [`relu`] — the online activation protocols of §4.2: Algorithm 2 (fully
//!   oblivious) and the optimized comparison-first ReLU,
//! * [`graph`] — the secure planner and executor over the
//!   [`abnn2_nn::LayerGraph`] IR: one offline plan and one online walk
//!   shared by every served topology (MLP and CNN),
//! * [`inference`] — the end-to-end offline/online pipeline of Fig 2, as
//!   thin adapters over [`graph`],
//! * [`complexity`] — the closed-form OT/communication counts of Table 1,
//! * [`handshake`] — the versioned session hello exchanged before any base
//!   OT, turning configuration mismatches into typed
//!   [`ProtocolError::Negotiation`] errors at connect time,
//! * [`driver`] — the suspendable session engine: the server-side
//!   protocol re-expressed as a resumable state machine
//!   ([`driver::SessionDriver`]) whose only I/O is an effect stream, so
//!   one event-loop thread can multiplex many sessions over
//!   readiness-based I/O, with the blocking path a thin
//!   [`driver::drive_blocking`] adapter,
//! * [`resilient`] — reconnect-and-resume drivers that checkpoint the
//!   offline phase and replay the online phase after a connection loss,
//!   producing logits bit-identical to an uninterrupted run,
//! * [`bundle`] — portable offline-phase state ([`ServerBundle`] /
//!   [`ClientBundle`]) keyed by [`BundleKey`], plus [`dealer_bundle`]
//!   dealer-mode generation — the substrate for `abnn2-serve`'s precompute
//!   pool and for cross-connection resume checkpoints.
//!
//! # Quick example
//!
//! See `examples/quickstart.rs` at the workspace root; the short version:
//! quantize a trained [`abnn2_nn::Network`], hand the quantized model to
//! [`inference::SecureServer`] and the public
//! [`inference::PublicModelInfo`] to [`inference::SecureClient`], connect
//! them with [`abnn2_net::run_pair`], and the client learns exactly the
//! logits of [`abnn2_nn::QuantizedNetwork::forward_exact`] — while neither
//! party sees the other's data.

pub mod argmax;
pub mod beaver;
pub mod bundle;
pub mod cnn;
pub mod complexity;
pub mod config;
pub mod driver;
pub mod error;
pub mod frames;
pub mod graph;
pub mod handshake;
pub mod inference;
pub mod matbeaver;
pub mod matmul;
pub mod nonlinear;
pub mod relu;
pub mod resilient;
pub mod session;
pub mod sharing;

/// Offline OT-extension backend selection, re-exported for frontends
/// that key pools and negotiate capability without depending on
/// `abnn2-ot` directly.
pub use abnn2_ot::OfflineMode;
pub use bundle::{
    dealer_bundle, dealer_bundle_for, BundleKey, ClientBundle, ServerBundle, BUNDLE_LAYOUT_VERSION,
};
pub use config::{ExecConfig, SessionDeadlines};
pub use driver::{
    drive_blocking, drive_frames, DriveStats, DriverEffect, DriverStep, NullHost, SessionDriver,
    SessionHost,
};
pub use error::ProtocolError;
pub use graph::{CommCeiling, PublicModel, SecureGraph, ServedModel, TripletPlan};
pub use handshake::{HelloReply, HelloRequest, ResumeToken, SessionParams, PROTOCOL_VERSION};
pub use inference::{PublicModelInfo, PublicTransformerInfo, SecureClient, SecureServer};
pub use matbeaver::MatrixTriple;
pub use matmul::TripletMode;
pub use relu::ReluVariant;
pub use resilient::{CheckpointStore, ResilientClient, ResilientServer, RunReport};
pub use session::{ClientSession, ServerSession};
