//! Reconnect-and-resume drivers for secure inference.
//!
//! The offline phase is by far the expensive part of an ABNN² prediction
//! (per-layer dot-product triplets via 1-out-of-N OT); the per-connection
//! session setup (base OTs) and the online phase are cheap. The resilient
//! drivers exploit that asymmetry: when a connection dies mid-protocol,
//! they checkpoint the *triplet shares* — plain ring elements with no
//! connection-bound state — reconnect under a capped-backoff
//! [`RetryPolicy`], re-run the handshake presenting a session-resume
//! token, redo only the cheap base-OT setup, and replay the online phase.
//! Because the online outputs are a deterministic function of the triplets
//! and the input (GC label randomness never reaches the opened shares),
//! the resumed run produces logits bit-identical to an uninterrupted one.
//!
//! Failure handling is strictly typed: transient errors
//! ([`ProtocolError::is_retryable`]) trigger reconnection until the policy
//! is exhausted; fatal ones ([`ProtocolError::Negotiation`],
//! [`ProtocolError::Malformed`], …) abort immediately. A peer that answers
//! a resume request with "unknown token" (it lost its checkpoint) is not
//! an error — the client falls back to a fresh offline phase on the same
//! connection.

use crate::config::SessionDeadlines;
use crate::handshake::{handshake_client, handshake_server, ResumeToken, SessionParams};
use crate::inference::{ClientOffline, SecureClient, SecureServer, ServerOffline};
use crate::session::{ClientSession, ServerSession};
use crate::ProtocolError;
use abnn2_math::Matrix;
use abnn2_net::{ResilientDriver, RetryPolicy, Transport, TransportError};
use rand::Rng;

/// Outcome summary of a resilient run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Connection attempts consumed (1 = no failure).
    pub attempts: u32,
    /// Whether any attempt resumed from a checkpoint instead of running a
    /// fresh offline phase.
    pub resumed: bool,
}

fn apply_read_timeout<T: Transport>(
    ch: &mut T,
    deadlines: &SessionDeadlines,
) -> Result<(), TransportError> {
    ch.set_read_timeout(deadlines.read_timeout)
}

/// Client-side resilient driver: wraps a [`SecureClient`] with
/// reconnection, deadlines, and offline-phase checkpointing.
#[derive(Debug, Clone)]
pub struct ResilientClient {
    client: SecureClient,
    policy: RetryPolicy,
    deadlines: SessionDeadlines,
}

impl ResilientClient {
    /// Wraps `client` with the default retry policy and LAN deadlines.
    #[must_use]
    pub fn new(client: SecureClient) -> Self {
        ResilientClient {
            client,
            policy: RetryPolicy::default(),
            deadlines: SessionDeadlines::lan(),
        }
    }

    /// Replaces the retry policy.
    #[must_use]
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the deadline budget.
    #[must_use]
    pub fn with_deadlines(mut self, deadlines: SessionDeadlines) -> Self {
        self.deadlines = deadlines;
        self
    }

    /// Runs one batch of predictions over connections minted by `connect`,
    /// reconnecting and resuming as needed. Returns the raw logits (ring
    /// elements, `out_dim × batch`) plus a [`RunReport`].
    ///
    /// `connect(attempt)` is called once per attempt (0-based) and must
    /// return a fresh transport to the same server.
    ///
    /// # Errors
    ///
    /// The first fatal [`ProtocolError`], or the last transient one once
    /// the retry policy is exhausted.
    pub fn run_raw<T, C, R>(
        &self,
        connect: C,
        inputs_fp: &[Vec<u64>],
        rng: &mut R,
    ) -> Result<(Matrix, RunReport), ProtocolError>
    where
        T: Transport,
        C: FnMut(u32) -> Result<T, TransportError>,
        R: Rng + ?Sized,
    {
        let batch = inputs_fp.len();
        if batch == 0 {
            return Err(ProtocolError::Dimension("batch must be positive"));
        }
        let ours = SessionParams::for_model(&self.client.info, self.client.exec.variant, batch);
        let mut token: ResumeToken = [0; 16];
        rng.fill(&mut token);

        // Checkpoint of a completed offline phase: client randomness R and
        // triplet shares V per layer. Survives reconnects by construction.
        let mut checkpoint: Option<(Vec<Matrix>, Vec<Matrix>)> = None;
        let mut attempts = 0u32;
        let mut resumed = false;

        let driver = ResilientDriver::new(self.policy);
        let logits = driver.run(connect, |ch, attempt| -> Result<Matrix, ProtocolError> {
            attempts = attempt + 1;
            apply_read_timeout(ch, &self.deadlines)?;

            let want_resume = checkpoint.is_some();
            let accepted = handshake_client(ch, ours, &token, want_resume)?;

            ch.set_phase_budget(self.deadlines.offline_budget)?;
            let state = if accepted {
                resumed = true;
                let (rs, vs) = checkpoint.clone().expect("resume implies checkpoint");
                let session = ClientSession::setup(ch, rng)?;
                ClientOffline::from_parts(session, rs, vs, batch)
            } else {
                // Server has no matching checkpoint (fresh run, or it lost
                // state): drop ours and pay for a full offline phase.
                checkpoint = None;
                let state = self.client.offline_after_handshake(ch, batch, rng)?;
                checkpoint = Some((state.rs.clone(), state.vs.clone()));
                state
            };

            ch.set_phase_budget(self.deadlines.online_budget)?;
            let y = self.client.online_raw(ch, state, inputs_fp, rng)?;
            ch.set_phase_budget(None)?;
            Ok(y)
        })?;
        Ok((logits, RunReport { attempts, resumed }))
    }
}

/// Server-side resilient driver: accepts reconnections for one logical
/// prediction job, checkpointing its triplet shares between attempts.
#[derive(Debug)]
pub struct ResilientServer {
    server: SecureServer,
    policy: RetryPolicy,
    deadlines: SessionDeadlines,
}

impl ResilientServer {
    /// Wraps `server` with the default retry policy and LAN deadlines.
    #[must_use]
    pub fn new(server: SecureServer) -> Self {
        ResilientServer {
            server,
            policy: RetryPolicy::default(),
            deadlines: SessionDeadlines::lan(),
        }
    }

    /// Replaces the retry policy.
    #[must_use]
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the deadline budget.
    #[must_use]
    pub fn with_deadlines(mut self, deadlines: SessionDeadlines) -> Self {
        self.deadlines = deadlines;
        self
    }

    /// Serves one prediction job to completion across reconnections minted
    /// by `accept`.
    ///
    /// # Errors
    ///
    /// The first fatal [`ProtocolError`], or the last transient one once
    /// the retry policy is exhausted.
    pub fn serve_one<T, C, R>(&self, accept: C, rng: &mut R) -> Result<RunReport, ProtocolError>
    where
        T: Transport,
        C: FnMut(u32) -> Result<T, TransportError>,
        R: Rng + ?Sized,
    {
        self.serve_one_with(accept, |_ch: &mut T, _attempt| {}, rng)
    }

    /// [`serve_one`](Self::serve_one) with a hook invoked after the offline
    /// phase of each attempt, before the online phase begins. Chaos and
    /// resume tests use the hook to arm transport faults at a protocol
    /// point that cannot be addressed by a hardcoded message index.
    ///
    /// # Errors
    ///
    /// The first fatal [`ProtocolError`], or the last transient one once
    /// the retry policy is exhausted.
    pub fn serve_one_with<T, C, H, R>(
        &self,
        accept: C,
        mut after_offline: H,
        rng: &mut R,
    ) -> Result<RunReport, ProtocolError>
    where
        T: Transport,
        C: FnMut(u32) -> Result<T, TransportError>,
        H: FnMut(&mut T, u32),
        R: Rng + ?Sized,
    {
        // Checkpoint of a completed offline phase, keyed by the client's
        // resume token: triplet shares U per layer plus the batch size.
        let mut checkpoint: Option<(ResumeToken, Vec<Matrix>, usize)> = None;
        let mut attempts = 0u32;
        let mut resumed = false;

        let driver = ResilientDriver::new(self.policy);
        driver.run(accept, |ch, attempt| -> Result<(), ProtocolError> {
            attempts = attempt + 1;
            apply_read_timeout(ch, &self.deadlines)?;

            let info = self.server.public_info();
            let (batch, token, resume_ok) = handshake_server(
                ch,
                // Adopt the client's announced batch: the server side of a
                // prediction service has no a-priori batch expectation.
                |b| SessionParams::for_model(&info, self.server.exec.variant, b),
                |t| checkpoint.as_ref().is_some_and(|(ct, _, _)| ct == t),
            )?;

            ch.set_phase_budget(self.deadlines.offline_budget)?;
            let state = if resume_ok {
                resumed = true;
                let (_, us, ck_batch) = checkpoint.as_ref().expect("resume implies checkpoint");
                let session = ServerSession::setup(ch, rng)?;
                ServerOffline::from_parts(session, us.clone(), *ck_batch)
            } else {
                checkpoint = None;
                let state = self.server.offline_after_handshake(ch, batch, rng)?;
                checkpoint = Some((token, state.us.clone(), batch));
                state
            };

            after_offline(ch, attempt);

            ch.set_phase_budget(self.deadlines.online_budget)?;
            self.server.online(ch, state)?;
            ch.set_phase_budget(None)?;
            Ok(())
        })?;
        Ok(RunReport { attempts, resumed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_math::{FragmentScheme, Ring};
    use abnn2_net::{sim_link, Fault, FaultyTransport, NetworkModel};
    use abnn2_nn::quant::{QuantConfig, QuantizedNetwork};
    use abnn2_nn::{Network, SyntheticMnist};
    use rand::SeedableRng;
    use std::time::Duration;

    fn tiny_model(seed: u64) -> QuantizedNetwork {
        let data = SyntheticMnist::generate(40, 0, seed);
        let mut net = Network::new(&[784, 6, 4, 10], seed);
        net.train_epoch(&data.train, 0.05);
        let config = QuantConfig {
            ring: Ring::new(32),
            frac_bits: 8,
            weight_frac_bits: 4,
            scheme: FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]),
        };
        QuantizedNetwork::quantize(&net, config)
    }

    fn sample_inputs(q: &QuantizedNetwork, batch: usize, seed: u64) -> Vec<Vec<u64>> {
        let data = SyntheticMnist::generate(batch, 0, seed);
        let codec = q.config.activation_codec();
        data.train.iter().take(batch).map(|s| codec.encode_vec(&s.pixels)).collect()
    }

    fn fast_deadlines() -> SessionDeadlines {
        SessionDeadlines::uniform(Duration::from_secs(2))
    }

    #[test]
    fn no_failure_single_attempt() {
        let q = tiny_model(90);
        let inputs = sample_inputs(&q, 1, 91);
        let expected = q.forward_exact(&inputs[0]);

        let (dialer, listener) = sim_link(NetworkModel::instant());
        let server = ResilientServer::new(SecureServer::new(q))
            .with_policy(RetryPolicy::no_delay(2))
            .with_deadlines(fast_deadlines());
        let client = ResilientClient::new(SecureClient::new(server.server.public_info()))
            .with_policy(RetryPolicy::no_delay(2))
            .with_deadlines(fast_deadlines());

        std::thread::scope(|scope| {
            let srv = scope.spawn(move || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(92);
                server.serve_one(|_| listener.accept_timeout(Duration::from_secs(5)), &mut rng)
            });
            let mut rng = rand::rngs::StdRng::seed_from_u64(93);
            let (y, report) = client.run_raw(|_| dialer.dial(), &inputs, &mut rng).unwrap();
            assert_eq!(y.col(0), expected);
            assert_eq!(report, RunReport { attempts: 1, resumed: false });
            let srv_report = srv.join().unwrap().unwrap();
            assert_eq!(srv_report, RunReport { attempts: 1, resumed: false });
        });
    }

    #[test]
    fn mid_online_cut_resumes_with_identical_logits() {
        let q = tiny_model(94);
        let inputs = sample_inputs(&q, 2, 95);
        let expected: Vec<Vec<u64>> = inputs.iter().map(|x| q.forward_exact(x)).collect();

        let (dialer, listener) = sim_link(NetworkModel::instant());
        let server = ResilientServer::new(SecureServer::new(q))
            .with_policy(RetryPolicy::no_delay(3))
            .with_deadlines(fast_deadlines());
        let client = ResilientClient::new(SecureClient::new(server.server.public_info()))
            .with_policy(RetryPolicy::no_delay(3))
            .with_deadlines(fast_deadlines());

        std::thread::scope(|scope| {
            let srv = scope.spawn(move || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(96);
                server.serve_one_with(
                    |_| {
                        listener
                            .accept_timeout(Duration::from_secs(5))
                            .map(|ep| FaultyTransport::new(ep, Fault::None))
                    },
                    |ch, attempt| {
                        if attempt == 0 {
                            // Cut the connection two messages into the
                            // online phase of the first attempt only.
                            ch.set_fault(Fault::CutAfterMessages(ch.sends() + 2));
                        }
                    },
                    &mut rng,
                )
            });
            let mut rng = rand::rngs::StdRng::seed_from_u64(97);
            let (y, report) = client.run_raw(|_| dialer.dial(), &inputs, &mut rng).unwrap();
            for (k, exp) in expected.iter().enumerate() {
                assert_eq!(&y.col(k), exp, "sample {k} must match forward_exact after resume");
            }
            assert!(report.attempts >= 2, "client must have reconnected");
            assert!(report.resumed, "client must have resumed from checkpoint");
            let srv_report = srv.join().unwrap().unwrap();
            assert!(srv_report.resumed, "server must have accepted the resume token");
        });
    }

    #[test]
    fn retry_budget_exhaustion_reports_last_error() {
        let q = tiny_model(98);
        let inputs = sample_inputs(&q, 1, 99);
        let client =
            ResilientClient::new(SecureClient::new(crate::inference::PublicModelInfo::from(&q)))
                .with_policy(RetryPolicy::no_delay(2))
                .with_deadlines(fast_deadlines());

        let mut rng = rand::rngs::StdRng::seed_from_u64(100);
        let err = client
            .run_raw(|_| Err::<abnn2_net::Endpoint, _>(TransportError::Closed), &inputs, &mut rng)
            .unwrap_err();
        assert_eq!(err, ProtocolError::Channel);
    }
}
