//! Reconnect-and-resume drivers for secure inference.
//!
//! The offline phase is by far the expensive part of an ABNN² prediction
//! (per-layer dot-product triplets via 1-out-of-N OT); the per-connection
//! session setup (base OTs) and the online phase are cheap. The resilient
//! drivers exploit that asymmetry: when a connection dies mid-protocol,
//! they checkpoint the *triplet shares* — plain ring elements with no
//! connection-bound state — reconnect under a capped-backoff
//! [`RetryPolicy`], re-run the handshake presenting a session-resume
//! token, redo only the cheap base-OT setup, and replay the online phase.
//! Because the online outputs are a deterministic function of the triplets
//! and the input (GC label randomness never reaches the opened shares),
//! the resumed run produces logits bit-identical to an uninterrupted one.
//!
//! Failure handling is strictly typed: transient errors
//! ([`ProtocolError::is_retryable`]) trigger reconnection until the policy
//! is exhausted; fatal ones ([`ProtocolError::Negotiation`],
//! [`ProtocolError::Malformed`], …) abort immediately. A peer that answers
//! a resume request with "unknown token" (it lost its checkpoint) is not
//! an error — the client falls back to a fresh offline phase on the same
//! connection.

use crate::bundle::{ClientBundle, ServerBundle};
use crate::config::SessionDeadlines;
use crate::handshake::{
    handshake_client_ext, handshake_server_ext, HelloRequest, ResumeToken, SessionParams,
};
use crate::inference::{ClientOffline, SecureClient, SecureServer, ServerOffline};
use crate::session::{ClientSession, ServerSession};
use crate::ProtocolError;
use abnn2_math::Matrix;
use abnn2_net::{ResilientDriver, RetryPolicy, Transport, TransportError};
use rand::Rng;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Outcome summary of a resilient run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Connection attempts consumed (1 = no failure).
    pub attempts: u32,
    /// Whether any attempt resumed from a checkpoint instead of running a
    /// fresh offline phase.
    pub resumed: bool,
}

/// Default checkpoint capacity for a [`ResilientServer`]'s store.
pub const DEFAULT_CHECKPOINT_CAPACITY: usize = 256;

/// Bounded, thread-safe store of server-side offline checkpoints, keyed by
/// the client's resume token.
///
/// A long-running server accumulates checkpoints from every interrupted
/// session; without a bound that is an unbounded memory leak driven by
/// remote behavior. The store enforces a hard `capacity`: inserting beyond
/// it evicts the least-recently-used entry. An evicted token simply
/// downgrades the client's next resume attempt to a fresh offline run —
/// exactly the path a stale token already takes — so eviction is always
/// safe, never an error.
///
/// Resume claims are **single-use and atomic**: [`claim`](Self::claim)
/// removes the entry, so two concurrent connections presenting the same
/// token can never both resume from (and interleave over) the same
/// checkpointed triplets — the loser of the race runs a fresh offline
/// phase. The entry is re-inserted only when the session later fails
/// *retryably* (the client will be back); while a session is live its
/// checkpoint is out of the store, which is what closes the duplicate
/// window, and on success it is gone for good.
#[derive(Debug)]
pub struct CheckpointStore {
    inner: Mutex<StoreInner>,
}

#[derive(Debug)]
struct StoreInner {
    /// token → (recency stamp, checkpointed bundle).
    entries: HashMap<ResumeToken, (u64, ServerBundle)>,
    /// Monotonic recency counter.
    clock: u64,
    capacity: usize,
}

impl CheckpointStore {
    /// Creates a store holding at most `capacity` checkpoints.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "checkpoint capacity must be positive");
        CheckpointStore {
            inner: Mutex::new(StoreInner { entries: HashMap::new(), clock: 0, capacity }),
        }
    }

    /// Inserts (or replaces) the checkpoint for `token`, evicting the
    /// least-recently-used entry if the store is at capacity.
    pub fn insert(&self, token: ResumeToken, bundle: ServerBundle) {
        let mut inner = self.inner.lock().expect("checkpoint lock");
        inner.clock += 1;
        let stamp = inner.clock;
        inner.entries.insert(token, (stamp, bundle));
        while inner.entries.len() > inner.capacity {
            let oldest = inner
                .entries
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(t, _)| *t)
                .expect("non-empty over capacity");
            inner.entries.remove(&oldest);
        }
    }

    /// Atomically removes and returns the checkpoint for `token`, if the
    /// store still holds it. At most one of any number of concurrent
    /// claimants succeeds.
    #[must_use]
    pub fn claim(&self, token: &ResumeToken) -> Option<ServerBundle> {
        self.inner.lock().expect("checkpoint lock").entries.remove(token).map(|(_, b)| b)
    }

    /// Drops the checkpoint for `token`, if present (end-of-job cleanup).
    pub fn remove(&self, token: &ResumeToken) {
        self.inner.lock().expect("checkpoint lock").entries.remove(token);
    }

    /// Whether the store currently holds `token` (refreshes its recency).
    #[must_use]
    pub fn contains(&self, token: &ResumeToken) -> bool {
        let mut inner = self.inner.lock().expect("checkpoint lock");
        inner.clock += 1;
        let stamp = inner.clock;
        match inner.entries.get_mut(token) {
            Some(entry) => {
                entry.0 = stamp;
                true
            }
            None => false,
        }
    }

    /// Number of checkpoints currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("checkpoint lock").entries.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn apply_read_timeout<T: Transport>(
    ch: &mut T,
    deadlines: &SessionDeadlines,
) -> Result<(), TransportError> {
    ch.set_read_timeout(deadlines.read_timeout)
}

/// Client-side resilient driver: wraps a [`SecureClient`] with
/// reconnection, deadlines, and offline-phase checkpointing.
#[derive(Debug, Clone)]
pub struct ResilientClient {
    client: SecureClient,
    policy: RetryPolicy,
    deadlines: SessionDeadlines,
}

impl ResilientClient {
    /// Wraps `client` with the default retry policy and LAN deadlines.
    #[must_use]
    pub fn new(client: SecureClient) -> Self {
        ResilientClient {
            client,
            policy: RetryPolicy::default(),
            deadlines: SessionDeadlines::lan(),
        }
    }

    /// Replaces the retry policy.
    #[must_use]
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the deadline budget.
    #[must_use]
    pub fn with_deadlines(mut self, deadlines: SessionDeadlines) -> Self {
        self.deadlines = deadlines;
        self
    }

    /// Runs one batch of predictions over connections minted by `connect`,
    /// reconnecting and resuming as needed. Returns the raw logits (ring
    /// elements, `out_dim × batch`) plus a [`RunReport`].
    ///
    /// `connect(attempt)` is called once per attempt (0-based) and must
    /// return a fresh transport to the same server.
    ///
    /// # Errors
    ///
    /// The first fatal [`ProtocolError`], or the last transient one once
    /// the retry policy is exhausted.
    pub fn run_raw<T, C, R>(
        &self,
        connect: C,
        inputs_fp: &[Vec<u64>],
        rng: &mut R,
    ) -> Result<(Matrix, RunReport), ProtocolError>
    where
        T: Transport,
        C: FnMut(u32) -> Result<T, TransportError>,
        R: Rng + ?Sized,
    {
        let batch = inputs_fp.len();
        if batch == 0 {
            return Err(ProtocolError::Dimension("batch must be positive"));
        }
        let ours = SessionParams::for_public(&self.client.model, self.client.exec.variant, batch);
        let mut token: ResumeToken = [0; 16];
        rng.fill(&mut token);

        // Checkpoint of a completed offline phase: client randomness R and
        // triplet shares V per layer. Survives reconnects by construction.
        let mut checkpoint: Option<ClientBundle> = None;
        let mut attempts = 0u32;
        let mut resumed = false;

        let driver = ResilientDriver::new(self.policy);
        let logits = driver.run(connect, |ch, attempt| -> Result<Matrix, ProtocolError> {
            attempts = attempt + 1;
            apply_read_timeout(ch, &self.deadlines)?;

            let want_resume = checkpoint.is_some();
            let request = HelloRequest {
                resume: want_resume,
                silent: self.client.silent,
                ..HelloRequest::default()
            };
            let reply = handshake_client_ext(ch, ours, &token, request)?;

            ch.set_phase_budget(self.deadlines.offline_budget)?;
            let state = if reply.resume {
                resumed = true;
                let bundle = checkpoint.clone().expect("resume implies checkpoint");
                let session = ClientSession::setup_with(ch, reply.mode(), rng)?;
                ClientOffline::from_bundle(session, bundle)
            } else {
                // Server has no matching checkpoint (fresh run, or it lost
                // state): drop ours and pay for a full offline phase.
                checkpoint = None;
                let state = self.client.offline_after_handshake(ch, batch, reply.mode(), rng)?;
                checkpoint = Some(state.to_bundle());
                state
            };

            ch.set_phase_budget(self.deadlines.online_budget)?;
            let y = self.client.online_raw(ch, state, inputs_fp, rng)?;
            ch.set_phase_budget(None)?;
            Ok(y)
        })?;
        Ok((logits, RunReport { attempts, resumed }))
    }
}

/// Server-side resilient driver: accepts reconnections for one logical
/// prediction job, checkpointing its triplet shares between attempts in a
/// bounded, shareable [`CheckpointStore`].
#[derive(Debug)]
pub struct ResilientServer {
    server: SecureServer,
    policy: RetryPolicy,
    deadlines: SessionDeadlines,
    store: Arc<CheckpointStore>,
}

impl ResilientServer {
    /// Wraps `server` with the default retry policy, LAN deadlines, and a
    /// private checkpoint store of [`DEFAULT_CHECKPOINT_CAPACITY`] entries.
    #[must_use]
    pub fn new(server: SecureServer) -> Self {
        ResilientServer {
            server,
            policy: RetryPolicy::default(),
            deadlines: SessionDeadlines::lan(),
            store: Arc::new(CheckpointStore::new(DEFAULT_CHECKPOINT_CAPACITY)),
        }
    }

    /// Replaces the retry policy.
    #[must_use]
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the deadline budget.
    #[must_use]
    pub fn with_deadlines(mut self, deadlines: SessionDeadlines) -> Self {
        self.deadlines = deadlines;
        self
    }

    /// Replaces the checkpoint store. Multiple `ResilientServer`s (e.g. the
    /// workers of a serving frontend) can share one store so a client may
    /// reconnect to any worker and still find its checkpoint.
    #[must_use]
    pub fn with_checkpoint_store(mut self, store: Arc<CheckpointStore>) -> Self {
        self.store = store;
        self
    }

    /// The checkpoint store backing this driver.
    #[must_use]
    pub fn checkpoint_store(&self) -> &Arc<CheckpointStore> {
        &self.store
    }

    /// Serves one prediction job to completion across reconnections minted
    /// by `accept`.
    ///
    /// # Errors
    ///
    /// The first fatal [`ProtocolError`], or the last transient one once
    /// the retry policy is exhausted.
    pub fn serve_one<T, C, R>(&self, accept: C, rng: &mut R) -> Result<RunReport, ProtocolError>
    where
        T: Transport,
        C: FnMut(u32) -> Result<T, TransportError>,
        R: Rng + ?Sized,
    {
        self.serve_one_with(accept, |_ch: &mut T, _attempt| {}, rng)
    }

    /// [`serve_one`](Self::serve_one) with a hook invoked after the offline
    /// phase of each attempt, before the online phase begins. Chaos and
    /// resume tests use the hook to arm transport faults at a protocol
    /// point that cannot be addressed by a hardcoded message index.
    ///
    /// # Errors
    ///
    /// The first fatal [`ProtocolError`], or the last transient one once
    /// the retry policy is exhausted.
    pub fn serve_one_with<T, C, H, R>(
        &self,
        accept: C,
        mut after_offline: H,
        rng: &mut R,
    ) -> Result<RunReport, ProtocolError>
    where
        T: Transport,
        C: FnMut(u32) -> Result<T, TransportError>,
        H: FnMut(&mut T, u32),
        R: Rng + ?Sized,
    {
        // Checkpoints live in the shared bounded store, keyed by the
        // client's resume token, so any driver holding the same store can
        // pick the job up. Claims are single-use: the bundle leaves the
        // store while its session is live (a concurrently presented
        // duplicate token therefore downgrades to a fresh run) and is
        // re-inserted only when the session fails retryably.
        let mut attempts = 0u32;
        let mut resumed = false;

        let driver = ResilientDriver::new(self.policy);
        driver.run(accept, |ch, attempt| -> Result<(), ProtocolError> {
            attempts = attempt + 1;
            apply_read_timeout(ch, &self.deadlines)?;

            let public = self.server.public_model();
            let mut claimed: Option<ServerBundle> = None;
            let (batch, token, reply) = handshake_server_ext(
                ch,
                // Adopt the client's announced batch: the server side of a
                // prediction service has no a-priori batch expectation.
                |b| SessionParams::for_public(&public, self.server.exec.variant, b),
                |t| {
                    claimed = self.store.claim(t);
                    claimed.is_some()
                },
                |_, _| false,
            )?;

            // From here on, `checkpoint` holds the connection-independent
            // state a reconnecting client could resume from; it goes back
            // into the store only on a retryable failure.
            let mut checkpoint: Option<ServerBundle> = claimed;
            let outcome = (|| -> Result<(), ProtocolError> {
                ch.set_phase_budget(self.deadlines.offline_budget)?;
                let state = if reply.resume {
                    resumed = true;
                    let bundle = checkpoint.clone().expect("resume implies claimed checkpoint");
                    let session = ServerSession::setup_with(ch, reply.mode(), rng)?;
                    ServerOffline::from_bundle(session, bundle)
                } else {
                    let state =
                        self.server.offline_after_handshake(ch, batch, reply.mode(), rng)?;
                    checkpoint = Some(state.to_bundle());
                    state
                };

                after_offline(ch, attempt);

                ch.set_phase_budget(self.deadlines.online_budget)?;
                self.server.online(ch, state)?;
                ch.set_phase_budget(None)?;
                Ok(())
            })();
            match outcome {
                Ok(()) => {
                    self.store.remove(&token);
                    Ok(())
                }
                Err(e) => {
                    if e.is_retryable() {
                        if let Some(bundle) = checkpoint.take() {
                            self.store.insert(token, bundle);
                        }
                    }
                    Err(e)
                }
            }
        })?;
        Ok(RunReport { attempts, resumed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_math::{FragmentScheme, Ring};
    use abnn2_net::{sim_link, Fault, FaultyTransport, NetworkModel};
    use abnn2_nn::quant::{QuantConfig, QuantizedNetwork};
    use abnn2_nn::{Network, SyntheticMnist};
    use rand::SeedableRng;
    use std::time::Duration;

    fn tiny_model(seed: u64) -> QuantizedNetwork {
        let data = SyntheticMnist::generate(40, 0, seed);
        let mut net = Network::new(&[784, 6, 4, 10], seed);
        net.train_epoch(&data.train, 0.05);
        let config = QuantConfig {
            ring: Ring::new(32),
            frac_bits: 8,
            weight_frac_bits: 4,
            scheme: FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]),
        };
        QuantizedNetwork::quantize(&net, config)
    }

    fn sample_inputs(q: &QuantizedNetwork, batch: usize, seed: u64) -> Vec<Vec<u64>> {
        let data = SyntheticMnist::generate(batch, 0, seed);
        let codec = q.config.activation_codec();
        data.train.iter().take(batch).map(|s| codec.encode_vec(&s.pixels)).collect()
    }

    fn fast_deadlines() -> SessionDeadlines {
        SessionDeadlines::uniform(Duration::from_secs(2))
    }

    #[test]
    fn no_failure_single_attempt() {
        let q = tiny_model(90);
        let inputs = sample_inputs(&q, 1, 91);
        let expected = q.forward_exact(&inputs[0]);

        let (dialer, listener) = sim_link(NetworkModel::instant());
        let server = ResilientServer::new(SecureServer::new(q))
            .with_policy(RetryPolicy::no_delay(2))
            .with_deadlines(fast_deadlines());
        let client = ResilientClient::new(SecureClient::new(server.server.public_info()))
            .with_policy(RetryPolicy::no_delay(2))
            .with_deadlines(fast_deadlines());

        std::thread::scope(|scope| {
            let srv = scope.spawn(move || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(92);
                server.serve_one(|_| listener.accept_timeout(Duration::from_secs(5)), &mut rng)
            });
            let mut rng = rand::rngs::StdRng::seed_from_u64(93);
            let (y, report) = client.run_raw(|_| dialer.dial(), &inputs, &mut rng).unwrap();
            assert_eq!(y.col(0), expected);
            assert_eq!(report, RunReport { attempts: 1, resumed: false });
            let srv_report = srv.join().unwrap().unwrap();
            assert_eq!(srv_report, RunReport { attempts: 1, resumed: false });
        });
    }

    #[test]
    fn mid_online_cut_resumes_with_identical_logits() {
        let q = tiny_model(94);
        let inputs = sample_inputs(&q, 2, 95);
        let expected: Vec<Vec<u64>> = inputs.iter().map(|x| q.forward_exact(x)).collect();

        let (dialer, listener) = sim_link(NetworkModel::instant());
        let server = ResilientServer::new(SecureServer::new(q))
            .with_policy(RetryPolicy::no_delay(3))
            .with_deadlines(fast_deadlines());
        let client = ResilientClient::new(SecureClient::new(server.server.public_info()))
            .with_policy(RetryPolicy::no_delay(3))
            .with_deadlines(fast_deadlines());

        std::thread::scope(|scope| {
            let srv = scope.spawn(move || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(96);
                server.serve_one_with(
                    |_| {
                        listener
                            .accept_timeout(Duration::from_secs(5))
                            .map(|ep| FaultyTransport::new(ep, Fault::None))
                    },
                    |ch, attempt| {
                        if attempt == 0 {
                            // Cut the connection two messages into the
                            // online phase of the first attempt only.
                            ch.set_fault(Fault::CutAfterMessages(ch.sends() + 2));
                        }
                    },
                    &mut rng,
                )
            });
            let mut rng = rand::rngs::StdRng::seed_from_u64(97);
            let (y, report) = client.run_raw(|_| dialer.dial(), &inputs, &mut rng).unwrap();
            for (k, exp) in expected.iter().enumerate() {
                assert_eq!(&y.col(k), exp, "sample {k} must match forward_exact after resume");
            }
            assert!(report.attempts >= 2, "client must have reconnected");
            assert!(report.resumed, "client must have resumed from checkpoint");
            let srv_report = srv.join().unwrap().unwrap();
            assert!(srv_report.resumed, "server must have accepted the resume token");
        });
    }

    fn dummy_bundle(tag: u64) -> ServerBundle {
        ServerBundle { us: vec![Matrix::new(1, 1, vec![tag])], mats: Vec::new(), batch: 1 }
    }

    #[test]
    fn checkpoint_store_evicts_least_recently_used() {
        let store = CheckpointStore::new(2);
        let (t1, t2, t3) = ([1u8; 16], [2u8; 16], [3u8; 16]);
        store.insert(t1, dummy_bundle(1));
        store.insert(t2, dummy_bundle(2));
        assert!(store.contains(&t1)); // refresh t1 → t2 is now oldest
        store.insert(t3, dummy_bundle(3));
        assert_eq!(store.len(), 2);
        assert!(store.contains(&t1));
        assert!(!store.contains(&t2), "t2 was least recently used");
        assert!(store.contains(&t3));
    }

    #[test]
    fn checkpoint_store_claim_is_single_use() {
        let store = CheckpointStore::new(4);
        let t = [7u8; 16];
        store.insert(t, dummy_bundle(7));
        assert_eq!(store.claim(&t), Some(dummy_bundle(7)));
        assert_eq!(store.claim(&t), None, "second claim must miss");
        assert!(store.is_empty());
    }

    #[test]
    fn checkpoint_store_concurrent_claims_yield_one_winner() {
        let store = Arc::new(CheckpointStore::new(4));
        let t = [9u8; 16];
        store.insert(t, dummy_bundle(9));
        let winners: usize = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    let store = Arc::clone(&store);
                    scope.spawn(move || usize::from(store.claim(&t).is_some()))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(winners, 1, "exactly one concurrent claim may succeed");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn checkpoint_store_rejects_zero_capacity() {
        let _ = CheckpointStore::new(0);
    }

    #[test]
    fn resume_after_eviction_downgrades_to_fresh_run() {
        let q = tiny_model(102);
        let inputs = sample_inputs(&q, 1, 103);
        let expected = q.forward_exact(&inputs[0]);

        let (dialer, listener) = sim_link(NetworkModel::instant());
        // Capacity-1 store: a rogue insert between the cut and the
        // reconnect evicts the job's own checkpoint.
        let store = Arc::new(CheckpointStore::new(1));
        let server = ResilientServer::new(SecureServer::new(q))
            .with_policy(RetryPolicy::no_delay(3))
            .with_deadlines(fast_deadlines())
            .with_checkpoint_store(Arc::clone(&store));
        // A real backoff (≥150ms after jitter) gives the watcher thread
        // below time to evict before the reconnect presents the token.
        let client_policy = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(300),
            max_delay: Duration::from_millis(300),
            jitter_seed: 1,
        };
        let client = ResilientClient::new(SecureClient::new(server.server.public_info()))
            .with_policy(client_policy)
            .with_deadlines(fast_deadlines());

        std::thread::scope(|scope| {
            let srv = scope.spawn(move || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(104);
                server.serve_one_with(
                    |_| {
                        listener
                            .accept_timeout(Duration::from_secs(5))
                            .map(|ep| FaultyTransport::new(ep, Fault::None))
                    },
                    |ch, attempt| {
                        if attempt == 0 {
                            // Die two messages into the online phase; the
                            // server then checkpoints the job under the
                            // client's token.
                            ch.set_fault(Fault::CutAfterMessages(ch.sends() + 2));
                        }
                    },
                    &mut rng,
                )
            });
            // Watcher: the moment the failure checkpoint appears, shove a
            // rogue entry into the capacity-1 store to evict it.
            let evict_store = Arc::clone(&store);
            let watcher = scope.spawn(move || {
                for _ in 0..5000 {
                    if evict_store.len() == 1 {
                        evict_store.insert([0xEE; 16], dummy_bundle(0));
                        return true;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                false
            });
            let mut rng = rand::rngs::StdRng::seed_from_u64(105);
            let (y, report) = client.run_raw(|_| dialer.dial(), &inputs, &mut rng).unwrap();
            assert_eq!(y.col(0), expected, "downgraded fresh run must stay bit-exact");
            assert!(report.attempts >= 2, "client must have reconnected");
            assert!(watcher.join().unwrap(), "watcher must have seen the checkpoint");
            let srv_report = srv.join().unwrap().unwrap();
            assert!(
                !srv_report.resumed,
                "evicted token must downgrade to a fresh offline run, not resume"
            );
        });
    }

    #[test]
    fn retry_budget_exhaustion_reports_last_error() {
        let q = tiny_model(98);
        let inputs = sample_inputs(&q, 1, 99);
        let client =
            ResilientClient::new(SecureClient::new(crate::inference::PublicModelInfo::from(&q)))
                .with_policy(RetryPolicy::no_delay(2))
                .with_deadlines(fast_deadlines());

        let mut rng = rand::rngs::StdRng::seed_from_u64(100);
        let err = client
            .run_raw(|_| Err::<abnn2_net::Endpoint, _>(TransportError::Closed), &inputs, &mut rng)
            .unwrap_err();
        assert_eq!(err, ProtocolError::Channel);
    }
}
