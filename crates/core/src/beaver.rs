//! Beaver multiplication triples over ℤ_{2^ℓ} (extension).
//!
//! ABNN²'s linear layers never multiply two *shared* values — one operand
//! (the weight) is always known to the server, which is what makes the
//! 1-out-of-N protocol work. Supporting share×share products (squaring
//! activations à la CryptoNets, attention-style bilinear layers) needs
//! classic Beaver triples `⟨a⟩, ⟨b⟩, ⟨ab⟩`. We generate them with Gilboa's
//! OT product — ℓ correlated OTs per cross term, built on the same IKNP
//! machinery as the SecureML baseline — and provide the standard masked
//! multiplication on top.

use crate::frames::BeaverOpenings;
use crate::ProtocolError;
use abnn2_math::Ring;
use abnn2_net::Transport;
use abnn2_ot::{IknpReceiver, IknpSender};
use rand::Rng;

/// One party's share of a multiplication triple `c = a·b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeaverTriple {
    /// Share of `a`.
    pub a: u64,
    /// Share of `b`.
    pub b: u64,
    /// Share of `c = a·b`.
    pub c: u64,
}

/// Gilboa OT product: this party holds `xs`; the peer holds `ys`; outputs
/// are shares of `xs[i]·ys[i]`. This side is the *chooser* on its bits.
/// Shared with the matrix-Beaver generation in [`crate::matbeaver`].
pub(crate) fn gilboa_chooser<T: Transport>(
    ch: &mut T,
    ot: &mut IknpReceiver,
    xs: &[u64],
    ring: Ring,
) -> Result<Vec<u64>, ProtocolError> {
    let l = ring.bits() as usize;
    let choices: Vec<bool> =
        xs.iter().flat_map(|&x| (0..l).map(move |b| (x >> b) & 1 == 1)).collect();
    let got = ot.recv_correlated(ch, &choices, ring)?;
    Ok(got
        .chunks_exact(l)
        .map(|chunk| chunk.iter().fold(0u64, |acc, &v| ring.add(acc, v)))
        .collect())
}

/// Gilboa OT product, sender side: supplies correlations `2^b·ys[i]`.
/// Shared with the matrix-Beaver generation in [`crate::matbeaver`].
pub(crate) fn gilboa_sender<T: Transport>(
    ch: &mut T,
    ot: &mut IknpSender,
    ys: &[u64],
    ring: Ring,
) -> Result<Vec<u64>, ProtocolError> {
    let l = ring.bits() as usize;
    let deltas: Vec<u64> = ys
        .iter()
        .flat_map(|&y| (0..l).map(move |b| y.wrapping_shl(b as u32)))
        .map(|d| ring.reduce(d))
        .collect();
    let x0s = ot.send_correlated(ch, &deltas, ring)?;
    Ok(x0s
        .chunks_exact(l)
        .map(|chunk| ring.neg(chunk.iter().fold(0u64, |acc, &v| ring.add(acc, v))))
        .collect())
}

/// Generates `count` triples; "party 0" side. Requires one OT session in
/// each direction (this side: receiver `ot_r`, sender `ot_s`).
///
/// # Errors
///
/// Returns [`ProtocolError`] on OT failure.
pub fn generate_p0<T: Transport, R: Rng + ?Sized>(
    ch: &mut T,
    ot_r: &mut IknpReceiver,
    ot_s: &mut IknpSender,
    count: usize,
    ring: Ring,
    rng: &mut R,
) -> Result<Vec<BeaverTriple>, ProtocolError> {
    let a0 = ring.sample_vec(rng, count);
    let b0 = ring.sample_vec(rng, count);
    // a0·b1: we choose on bits of a0.
    let t1 = gilboa_chooser(ch, ot_r, &a0, ring)?;
    // a1·b0: we supply correlations from b0.
    let w2 = gilboa_sender(ch, ot_s, &b0, ring)?;
    Ok((0..count)
        .map(|i| BeaverTriple {
            a: a0[i],
            b: b0[i],
            c: ring.add(ring.mul(a0[i], b0[i]), ring.add(t1[i], w2[i])),
        })
        .collect())
}

/// Generates `count` triples; "party 1" side (mirror of
/// [`generate_p0`] — this side: sender first, then receiver).
///
/// # Errors
///
/// Returns [`ProtocolError`] on OT failure.
pub fn generate_p1<T: Transport, R: Rng + ?Sized>(
    ch: &mut T,
    ot_s: &mut IknpSender,
    ot_r: &mut IknpReceiver,
    count: usize,
    ring: Ring,
    rng: &mut R,
) -> Result<Vec<BeaverTriple>, ProtocolError> {
    let a1 = ring.sample_vec(rng, count);
    let b1 = ring.sample_vec(rng, count);
    let w1 = gilboa_sender(ch, ot_s, &b1, ring)?;
    let t2 = gilboa_chooser(ch, ot_r, &a1, ring)?;
    Ok((0..count)
        .map(|i| BeaverTriple {
            a: a1[i],
            b: b1[i],
            c: ring.add(ring.mul(a1[i], b1[i]), ring.add(w1[i], t2[i])),
        })
        .collect())
}

/// Multiplies shared vectors with precomputed triples: both parties call
/// this symmetrically; `party` is 0 or 1. One message each way (the
/// openings of `x − a` and `y − b`).
///
/// # Errors
///
/// Returns [`ProtocolError`] on disconnection, length mismatch, or if
/// fewer triples than values are supplied.
pub fn mul_shares<T: Transport>(
    ch: &mut T,
    triples: &[BeaverTriple],
    xs: &[u64],
    ys: &[u64],
    ring: Ring,
    party: u8,
) -> Result<Vec<u64>, ProtocolError> {
    if xs.len() != ys.len() {
        return Err(ProtocolError::Dimension("operand lengths differ"));
    }
    if triples.len() < xs.len() {
        return Err(ProtocolError::Dimension("not enough triples"));
    }
    let n = xs.len();
    // Open d = x − a and e = y − b.
    let mut opening = Vec::with_capacity(2 * n);
    for i in 0..n {
        opening.push(ring.sub(xs[i], triples[i].a));
        opening.push(ring.sub(ys[i], triples[i].b));
    }
    ch.send_frame(&BeaverOpenings(ring.encode_slice(&opening)))?;
    let BeaverOpenings(theirs_bytes) = ch.recv_frame()?;
    if theirs_bytes.len() != 2 * n * ring.byte_len() {
        return Err(ProtocolError::Malformed("beaver opening length"));
    }
    let theirs = ring.decode_slice(&theirs_bytes);
    Ok((0..n)
        .map(|i| {
            let d = ring.add(opening[2 * i], theirs[2 * i]);
            let e = ring.add(opening[2 * i + 1], theirs[2 * i + 1]);
            let mut z = ring
                .add(triples[i].c, ring.add(ring.mul(d, triples[i].b), ring.mul(e, triples[i].a)));
            if party == 0 {
                z = ring.add(z, ring.mul(d, e));
            }
            z
        })
        .collect())
}

/// Squares shared values (`x·x`) with triples — the building block for a
/// CryptoNets-style square activation.
///
/// # Errors
///
/// As [`mul_shares`].
pub fn square_shares<T: Transport>(
    ch: &mut T,
    triples: &[BeaverTriple],
    xs: &[u64],
    ring: Ring,
    party: u8,
) -> Result<Vec<u64>, ProtocolError> {
    mul_shares(ch, triples, xs, xs, ring, party)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_net::{run_pair, Endpoint, NetworkModel};
    use rand::SeedableRng;

    fn with_triples<A: Send, B: Send>(
        count: usize,
        f0: impl FnOnce(&mut Endpoint, Vec<BeaverTriple>) -> A + Send,
        f1: impl FnOnce(&mut Endpoint, Vec<BeaverTriple>) -> B + Send,
    ) -> (A, B) {
        let ring = Ring::new(32);
        let (a, b, _) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(400);
                let mut ot_r = IknpReceiver::setup(ch, &mut rng).expect("setup r");
                let mut ot_s = IknpSender::setup(ch, &mut rng).expect("setup s");
                let t = generate_p0(ch, &mut ot_r, &mut ot_s, count, ring, &mut rng).expect("gen");
                f0(ch, t)
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(401);
                let mut ot_s = IknpSender::setup(ch, &mut rng).expect("setup s");
                let mut ot_r = IknpReceiver::setup(ch, &mut rng).expect("setup r");
                let t = generate_p1(ch, &mut ot_s, &mut ot_r, count, ring, &mut rng).expect("gen");
                f1(ch, t)
            },
        );
        (a, b)
    }

    #[test]
    fn triples_satisfy_the_relation() {
        let ring = Ring::new(32);
        let (t0, t1) = with_triples(20, |_, t| t, |_, t| t);
        for i in 0..20 {
            let a = ring.add(t0[i].a, t1[i].a);
            let b = ring.add(t0[i].b, t1[i].b);
            let c = ring.add(t0[i].c, t1[i].c);
            assert_eq!(c, ring.mul(a, b), "triple {i}");
        }
    }

    #[test]
    fn shared_multiplication_is_correct() {
        let ring = Ring::new(32);
        let mut rng = rand::rngs::StdRng::seed_from_u64(402);
        let n = 10;
        let xs = ring.sample_vec(&mut rng, n);
        let ys = ring.sample_vec(&mut rng, n);
        let x1 = ring.sample_vec(&mut rng, n);
        let y1 = ring.sample_vec(&mut rng, n);
        let x0 = ring.sub_vec(&xs, &x1);
        let y0 = ring.sub_vec(&ys, &y1);
        let (z0, z1) = with_triples(
            n,
            move |ch, t| mul_shares(ch, &t, &x0, &y0, ring, 0).expect("mul p0"),
            move |ch, t| mul_shares(ch, &t, &x1, &y1, ring, 1).expect("mul p1"),
        );
        for i in 0..n {
            assert_eq!(ring.add(z0[i], z1[i]), ring.mul(xs[i], ys[i]), "elem {i}");
        }
    }

    #[test]
    fn shared_squaring_is_correct() {
        let ring = Ring::new(32);
        let mut rng = rand::rngs::StdRng::seed_from_u64(403);
        let n = 8;
        let xs = ring.sample_vec(&mut rng, n);
        let x1 = ring.sample_vec(&mut rng, n);
        let x0 = ring.sub_vec(&xs, &x1);
        let (z0, z1) = with_triples(
            n,
            move |ch, t| square_shares(ch, &t, &x0, ring, 0).expect("sq p0"),
            move |ch, t| square_shares(ch, &t, &x1, ring, 1).expect("sq p1"),
        );
        for i in 0..n {
            assert_eq!(ring.add(z0[i], z1[i]), ring.mul(xs[i], xs[i]), "elem {i}");
        }
    }

    #[test]
    fn too_few_triples_rejected() {
        let ring = Ring::new(32);
        let (r0, r1) = with_triples(
            2,
            move |ch, t| mul_shares(ch, &t, &[1, 2, 3], &[4, 5, 6], ring, 0),
            move |ch, t| mul_shares(ch, &t, &[1, 2, 3], &[4, 5, 6], ring, 1),
        );
        assert_eq!(r0.err(), Some(ProtocolError::Dimension("not enough triples")));
        assert_eq!(r1.err(), Some(ProtocolError::Dimension("not enough triples")));
    }
}
