//! Typed wire frames for the ABNN² protocol layer.
//!
//! Every message the handshake, offline phase, and online phase exchange is
//! one of the frames below, moved exclusively through
//! [`Transport::send_frame`]/[`Transport::recv_frame`]. Frame-level checks
//! cover each payload's *shape* (the hello is exactly [`HELLO_LEN`] bytes,
//! the masked class index is one byte); batch- and ring-dependent exact
//! lengths stay with the protocol code, which reports them as
//! [`ProtocolError::Malformed`](crate::ProtocolError::Malformed).
//!
//! [`Transport::send_frame`]: abnn2_net::Transport::send_frame
//! [`Transport::recv_frame`]: abnn2_net::Transport::recv_frame
//! [`HELLO_LEN`]: crate::handshake::HELLO_LEN

use crate::handshake::HELLO_LEN;
use abnn2_net::byte_frame;
use abnn2_net::wire::tags;

byte_frame! {
    /// A handshake hello: magic, version, negotiated parameters, and the
    /// resume token ([`crate::handshake`] documents the layout).
    pub struct Hello, tag = tags::HELLO, name = "hello", exact = HELLO_LEN
}

byte_frame! {
    /// The client's masked triplet messages for one fragment group:
    /// `per_ot` ring-element vectors per OT (the paper's γ(N−1) count in
    /// one-batch mode).
    pub struct TripletMasked, tag = tags::TRIPLET_MASKED, name = "triplet ciphertext batch", unit = 1
}

byte_frame! {
    /// The client's blinded input matrix `x − R`, ring-encoded.
    pub struct BlindedInput, tag = tags::BLINDED_INPUT, name = "blinded input", unit = 1
}

byte_frame! {
    /// The server's logit shares `y₀`, opened toward the client at the end
    /// of the online phase.
    pub struct OutputShares, tag = tags::OUTPUT_SHARES, name = "output share batch", unit = 1
}

byte_frame! {
    /// Packed per-neuron sign bits revealed by the optimized ReLU's
    /// comparison phase.
    pub struct SignBits, tag = tags::SIGN_BITS, name = "sign-bit batch", unit = 1
}

byte_frame! {
    /// The client's re-shares `−z₁` for the negative-neuron subset in the
    /// optimized ReLU.
    pub struct NegShares, tag = tags::NEG_SHARES, name = "negative-neuron share batch", unit = 1
}

byte_frame! {
    /// The masked argmax output: one byte, `class ⊕ mask`.
    pub struct MaskedClass, tag = tags::MASKED_CLASS, name = "masked class index", exact = 1
}

byte_frame! {
    /// One party's Beaver-triple openings `(d, e)`, ring-encoded.
    pub struct BeaverOpenings, tag = tags::BEAVER_OPENINGS, name = "beaver opening batch", unit = 1
}

byte_frame! {
    /// A serialized offline bundle (dealer mode / warm-pool transfer).
    pub struct Bundle, tag = tags::BUNDLE, name = "offline bundle", unit = 1
}

byte_frame! {
    /// One party's matrix-Beaver openings `D‖E` (`D = A − X`, `E = B − Y`,
    /// row-major, ring-encoded) for one secret×secret matmul op.
    pub struct MatmulOpenings, tag = tags::MATMUL_OPENINGS, name = "matmul opening batch", unit = 1
}
