//! Quantized matrix-multiplication triplet generation (§4.1).
//!
//! Computes additive shares of `W·R` where the server holds the quantized
//! weight matrix `W ∈ 𝔻^{m×n}` (𝔻 the scheme's weight domain) and the
//! client holds a random matrix `R ∈ ℤ_{2^ℓ}^{n×o}` — the offline half of a
//! linear layer, `o` being the prediction batch size.
//!
//! For every weight `w_ij` and fragment `g`, one 1-out-of-N OT runs with the
//! server's digit `w_ij[g]` as the choice symbol. The client's message for
//! symbol `t` is the packed vector `{scaleᵍ·t·r_jk − s_k}_{k<o}` — so a
//! single OT finishes the whole batch row (§4.1.2, "multi-batch"). With
//! `o = 1`, the correlated-OT trick of §4.1.3 kicks in: the symbol-0
//! message is *derived from the chooser's own mask* instead of being sent,
//! reducing traffic to N−1 ciphertexts per OT.

use crate::frames::TripletMasked;
use crate::ProtocolError;
use abnn2_math::{FragmentScheme, Matrix, Ring};
use abnn2_net::Transport;
use abnn2_ot::{FragmentChooser, FragmentSender};
use rand::Rng;

/// Which §4.1 message layout to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripletMode {
    /// §4.1.2: N messages per OT, each packing `o` ring elements.
    MultiBatch,
    /// §4.1.3: N−1 messages per OT; the symbol-0 plaintext is derived from
    /// the random-oracle output itself (correlated-OT style).
    OneBatch,
}

impl TripletMode {
    /// The paper's selection rule: the correlated trick for single
    /// predictions, message packing otherwise.
    #[must_use]
    pub fn for_batch(o: usize) -> Self {
        if o == 1 {
            TripletMode::OneBatch
        } else {
            TripletMode::MultiBatch
        }
    }
}

/// Execution options for the triplet protocols.
///
/// The paper's conclusion notes its measurements are single-core and that
/// "our protocols are more efficient when optimized with multi-cores
/// parallelization" — `threads > 1` implements that future work: the
/// per-OT mask derivations and message packing are sharded across worker
/// threads (the transcript layout is unchanged, only who computes it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TripletConfig {
    /// Message layout (§4.1.2 vs §4.1.3).
    pub mode: TripletMode,
    /// Worker threads for mask computation (1 = the paper's setting).
    pub threads: usize,
}

impl TripletConfig {
    /// Single-threaded execution with the given mode.
    #[must_use]
    pub fn new(mode: TripletMode) -> Self {
        TripletConfig { mode, threads: 1 }
    }

    /// Sets the worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = crate::config::checked_threads(threads);
        self
    }

    /// Mode chosen by the paper's batch rule, single-threaded.
    #[must_use]
    pub fn for_batch(o: usize) -> Self {
        TripletConfig::new(TripletMode::for_batch(o))
    }
}

impl From<TripletMode> for TripletConfig {
    fn from(mode: TripletMode) -> Self {
        TripletConfig::new(mode)
    }
}

/// Server side (model holder, OT chooser): learns `U` with
/// `U + V = W·R (mod 2^ℓ)`.
///
/// `weights` is row-major `m×n` with entries in `scheme`'s domain.
///
/// # Errors
///
/// Returns [`ProtocolError`] on dimension mismatch, disconnection, or
/// malformed client messages.
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
pub fn triplet_server<T: Transport>(
    ch: &mut T,
    kk: &mut FragmentChooser,
    weights: &[i64],
    m: usize,
    n: usize,
    o: usize,
    scheme: &FragmentScheme,
    ring: Ring,
    mode: TripletMode,
) -> Result<Matrix, ProtocolError> {
    triplet_server_with(ch, kk, weights, m, n, o, scheme, ring, mode.into())
}

/// [`triplet_server`] with explicit execution options (thread count).
///
/// # Errors
///
/// As [`triplet_server`].
#[allow(clippy::too_many_arguments)]
pub fn triplet_server_with<T: Transport>(
    ch: &mut T,
    kk: &mut FragmentChooser,
    weights: &[i64],
    m: usize,
    n: usize,
    o: usize,
    scheme: &FragmentScheme,
    ring: Ring,
    cfg: TripletConfig,
) -> Result<Matrix, ProtocolError> {
    if weights.len() != m * n {
        return Err(ProtocolError::Dimension("weights length must be m*n"));
    }
    if !weights.iter().all(|&w| scheme.contains(w)) {
        return Err(ProtocolError::Dimension("weight outside scheme domain"));
    }
    let mode = cfg.mode;
    let digits: Vec<Vec<u64>> = weights.iter().map(|&w| scheme.decompose(w)).collect();
    let elem_len = o * ring.byte_len();
    let mut u = Matrix::zeros(m, o);

    for (g, frag) in scheme.fragments().iter().enumerate() {
        let choices: Vec<u64> = digits.iter().map(|d| d[g]).collect();
        let keys = kk.extend(ch, &choices, frag.n)?;
        let TripletMasked(data) = ch.recv_frame()?;
        let per_ot = match mode {
            TripletMode::MultiBatch => frag.n as usize,
            TripletMode::OneBatch => frag.n as usize - 1,
        };
        if data.len() != m * n * per_ot * elem_len {
            return Err(ProtocolError::Malformed("triplet ciphertext batch length"));
        }

        // Per-OT decryption is independent; shard it across workers and
        // merge the partial share matrices.
        let decode_range = |range: std::ops::Range<usize>| -> Matrix {
            let mut u_part = Matrix::zeros(m, o);
            for idx in range {
                let digit = choices[idx];
                let mut mask = keys.mask(idx, elem_len);
                let vals = match (mode, digit) {
                    (TripletMode::OneBatch, 0) => {
                        // Symbol 0: the plaintext *is* the chooser's mask.
                        ring.decode_slice(&mask)
                    }
                    (TripletMode::OneBatch, d) => {
                        let off = (idx * per_ot + (d as usize - 1)) * elem_len;
                        for (mb, db) in mask.iter_mut().zip(&data[off..off + elem_len]) {
                            *mb ^= db;
                        }
                        ring.decode_slice(&mask)
                    }
                    (TripletMode::MultiBatch, d) => {
                        let off = (idx * per_ot + d as usize) * elem_len;
                        for (mb, db) in mask.iter_mut().zip(&data[off..off + elem_len]) {
                            *mb ^= db;
                        }
                        ring.decode_slice(&mask)
                    }
                };
                let i = idx / n;
                for (k, &v) in vals.iter().enumerate() {
                    let cur = u_part.get(i, k);
                    u_part.set(i, k, ring.add(cur, v));
                }
            }
            u_part
        };
        let u_frag = run_sharded(m * n, cfg.threads, &decode_range)
            .into_iter()
            .fold(Matrix::zeros(m, o), |acc, part| acc.add(&part, &ring));
        u = u.add(&u_frag, &ring);
    }
    Ok(u)
}

/// SplitMix64 finalizer: decorrelates the per-OT mask streams derived
/// from one group seed in [`triplet_client_with`].
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Splits `0..total` into up to `threads` contiguous ranges and runs `f`
/// on each (on scoped worker threads when `threads > 1`), returning the
/// results in range order.
fn run_sharded<T, F>(total: usize, threads: usize, f: &F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> T + Sync,
{
    let threads = threads.max(1).min(total.max(1));
    if threads <= 1 {
        return vec![f(0..total)];
    }
    let chunk = total.div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let start = t * chunk;
                let end = ((t + 1) * chunk).min(total);
                scope.spawn(move || f(start..end))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
}

/// Client side (data owner, OT sender): learns `V` with
/// `U + V = W·R (mod 2^ℓ)` for its own random `R` (`n×o`).
///
/// `m` is the public output dimension of the layer.
///
/// # Errors
///
/// Returns [`ProtocolError`] on dimension mismatch or disconnection.
#[allow(clippy::too_many_arguments)]
pub fn triplet_client<T: Transport, RNG: Rng + ?Sized>(
    ch: &mut T,
    kk: &mut FragmentSender,
    r: &Matrix,
    m: usize,
    scheme: &FragmentScheme,
    ring: Ring,
    mode: TripletMode,
    rng: &mut RNG,
) -> Result<Matrix, ProtocolError> {
    triplet_client_with(ch, kk, r, m, scheme, ring, mode.into(), rng)
}

/// [`triplet_client`] with explicit execution options (thread count).
///
/// # Errors
///
/// As [`triplet_client`].
#[allow(clippy::too_many_arguments)]
pub fn triplet_client_with<T: Transport, RNG: Rng + ?Sized>(
    ch: &mut T,
    kk: &mut FragmentSender,
    r: &Matrix,
    m: usize,
    scheme: &FragmentScheme,
    ring: Ring,
    cfg: TripletConfig,
    rng: &mut RNG,
) -> Result<Matrix, ProtocolError> {
    let mode = cfg.mode;
    let n = r.rows();
    let o = r.cols();
    let elem_len = o * ring.byte_len();
    let mut v = Matrix::zeros(m, o);

    for frag in scheme.fragments() {
        let nn = frag.n as usize;
        let keys = kk.extend(ch, m * n, frag.n)?;
        let per_ot = match mode {
            TripletMode::MultiBatch => nn,
            TripletMode::OneBatch => nn - 1,
        };

        // Message packing per OT is independent; shard across workers and
        // concatenate the buffers in index order. One group seed is drawn
        // here — exactly one `rng` call for any thread count — and each
        // OT derives its own mask stream from (seed, index), so the frame
        // is byte-identical no matter how the index range is sharded.
        let mask_seed: u64 = rng.gen();
        let pack_range = |range: std::ops::Range<usize>| -> (Vec<u8>, Matrix) {
            use rand::SeedableRng;
            let mut v_part = Matrix::zeros(m, o);
            let mut data = Vec::with_capacity(range.len() * per_ot * elem_len);
            for idx in range {
                let i = idx / n;
                let j = idx % n;
                let r_row = r.row(j);
                // The client's per-OT masks s_k and the symbols it encrypts.
                let (s_vec, t_start) = match mode {
                    TripletMode::MultiBatch => {
                        let mut ot_rng = rand::rngs::StdRng::seed_from_u64(splitmix64(
                            mask_seed ^ splitmix64(idx as u64),
                        ));
                        (ring.sample_vec(&mut ot_rng, o), 0u64)
                    }
                    TripletMode::OneBatch => {
                        // s_k := contribution(0, r_k) − decode(mask₀)_k, so
                        // the chooser's symbol-0 plaintext equals its own
                        // mask and needs no transmission.
                        let mask0 = ring.decode_slice(&keys.mask(idx, 0, elem_len));
                        let s: Vec<u64> = r_row
                            .iter()
                            .zip(&mask0)
                            .map(|(&rk, &m0)| ring.sub(frag.contribution(0, rk, &ring), m0))
                            .collect();
                        (s, 1u64)
                    }
                };
                for (k, &sk) in s_vec.iter().enumerate() {
                    let cur = v_part.get(i, k);
                    v_part.set(i, k, ring.add(cur, sk));
                }
                for t in t_start..frag.n {
                    let plain: Vec<u64> = r_row
                        .iter()
                        .zip(&s_vec)
                        .map(|(&rk, &sk)| ring.sub(frag.contribution(t, rk, &ring), sk))
                        .collect();
                    let mut ct = ring.encode_slice(&plain);
                    let mask = keys.mask(idx, t, elem_len);
                    for (c, mb) in ct.iter_mut().zip(&mask) {
                        *c ^= mb;
                    }
                    data.extend_from_slice(&ct);
                }
            }
            (data, v_part)
        };
        let parts = run_sharded(m * n, cfg.threads, &pack_range);
        let mut data = Vec::with_capacity(m * n * per_ot * elem_len);
        for (buf, v_part) in parts {
            data.extend_from_slice(&buf);
            v = v.add(&v_part, &ring);
        }
        ch.send_frame(&TripletMasked(data))?;
    }
    Ok(v)
}

/// Algorithm 1 (dot-product triplets): the `m = 1`, `o = 1` special case.
/// Server output `u` with `u + v = w·r`.
///
/// # Errors
///
/// Propagates [`triplet_server`] failures.
pub fn dot_product_server<T: Transport>(
    ch: &mut T,
    kk: &mut FragmentChooser,
    w: &[i64],
    scheme: &FragmentScheme,
    ring: Ring,
) -> Result<u64, ProtocolError> {
    let u = triplet_server(ch, kk, w, 1, w.len(), 1, scheme, ring, TripletMode::OneBatch)?;
    Ok(u.get(0, 0))
}

/// Algorithm 1, client side: `v` with `u + v = w·r` for the client's `r`.
///
/// # Errors
///
/// Propagates [`triplet_client`] failures.
pub fn dot_product_client<T: Transport, RNG: Rng + ?Sized>(
    ch: &mut T,
    kk: &mut FragmentSender,
    r: &[u64],
    scheme: &FragmentScheme,
    ring: Ring,
    rng: &mut RNG,
) -> Result<u64, ProtocolError> {
    let rm = Matrix::column(r.to_vec());
    let v = triplet_client(ch, kk, &rm, 1, scheme, ring, TripletMode::OneBatch, rng)?;
    Ok(v.get(0, 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_net::{run_pair, NetworkModel, TrafficReport};
    use abnn2_ot::OfflineMode;
    use rand::SeedableRng;

    /// Runs the full triplet protocol (including session setup) over the
    /// portable KK13 backend and returns (U, V, R, traffic).
    fn run_triplet(
        weights: Vec<i64>,
        m: usize,
        n: usize,
        o: usize,
        scheme: FragmentScheme,
        ring: Ring,
        mode: TripletMode,
        seed: u64,
    ) -> (Matrix, Matrix, Matrix, TrafficReport) {
        run_triplet_over(OfflineMode::Iknp, weights, m, n, o, scheme, ring, mode, seed)
    }

    /// [`run_triplet`] with an explicit OT backend.
    #[allow(clippy::too_many_arguments)]
    fn run_triplet_over(
        ot: OfflineMode,
        weights: Vec<i64>,
        m: usize,
        n: usize,
        o: usize,
        scheme: FragmentScheme,
        ring: Ring,
        mode: TripletMode,
        seed: u64,
    ) -> (Matrix, Matrix, Matrix, TrafficReport) {
        let scheme2 = scheme.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let r = Matrix::random(n, o, &ring, &mut rng);
        let r2 = r.clone();
        let (u, v, report) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 1);
                let mut kk = FragmentChooser::setup(ch, ot, &mut rng).expect("chooser setup");
                triplet_server(ch, &mut kk, &weights, m, n, o, &scheme, ring, mode).expect("server")
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 2);
                let mut kk = FragmentSender::setup(ch, ot, &mut rng).expect("sender setup");
                triplet_client(ch, &mut kk, &r2, m, &scheme2, ring, mode, &mut rng).expect("client")
            },
        );
        (u, v, r, report)
    }

    fn expected_product(weights: &[i64], m: usize, n: usize, r: &Matrix, ring: Ring) -> Matrix {
        let w_ring: Vec<u64> = weights.iter().map(|&w| ring.from_i64(w)).collect();
        Matrix::new(m, n, w_ring).mul(r, &ring)
    }

    #[test]
    fn one_batch_ternary_dot_product() {
        let ring = Ring::new(32);
        let scheme = FragmentScheme::ternary();
        let weights = vec![-1i64, 0, 1, 1, -1];
        let (u, v, r, _) =
            run_triplet(weights.clone(), 1, 5, 1, scheme, ring, TripletMode::OneBatch, 100);
        let expect = expected_product(&weights, 1, 5, &r, ring);
        assert_eq!(u.add(&v, &ring), expect);
    }

    #[test]
    fn multi_batch_signed_8bit() {
        let ring = Ring::new(32);
        let scheme = FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let (m, n, o) = (4, 6, 3);
        let weights: Vec<i64> = (0..m * n).map(|_| rng.gen_range(-128i64..128)).collect();
        let (u, v, r, _) =
            run_triplet(weights.clone(), m, n, o, scheme, ring, TripletMode::MultiBatch, 200);
        let expect = expected_product(&weights, m, n, &r, ring);
        assert_eq!(u.add(&v, &ring), expect);
    }

    #[test]
    fn all_paper_schemes_produce_correct_triplets() {
        let ring = Ring::new(32);
        let mut seed = 300;
        for eta in [8u32, 6, 4, 3] {
            for scheme in FragmentScheme::paper_schemes(eta) {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let (lo, hi) = scheme.weight_range();
                let weights: Vec<i64> = (0..6).map(|_| rng.gen_range(lo..=hi)).collect();
                let (u, v, r, _) = run_triplet(
                    weights.clone(),
                    2,
                    3,
                    1,
                    scheme.clone(),
                    ring,
                    TripletMode::OneBatch,
                    seed,
                );
                let expect = expected_product(&weights, 2, 3, &r, ring);
                assert_eq!(u.add(&v, &ring), expect, "scheme {scheme} η={eta}");
                seed += 1;
            }
        }
    }

    #[test]
    fn non_power_of_two_radixes_produce_correct_triplets() {
        // The optimizer's balanced base-7 scheme and a signed base-6 scheme
        // run through the same KK13 machinery (any N ≤ 256).
        let ring = Ring::new(32);
        let mut seed = 600;
        for scheme in [
            FragmentScheme::balanced(7, 3),
            FragmentScheme::base_n_signed(6, 3),
            FragmentScheme::base_n(5, 2),
            FragmentScheme::optimize(8, 1, 32),
        ] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let (lo, hi) = scheme.weight_range();
            let weights: Vec<i64> = (0..12).map(|_| rng.gen_range(lo..=hi)).collect();
            let (u, v, r, _) = run_triplet(
                weights.clone(),
                3,
                4,
                2,
                scheme.clone(),
                ring,
                TripletMode::MultiBatch,
                seed,
            );
            let expect = expected_product(&weights, 3, 4, &r, ring);
            assert_eq!(u.add(&v, &ring), expect, "scheme {scheme}");
            seed += 1;
        }
    }

    #[test]
    fn sixty_four_bit_ring() {
        let ring = Ring::new(64);
        let scheme = FragmentScheme::signed_bit_fields(&[4, 4]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let weights: Vec<i64> = (0..8).map(|_| rng.gen_range(-128i64..128)).collect();
        let (u, v, r, _) =
            run_triplet(weights.clone(), 2, 4, 2, scheme, ring, TripletMode::MultiBatch, 400);
        assert_eq!(u.add(&v, &ring), expected_product(&weights, 2, 4, &r, ring));
    }

    #[test]
    fn silent_backend_produces_correct_triplets() {
        // Same protocol, silent (LPN) OT backend: both §4.1 layouts must
        // still reconstruct W·R exactly.
        let ring = Ring::new(32);
        let scheme = FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let (m, n) = (3, 5);
        let weights: Vec<i64> = (0..m * n).map(|_| rng.gen_range(-128i64..128)).collect();
        for (o, mode) in [(1usize, TripletMode::OneBatch), (2, TripletMode::MultiBatch)] {
            let (u, v, r, _) = run_triplet_over(
                OfflineMode::Silent,
                weights.clone(),
                m,
                n,
                o,
                scheme.clone(),
                ring,
                mode,
                700 + o as u64,
            );
            let expect = expected_product(&weights, m, n, &r, ring);
            assert_eq!(u.add(&v, &ring), expect, "mode {mode:?}");
        }
    }

    #[test]
    fn one_batch_saves_communication() {
        let ring = Ring::new(32);
        let scheme = FragmentScheme::signed_bit_fields(&[4, 4]); // N = 16: big gap
        let weights: Vec<i64> = (0..32).map(|i| (i % 20) - 10).collect();
        let (_, _, _, rep1) =
            run_triplet(weights.clone(), 4, 8, 1, scheme.clone(), ring, TripletMode::OneBatch, 500);
        let (_, _, _, rep2) =
            run_triplet(weights, 4, 8, 1, scheme, ring, TripletMode::MultiBatch, 501);
        assert!(
            rep1.total_bytes() < rep2.total_bytes(),
            "one-batch {} should beat multi-batch {}",
            rep1.total_bytes(),
            rep2.total_bytes()
        );
    }

    #[test]
    fn dot_product_wrappers() {
        let ring = Ring::new(32);
        let scheme = FragmentScheme::binary();
        let w = vec![1i64, 0, 1, 1];
        let w2 = w.clone();
        let scheme2 = scheme.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let r: Vec<u64> = ring.sample_vec(&mut rng, 4);
        let r2 = r.clone();
        let (u, v, _) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(8);
                let mut kk =
                    FragmentChooser::setup(ch, OfflineMode::Iknp, &mut rng).expect("setup");
                dot_product_server(ch, &mut kk, &w2, &scheme, ring).expect("server")
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(9);
                let mut kk = FragmentSender::setup(ch, OfflineMode::Iknp, &mut rng).expect("setup");
                dot_product_client(ch, &mut kk, &r2, &scheme2, ring, &mut rng).expect("client")
            },
        );
        let expect = ring.dot(&w.iter().map(|&x| x as u64).collect::<Vec<_>>(), &r);
        assert_eq!(ring.add(u, v), expect);
    }

    #[test]
    fn weight_domain_enforced() {
        let ring = Ring::new(32);
        let scheme = FragmentScheme::binary();
        let scheme2 = scheme.clone();
        // Weight 7 is outside {0,1}: the server must error out before any
        // OT, and the client then fails on the dropped channel.
        let (server_res, client_res, _) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(1);
                let mut kk =
                    FragmentChooser::setup(ch, OfflineMode::Iknp, &mut rng).expect("setup");
                triplet_server(ch, &mut kk, &[7], 1, 1, 1, &scheme, ring, TripletMode::OneBatch)
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(2);
                let mut kk = FragmentSender::setup(ch, OfflineMode::Iknp, &mut rng).expect("setup");
                let r = Matrix::column(vec![5]);
                triplet_client(ch, &mut kk, &r, 1, &scheme2, ring, TripletMode::OneBatch, &mut rng)
            },
        );
        assert_eq!(
            server_res.err(),
            Some(ProtocolError::Dimension("weight outside scheme domain"))
        );
        assert!(client_res.is_err(), "client must observe the aborted protocol");
    }

    #[test]
    fn mode_selection_rule() {
        assert_eq!(TripletMode::for_batch(1), TripletMode::OneBatch);
        assert_eq!(TripletMode::for_batch(32), TripletMode::MultiBatch);
        assert_eq!(TripletConfig::for_batch(1).threads, 1);
        assert_eq!(TripletConfig::for_batch(1).with_threads(4).threads, 4);
    }

    #[test]
    fn multithreaded_triplets_remain_correct() {
        // The paper's future-work parallelization: any mix of thread counts
        // between the parties must produce valid triplets.
        let ring = Ring::new(32);
        let scheme = FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let (m, n, o) = (6, 9, 4);
        let weights: Vec<i64> = (0..m * n).map(|_| rng.gen_range(-128i64..128)).collect();
        let r = Matrix::random(n, o, &ring, &mut rng);
        for (st, ct) in [(1usize, 3usize), (4, 1), (3, 2)] {
            let (w2, r2, s1, s2) = (weights.clone(), r.clone(), scheme.clone(), scheme.clone());
            let (u, v, _) = run_pair(
                NetworkModel::instant(),
                move |ch| {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(78);
                    let mut kk =
                        FragmentChooser::setup(ch, OfflineMode::Iknp, &mut rng).expect("setup");
                    let cfg = TripletConfig::new(TripletMode::MultiBatch).with_threads(st);
                    triplet_server_with(ch, &mut kk, &w2, m, n, o, &s1, ring, cfg).expect("server")
                },
                move |ch| {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(79);
                    let mut kk =
                        FragmentSender::setup(ch, OfflineMode::Iknp, &mut rng).expect("setup");
                    let cfg = TripletConfig::new(TripletMode::MultiBatch).with_threads(ct);
                    triplet_client_with(ch, &mut kk, &r2, m, &s2, ring, cfg, &mut rng)
                        .expect("client")
                },
            );
            let expect = expected_product(&weights, m, n, &r, ring);
            assert_eq!(u.add(&v, &ring), expect, "server {st} threads, client {ct} threads");
        }
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn zero_threads_rejected() {
        let _ = TripletConfig::for_batch(1).with_threads(0);
    }
}
