//! Shared execution options for the secure-inference parties.
//!
//! [`SecureServer`](crate::inference::SecureServer),
//! [`SecureClient`](crate::inference::SecureClient),
//! [`CnnServer`](crate::cnn::CnnServer) and [`CnnClient`](crate::cnn::CnnClient)
//! all carry the same two knobs — the activation variant and the triplet
//! worker-thread count — with the same defaults and the same validation.
//! [`ExecConfig`] holds them once; the party types embed it and delegate
//! their builder methods here.

use crate::matmul::{TripletConfig, TripletMode};
use crate::relu::ReluVariant;

/// Validates a worker-thread count.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub(crate) fn checked_threads(threads: usize) -> usize {
    assert!(threads > 0, "thread count must be positive");
    threads
}

/// Execution options shared by every inference party: activation variant
/// (must match the peer's) and triplet worker threads (local-only; the
/// transcript is identical for any thread count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Activation protocol variant. Both parties must agree.
    pub variant: ReluVariant,
    /// Worker threads for triplet mask computation (1 = the paper's
    /// single-core setting).
    pub threads: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig { variant: ReluVariant::Oblivious, threads: 1 }
    }
}

impl ExecConfig {
    /// The paper's defaults: oblivious ReLU, single-core.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the activation variant.
    #[must_use]
    pub fn with_variant(mut self, variant: ReluVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Sets the worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = checked_threads(threads);
        self
    }

    /// The triplet configuration for an explicit message-layout mode.
    #[must_use]
    pub fn triplet(&self, mode: TripletMode) -> TripletConfig {
        TripletConfig::new(mode).with_threads(self.threads)
    }

    /// The triplet configuration with the paper's batch-size selection rule.
    #[must_use]
    pub fn triplet_for_batch(&self, o: usize) -> TripletConfig {
        TripletConfig::for_batch(o).with_threads(self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let cfg = ExecConfig::new();
        assert_eq!(cfg.variant, ReluVariant::Oblivious);
        assert_eq!(cfg.threads, 1);
    }

    #[test]
    fn builders_compose() {
        let cfg = ExecConfig::new().with_variant(ReluVariant::Optimized).with_threads(4);
        assert_eq!(cfg.variant, ReluVariant::Optimized);
        assert_eq!(cfg.triplet_for_batch(1).threads, 4);
        assert_eq!(cfg.triplet_for_batch(1).mode, TripletMode::OneBatch);
        assert_eq!(cfg.triplet_for_batch(3).mode, TripletMode::MultiBatch);
        assert_eq!(cfg.triplet(TripletMode::OneBatch).mode, TripletMode::OneBatch);
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn zero_threads_rejected() {
        let _ = ExecConfig::new().with_threads(0);
    }
}
