//! Shared execution options for the secure-inference parties.
//!
//! [`SecureServer`](crate::inference::SecureServer),
//! [`SecureClient`](crate::inference::SecureClient),
//! [`CnnServer`](crate::cnn::CnnServer) and [`CnnClient`](crate::cnn::CnnClient)
//! all carry the same two knobs — the activation variant and the triplet
//! worker-thread count — with the same defaults and the same validation.
//! [`ExecConfig`] holds them once; the party types embed it and delegate
//! their builder methods here.

use crate::matmul::{TripletConfig, TripletMode};
use crate::relu::ReluVariant;
use std::time::Duration;

/// Validates a worker-thread count.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub(crate) fn checked_threads(threads: usize) -> usize {
    assert!(threads > 0, "thread count must be positive");
    threads
}

/// Execution options shared by every inference party: activation variant
/// (must match the peer's) and triplet worker threads (local-only; the
/// transcript is identical for any thread count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Activation protocol variant. Both parties must agree.
    pub variant: ReluVariant,
    /// Worker threads for triplet mask computation (1 = the paper's
    /// single-core setting).
    pub threads: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig { variant: ReluVariant::Oblivious, threads: 1 }
    }
}

impl ExecConfig {
    /// The paper's defaults: oblivious ReLU, single-core.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the activation variant.
    #[must_use]
    pub fn with_variant(mut self, variant: ReluVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Sets the worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = checked_threads(threads);
        self
    }

    /// The triplet configuration for an explicit message-layout mode.
    #[must_use]
    pub fn triplet(&self, mode: TripletMode) -> TripletConfig {
        TripletConfig::new(mode).with_threads(self.threads)
    }

    /// The triplet configuration with the paper's batch-size selection rule.
    #[must_use]
    pub fn triplet_for_batch(&self, o: usize) -> TripletConfig {
        TripletConfig::for_batch(o).with_threads(self.threads)
    }
}

/// Deadline budget for a resilient session, applied via
/// [`Transport::set_read_timeout`](abnn2_net::Transport::set_read_timeout)
/// and
/// [`Transport::set_phase_budget`](abnn2_net::Transport::set_phase_budget).
///
/// `None` anywhere means "unbounded" for that knob. The defaults
/// ([`SessionDeadlines::default`]) are deliberately unbounded so plain
/// (non-resilient) runs behave exactly as before; the resilient drivers
/// default to [`SessionDeadlines::lan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionDeadlines {
    /// Longest a single `recv` may block waiting for the peer.
    pub read_timeout: Option<Duration>,
    /// Budget for the whole offline phase (handshake + base OTs +
    /// triplets).
    pub offline_budget: Option<Duration>,
    /// Budget for the whole online phase.
    pub online_budget: Option<Duration>,
}

impl SessionDeadlines {
    /// No deadlines at all: every operation may block forever.
    #[must_use]
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Generous defaults for a LAN: 10 s per read, 120 s per phase.
    #[must_use]
    pub fn lan() -> Self {
        SessionDeadlines {
            read_timeout: Some(Duration::from_secs(10)),
            offline_budget: Some(Duration::from_secs(120)),
            online_budget: Some(Duration::from_secs(120)),
        }
    }

    /// Uniform read timeout with phase budgets at 20× that, handy for
    /// tests that want everything to fail fast.
    #[must_use]
    pub fn uniform(read_timeout: Duration) -> Self {
        SessionDeadlines {
            read_timeout: Some(read_timeout),
            offline_budget: Some(read_timeout * 20),
            online_budget: Some(read_timeout * 20),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let cfg = ExecConfig::new();
        assert_eq!(cfg.variant, ReluVariant::Oblivious);
        assert_eq!(cfg.threads, 1);
    }

    #[test]
    fn builders_compose() {
        let cfg = ExecConfig::new().with_variant(ReluVariant::Optimized).with_threads(4);
        assert_eq!(cfg.variant, ReluVariant::Optimized);
        assert_eq!(cfg.triplet_for_batch(1).threads, 4);
        assert_eq!(cfg.triplet_for_batch(1).mode, TripletMode::OneBatch);
        assert_eq!(cfg.triplet_for_batch(3).mode, TripletMode::MultiBatch);
        assert_eq!(cfg.triplet(TripletMode::OneBatch).mode, TripletMode::OneBatch);
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn zero_threads_rejected() {
        let _ = ExecConfig::new().with_threads(0);
    }

    #[test]
    fn deadline_presets() {
        assert_eq!(SessionDeadlines::unbounded(), SessionDeadlines::default());
        assert!(SessionDeadlines::unbounded().read_timeout.is_none());
        let lan = SessionDeadlines::lan();
        assert!(lan.read_timeout.unwrap() < lan.offline_budget.unwrap());
        let u = SessionDeadlines::uniform(Duration::from_millis(100));
        assert_eq!(u.read_timeout, Some(Duration::from_millis(100)));
        assert_eq!(u.online_budget, Some(Duration::from_secs(2)));
    }
}
