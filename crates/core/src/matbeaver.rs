//! Matrix Beaver triples: the offline resource behind [`LayerOp::MatMulSS`].
//!
//! The scalar Beaver triples in [`crate::beaver`] generalize to matrices:
//! a triple is `(X, Y, Z)` with `X` of shape `m × k`, `Y` of shape `k × n`
//! and `Z₀ + Z₁ = (X₀ + X₁)·(Y₀ + Y₁)` over the ring. The online
//! open-and-combine ([`mul_matrix_shares`]) costs one
//! [`MatmulOpenings`] frame each way — both parties open `D = A − X`,
//! `E = B − Y` and locally combine
//!
//! ```text
//! Pₚ = Zₚ + D·Yₚ + Xₚ·E + (p == 0 ? D·E : 0)
//! ```
//!
//! so `P₀ + P₁ = A·B` exactly. Two offline paths produce the triples:
//!
//! * **interactive** ([`generate_matrix_p0`]/[`generate_matrix_p1`]) — the
//!   cross terms `X₀·Y₁` and `X₁·Y₀` reduce to `m·n·k` scalar Gilboa OT
//!   products over dedicated IKNP sessions, reusing the exact
//!   chooser/sender halves of [`crate::beaver`]; the flattening order
//!   `((i·n) + j)·k + κ` is part of the wire contract and must match on
//!   both sides,
//! * **dealer** ([`deal_matrix_triple`]) — a trusted dealer samples both
//!   halves locally (warm-pool bundles, [`crate::bundle`]).
//!
//! A `MatMulSS` op's *graph-level* operand `B` may be stored transposed
//! (`transpose_b`, the attention `Q·Kᵀ` shape); transposition is linear, so
//! each party transposes its share locally before calling into this module
//! — the triple always lives in effective (post-transpose) `k × n` space.
//!
//! [`LayerOp::MatMulSS`]: abnn2_nn::graph::LayerOp::MatMulSS
//! [`MatmulOpenings`]: crate::frames::MatmulOpenings

use crate::beaver::{gilboa_chooser, gilboa_sender};
use crate::frames::MatmulOpenings;
use crate::ProtocolError;
use abnn2_math::{Matrix, Ring};
use abnn2_net::Transport;
use abnn2_ot::{IknpReceiver, IknpSender};
use rand::Rng;

/// One party's share of a matrix multiplication triple `Z = X·Y`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixTriple {
    /// Share of the left mask `X` (`m × k`).
    pub x: Matrix,
    /// Share of the right mask `Y` (`k × n`).
    pub y: Matrix,
    /// Share of the product `Z = X·Y` (`m × n`).
    pub z: Matrix,
}

impl MatrixTriple {
    /// The triple's `(m, k, n)` dimensions.
    #[must_use]
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.x.rows(), self.x.cols(), self.y.cols())
    }

    /// Whether the triple fits a product of shape `(m × k) · (k × n)`.
    #[must_use]
    pub fn fits(&self, m: usize, k: usize, n: usize) -> bool {
        self.dims() == (m, k, n)
    }
}

/// Flattens the cross-term operands in the shared `((i·n) + j)·k + κ`
/// order: entry `idx` pairs `x[i, κ]` with `y[κ, j]`.
fn flatten_cross(x: &Matrix, y: &Matrix) -> (Vec<u64>, Vec<u64>) {
    let (m, k, n) = (x.rows(), x.cols(), y.cols());
    let mut xs = Vec::with_capacity(m * n * k);
    let mut ys = Vec::with_capacity(m * n * k);
    for i in 0..m {
        for j in 0..n {
            for kk in 0..k {
                xs.push(x.get(i, kk));
                ys.push(y.get(kk, j));
            }
        }
    }
    (xs, ys)
}

/// Folds per-cross-product shares back into an `m × n` matrix: chunk
/// `(i, j)` of length `k` sums into `out[i, j]`.
fn fold_cross(shares: &[u64], m: usize, k: usize, n: usize, ring: Ring) -> Matrix {
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let base = ((i * n) + j) * k;
            let sum = shares[base..base + k].iter().fold(0u64, |acc, &v| ring.add(acc, v));
            out.set(i, j, sum);
        }
    }
    out
}

/// Interactive matrix-triple generation, "party 0" (server) side: samples
/// `X₀, Y₀`, runs the Gilboa cross products (chooser on `X₀` first, then
/// sender from `Y₀`), and assembles `Z₀ = X₀·Y₀ + ⟨X₀·Y₁⟩ + ⟨X₁·Y₀⟩`.
///
/// # Errors
///
/// Returns [`ProtocolError`] on OT failure.
#[allow(clippy::too_many_arguments)]
pub fn generate_matrix_p0<T: Transport, R: Rng + ?Sized>(
    ch: &mut T,
    ot_r: &mut IknpReceiver,
    ot_s: &mut IknpSender,
    m: usize,
    k: usize,
    n: usize,
    ring: Ring,
    rng: &mut R,
) -> Result<MatrixTriple, ProtocolError> {
    let x0 = Matrix::random(m, k, &ring, rng);
    let y0 = Matrix::random(k, n, &ring, rng);
    // X₀·Y₁: we choose on bits of X₀'s flattened cross entries.
    let (xs, _) = flatten_cross(&x0, &y0);
    let t1 = gilboa_chooser(ch, ot_r, &xs, ring)?;
    // X₁·Y₀: we supply correlations from Y₀'s flattened cross entries.
    let (_, ys) = flatten_cross(&x0, &y0);
    let w2 = gilboa_sender(ch, ot_s, &ys, ring)?;
    let z0 = x0
        .mul(&y0, &ring)
        .add(&fold_cross(&t1, m, k, n, ring), &ring)
        .add(&fold_cross(&w2, m, k, n, ring), &ring);
    Ok(MatrixTriple { x: x0, y: y0, z: z0 })
}

/// Interactive matrix-triple generation, "party 1" (client) side — the
/// mirror of [`generate_matrix_p0`]: sender from `Y₁` first, then chooser
/// on `X₁`.
///
/// # Errors
///
/// Returns [`ProtocolError`] on OT failure.
#[allow(clippy::too_many_arguments)]
pub fn generate_matrix_p1<T: Transport, R: Rng + ?Sized>(
    ch: &mut T,
    ot_s: &mut IknpSender,
    ot_r: &mut IknpReceiver,
    m: usize,
    k: usize,
    n: usize,
    ring: Ring,
    rng: &mut R,
) -> Result<MatrixTriple, ProtocolError> {
    let x1 = Matrix::random(m, k, &ring, rng);
    let y1 = Matrix::random(k, n, &ring, rng);
    let (_, ys) = flatten_cross(&x1, &y1);
    let w1 = gilboa_sender(ch, ot_s, &ys, ring)?;
    let (xs, _) = flatten_cross(&x1, &y1);
    let t2 = gilboa_chooser(ch, ot_r, &xs, ring)?;
    let z1 = x1
        .mul(&y1, &ring)
        .add(&fold_cross(&w1, m, k, n, ring), &ring)
        .add(&fold_cross(&t2, m, k, n, ring), &ring);
    Ok(MatrixTriple { x: x1, y: y1, z: z1 })
}

/// Dealer-mode triple: samples both halves locally so that
/// `Z₀ + Z₁ = (X₀ + X₁)·(Y₀ + Y₁)`. Returns `(party 0, party 1)` shares.
pub fn deal_matrix_triple<R: Rng + ?Sized>(
    m: usize,
    k: usize,
    n: usize,
    ring: Ring,
    rng: &mut R,
) -> (MatrixTriple, MatrixTriple) {
    let x0 = Matrix::random(m, k, &ring, rng);
    let x1 = Matrix::random(m, k, &ring, rng);
    let y0 = Matrix::random(k, n, &ring, rng);
    let y1 = Matrix::random(k, n, &ring, rng);
    let z1 = Matrix::random(m, n, &ring, rng);
    let z = x0.add(&x1, &ring).mul(&y0.add(&y1, &ring), &ring);
    let z0 = z.sub(&z1, &ring);
    (MatrixTriple { x: x0, y: y0, z: z0 }, MatrixTriple { x: x1, y: y1, z: z1 })
}

/// Online open-and-combine: multiplies secret-shared matrices `A` (`m × k`)
/// and `B` (`k × n`) with a precomputed triple. Both parties call this
/// symmetrically (`party` ∈ {0, 1}); one [`MatmulOpenings`] frame each way.
/// Returns this party's additive share of `A·B` (pre-truncation — the
/// caller feeds it to the reconstruct-truncate-reshare circuit).
///
/// # Errors
///
/// [`ProtocolError::Dimension`] if the operands or triple disagree with
/// `(m, k, n)`; [`ProtocolError::Malformed`] on a bad peer opening.
pub fn mul_matrix_shares<T: Transport>(
    ch: &mut T,
    triple: &MatrixTriple,
    a: &Matrix,
    b: &Matrix,
    ring: Ring,
    party: u8,
) -> Result<Matrix, ProtocolError> {
    let (m, k, n) = triple.dims();
    if a.rows() != m || a.cols() != k || b.rows() != k || b.cols() != n {
        return Err(ProtocolError::Dimension("operands do not fit the matrix triple"));
    }
    let d_own = a.sub(&triple.x, &ring);
    let e_own = b.sub(&triple.y, &ring);
    let mut opening = Vec::with_capacity(m * k + k * n);
    opening.extend_from_slice(d_own.as_slice());
    opening.extend_from_slice(e_own.as_slice());
    ch.send_frame(&MatmulOpenings(ring.encode_slice(&opening)))?;
    let MatmulOpenings(theirs_bytes) = ch.recv_frame()?;
    if theirs_bytes.len() != (m * k + k * n) * ring.byte_len() {
        return Err(ProtocolError::Malformed("matmul opening length"));
    }
    let theirs = ring.decode_slice(&theirs_bytes);
    let d = d_own.add(&Matrix::new(m, k, theirs[..m * k].to_vec()), &ring);
    let e = e_own.add(&Matrix::new(k, n, theirs[m * k..].to_vec()), &ring);
    let mut p = triple.z.add(&d.mul(&triple.y, &ring), &ring).add(&triple.x.mul(&e, &ring), &ring);
    if party == 0 {
        p = p.add(&d.mul(&e, &ring), &ring);
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_net::{run_pair, Endpoint, NetworkModel};
    use rand::SeedableRng;

    fn with_matrix_triples<A: Send, B: Send>(
        m: usize,
        k: usize,
        n: usize,
        f0: impl FnOnce(&mut Endpoint, MatrixTriple) -> A + Send,
        f1: impl FnOnce(&mut Endpoint, MatrixTriple) -> B + Send,
    ) -> (A, B) {
        let ring = Ring::new(32);
        let (a, b, _) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(500);
                let mut ot_r = IknpReceiver::setup(ch, &mut rng).expect("setup r");
                let mut ot_s = IknpSender::setup(ch, &mut rng).expect("setup s");
                let t = generate_matrix_p0(ch, &mut ot_r, &mut ot_s, m, k, n, ring, &mut rng)
                    .expect("gen");
                f0(ch, t)
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(501);
                let mut ot_s = IknpSender::setup(ch, &mut rng).expect("setup s");
                let mut ot_r = IknpReceiver::setup(ch, &mut rng).expect("setup r");
                let t = generate_matrix_p1(ch, &mut ot_s, &mut ot_r, m, k, n, ring, &mut rng)
                    .expect("gen");
                f1(ch, t)
            },
        );
        (a, b)
    }

    fn assert_triple_relation(t0: &MatrixTriple, t1: &MatrixTriple, ring: Ring) {
        let x = t0.x.add(&t1.x, &ring);
        let y = t0.y.add(&t1.y, &ring);
        let z = t0.z.add(&t1.z, &ring);
        assert_eq!(z, x.mul(&y, &ring));
    }

    #[test]
    fn interactive_triples_satisfy_the_relation() {
        let ring = Ring::new(32);
        let (t0, t1) = with_matrix_triples(3, 4, 2, |_, t| t, |_, t| t);
        assert_eq!(t0.dims(), (3, 4, 2));
        assert!(t0.fits(3, 4, 2) && !t0.fits(4, 3, 2));
        assert_triple_relation(&t0, &t1, ring);
    }

    #[test]
    fn dealt_triples_satisfy_the_relation() {
        let ring = Ring::new(16);
        let mut rng = rand::rngs::StdRng::seed_from_u64(502);
        let (t0, t1) = deal_matrix_triple(2, 3, 5, ring, &mut rng);
        assert_triple_relation(&t0, &t1, ring);
    }

    #[test]
    fn shared_matrix_multiplication_is_correct() {
        let ring = Ring::new(32);
        let (m, k, n) = (2, 3, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(503);
        let a = Matrix::random(m, k, &ring, &mut rng);
        let b = Matrix::random(k, n, &ring, &mut rng);
        let a1 = Matrix::random(m, k, &ring, &mut rng);
        let b1 = Matrix::random(k, n, &ring, &mut rng);
        let a0 = a.sub(&a1, &ring);
        let b0 = b.sub(&b1, &ring);
        let (p0, p1) = with_matrix_triples(
            m,
            k,
            n,
            move |ch, t| mul_matrix_shares(ch, &t, &a0, &b0, ring, 0).expect("mul p0"),
            move |ch, t| mul_matrix_shares(ch, &t, &a1, &b1, ring, 1).expect("mul p1"),
        );
        assert_eq!(p0.add(&p1, &ring), a.mul(&b, &ring));
    }

    #[test]
    fn mismatched_operands_rejected() {
        let ring = Ring::new(16);
        let mut rng = rand::rngs::StdRng::seed_from_u64(504);
        let (t0, _) = deal_matrix_triple(2, 3, 2, ring, &mut rng);
        let bad_a = Matrix::zeros(3, 2);
        let b = Matrix::zeros(3, 2);
        let (r, _, _) = run_pair(
            NetworkModel::instant(),
            move |ch| mul_matrix_shares(ch, &t0, &bad_a, &b, ring, 0),
            move |_ch| (),
        );
        assert_eq!(
            r.err(),
            Some(ProtocolError::Dimension("operands do not fit the matrix triple"))
        );
    }
}
