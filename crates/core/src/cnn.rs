//! Secure CNN inference (extension beyond the paper's FC-only evaluation).
//!
//! Convolutions reduce to the paper's §4.1 matrix protocol through the
//! im2col lowering — a *local linear rearrangement*, so each party applies
//! it to its own share and the triplet protocol runs unchanged with
//! `o = oh·ow` output positions (multi-batch packing for free). Max-pooling
//! mixes shared values non-linearly and runs in a garbled circuit
//! ([`abnn2_gc::circuits::max_pool_reshare_vec_circuit`]), re-sharing each
//! window maximum just like the ReLU layers.
//!
//! The pipeline (conv → ReLU(+truncation) → max-pool → dense stack) lowers
//! to the [`LayerGraph`] IR and runs on the shared planner/executor in
//! [`crate::graph`]; [`CnnServer`] and [`CnnClient`] are single-sample
//! convenience adapters over [`SecureServer`]/[`SecureClient`], which
//! accept CNN models directly via
//! [`SecureServer::for_model`]/[`SecureClient::for_model`]. Results match
//! [`QuantizedCnn::forward_exact`] share-for-share.

use crate::config::ExecConfig;
use crate::inference::{SecureClient, SecureServer};
use crate::relu::ReluVariant;
use crate::ProtocolError;
use abnn2_gc::circuit::{bits_to_u64, u64_to_bits};
use abnn2_gc::{circuits, YaoEvaluator, YaoGarbler};
use abnn2_math::Ring;
use abnn2_net::Transport;
use abnn2_nn::conv::{pool_windows, ConvShape, QuantizedCnn};
use abnn2_nn::graph::LayerGraph;
use abnn2_nn::quant::QuantConfig;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Public description of a served CNN (architecture, no weights).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublicCnnInfo {
    /// Fixed-point hyper-parameters.
    pub config: QuantConfig,
    /// Input feature-map shape.
    pub in_shape: ConvShape,
    /// Filter count of the conv layer.
    pub out_channels: usize,
    /// Kernel height / width / stride.
    pub kernel: (usize, usize, usize),
    /// Pooling window.
    pub pool_window: usize,
    /// Dense dims after flattening the pooled map: `[in, hidden…, out]`.
    pub dense_dims: Vec<usize>,
}

impl From<&QuantizedCnn> for PublicCnnInfo {
    fn from(net: &QuantizedCnn) -> Self {
        let mut dense_dims = vec![net.dense[0].in_dim];
        dense_dims.extend(net.dense.iter().map(|l| l.out_dim));
        PublicCnnInfo {
            config: net.config.clone(),
            in_shape: net.conv.in_shape,
            out_channels: net.conv.out_channels,
            kernel: (net.conv.kh, net.conv.kw, net.conv.stride),
            pool_window: net.pool_window,
            dense_dims,
        }
    }
}

impl PublicCnnInfo {
    /// The layer graph this architecture lowers to.
    #[must_use]
    pub fn graph(&self) -> LayerGraph {
        LayerGraph::cnn(
            self.in_shape,
            self.out_channels,
            self.kernel,
            self.pool_window,
            &self.dense_dims,
            self.config.clone(),
        )
    }
}

/// Secure max-pool, server (evaluator) side: pools its shares of a CHW map
/// into fresh shares of the window maxima.
///
/// # Errors
///
/// Returns [`ProtocolError`] on mismatch or garbling failure.
pub fn maxpool_server<T: Transport>(
    ch: &mut T,
    yao: &mut YaoEvaluator,
    shares: &[u64],
    shape: ConvShape,
    window: usize,
    ring: Ring,
) -> Result<Vec<u64>, ProtocolError> {
    if shares.len() != shape.len() {
        return Err(ProtocolError::Dimension("share map length mismatch"));
    }
    let windows = pool_windows(shape, window);
    let bits = ring.bits() as usize;
    let circuit = circuits::max_pool_reshare_vec_circuit(bits, window * window, windows.len());
    let mut my_bits = Vec::with_capacity(windows.len() * window * window * bits);
    for w in &windows {
        for &idx in w {
            my_bits.extend(u64_to_bits(shares[idx], bits));
        }
    }
    let out = yao.run(ch, &circuit, &my_bits)?;
    Ok(out.chunks(bits).map(bits_to_u64).collect())
}

/// Secure max-pool, client (garbler) side: supplies its shares and the
/// fresh output masks `z1` (one per window).
///
/// # Errors
///
/// Returns [`ProtocolError`] on mismatch or garbling failure.
#[allow(clippy::too_many_arguments)]
pub fn maxpool_client<T: Transport, RNG: Rng + ?Sized>(
    ch: &mut T,
    yao: &mut YaoGarbler,
    shares: &[u64],
    z1: &[u64],
    shape: ConvShape,
    window: usize,
    ring: Ring,
    rng: &mut RNG,
) -> Result<(), ProtocolError> {
    if shares.len() != shape.len() {
        return Err(ProtocolError::Dimension("share map length mismatch"));
    }
    let windows = pool_windows(shape, window);
    if z1.len() != windows.len() {
        return Err(ProtocolError::Dimension("mask count must equal window count"));
    }
    let bits = ring.bits() as usize;
    let circuit = circuits::max_pool_reshare_vec_circuit(bits, window * window, windows.len());
    let mut my_bits = Vec::with_capacity((windows.len() * (window * window + 1)) * bits);
    for w in &windows {
        for &idx in w {
            my_bits.extend(u64_to_bits(shares[idx], bits));
        }
    }
    for &z in z1 {
        my_bits.extend(u64_to_bits(z, bits));
    }
    yao.run(ch, &circuit, &my_bits, rng)?;
    Ok(())
}

/// The CNN-serving party: a single-sample adapter over [`SecureServer`]
/// driving the shared graph executor.
#[derive(Debug, Clone)]
pub struct CnnServer {
    inner: SecureServer,
}

impl CnnServer {
    /// Serves a quantized CNN (batch size 1).
    #[must_use]
    pub fn new(net: QuantizedCnn) -> Self {
        CnnServer { inner: SecureServer::for_model(net) }
    }

    /// Replaces the whole execution configuration.
    #[must_use]
    pub fn with_exec(mut self, exec: ExecConfig) -> Self {
        self.inner = self.inner.with_exec(exec);
        self
    }

    /// Selects the activation variant (must match the client's).
    #[must_use]
    pub fn with_variant(mut self, variant: ReluVariant) -> Self {
        self.inner = self.inner.with_variant(variant);
        self
    }

    /// Multi-core triplet generation.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.inner = self.inner.with_threads(threads);
        self
    }

    /// The public model description.
    ///
    /// # Panics
    ///
    /// Never panics: a `CnnServer` always serves a CNN.
    #[must_use]
    pub fn public_info(&self) -> PublicCnnInfo {
        match self.inner.public_model() {
            crate::graph::PublicModel::Cnn(info) => info,
            _ => unreachable!("CnnServer serves a CNN"),
        }
    }

    /// Runs one secure prediction, server side (handshake, offline
    /// triplets, online graph walk, logits opened toward the client).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on any subprotocol failure.
    pub fn run<T: Transport, R: Rng + ?Sized>(
        &self,
        ch: &mut T,
        rng: &mut R,
    ) -> Result<(), ProtocolError> {
        self.inner.run(ch, 1, rng)
    }
}

/// The CNN data-owning party: a single-sample adapter over
/// [`SecureClient`] driving the shared graph executor.
#[derive(Debug, Clone)]
pub struct CnnClient {
    inner: SecureClient,
}

impl CnnClient {
    /// Creates a client for a served CNN.
    #[must_use]
    pub fn new(info: PublicCnnInfo) -> Self {
        CnnClient { inner: SecureClient::for_model(info) }
    }

    /// Replaces the whole execution configuration.
    #[must_use]
    pub fn with_exec(mut self, exec: ExecConfig) -> Self {
        self.inner = self.inner.with_exec(exec);
        self
    }

    /// Selects the activation variant (must match the server's).
    #[must_use]
    pub fn with_variant(mut self, variant: ReluVariant) -> Self {
        self.inner = self.inner.with_variant(variant);
        self
    }

    /// Multi-core triplet generation.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.inner = self.inner.with_threads(threads);
        self
    }

    /// Runs one secure prediction over a fixed-point CHW image; returns the
    /// reconstructed raw outputs at `f + f_w` fractional bits.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on any subprotocol failure, or
    /// [`ProtocolError::Dimension`] if the image does not match the
    /// model's input shape.
    pub fn run<T: Transport, R: Rng + ?Sized>(
        &self,
        ch: &mut T,
        image_fp: &[u64],
        rng: &mut R,
    ) -> Result<Vec<u64>, ProtocolError> {
        if image_fp.len() != self.inner.public_model().graph().input_len() {
            return Err(ProtocolError::Dimension("image length mismatch"));
        }
        let state = self.inner.offline(ch, 1, rng)?;
        let y = self.inner.online_raw(ch, state, &[image_fp.to_vec()], rng)?;
        Ok(y.col(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_math::FragmentScheme;
    use abnn2_net::{run_pair, NetworkModel};
    use abnn2_nn::conv::QuantizedConv;
    use abnn2_nn::quant::QuantizedDense;
    use rand::SeedableRng;

    fn small_cnn(seed: u64, scheme: FragmentScheme) -> QuantizedCnn {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (lo, hi) = scheme.weight_range();
        let in_shape = ConvShape { channels: 1, height: 8, width: 8 };
        let conv = QuantizedConv {
            out_channels: 2,
            in_shape,
            kh: 3,
            kw: 3,
            stride: 1,
            weights: (0..2 * 9).map(|_| rng.gen_range(lo..=hi)).collect(),
            bias: vec![5, 3],
        };
        // conv out 2×6×6 → pool 2 → 2×3×3 = 18 → dense 18→6→4.
        let mk_dense =
            |out_dim: usize, in_dim: usize, rng: &mut rand::rngs::StdRng| QuantizedDense {
                out_dim,
                in_dim,
                weights: (0..out_dim * in_dim).map(|_| rng.gen_range(lo..=hi)).collect(),
                bias: (0..out_dim as u64).collect(),
            };
        let d1 = mk_dense(6, 18, &mut rng);
        let d2 = mk_dense(4, 6, &mut rng);
        let config = QuantConfig {
            ring: Ring::new(32),
            frac_bits: 6,
            weight_frac_bits: if scheme.eta() <= 2 { 0 } else { 3 },
            scheme,
        };
        QuantizedCnn { config, conv, pool_window: 2, dense: vec![d1, d2] }
    }

    fn check_cnn(scheme: FragmentScheme, seed: u64) {
        let cnn = small_cnn(seed, scheme);
        let ring = cnn.config.ring;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 1);
        // A mildly-scaled fixed-point image.
        let image: Vec<u64> = (0..cnn.conv.in_shape.len())
            .map(|_| ring.reduce(rng.gen_range(0..1u64 << cnn.config.frac_bits)))
            .collect();
        let expect = cnn.forward_exact(&image);

        let server = CnnServer::new(cnn.clone());
        let client = CnnClient::new(server.public_info());
        let image2 = image.clone();
        let (srv, got, _) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 2);
                server.run(ch, &mut rng)
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 3);
                client.run(ch, &image2, &mut rng).expect("client")
            },
        );
        srv.expect("server");
        assert_eq!(got, expect, "secure CNN must equal forward_exact");
    }

    #[test]
    fn secure_cnn_matches_plaintext_8bit() {
        check_cnn(FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]), 200);
    }

    #[test]
    fn secure_cnn_matches_plaintext_ternary() {
        check_cnn(FragmentScheme::ternary(), 210);
    }

    #[test]
    fn wrong_image_length_rejected_before_any_io() {
        let cnn = small_cnn(240, FragmentScheme::ternary());
        let client = CnnClient::new(PublicCnnInfo::from(&cnn));
        let (mut a, _b) = abnn2_net::Endpoint::pair(NetworkModel::instant());
        let mut rng = rand::rngs::StdRng::seed_from_u64(241);
        assert_eq!(
            client.run(&mut a, &[0u64; 3], &mut rng).err(),
            Some(ProtocolError::Dimension("image length mismatch"))
        );
        assert_eq!(a.snapshot().bytes_sent, 0, "no traffic before the check");
    }

    #[test]
    fn secure_maxpool_standalone() {
        let ring = Ring::new(32);
        let shape = ConvShape { channels: 2, height: 4, width: 4 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(220);
        let values: Vec<i64> = (0..shape.len() as i64).map(|i| (i * 37 % 101) - 50).collect();
        let x: Vec<u64> = values.iter().map(|&v| ring.from_i64(v)).collect();
        let x1 = ring.sample_vec(&mut rng, x.len());
        let x0 = ring.sub_vec(&x, &x1);
        let z1 = ring.sample_vec(&mut rng, 2 * 2 * 2);
        let (x1c, z1c) = (x1.clone(), z1.clone());
        let (z0, (), _) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(221);
                let mut yao = YaoEvaluator::setup(ch, &mut rng).expect("setup");
                maxpool_server(ch, &mut yao, &x0, shape, 2, ring).expect("server")
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(222);
                let mut yao = YaoGarbler::setup(ch, &mut rng).expect("setup");
                maxpool_client(ch, &mut yao, &x1c, &z1c, shape, 2, ring, &mut rng).expect("client");
            },
        );
        let (expect, _) = abnn2_nn::conv::maxpool_ring(&x, shape, 2, ring);
        for (w, &e) in expect.iter().enumerate() {
            assert_eq!(ring.add(z0[w], z1[w]), e, "window {w}");
        }
    }

    #[test]
    fn mismatched_mask_count_rejected() {
        // z1 must have one entry per pooling window; mismatches are caught
        // before any garbling.
        let ring = Ring::new(32);
        let shape = ConvShape { channels: 1, height: 4, width: 4 };
        let (z0_res, (), _) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(230);
                let mut yao = YaoEvaluator::setup(ch, &mut rng).expect("setup");
                maxpool_server(ch, &mut yao, &[0u64; 16], shape, 2, ring)
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(231);
                let mut yao = YaoGarbler::setup(ch, &mut rng).expect("setup");
                // 3 masks instead of 4 windows: dimension error, no I/O.
                let err =
                    maxpool_client(ch, &mut yao, &[0u64; 16], &[0u64; 3], shape, 2, ring, &mut rng)
                        .expect_err("must reject");
                assert!(matches!(err, ProtocolError::Dimension(_)));
            },
        );
        // Server fails because the garbler never sent material.
        assert!(z0_res.is_err());
    }
}
