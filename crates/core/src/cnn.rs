//! Secure CNN inference (extension beyond the paper's FC-only evaluation).
//!
//! Convolutions reduce to the paper's §4.1 matrix protocol through the
//! im2col lowering — a *local linear rearrangement*, so each party applies
//! it to its own share and the triplet protocol runs unchanged with
//! `o = oh·ow` output positions (multi-batch packing for free). Max-pooling
//! mixes shared values non-linearly and runs in a garbled circuit
//! ([`abnn2_gc::circuits::max_pool_reshare_vec_circuit`]), re-sharing each
//! window maximum just like the ReLU layers.
//!
//! Pipeline (batch size 1): conv → ReLU(+truncation) → max-pool → dense
//! stack, exactly matching [`QuantizedCnn::forward_exact`] share-for-share.

use crate::config::ExecConfig;
use crate::inference::layer_share;
use crate::matmul::{triplet_client_with, triplet_server_with, TripletMode};
use crate::relu::{relu_client, relu_server, ReluVariant};
use crate::session::{ClientSession, ServerSession};
use crate::ProtocolError;
use abnn2_gc::circuit::{bits_to_u64, u64_to_bits};
use abnn2_gc::{circuits, YaoEvaluator, YaoGarbler};
use abnn2_math::{Matrix, Ring};
use abnn2_net::Transport;
use abnn2_nn::conv::{im2col, pool_windows, ConvShape, QuantizedCnn};
use abnn2_nn::quant::QuantConfig;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Public description of a served CNN (architecture, no weights).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublicCnnInfo {
    /// Fixed-point hyper-parameters.
    pub config: QuantConfig,
    /// Input feature-map shape.
    pub in_shape: ConvShape,
    /// Filter count of the conv layer.
    pub out_channels: usize,
    /// Kernel height / width / stride.
    pub kernel: (usize, usize, usize),
    /// Pooling window.
    pub pool_window: usize,
    /// Dense dims after flattening the pooled map: `[in, hidden…, out]`.
    pub dense_dims: Vec<usize>,
}

impl From<&QuantizedCnn> for PublicCnnInfo {
    fn from(net: &QuantizedCnn) -> Self {
        let mut dense_dims = vec![net.dense[0].in_dim];
        dense_dims.extend(net.dense.iter().map(|l| l.out_dim));
        PublicCnnInfo {
            config: net.config.clone(),
            in_shape: net.conv.in_shape,
            out_channels: net.conv.out_channels,
            kernel: (net.conv.kh, net.conv.kw, net.conv.stride),
            pool_window: net.pool_window,
            dense_dims,
        }
    }
}

impl PublicCnnInfo {
    fn conv_out_shape(&self) -> ConvShape {
        let (kh, kw, stride) = self.kernel;
        let (oh, ow) = abnn2_nn::conv::conv_out_dims(self.in_shape, kh, kw, stride);
        ConvShape { channels: self.out_channels, height: oh, width: ow }
    }
}

/// Secure max-pool, server (evaluator) side: pools its shares of a CHW map
/// into fresh shares of the window maxima.
///
/// # Errors
///
/// Returns [`ProtocolError`] on mismatch or garbling failure.
pub fn maxpool_server<T: Transport>(
    ch: &mut T,
    yao: &mut YaoEvaluator,
    shares: &[u64],
    shape: ConvShape,
    window: usize,
    ring: Ring,
) -> Result<Vec<u64>, ProtocolError> {
    if shares.len() != shape.len() {
        return Err(ProtocolError::Dimension("share map length mismatch"));
    }
    let windows = pool_windows(shape, window);
    let bits = ring.bits() as usize;
    let circuit = circuits::max_pool_reshare_vec_circuit(bits, window * window, windows.len());
    let mut my_bits = Vec::with_capacity(windows.len() * window * window * bits);
    for w in &windows {
        for &idx in w {
            my_bits.extend(u64_to_bits(shares[idx], bits));
        }
    }
    let out = yao.run(ch, &circuit, &my_bits)?;
    Ok(out.chunks(bits).map(bits_to_u64).collect())
}

/// Secure max-pool, client (garbler) side: supplies its shares and the
/// fresh output masks `z1` (one per window).
///
/// # Errors
///
/// Returns [`ProtocolError`] on mismatch or garbling failure.
#[allow(clippy::too_many_arguments)]
pub fn maxpool_client<T: Transport, RNG: Rng + ?Sized>(
    ch: &mut T,
    yao: &mut YaoGarbler,
    shares: &[u64],
    z1: &[u64],
    shape: ConvShape,
    window: usize,
    ring: Ring,
    rng: &mut RNG,
) -> Result<(), ProtocolError> {
    if shares.len() != shape.len() {
        return Err(ProtocolError::Dimension("share map length mismatch"));
    }
    let windows = pool_windows(shape, window);
    if z1.len() != windows.len() {
        return Err(ProtocolError::Dimension("mask count must equal window count"));
    }
    let bits = ring.bits() as usize;
    let circuit = circuits::max_pool_reshare_vec_circuit(bits, window * window, windows.len());
    let mut my_bits = Vec::with_capacity((windows.len() * (window * window + 1)) * bits);
    for w in &windows {
        for &idx in w {
            my_bits.extend(u64_to_bits(shares[idx], bits));
        }
    }
    for &z in z1 {
        my_bits.extend(u64_to_bits(z, bits));
    }
    yao.run(ch, &circuit, &my_bits, rng)?;
    Ok(())
}

/// The CNN-serving party.
#[derive(Debug, Clone)]
pub struct CnnServer {
    net: QuantizedCnn,
    exec: ExecConfig,
}

impl CnnServer {
    /// Serves a quantized CNN (batch size 1).
    #[must_use]
    pub fn new(net: QuantizedCnn) -> Self {
        CnnServer { net, exec: ExecConfig::new() }
    }

    /// Replaces the whole execution configuration.
    #[must_use]
    pub fn with_exec(mut self, exec: ExecConfig) -> Self {
        self.exec = exec;
        self
    }

    /// Selects the activation variant (must match the client's).
    #[must_use]
    pub fn with_variant(mut self, variant: ReluVariant) -> Self {
        self.exec = self.exec.with_variant(variant);
        self
    }

    /// Multi-core triplet generation.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.exec = self.exec.with_threads(threads);
        self
    }

    /// The public model description.
    #[must_use]
    pub fn public_info(&self) -> PublicCnnInfo {
        PublicCnnInfo::from(&self.net)
    }

    /// Runs one secure prediction, server side.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on any subprotocol failure.
    pub fn run<T: Transport, R: Rng + ?Sized>(
        &self,
        ch: &mut T,
        rng: &mut R,
    ) -> Result<(), ProtocolError> {
        let ring = self.net.config.ring;
        let fw = self.net.config.weight_frac_bits;
        let conv = &self.net.conv;
        let mut session = ServerSession::setup(ch, rng)?;

        // Offline: conv triplet (o = output positions) + dense triplets.
        let out_shape = conv.out_shape();
        let positions = out_shape.height * out_shape.width;
        let cfg = self.exec.triplet(TripletMode::MultiBatch);
        let u_conv = triplet_server_with(
            ch,
            &mut session.kk,
            &conv.weights,
            conv.out_channels,
            conv.patch_len(),
            positions,
            &self.net.config.scheme,
            ring,
            cfg,
        )?;
        let dense_cfg = self.exec.triplet(TripletMode::OneBatch);
        let mut us = Vec::with_capacity(self.net.dense.len());
        for layer in &self.net.dense {
            us.push(triplet_server_with(
                ch,
                &mut session.kk,
                &layer.weights,
                layer.out_dim,
                layer.in_dim,
                1,
                &self.net.config.scheme,
                ring,
                dense_cfg,
            )?);
        }

        // Online: blinded image in, conv share, ReLU, max-pool, dense stack.
        let x0_bytes = ch.recv()?;
        if x0_bytes.len() != conv.in_shape.len() * ring.byte_len() {
            return Err(ProtocolError::Malformed("blinded image length"));
        }
        let x0 = ring.decode_slice(&x0_bytes);
        let x0_col = im2col(&x0, conv.in_shape, conv.kh, conv.kw, conv.stride);
        // y0 = W·x0_col + bias + U (same structure as a dense layer share).
        let mut y0 = Matrix::zeros(conv.out_channels, positions);
        for oc in 0..conv.out_channels {
            let row = &conv.weights[oc * conv.patch_len()..(oc + 1) * conv.patch_len()];
            for p in 0..positions {
                let mut acc = ring.add(conv.bias[oc], u_conv.get(oc, p));
                for (j, &w) in row.iter().enumerate() {
                    acc = acc.wrapping_add(x0_col.get(j, p).wrapping_mul(w as u64));
                }
                y0.set(oc, p, ring.reduce(acc));
            }
        }

        let z0 = relu_server(ch, &mut session.yao, y0.as_slice(), ring, fw, self.exec.variant)?;
        let pooled0 =
            maxpool_server(ch, &mut session.yao, &z0, out_shape, self.net.pool_window, ring)?;

        let mut cur = Matrix::column(pooled0);
        let last = self.net.dense.len() - 1;
        for (l, layer) in self.net.dense.iter().enumerate() {
            let y0 = layer_share(layer, &cur, &us[l], ring);
            if l == last {
                ch.send(&ring.encode_slice(y0.as_slice()))?;
                return Ok(());
            }
            let z0 = relu_server(ch, &mut session.yao, y0.as_slice(), ring, fw, self.exec.variant)?;
            cur = Matrix::column(z0);
        }
        unreachable!("loop returns at the last layer")
    }
}

/// The CNN data-owning party.
#[derive(Debug, Clone)]
pub struct CnnClient {
    info: PublicCnnInfo,
    exec: ExecConfig,
}

impl CnnClient {
    /// Creates a client for a served CNN.
    #[must_use]
    pub fn new(info: PublicCnnInfo) -> Self {
        CnnClient { info, exec: ExecConfig::new() }
    }

    /// Replaces the whole execution configuration.
    #[must_use]
    pub fn with_exec(mut self, exec: ExecConfig) -> Self {
        self.exec = exec;
        self
    }

    /// Selects the activation variant (must match the server's).
    #[must_use]
    pub fn with_variant(mut self, variant: ReluVariant) -> Self {
        self.exec = self.exec.with_variant(variant);
        self
    }

    /// Multi-core triplet generation.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.exec = self.exec.with_threads(threads);
        self
    }

    /// Runs one secure prediction over a fixed-point CHW image; returns the
    /// reconstructed raw outputs at `f + f_w` fractional bits.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on any subprotocol failure.
    pub fn run<T: Transport, R: Rng + ?Sized>(
        &self,
        ch: &mut T,
        image_fp: &[u64],
        rng: &mut R,
    ) -> Result<Vec<u64>, ProtocolError> {
        let ring = self.info.config.ring;
        let fw = self.info.config.weight_frac_bits;
        let (kh, kw, stride) = self.info.kernel;
        if image_fp.len() != self.info.in_shape.len() {
            return Err(ProtocolError::Dimension("image length mismatch"));
        }
        let mut session = ClientSession::setup(ch, rng)?;

        // Offline randomness: image mask, ReLU output mask (= pool input
        // share), pool output mask (= dense-0 input share), dense masks.
        let out_shape = self.info.conv_out_shape();
        let r_img = ring.sample_vec(rng, self.info.in_shape.len());
        let r_col = im2col(&r_img, self.info.in_shape, kh, kw, stride);
        let cfg = self.exec.triplet(TripletMode::MultiBatch);
        let v_conv = triplet_client_with(
            ch,
            &mut session.kk,
            &r_col,
            self.info.out_channels,
            &self.info.config.scheme,
            ring,
            cfg,
            rng,
        )?;
        let dense_cfg = self.exec.triplet(TripletMode::OneBatch);
        let n_dense = self.info.dense_dims.len() - 1;
        let mut r_dense = Vec::with_capacity(n_dense);
        let mut v_dense = Vec::with_capacity(n_dense);
        for l in 0..n_dense {
            let r = Matrix::random(self.info.dense_dims[l], 1, &ring, rng);
            let v = triplet_client_with(
                ch,
                &mut session.kk,
                &r,
                self.info.dense_dims[l + 1],
                &self.info.config.scheme,
                ring,
                dense_cfg,
                rng,
            )?;
            r_dense.push(r);
            v_dense.push(v);
        }
        let r_relu = ring.sample_vec(rng, out_shape.len());

        // Online.
        let x0 = ring.sub_vec(image_fp, &r_img);
        ch.send(&ring.encode_slice(&x0))?;

        // Conv ReLU: y1 = V_conv (channel-major = CHW order), z1 = r_relu.
        relu_client(
            ch,
            &mut session.yao,
            v_conv.as_slice(),
            &r_relu,
            ring,
            fw,
            self.exec.variant,
            rng,
        )?;
        // Max-pool: y1 = r_relu, z1 = dense-0 input mask.
        maxpool_client(
            ch,
            &mut session.yao,
            &r_relu,
            r_dense[0].as_slice(),
            out_shape,
            self.info.pool_window,
            ring,
            rng,
        )?;

        for l in 0..n_dense {
            let y1 = &v_dense[l];
            if l == n_dense - 1 {
                let m = self.info.dense_dims[n_dense];
                let y0_bytes = ch.recv()?;
                if y0_bytes.len() != m * ring.byte_len() {
                    return Err(ProtocolError::Malformed("output share length"));
                }
                let y0 = ring.decode_slice(&y0_bytes);
                return Ok(ring.add_vec(&y0, y1.as_slice()));
            }
            relu_client(
                ch,
                &mut session.yao,
                y1.as_slice(),
                r_dense[l + 1].as_slice(),
                ring,
                fw,
                self.exec.variant,
                rng,
            )?;
        }
        unreachable!("loop returns at the last layer")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_math::FragmentScheme;
    use abnn2_net::{run_pair, NetworkModel};
    use abnn2_nn::conv::QuantizedConv;
    use abnn2_nn::quant::QuantizedDense;
    use rand::SeedableRng;

    fn small_cnn(seed: u64, scheme: FragmentScheme) -> QuantizedCnn {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (lo, hi) = scheme.weight_range();
        let in_shape = ConvShape { channels: 1, height: 8, width: 8 };
        let conv = QuantizedConv {
            out_channels: 2,
            in_shape,
            kh: 3,
            kw: 3,
            stride: 1,
            weights: (0..2 * 9).map(|_| rng.gen_range(lo..=hi)).collect(),
            bias: vec![5, 3],
        };
        // conv out 2×6×6 → pool 2 → 2×3×3 = 18 → dense 18→6→4.
        let mk_dense =
            |out_dim: usize, in_dim: usize, rng: &mut rand::rngs::StdRng| QuantizedDense {
                out_dim,
                in_dim,
                weights: (0..out_dim * in_dim).map(|_| rng.gen_range(lo..=hi)).collect(),
                bias: (0..out_dim as u64).collect(),
            };
        let d1 = mk_dense(6, 18, &mut rng);
        let d2 = mk_dense(4, 6, &mut rng);
        let config = QuantConfig {
            ring: Ring::new(32),
            frac_bits: 6,
            weight_frac_bits: if scheme.eta() <= 2 { 0 } else { 3 },
            scheme,
        };
        QuantizedCnn { config, conv, pool_window: 2, dense: vec![d1, d2] }
    }

    fn check_cnn(scheme: FragmentScheme, seed: u64) {
        let cnn = small_cnn(seed, scheme);
        let ring = cnn.config.ring;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 1);
        // A mildly-scaled fixed-point image.
        let image: Vec<u64> = (0..cnn.conv.in_shape.len())
            .map(|_| ring.reduce(rng.gen_range(0..1u64 << cnn.config.frac_bits)))
            .collect();
        let expect = cnn.forward_exact(&image);

        let server = CnnServer::new(cnn.clone());
        let client = CnnClient::new(server.public_info());
        let image2 = image.clone();
        let (srv, got, _) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 2);
                server.run(ch, &mut rng)
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 3);
                client.run(ch, &image2, &mut rng).expect("client")
            },
        );
        srv.expect("server");
        assert_eq!(got, expect, "secure CNN must equal forward_exact");
    }

    #[test]
    fn secure_cnn_matches_plaintext_8bit() {
        check_cnn(FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]), 200);
    }

    #[test]
    fn secure_cnn_matches_plaintext_ternary() {
        check_cnn(FragmentScheme::ternary(), 210);
    }

    #[test]
    fn secure_maxpool_standalone() {
        let ring = Ring::new(32);
        let shape = ConvShape { channels: 2, height: 4, width: 4 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(220);
        let values: Vec<i64> = (0..shape.len() as i64).map(|i| (i * 37 % 101) - 50).collect();
        let x: Vec<u64> = values.iter().map(|&v| ring.from_i64(v)).collect();
        let x1 = ring.sample_vec(&mut rng, x.len());
        let x0 = ring.sub_vec(&x, &x1);
        let z1 = ring.sample_vec(&mut rng, 2 * 2 * 2);
        let (x1c, z1c) = (x1.clone(), z1.clone());
        let (z0, (), _) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(221);
                let mut yao = YaoEvaluator::setup(ch, &mut rng).expect("setup");
                maxpool_server(ch, &mut yao, &x0, shape, 2, ring).expect("server")
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(222);
                let mut yao = YaoGarbler::setup(ch, &mut rng).expect("setup");
                maxpool_client(ch, &mut yao, &x1c, &z1c, shape, 2, ring, &mut rng).expect("client");
            },
        );
        let (expect, _) = abnn2_nn::conv::maxpool_ring(&x, shape, 2, ring);
        for (w, &e) in expect.iter().enumerate() {
            assert_eq!(ring.add(z0[w], z1[w]), e, "window {w}");
        }
    }

    #[test]
    fn mismatched_mask_count_rejected() {
        // z1 must have one entry per pooling window; mismatches are caught
        // before any garbling.
        let ring = Ring::new(32);
        let shape = ConvShape { channels: 1, height: 4, width: 4 };
        let (z0_res, (), _) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(230);
                let mut yao = YaoEvaluator::setup(ch, &mut rng).expect("setup");
                maxpool_server(ch, &mut yao, &[0u64; 16], shape, 2, ring)
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(231);
                let mut yao = YaoGarbler::setup(ch, &mut rng).expect("setup");
                // 3 masks instead of 4 windows: dimension error, no I/O.
                let err =
                    maxpool_client(ch, &mut yao, &[0u64; 16], &[0u64; 3], shape, 2, ring, &mut rng)
                        .expect_err("must reject");
                assert!(matches!(err, ProtocolError::Dimension(_)));
            },
        );
        // Server fails because the garbler never sent material.
        assert!(z0_res.is_err());
    }
}
