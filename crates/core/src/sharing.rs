//! Additive secret sharing over ℤ_{2^ℓ} (§2.3 of the paper).

use abnn2_math::{Matrix, Ring};
use rand::Rng;

/// Splits `x` into two additive shares: `⟨x⟩₀ + ⟨x⟩₁ = x (mod 2^ℓ)`.
///
/// The paper's `Share(x)` with the roles as used by the client: the second
/// share is the uniformly random mask `r`.
#[must_use]
pub fn share<R: Rng + ?Sized>(x: u64, ring: Ring, rng: &mut R) -> (u64, u64) {
    let r = ring.sample(rng);
    (ring.sub(x, r), r)
}

/// Reconstructs `x = ⟨x⟩₀ + ⟨x⟩₁ (mod 2^ℓ)` — the paper's `Reconst`.
#[must_use]
pub fn reconstruct(s0: u64, s1: u64, ring: Ring) -> u64 {
    ring.add(s0, s1)
}

/// Shares every element of a slice.
#[must_use]
pub fn share_vec<R: Rng + ?Sized>(xs: &[u64], ring: Ring, rng: &mut R) -> (Vec<u64>, Vec<u64>) {
    let r = ring.sample_vec(rng, xs.len());
    (ring.sub_vec(xs, &r), r)
}

/// Reconstructs a shared matrix.
///
/// # Panics
///
/// Panics if the shapes differ.
#[must_use]
pub fn reconstruct_matrix(s0: &Matrix, s1: &Matrix, ring: Ring) -> Matrix {
    s0.add(s1, &ring)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    proptest! {
        #[test]
        fn share_reconstruct_round_trip(bits in 1u32..=64, x: u64, seed: u64) {
            let ring = Ring::new(bits);
            let x = ring.reduce(x);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let (s0, s1) = share(x, ring, &mut rng);
            prop_assert_eq!(reconstruct(s0, s1, ring), x);
        }

        #[test]
        fn shares_are_additively_homomorphic(x: u64, y: u64, seed: u64) {
            let ring = Ring::new(32);
            let (x, y) = (ring.reduce(x), ring.reduce(y));
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let (x0, x1) = share(x, ring, &mut rng);
            let (y0, y1) = share(y, ring, &mut rng);
            prop_assert_eq!(
                reconstruct(ring.add(x0, y0), ring.add(x1, y1), ring),
                ring.add(x, y)
            );
        }

        #[test]
        fn vector_sharing(seed: u64) {
            let ring = Ring::new(24);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let xs = ring.sample_vec(&mut rng, 50);
            let (s0, s1) = share_vec(&xs, ring, &mut rng);
            for i in 0..xs.len() {
                prop_assert_eq!(reconstruct(s0[i], s1[i], ring), xs[i]);
            }
        }
    }

    #[test]
    fn share_of_zero_is_random_pair() {
        let ring = Ring::new(32);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let (a0, a1) = share(0, ring, &mut rng);
        let (b0, b1) = share(0, ring, &mut rng);
        assert_eq!(reconstruct(a0, a1, ring), 0);
        assert_ne!((a0, a1), (b0, b1), "fresh randomness per sharing");
    }
}
