//! Closed-form OT and communication counts (Table 1 of the paper).
//!
//! For a matrix product `W (m×n) · R (n×o)` over ℤ_{2^ℓ} with security
//! parameter κ:
//!
//! | protocol | #OT | communication (bits) |
//! |---|---|---|
//! | SecureML | ℓ(ℓ+1)/128 · mno | mnoℓ(ℓ+1)(1 + κ/64) |
//! | ABNN² multi-batch | γmn | γmn(oℓN + 2κ) |
//! | ABNN² one-batch | γmn | γmn(ℓ(N−1) + 2κ) |

/// Security parameter κ used throughout the paper (bits).
pub const KAPPA: f64 = 128.0;

/// OT count and communication volume for one matrix multiplication.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatmulCost {
    /// Number of (amortized) OT invocations.
    pub ot_count: f64,
    /// Total communication in bits.
    pub comm_bits: f64,
}

impl MatmulCost {
    /// Communication in mebibytes.
    #[must_use]
    pub fn comm_mib(&self) -> f64 {
        self.comm_bits / 8.0 / (1024.0 * 1024.0)
    }
}

/// SecureML's OT-based triplet generation (their §B, as summarized in
/// Table 1): ℓ correlated OTs per scalar product with 128-bit packing.
#[must_use]
pub fn secureml(m: usize, n: usize, o: usize, l: u32) -> MatmulCost {
    let (m, n, o, l) = (m as f64, n as f64, o as f64, f64::from(l));
    MatmulCost {
        ot_count: l * (l + 1.0) / 128.0 * m * n * o,
        comm_bits: m * n * o * l * (l + 1.0) * (1.0 + KAPPA / 64.0),
    }
}

/// ABNN² multi-batch (§4.1.2): γmn OTs, each carrying N messages of o
/// packed ring elements, plus the 2κ-bit KK13 column share per OT.
#[must_use]
pub fn ours_multi_batch(
    m: usize,
    n: usize,
    o: usize,
    l: u32,
    big_n: u64,
    gamma: usize,
) -> MatmulCost {
    let gmn = (gamma * m * n) as f64;
    MatmulCost {
        ot_count: gmn,
        comm_bits: gmn * (o as f64 * f64::from(l) * big_n as f64 + 2.0 * KAPPA),
    }
}

/// ABNN² one-batch (§4.1.3): γmn OTs with the correlated-OT trick — N−1
/// messages of ℓ bits each, plus 2κ per OT.
#[must_use]
pub fn ours_one_batch(m: usize, n: usize, l: u32, big_n: u64, gamma: usize) -> MatmulCost {
    let gmn = (gamma * m * n) as f64;
    MatmulCost {
        ot_count: gmn,
        comm_bits: gmn * (f64::from(l) * (big_n as f64 - 1.0) + 2.0 * KAPPA),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secureml_formula() {
        // 128×128 by 128×1, ℓ = 64: ℓ(ℓ+1)/128 = 32.5 OTs per element.
        let c = secureml(128, 128, 1, 64);
        assert!((c.ot_count - 32.5 * 128.0 * 128.0).abs() < 1e-6);
        assert!(c.comm_bits > 0.0);
    }

    #[test]
    fn ours_beats_secureml_at_low_bitwidth() {
        // Binary weights, one batch: the paper's headline advantage.
        let ours = ours_one_batch(128, 1000, 64, 2, 1);
        let them = secureml(128, 1000, 1, 64);
        assert!(ours.comm_bits < them.comm_bits / 10.0);
        assert!(ours.ot_count < them.ot_count);
    }

    #[test]
    fn one_batch_cheaper_than_multi_batch_at_o_1() {
        let one = ours_one_batch(10, 10, 32, 4, 4);
        let multi = ours_multi_batch(10, 10, 1, 32, 4, 4);
        assert!(one.comm_bits < multi.comm_bits);
        assert_eq!(one.ot_count, multi.ot_count);
    }

    #[test]
    fn multi_batch_amortizes() {
        // Per-prediction communication falls as o grows.
        let o1 = ours_multi_batch(128, 784, 1, 32, 4, 4);
        let o128 = ours_multi_batch(128, 784, 128, 32, 4, 4);
        assert!(o128.comm_bits / 128.0 < o1.comm_bits);
    }

    #[test]
    fn mib_conversion() {
        let c = MatmulCost { ot_count: 0.0, comm_bits: 8.0 * 1024.0 * 1024.0 };
        assert!((c.comm_mib() - 1.0).abs() < 1e-12);
    }
}
