//! Offline-triplet bundles: the checkpointable, poolable unit of offline
//! work.
//!
//! A prediction's offline phase produces, per linear layer, a dot-product
//! triplet `U + V = W·R` (§4.1): the server holds `U`, the client holds its
//! chosen randomness `R` and the share `V`. That state is
//! *connection-independent* — plain ring elements — which is what makes both
//! reconnect-and-resume (PR 2) and server-side precomputation (`abnn2-serve`)
//! possible. This module extracts it into two concrete types so a bundle
//! checkpointed after a connection loss and a bundle manufactured ahead of
//! time by a precompute pool are literally the same struct:
//!
//! * [`ServerBundle`] — per-layer `U` shares plus the batch size,
//! * [`ClientBundle`] — per-layer `R` and `V` plus the batch size, with a
//!   canonical wire encoding ([`ClientBundle::encode`]) so a server-side
//!   dealer can hand the client its half,
//! * [`BundleKey`] — (model digest, scheme digest, batch): everything a
//!   bundle depends on. Two sessions with equal keys can consume each
//!   other's bundles.
//!
//! [`dealer_bundle`] manufactures a matched pair *locally, without OT*: it
//! samples `R` and `V` uniformly and solves `U = W·R + b·0 − V` directly,
//! since the dealer (the model holder) knows `W`. This is the
//! trusted-dealer / server-aided trust model (MiniONN's precomputation
//! pattern taken to its endpoint); see DESIGN.md §6 for the privacy
//! implications and when the interactive §4.1 OT offline phase must be used
//! instead.

use crate::handshake::{model_digests, SessionParams};
use crate::inference::PublicModelInfo;
use crate::ProtocolError;
use abnn2_math::{Matrix, Ring};
use abnn2_nn::quant::QuantizedNetwork;
use rand::Rng;

/// Everything an offline-triplet bundle depends on: bundles are
/// interchangeable exactly when their keys are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BundleKey {
    /// Leading 8 bytes of SHA-256 over the model architecture (layer
    /// dimensions plus fixed-point configuration) — same derivation as the
    /// handshake's [`SessionParams::model_digest`].
    pub model_digest: [u8; 8],
    /// Leading 8 bytes of SHA-256 over the fragment scheme's canonical
    /// label and weight range.
    pub scheme_digest: [u8; 8],
    /// Number of samples per prediction batch the bundle was sized for.
    pub batch: u32,
}

impl BundleKey {
    /// The key for a served model at a given batch size.
    #[must_use]
    pub fn for_model(info: &PublicModelInfo, batch: usize) -> Self {
        let (scheme_digest, model_digest) = model_digests(info);
        BundleKey { model_digest, scheme_digest, batch: batch as u32 }
    }

    /// The key implied by a handshake's negotiated session parameters.
    #[must_use]
    pub fn from_params(params: &SessionParams) -> Self {
        BundleKey {
            model_digest: params.model_digest,
            scheme_digest: params.scheme_digest,
            batch: params.batch,
        }
    }
}

/// The server's half of an offline-triplet bundle: per-layer `U` shares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerBundle {
    /// Per-layer server triplet shares, `dims[l+1] × batch` each.
    pub us: Vec<Matrix>,
    /// Batch size the bundle was generated for.
    pub batch: usize,
}

/// The client's half of an offline-triplet bundle: per-layer randomness `R`
/// and triplet shares `V`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientBundle {
    /// Per-layer blinding randomness, `dims[l] × batch` each.
    pub rs: Vec<Matrix>,
    /// Per-layer client triplet shares, `dims[l+1] × batch` each.
    pub vs: Vec<Matrix>,
    /// Batch size the bundle was generated for.
    pub batch: usize,
}

impl ClientBundle {
    /// Serializes the bundle for the wire: each layer's `R` then `V`, as
    /// ring-encoded elements, concatenated in layer order. The shape is
    /// implied by the model dimensions both parties agreed on in the
    /// handshake, so no lengths are embedded.
    #[must_use]
    pub fn encode(&self, ring: Ring) -> Vec<u8> {
        let total: usize = self.rs.iter().chain(self.vs.iter()).map(Matrix::len).sum();
        let mut out = Vec::with_capacity(total * ring.byte_len());
        for (r, v) in self.rs.iter().zip(&self.vs) {
            out.extend_from_slice(&ring.encode_slice(r.as_slice()));
            out.extend_from_slice(&ring.encode_slice(v.as_slice()));
        }
        out
    }

    /// Parses a bundle encoded by [`encode`](Self::encode) against the
    /// model shape it was negotiated for.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] if the byte length does not match the
    /// model dimensions and batch size exactly.
    pub fn decode(
        bytes: &[u8],
        info: &PublicModelInfo,
        batch: usize,
    ) -> Result<Self, ProtocolError> {
        let ring = info.config.ring;
        let bl = ring.byte_len();
        let n_layers = info.dims.len() - 1;
        let expect: usize =
            (0..n_layers).map(|l| (info.dims[l] + info.dims[l + 1]) * batch * bl).sum();
        if bytes.len() != expect {
            return Err(ProtocolError::Malformed("client bundle length"));
        }
        let mut rs = Vec::with_capacity(n_layers);
        let mut vs = Vec::with_capacity(n_layers);
        let mut off = 0;
        for l in 0..n_layers {
            let r_len = info.dims[l] * batch * bl;
            let v_len = info.dims[l + 1] * batch * bl;
            rs.push(Matrix::new(info.dims[l], batch, ring.decode_slice(&bytes[off..off + r_len])));
            off += r_len;
            vs.push(Matrix::new(
                info.dims[l + 1],
                batch,
                ring.decode_slice(&bytes[off..off + v_len]),
            ));
            off += v_len;
        }
        Ok(ClientBundle { rs, vs, batch })
    }
}

/// `W·R` over the ring, the right-hand side of the triplet relation.
fn weight_product(net: &QuantizedNetwork, layer: usize, r: &Matrix, ring: Ring) -> Matrix {
    let l = &net.layers[layer];
    let batch = r.cols();
    let mut wr = Matrix::zeros(l.out_dim, batch);
    for i in 0..l.out_dim {
        let row = l.row(i);
        for k in 0..batch {
            let mut acc = 0u64;
            for (j, &w) in row.iter().enumerate() {
                acc = acc.wrapping_add(r.get(j, k).wrapping_mul(w as u64));
            }
            wr.set(i, k, ring.reduce(acc));
        }
    }
    wr
}

/// Manufactures a matched offline-triplet bundle pair locally (dealer
/// style): for every layer, `R` and `V` are sampled uniformly and
/// `U = W·R − V`, so `U + V = W·R` holds by construction — the same
/// invariant the interactive §4.1 OT protocols establish, at a fraction of
/// the cost, in exchange for the dealer knowing both halves (see the module
/// docs for the trust model).
#[must_use]
pub fn dealer_bundle<R: Rng + ?Sized>(
    net: &QuantizedNetwork,
    batch: usize,
    rng: &mut R,
) -> (ServerBundle, ClientBundle) {
    let ring = net.config.ring;
    let dims = net.dims();
    let n_layers = dims.len() - 1;
    let mut rs = Vec::with_capacity(n_layers);
    let mut vs = Vec::with_capacity(n_layers);
    let mut us = Vec::with_capacity(n_layers);
    for l in 0..n_layers {
        let r = Matrix::random(dims[l], batch, &ring, rng);
        let v = Matrix::random(dims[l + 1], batch, &ring, rng);
        let u = weight_product(net, l, &r, ring).sub(&v, &ring);
        rs.push(r);
        vs.push(v);
        us.push(u);
    }
    (ServerBundle { us, batch }, ClientBundle { rs, vs, batch })
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_math::FragmentScheme;
    use abnn2_nn::quant::QuantConfig;
    use abnn2_nn::Network;
    use rand::SeedableRng;

    fn tiny(seed: u64) -> QuantizedNetwork {
        let net = Network::new(&[6, 5, 4, 3], seed);
        QuantizedNetwork::quantize(
            &net,
            QuantConfig {
                ring: Ring::new(32),
                frac_bits: 8,
                weight_frac_bits: 2,
                scheme: FragmentScheme::signed_bit_fields(&[2, 2]),
            },
        )
    }

    #[test]
    fn dealer_bundle_satisfies_triplet_relation() {
        let q = tiny(11);
        let ring = q.config.ring;
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let (server, client) = dealer_bundle(&q, 3, &mut rng);
        assert_eq!(server.batch, 3);
        for l in 0..q.layers.len() {
            let wr = weight_product(&q, l, &client.rs[l], ring);
            let sum = server.us[l].add(&client.vs[l], &ring);
            assert_eq!(sum, wr, "layer {l}: U + V must equal W·R");
        }
    }

    #[test]
    fn client_bundle_round_trips_on_the_wire() {
        let q = tiny(13);
        let info = PublicModelInfo::from(&q);
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let (_, client) = dealer_bundle(&q, 2, &mut rng);
        let bytes = client.encode(q.config.ring);
        let decoded = ClientBundle::decode(&bytes, &info, 2).unwrap();
        assert_eq!(decoded, client);
    }

    #[test]
    fn truncated_bundle_is_malformed() {
        let q = tiny(15);
        let info = PublicModelInfo::from(&q);
        let mut rng = rand::rngs::StdRng::seed_from_u64(16);
        let (_, client) = dealer_bundle(&q, 1, &mut rng);
        let mut bytes = client.encode(q.config.ring);
        bytes.pop();
        assert_eq!(
            ClientBundle::decode(&bytes, &info, 1).err(),
            Some(ProtocolError::Malformed("client bundle length"))
        );
    }

    #[test]
    fn keys_depend_on_model_scheme_and_batch() {
        let q = tiny(17);
        let info = PublicModelInfo::from(&q);
        let base = BundleKey::for_model(&info, 1);
        assert_eq!(base, BundleKey::for_model(&info, 1));
        assert_ne!(base, BundleKey::for_model(&info, 2));

        let mut other = info.clone();
        other.config.scheme = FragmentScheme::ternary();
        assert_ne!(base.scheme_digest, BundleKey::for_model(&other, 1).scheme_digest);

        let q2 = {
            let net = Network::new(&[6, 7, 3], 18);
            QuantizedNetwork::quantize(&net, q.config.clone())
        };
        let info2 = PublicModelInfo::from(&q2);
        assert_ne!(base.model_digest, BundleKey::for_model(&info2, 1).model_digest);

        // The handshake's view and the pool's view agree.
        let params = SessionParams::for_model(&info, crate::relu::ReluVariant::Oblivious, 1);
        assert_eq!(BundleKey::from_params(&params), base);
    }
}
