//! Offline-triplet bundles: the checkpointable, poolable unit of offline
//! work.
//!
//! A prediction's offline phase produces, per linear op of the layer
//! graph, a dot-product triplet `U + V = W·R` (§4.1): the server holds
//! `U`, the client holds its chosen randomness `R` and the share `V`. That
//! state is *connection-independent* — plain ring elements — which is what
//! makes both reconnect-and-resume (PR 2) and server-side precomputation
//! (`abnn2-serve`) possible. This module extracts it into two concrete
//! types so a bundle checkpointed after a connection loss and a bundle
//! manufactured ahead of time by a precompute pool are literally the same
//! struct:
//!
//! * [`ServerBundle`] — per-linear-op `U` shares plus the batch size,
//! * [`ClientBundle`] — the client masks `R` (input mask plus one fresh
//!   mask per re-sharing op) and per-linear-op `V`, with a versioned wire
//!   encoding ([`ClientBundle::encode`]) so a server-side dealer can hand
//!   the client its half,
//! * [`BundleKey`] — (model digest, scheme digest, batch): everything a
//!   bundle depends on. Two sessions with equal keys can consume each
//!   other's bundles. Keys derive from the graph digest, so CNN bundles
//!   pool exactly like MLP bundles.
//!
//! [`dealer_bundle_for`] manufactures a matched pair *locally, without
//! OT*: it walks the graph sampling `R` and `V` uniformly and solves
//! `U = W·R − V` directly, since the dealer (the model holder) knows `W`.
//! This is the trusted-dealer / server-aided trust model (MiniONN's
//! precomputation pattern taken to its endpoint); see DESIGN.md §6 for the
//! privacy implications and when the interactive §4.1 OT offline phase
//! must be used instead.

use crate::graph::{weight_product, SecureGraph, ServedModel};
use crate::handshake::{graph_digests, SessionParams};
use crate::inference::PublicModelInfo;
use crate::matbeaver::{deal_matrix_triple, MatrixTriple};
use crate::ProtocolError;
use abnn2_math::{Matrix, Ring};
use abnn2_nn::conv::im2col;
use abnn2_nn::graph::{LayerGraph, LayerOp};
use abnn2_nn::quant::QuantizedNetwork;
use abnn2_ot::OfflineMode;
use rand::Rng;

/// Version byte leading every encoded [`ClientBundle`]. v3 appends, after
/// the masks and triplet shares, one `X‖Y‖Z` matrix-triple section per
/// secret×secret matmul op in graph-walk order (empty for MLP/CNN graphs,
/// whose payload is byte-identical to v2 apart from this version byte).
/// v2 introduced the mask-major layout (all masks, then all triplet
/// shares); v1 bundles (unversioned, per-layer interleaved) are no longer
/// accepted.
pub const BUNDLE_LAYOUT_VERSION: u8 = 3;

/// Everything an offline-triplet bundle depends on: bundles are
/// interchangeable exactly when their keys are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BundleKey {
    /// Leading 8 bytes of SHA-256 over the canonical layer-graph
    /// description — same derivation as the handshake's
    /// [`SessionParams::model_digest`].
    pub model_digest: [u8; 8],
    /// Leading 8 bytes of SHA-256 over the fragment scheme's canonical
    /// label and weight range.
    pub scheme_digest: [u8; 8],
    /// Number of samples per prediction batch the bundle was sized for.
    pub batch: u32,
    /// The negotiated offline OT mode. Part of the key so an IKNP session
    /// can never consume a bundle pooled for silent sessions (or vice
    /// versa): the dealer content is identical, but accounting, pool
    /// sizing, and audit trails key on the mode a bundle was promised to.
    pub mode: OfflineMode,
}

impl BundleKey {
    /// The key for a layer graph at a given batch size, in the portable
    /// IKNP mode — the canonical derivation; the model-facing constructor
    /// delegates here. Use [`with_mode`](Self::with_mode) for silent
    /// sessions.
    #[must_use]
    pub fn for_graph(graph: &LayerGraph, batch: usize) -> Self {
        let (scheme_digest, model_digest) = graph_digests(graph);
        BundleKey { model_digest, scheme_digest, batch: batch as u32, mode: OfflineMode::Iknp }
    }

    /// The key for a served MLP at a given batch size.
    #[must_use]
    pub fn for_model(info: &PublicModelInfo, batch: usize) -> Self {
        Self::for_graph(&info.graph(), batch)
    }

    /// The key implied by a handshake's negotiated session parameters
    /// (portable IKNP mode; combine with [`with_mode`](Self::with_mode)
    /// for the reply's negotiated mode).
    #[must_use]
    pub fn from_params(params: &SessionParams) -> Self {
        BundleKey {
            model_digest: params.model_digest,
            scheme_digest: params.scheme_digest,
            batch: params.batch,
            mode: OfflineMode::Iknp,
        }
    }

    /// The same key under a different offline mode.
    #[must_use]
    pub fn with_mode(mut self, mode: OfflineMode) -> Self {
        self.mode = mode;
        self
    }
}

/// The server's half of an offline-triplet bundle: per-linear-op `U`
/// shares, in graph order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerBundle {
    /// Per-linear-op server triplet shares (`m × o` each, per the plan).
    pub us: Vec<Matrix>,
    /// Per-matmul-op matrix-triple shares, in graph order.
    pub mats: Vec<MatrixTriple>,
    /// Batch size the bundle was generated for.
    pub batch: usize,
}

/// The client's half of an offline-triplet bundle: the masks `R` and the
/// per-linear-op triplet shares `V`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientBundle {
    /// Client masks in consumption order: the input mask first, then one
    /// fresh mask per re-sharing op.
    pub rs: Vec<Matrix>,
    /// Per-linear-op client triplet shares, in graph order.
    pub vs: Vec<Matrix>,
    /// Per-matmul-op matrix-triple shares, in graph order.
    pub mats: Vec<MatrixTriple>,
    /// Batch size the bundle was generated for.
    pub batch: usize,
}

impl ClientBundle {
    /// Serializes the bundle for the wire (layout v3): the
    /// [`BUNDLE_LAYOUT_VERSION`] byte, then every mask `R`, then every
    /// triplet share `V`, then every matrix triple as `X‖Y‖Z`, as
    /// ring-encoded elements in graph order. Shapes are implied by the
    /// graph both parties agreed on in the handshake, so no lengths are
    /// embedded.
    #[must_use]
    pub fn encode(&self, ring: Ring) -> Vec<u8> {
        let total: usize = self.rs.iter().chain(self.vs.iter()).map(Matrix::len).sum::<usize>()
            + self.mats.iter().map(|t| t.x.len() + t.y.len() + t.z.len()).sum::<usize>();
        let mut out = Vec::with_capacity(1 + total * ring.byte_len());
        out.push(BUNDLE_LAYOUT_VERSION);
        for r in &self.rs {
            out.extend_from_slice(&ring.encode_slice(r.as_slice()));
        }
        for v in &self.vs {
            out.extend_from_slice(&ring.encode_slice(v.as_slice()));
        }
        for t in &self.mats {
            out.extend_from_slice(&ring.encode_slice(t.x.as_slice()));
            out.extend_from_slice(&ring.encode_slice(t.y.as_slice()));
            out.extend_from_slice(&ring.encode_slice(t.z.as_slice()));
        }
        out
    }

    /// Parses a bundle encoded by [`encode`](Self::encode) against the
    /// graph it was negotiated for.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] if the version byte is unknown or the
    /// byte length does not match the graph's mask and triplet shapes
    /// exactly.
    pub fn decode(bytes: &[u8], sg: &SecureGraph) -> Result<Self, ProtocolError> {
        let ring = sg.graph().config.ring;
        let bl = ring.byte_len();
        match bytes.first() {
            Some(&BUNDLE_LAYOUT_VERSION) => {}
            Some(_) => return Err(ProtocolError::Malformed("client bundle version")),
            None => return Err(ProtocolError::Malformed("client bundle length")),
        }
        let mask_shapes = sg.mask_shapes();
        let triplet_shapes = sg.triplet_shapes();
        let matmul_plans = sg.matmul_plans();
        let expect: usize = mask_shapes
            .iter()
            .chain(&triplet_shapes)
            .map(|&(rows, cols)| rows * cols * bl)
            .sum::<usize>()
            + matmul_plans.iter().map(|p| (p.m * p.k + p.k * p.n + p.m * p.n) * bl).sum::<usize>();
        if bytes.len() != 1 + expect {
            return Err(ProtocolError::Malformed("client bundle length"));
        }
        let mut off = 1;
        let mut take = |rows: usize, cols: usize| {
            let len = rows * cols * bl;
            let m = Matrix::new(rows, cols, ring.decode_slice(&bytes[off..off + len]));
            off += len;
            m
        };
        let rs = mask_shapes.iter().map(|&(r, c)| take(r, c)).collect();
        let vs = triplet_shapes.iter().map(|&(r, c)| take(r, c)).collect();
        let mats = matmul_plans
            .iter()
            .map(|p| MatrixTriple { x: take(p.m, p.k), y: take(p.k, p.n), z: take(p.m, p.n) })
            .collect();
        Ok(ClientBundle { rs, vs, mats, batch: sg.batch() })
    }
}

/// Manufactures a matched offline-triplet bundle pair locally (dealer
/// style) for any served topology: walking the graph, every mask `R` and
/// triplet share `V` is sampled uniformly and `U = W·R − V` (with `R`
/// im2col'ed for conv ops), so `U + V = W·R` holds by construction — the
/// same invariant the interactive §4.1 OT protocols establish, at a
/// fraction of the cost, in exchange for the dealer knowing both halves
/// (see the module docs for the trust model).
///
/// # Panics
///
/// Panics if `model` does not match the graph `sg` was built from.
#[must_use]
pub fn dealer_bundle_for<R: Rng + ?Sized>(
    model: &ServedModel,
    sg: &SecureGraph,
    rng: &mut R,
) -> (ServerBundle, ClientBundle) {
    let ring = sg.graph().config.ring;
    let batch = sg.batch();
    let mut rs = Vec::with_capacity(sg.graph().mask_count());
    let mut vs = Vec::with_capacity(sg.graph().linear_count());
    let mut us = Vec::with_capacity(sg.graph().linear_count());
    let mut mats0 = Vec::with_capacity(sg.graph().matmul_count());
    let mut mats1 = Vec::with_capacity(sg.graph().matmul_count());
    let mut tape: Vec<Matrix> = Vec::with_capacity(sg.graph().ops.len() + 1);
    tape.push(Matrix::random(sg.graph().input_len(), batch, &ring, rng));
    rs.push(tape[0].clone());
    let mut li = 0usize;
    for (i, op) in sg.graph().ops.iter().enumerate() {
        let out = match *op {
            LayerOp::Dense { out_dim, in_dim } => {
                let (weights, _) = model.linear_params(li);
                let v = Matrix::random(out_dim, batch, &ring, rng);
                let u = weight_product(weights, out_dim, in_dim, &tape[i], ring).sub(&v, &ring);
                us.push(u);
                vs.push(v.clone());
                li += 1;
                v
            }
            LayerOp::Linear { out_dim, in_dim, src } => {
                let (weights, _) = model.linear_params(li);
                let v = Matrix::random(out_dim, batch, &ring, rng);
                let u = weight_product(weights, out_dim, in_dim, &tape[src], ring).sub(&v, &ring);
                us.push(u);
                vs.push(v.clone());
                li += 1;
                v
            }
            LayerOp::Conv { out_channels, in_shape, kh, kw, stride } => {
                let (weights, _) = model.linear_params(li);
                let r_col = im2col(tape[i].as_slice(), in_shape, kh, kw, stride);
                let patch = in_shape.channels * kh * kw;
                let v = Matrix::random(out_channels, r_col.cols(), &ring, rng);
                let u = weight_product(weights, out_channels, patch, &r_col, ring).sub(&v, &ring);
                us.push(u);
                vs.push(v.clone());
                li += 1;
                v
            }
            LayerOp::MatMulSS { m, k, n, .. } => {
                let (t0, t1) = deal_matrix_triple(m, k, n, ring, rng);
                mats0.push(t0);
                mats1.push(t1);
                let fresh = Matrix::random(m * n, batch, &ring, rng);
                rs.push(fresh.clone());
                fresh
            }
            LayerOp::Relu { .. }
            | LayerOp::MaxPool { .. }
            | LayerOp::Softmax { .. }
            | LayerOp::Gelu { .. }
            | LayerOp::LayerNorm { .. } => {
                let fresh = Matrix::random(op.out_len(), batch, &ring, rng);
                rs.push(fresh.clone());
                fresh
            }
            LayerOp::Output { .. } => break,
        };
        tape.push(out);
    }
    (ServerBundle { us, mats: mats0, batch }, ClientBundle { rs, vs, mats: mats1, batch })
}

/// [`dealer_bundle_for`] specialized to the paper's MLP topology.
///
/// # Panics
///
/// Panics if `batch` is zero (a batch a [`SecureGraph`] would reject).
#[must_use]
pub fn dealer_bundle<R: Rng + ?Sized>(
    net: &QuantizedNetwork,
    batch: usize,
    rng: &mut R,
) -> (ServerBundle, ClientBundle) {
    let model = ServedModel::Mlp(net.clone());
    let sg = SecureGraph::new(model.graph(), batch).expect("valid MLP graph");
    dealer_bundle_for(&model, &sg, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_math::FragmentScheme;
    use abnn2_nn::quant::QuantConfig;
    use abnn2_nn::Network;
    use rand::SeedableRng;

    fn tiny(seed: u64) -> QuantizedNetwork {
        let net = Network::new(&[6, 5, 4, 3], seed);
        QuantizedNetwork::quantize(
            &net,
            QuantConfig {
                ring: Ring::new(32),
                frac_bits: 8,
                weight_frac_bits: 2,
                scheme: FragmentScheme::signed_bit_fields(&[2, 2]),
            },
        )
    }

    fn graph_of(q: &QuantizedNetwork, batch: usize) -> SecureGraph {
        SecureGraph::new(LayerGraph::from(q), batch).unwrap()
    }

    #[test]
    fn dealer_bundle_satisfies_triplet_relation() {
        let q = tiny(11);
        let ring = q.config.ring;
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let (server, client) = dealer_bundle(&q, 3, &mut rng);
        assert_eq!(server.batch, 3);
        for l in 0..q.layers.len() {
            let layer = &q.layers[l];
            let wr =
                weight_product(&layer.weights, layer.out_dim, layer.in_dim, &client.rs[l], ring);
            let sum = server.us[l].add(&client.vs[l], &ring);
            assert_eq!(sum, wr, "layer {l}: U + V must equal W·R");
        }
    }

    #[test]
    fn cnn_dealer_bundle_fits_the_graph() {
        use abnn2_nn::conv::{ConvShape, QuantizedConv};
        use abnn2_nn::quant::QuantizedDense;
        let config = QuantConfig {
            ring: Ring::new(32),
            frac_bits: 6,
            weight_frac_bits: 0,
            scheme: FragmentScheme::ternary(),
        };
        let cnn = abnn2_nn::QuantizedCnn {
            config,
            conv: QuantizedConv {
                out_channels: 2,
                in_shape: ConvShape { channels: 1, height: 8, width: 8 },
                kh: 3,
                kw: 3,
                stride: 1,
                weights: vec![1; 18],
                bias: vec![0, 0],
            },
            pool_window: 2,
            dense: vec![QuantizedDense {
                out_dim: 4,
                in_dim: 18,
                weights: vec![1; 72],
                bias: vec![0; 4],
            }],
        };
        let model = ServedModel::Cnn(cnn);
        let sg = SecureGraph::new(model.graph(), 1).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(19);
        let (server, client) = dealer_bundle_for(&model, &sg, &mut rng);
        // Conv U is 2×36 (positions as batch); masks follow mask_shapes.
        assert_eq!((server.us[0].rows(), server.us[0].cols()), (2, 36));
        let shapes: Vec<_> = client.rs.iter().map(|m| (m.rows(), m.cols())).collect();
        assert_eq!(shapes, sg.mask_shapes());
        // And the encoded form round-trips against the same graph.
        let ring = sg.graph().config.ring;
        let decoded = ClientBundle::decode(&client.encode(ring), &sg).unwrap();
        assert_eq!(decoded, client);
    }

    #[test]
    fn client_bundle_round_trips_on_the_wire() {
        let q = tiny(13);
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let (_, client) = dealer_bundle(&q, 2, &mut rng);
        let bytes = client.encode(q.config.ring);
        assert_eq!(bytes[0], BUNDLE_LAYOUT_VERSION);
        let decoded = ClientBundle::decode(&bytes, &graph_of(&q, 2)).unwrap();
        assert_eq!(decoded, client);
    }

    #[test]
    fn truncated_bundle_is_malformed() {
        let q = tiny(15);
        let mut rng = rand::rngs::StdRng::seed_from_u64(16);
        let (_, client) = dealer_bundle(&q, 1, &mut rng);
        let mut bytes = client.encode(q.config.ring);
        bytes.pop();
        assert_eq!(
            ClientBundle::decode(&bytes, &graph_of(&q, 1)).err(),
            Some(ProtocolError::Malformed("client bundle length"))
        );
    }

    #[test]
    fn wrong_version_byte_is_malformed() {
        let q = tiny(15);
        let mut rng = rand::rngs::StdRng::seed_from_u64(16);
        let (_, client) = dealer_bundle(&q, 1, &mut rng);
        let mut bytes = client.encode(q.config.ring);
        bytes[0] = 1;
        assert_eq!(
            ClientBundle::decode(&bytes, &graph_of(&q, 1)).err(),
            Some(ProtocolError::Malformed("client bundle version"))
        );
        assert_eq!(
            ClientBundle::decode(&[], &graph_of(&q, 1)).err(),
            Some(ProtocolError::Malformed("client bundle length"))
        );
    }

    #[test]
    fn keys_depend_on_model_scheme_and_batch() {
        let q = tiny(17);
        let info = PublicModelInfo::from(&q);
        let base = BundleKey::for_model(&info, 1);
        assert_eq!(base, BundleKey::for_model(&info, 1));
        assert_ne!(base, BundleKey::for_model(&info, 2));

        let mut other = info.clone();
        other.config.scheme = FragmentScheme::ternary();
        assert_ne!(base.scheme_digest, BundleKey::for_model(&other, 1).scheme_digest);

        let q2 = {
            let net = Network::new(&[6, 7, 3], 18);
            QuantizedNetwork::quantize(&net, q.config.clone())
        };
        let info2 = PublicModelInfo::from(&q2);
        assert_ne!(base.model_digest, BundleKey::for_model(&info2, 1).model_digest);

        // The handshake's view and the pool's view agree.
        let params = SessionParams::for_model(&info, crate::relu::ReluVariant::Oblivious, 1);
        assert_eq!(BundleKey::from_params(&params), base);
    }

    #[test]
    fn keys_separate_offline_modes() {
        // A bundle pooled for silent sessions must be invisible to an IKNP
        // session with otherwise identical parameters, and vice versa.
        let q = tiny(17);
        let info = PublicModelInfo::from(&q);
        let iknp = BundleKey::for_model(&info, 1);
        let silent = iknp.with_mode(OfflineMode::Silent);
        assert_eq!(iknp.mode, OfflineMode::Iknp);
        assert_eq!(silent.mode, OfflineMode::Silent);
        assert_ne!(iknp, silent);
        assert_eq!(silent.with_mode(OfflineMode::Iknp), iknp);
    }
}
