//! Secure classification output (extension): reveal only the *predicted
//! class* to the client, not the logits.
//!
//! The paper's protocol opens the final layer's shares toward the client,
//! which leaks all logits. Here the last step instead evaluates a
//! masked-argmax garbled circuit
//! ([`abnn2_gc::circuits::argmax_mask_circuit`]): the server (evaluator)
//! learns `argmax ⊕ mask` — uniformly random to it — forwards it, and the
//! client removes its mask. Neither party sees a single logit.

use crate::frames::MaskedClass;
use crate::ProtocolError;
use abnn2_gc::circuit::{bits_to_u64, u64_to_bits};
use abnn2_gc::{circuits, YaoEvaluator, YaoGarbler};
use abnn2_math::Ring;
use abnn2_net::Transport;
use rand::Rng;

/// Server (evaluator) side: holds logit shares `y0`, forwards the masked
/// class index to the client. Learns nothing (the mask blinds the index).
///
/// # Errors
///
/// Returns [`ProtocolError`] on disconnection or garbling failure.
pub fn argmax_server<T: Transport>(
    ch: &mut T,
    yao: &mut YaoEvaluator,
    y0: &[u64],
    ring: Ring,
) -> Result<(), ProtocolError> {
    if y0.is_empty() {
        return Err(ProtocolError::Dimension("argmax needs at least one logit"));
    }
    let bits = ring.bits() as usize;
    let n = y0.len();
    let circuit = circuits::argmax_mask_circuit(bits, n);
    let my_bits: Vec<bool> = y0.iter().flat_map(|&v| u64_to_bits(v, bits)).collect();
    let out = yao.run(ch, &circuit, &my_bits)?;
    ch.send_frame(&MaskedClass(vec![bits_to_u64(&out) as u8]))?;
    Ok(())
}

/// Client (garbler) side: holds logit shares `y1`; returns the predicted
/// class index.
///
/// # Errors
///
/// Returns [`ProtocolError`] on disconnection or garbling failure.
pub fn argmax_client<T: Transport, RNG: Rng + ?Sized>(
    ch: &mut T,
    yao: &mut YaoGarbler,
    y1: &[u64],
    ring: Ring,
    rng: &mut RNG,
) -> Result<usize, ProtocolError> {
    if y1.is_empty() {
        return Err(ProtocolError::Dimension("argmax needs at least one logit"));
    }
    let bits = ring.bits() as usize;
    let n = y1.len();
    let idx_bits = circuits::argmax_index_bits(n);
    let mask: u64 = rng.gen::<u64>() & ((1 << idx_bits) - 1);
    let circuit = circuits::argmax_mask_circuit(bits, n);
    let mut my_bits: Vec<bool> = y1.iter().flat_map(|&v| u64_to_bits(v, bits)).collect();
    my_bits.extend(u64_to_bits(mask, idx_bits));
    for i in 0..n as u64 {
        my_bits.extend(u64_to_bits(i, idx_bits));
    }
    yao.run(ch, &circuit, &my_bits, rng)?;
    // The frame layer enforces the exact one-byte payload.
    let MaskedClass(masked) = ch.recv_frame()?;
    Ok(((u64::from(masked[0])) ^ mask) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_net::{run_pair, NetworkModel};
    use rand::SeedableRng;

    fn run_argmax(values: Vec<i64>, seed: u64) -> usize {
        let ring = Ring::new(32);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let v_ring: Vec<u64> = values.iter().map(|&v| ring.from_i64(v)).collect();
        let y1 = ring.sample_vec(&mut rng, values.len());
        let y0 = ring.sub_vec(&v_ring, &y1);
        let ((), idx, _) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 1);
                let mut yao = YaoEvaluator::setup(ch, &mut rng).expect("setup");
                argmax_server(ch, &mut yao, &y0, ring).expect("server");
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 2);
                let mut yao = YaoGarbler::setup(ch, &mut rng).expect("setup");
                argmax_client(ch, &mut yao, &y1, ring, &mut rng).expect("client")
            },
        );
        idx
    }

    #[test]
    fn finds_the_maximum_class() {
        assert_eq!(run_argmax(vec![-5, 100, 3], 300), 1);
        assert_eq!(run_argmax(vec![7, -100, 3, 6], 301), 0);
        assert_eq!(run_argmax(vec![-9, -8, -1], 302), 2);
    }

    #[test]
    fn ten_class_logits() {
        let logits: Vec<i64> = vec![12, -4, 99, 0, 98, -50, 7, 3, 2, 1];
        assert_eq!(run_argmax(logits, 303), 2);
    }

    #[test]
    fn single_class_degenerate() {
        assert_eq!(run_argmax(vec![-42], 304), 0);
    }
}
