//! Online protocols for the nonlinear-op family (transformer extension).
//!
//! Each op follows the same shape as the §4.2 ReLU: the client garbles one
//! circuit that reconstructs the shared input, applies the fixed-point
//! function, and re-shares under a fresh client mask `z₁` chosen offline —
//! so the invariant that the client knows its share of every activation
//! before the online phase starts is preserved. The server evaluates and
//! learns only its share `z₀ = f(y) − z₁`.
//!
//! * [`matmul_close_server`]/[`matmul_close_client`] — the closing step of
//!   a secret×secret matmul: after the matrix-Beaver open-and-combine
//!   ([`crate::matbeaver::mul_matrix_shares`]) both parties hold shares of
//!   the *untruncated* product; one reconstruct-truncate-reshare circuit
//!   applies the fixed-point shift and refreshes the sharing.
//! * [`softmax_server`]/[`softmax_client`] — row-wise fixed-point softmax
//!   over a `rows × cols` score matrix.
//! * [`gelu_server`]/[`gelu_client`] — elementwise fixed-point GELU.
//! * [`layernorm_server`]/[`layernorm_client`] — per-token LayerNorm with
//!   the residual add folded in at mismatched scales (`a ≫ₐ shift_a` plus
//!   `b ≫ₐ shift_b`).

use crate::relu::{bits_to_words, words_to_bits};
use crate::ProtocolError;
use abnn2_gc::{circuits, YaoEvaluator, YaoGarbler};
use abnn2_math::Ring;
use abnn2_net::Transport;
use rand::Rng;

/// Server (evaluator) side of the matmul closing step: holds product
/// shares `p0`, obtains fresh shares `z0` of the truncated product.
///
/// # Errors
///
/// Returns [`ProtocolError`] on disconnection or garbling failures.
pub fn matmul_close_server<T: Transport>(
    ch: &mut T,
    yao: &mut YaoEvaluator,
    p0: &[u64],
    ring: Ring,
    shift: u32,
) -> Result<Vec<u64>, ProtocolError> {
    let bits = ring.bits() as usize;
    if p0.is_empty() {
        return Ok(Vec::new());
    }
    let circuit = circuits::reconstruct_trunc_reshare_vec_circuit(bits, p0.len(), shift as usize);
    let out = yao.run(ch, &circuit, &words_to_bits(p0, bits))?;
    Ok(bits_to_words(&out, bits))
}

/// Client (garbler) side of the matmul closing step: holds product shares
/// `p1` and its fresh output mask `z1`.
///
/// # Errors
///
/// Returns [`ProtocolError`] on disconnection or garbling failures.
///
/// # Panics
///
/// Panics if `p1.len() != z1.len()`.
pub fn matmul_close_client<T: Transport, RNG: Rng + ?Sized>(
    ch: &mut T,
    yao: &mut YaoGarbler,
    p1: &[u64],
    z1: &[u64],
    ring: Ring,
    shift: u32,
    rng: &mut RNG,
) -> Result<(), ProtocolError> {
    assert_eq!(p1.len(), z1.len(), "share vectors must align");
    let bits = ring.bits() as usize;
    if p1.is_empty() {
        return Ok(());
    }
    let circuit = circuits::reconstruct_trunc_reshare_vec_circuit(bits, p1.len(), shift as usize);
    let mut gbits = words_to_bits(p1, bits);
    gbits.extend(words_to_bits(z1, bits));
    yao.run(ch, &circuit, &gbits, rng)?;
    Ok(())
}

/// Server side of the softmax op over a `rows × cols` score matrix
/// (row-major shares `y0`, `rows * cols` elements).
///
/// # Errors
///
/// Returns [`ProtocolError`] on disconnection or garbling failures.
///
/// # Panics
///
/// Panics if `y0.len() != rows * cols`.
#[allow(clippy::too_many_arguments)]
pub fn softmax_server<T: Transport>(
    ch: &mut T,
    yao: &mut YaoEvaluator,
    y0: &[u64],
    rows: usize,
    cols: usize,
    ring: Ring,
    shift: u32,
    f: u32,
) -> Result<Vec<u64>, ProtocolError> {
    assert_eq!(y0.len(), rows * cols, "softmax input must be rows*cols");
    let bits = ring.bits() as usize;
    let circuit =
        circuits::softmax_reshare_vec_circuit(bits, rows, cols, shift as usize, f as usize);
    let out = yao.run(ch, &circuit, &words_to_bits(y0, bits))?;
    Ok(bits_to_words(&out, bits))
}

/// Client side of the softmax op; `z1` is the fresh output mask.
///
/// # Errors
///
/// Returns [`ProtocolError`] on disconnection or garbling failures.
///
/// # Panics
///
/// Panics if the share vectors do not match `rows * cols`.
#[allow(clippy::too_many_arguments)]
pub fn softmax_client<T: Transport, RNG: Rng + ?Sized>(
    ch: &mut T,
    yao: &mut YaoGarbler,
    y1: &[u64],
    z1: &[u64],
    rows: usize,
    cols: usize,
    ring: Ring,
    shift: u32,
    f: u32,
    rng: &mut RNG,
) -> Result<(), ProtocolError> {
    assert_eq!(y1.len(), rows * cols, "softmax input must be rows*cols");
    assert_eq!(y1.len(), z1.len(), "share vectors must align");
    let bits = ring.bits() as usize;
    let circuit =
        circuits::softmax_reshare_vec_circuit(bits, rows, cols, shift as usize, f as usize);
    let mut gbits = words_to_bits(y1, bits);
    gbits.extend(words_to_bits(z1, bits));
    yao.run(ch, &circuit, &gbits, rng)?;
    Ok(())
}

/// Server side of the elementwise GELU op.
///
/// # Errors
///
/// Returns [`ProtocolError`] on disconnection or garbling failures.
pub fn gelu_server<T: Transport>(
    ch: &mut T,
    yao: &mut YaoEvaluator,
    y0: &[u64],
    ring: Ring,
    shift: u32,
    f: u32,
) -> Result<Vec<u64>, ProtocolError> {
    let bits = ring.bits() as usize;
    if y0.is_empty() {
        return Ok(Vec::new());
    }
    let circuit =
        circuits::gelu_trunc_reshare_vec_circuit(bits, y0.len(), shift as usize, f as usize);
    let out = yao.run(ch, &circuit, &words_to_bits(y0, bits))?;
    Ok(bits_to_words(&out, bits))
}

/// Client side of the elementwise GELU op; `z1` is the fresh output mask.
///
/// # Errors
///
/// Returns [`ProtocolError`] on disconnection or garbling failures.
///
/// # Panics
///
/// Panics if `y1.len() != z1.len()`.
#[allow(clippy::too_many_arguments)]
pub fn gelu_client<T: Transport, RNG: Rng + ?Sized>(
    ch: &mut T,
    yao: &mut YaoGarbler,
    y1: &[u64],
    z1: &[u64],
    ring: Ring,
    shift: u32,
    f: u32,
    rng: &mut RNG,
) -> Result<(), ProtocolError> {
    assert_eq!(y1.len(), z1.len(), "share vectors must align");
    let bits = ring.bits() as usize;
    if y1.is_empty() {
        return Ok(());
    }
    let circuit =
        circuits::gelu_trunc_reshare_vec_circuit(bits, y1.len(), shift as usize, f as usize);
    let mut gbits = words_to_bits(y1, bits);
    gbits.extend(words_to_bits(z1, bits));
    yao.run(ch, &circuit, &gbits, rng)?;
    Ok(())
}

/// Server side of the LayerNorm op over `tokens` tokens of `d` values:
/// holds shares `a0` of the primary input and `b0` of the residual.
///
/// # Errors
///
/// Returns [`ProtocolError`] on disconnection or garbling failures.
///
/// # Panics
///
/// Panics if the share vectors do not match `tokens * d`.
#[allow(clippy::too_many_arguments)]
pub fn layernorm_server<T: Transport>(
    ch: &mut T,
    yao: &mut YaoEvaluator,
    a0: &[u64],
    b0: &[u64],
    tokens: usize,
    d: usize,
    ring: Ring,
    shift_a: u32,
    shift_b: u32,
    f: u32,
) -> Result<Vec<u64>, ProtocolError> {
    assert_eq!(a0.len(), tokens * d, "layernorm input must be tokens*d");
    assert_eq!(a0.len(), b0.len(), "residual must align with input");
    let bits = ring.bits() as usize;
    let circuit = circuits::layernorm_reshare_vec_circuit(
        bits,
        tokens,
        d,
        shift_a as usize,
        shift_b as usize,
        f as usize,
    );
    let mut ebits = words_to_bits(a0, bits);
    ebits.extend(words_to_bits(b0, bits));
    let out = yao.run(ch, &circuit, &ebits)?;
    Ok(bits_to_words(&out, bits))
}

/// Client side of the LayerNorm op; `z1` is the fresh output mask.
///
/// # Errors
///
/// Returns [`ProtocolError`] on disconnection or garbling failures.
///
/// # Panics
///
/// Panics if the share vectors do not match `tokens * d`.
#[allow(clippy::too_many_arguments)]
pub fn layernorm_client<T: Transport, RNG: Rng + ?Sized>(
    ch: &mut T,
    yao: &mut YaoGarbler,
    a1: &[u64],
    b1: &[u64],
    z1: &[u64],
    tokens: usize,
    d: usize,
    ring: Ring,
    shift_a: u32,
    shift_b: u32,
    f: u32,
    rng: &mut RNG,
) -> Result<(), ProtocolError> {
    assert_eq!(a1.len(), tokens * d, "layernorm input must be tokens*d");
    assert_eq!(a1.len(), b1.len(), "residual must align with input");
    assert_eq!(a1.len(), z1.len(), "share vectors must align");
    let bits = ring.bits() as usize;
    let circuit = circuits::layernorm_reshare_vec_circuit(
        bits,
        tokens,
        d,
        shift_a as usize,
        shift_b as usize,
        f as usize,
    );
    let mut gbits = words_to_bits(a1, bits);
    gbits.extend(words_to_bits(b1, bits));
    gbits.extend(words_to_bits(z1, bits));
    yao.run(ch, &circuit, &gbits, rng)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_math::fixedops;
    use abnn2_net::{run_pair, NetworkModel};
    use rand::SeedableRng;

    const BITS: u32 = 16;

    /// Splits `vals` into additive shares and runs server/client closures
    /// over an in-memory pair, returning the reconstructed outputs.
    fn run_op(
        vals: &[u64],
        seed: u64,
        server: impl FnOnce(&mut abnn2_net::Endpoint, &mut YaoEvaluator, &[u64]) -> Vec<u64> + Send,
        client: impl FnOnce(&mut abnn2_net::Endpoint, &mut YaoGarbler, &[u64], &[u64]) -> () + Send,
    ) -> Vec<u64> {
        let ring = Ring::new(BITS);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let y1 = ring.sample_vec(&mut rng, vals.len());
        let y0 = ring.sub_vec(vals, &y1);
        let z1 = ring.sample_vec(&mut rng, vals.len());
        let (z1s, z1c) = (z1.clone(), z1);
        let (z0, (), _) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 1);
                let mut yao = YaoEvaluator::setup(ch, &mut rng).expect("setup");
                server(ch, &mut yao, &y0)
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 2);
                let mut yao = YaoGarbler::setup(ch, &mut rng).expect("setup");
                client(ch, &mut yao, &y1, &z1c);
            },
        );
        let ring = Ring::new(BITS);
        ring.add_vec(&z0, &z1s)
    }

    #[test]
    fn matmul_close_truncates_and_reshares() {
        let ring = Ring::new(BITS);
        let vals: Vec<u64> =
            [4096i64, -4096, 255, -255, 0].iter().map(|&v| ring.from_i64(v)).collect();
        let got = run_op(
            &vals,
            900,
            |ch, yao, p0| matmul_close_server(ch, yao, p0, Ring::new(BITS), 4).expect("server"),
            |ch, yao, p1, z1| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(902);
                matmul_close_client(ch, yao, p1, z1, Ring::new(BITS), 4, &mut rng).expect("client");
            },
        );
        for (i, (&g, &v)) in got.iter().zip(&vals).enumerate() {
            assert_eq!(g, fixedops::sar(&ring, v, 4), "elem {i}");
        }
    }

    #[test]
    fn softmax_matches_the_fixed_point_oracle() {
        let ring = Ring::new(BITS);
        let f = 6u32;
        let shift = 2u32;
        // Two rows of three logits each, pre-shift.
        let vals: Vec<u64> =
            [80i64, -40, 160, 0, 0, 512].iter().map(|&v| ring.from_i64(v)).collect();
        let got = run_op(
            &vals,
            910,
            move |ch, yao, y0| {
                softmax_server(ch, yao, y0, 2, 3, Ring::new(BITS), shift, f).expect("server")
            },
            move |ch, yao, y1, z1| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(912);
                softmax_client(ch, yao, y1, z1, 2, 3, Ring::new(BITS), shift, f, &mut rng)
                    .expect("client");
            },
        );
        for r in 0..2 {
            let row: Vec<u64> =
                vals[r * 3..(r + 1) * 3].iter().map(|&v| fixedops::sar(&ring, v, shift)).collect();
            let want = fixedops::softmax_row(&ring, f, &row);
            assert_eq!(&got[r * 3..(r + 1) * 3], &want[..], "row {r}");
        }
    }

    #[test]
    fn gelu_matches_the_fixed_point_oracle() {
        let ring = Ring::new(BITS);
        let f = 6u32;
        let shift = 2u32;
        let vals: Vec<u64> =
            [256i64, -256, 64, -64, 0, 1000].iter().map(|&v| ring.from_i64(v)).collect();
        let got = run_op(
            &vals,
            920,
            move |ch, yao, y0| gelu_server(ch, yao, y0, Ring::new(BITS), shift, f).expect("server"),
            move |ch, yao, y1, z1| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(922);
                gelu_client(ch, yao, y1, z1, Ring::new(BITS), shift, f, &mut rng).expect("client");
            },
        );
        for (i, (&g, &v)) in got.iter().zip(&vals).enumerate() {
            let want = fixedops::gelu(&ring, f, fixedops::sar(&ring, v, shift));
            assert_eq!(g, want, "elem {i}");
        }
    }

    #[test]
    fn layernorm_folds_the_residual_and_matches_the_oracle() {
        let ring = Ring::new(BITS);
        let f = 6u32;
        let (sa, sb) = (2u32, 0u32);
        let (tokens, d) = (2usize, 4usize);
        let mut rng = rand::rngs::StdRng::seed_from_u64(930);
        let a_vals: Vec<u64> =
            (0..tokens * d).map(|_| ring.from_i64(rng.gen_range(-800i64..800))).collect();
        let b_vals: Vec<u64> =
            (0..tokens * d).map(|_| ring.from_i64(rng.gen_range(-200i64..200))).collect();

        // Share both inputs and the fresh mask by hand (two-input op, so the
        // generic single-input harness doesn't fit).
        let a1 = ring.sample_vec(&mut rng, tokens * d);
        let a0 = ring.sub_vec(&a_vals, &a1);
        let b1 = ring.sample_vec(&mut rng, tokens * d);
        let b0 = ring.sub_vec(&b_vals, &b1);
        let z1 = ring.sample_vec(&mut rng, tokens * d);
        let z1c = z1.clone();
        let (z0, (), _) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(931);
                let mut yao = YaoEvaluator::setup(ch, &mut rng).expect("setup");
                layernorm_server(ch, &mut yao, &a0, &b0, tokens, d, Ring::new(BITS), sa, sb, f)
                    .expect("server")
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(932);
                let mut yao = YaoGarbler::setup(ch, &mut rng).expect("setup");
                layernorm_client(
                    ch,
                    &mut yao,
                    &a1,
                    &b1,
                    &z1c,
                    tokens,
                    d,
                    Ring::new(BITS),
                    sa,
                    sb,
                    f,
                    &mut rng,
                )
                .expect("client");
            },
        );
        let got = ring.add_vec(&z0, &z1);
        for t in 0..tokens {
            let a_tok = &a_vals[t * d..(t + 1) * d];
            let b_tok = &b_vals[t * d..(t + 1) * d];
            let want = fixedops::layernorm_token(&ring, f, a_tok, b_tok, sa, sb);
            assert_eq!(&got[t * d..(t + 1) * d], &want[..], "token {t}");
        }
    }

    #[test]
    fn empty_inputs_are_noops() {
        let got = run_op(
            &[],
            940,
            |ch, yao, p0| matmul_close_server(ch, yao, p0, Ring::new(BITS), 0).expect("server"),
            |ch, yao, p1, z1| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(942);
                matmul_close_client(ch, yao, p1, z1, Ring::new(BITS), 0, &mut rng).expect("client");
            },
        );
        assert!(got.is_empty());
    }
}
