//! Per-connection protocol sessions: OT extension and Yao state.
//!
//! ABNN² uses two OT sessions with opposite roles:
//!
//! * the **KK13** session for linear layers, where the *server* (model
//!   holder) is the chooser — its weight fragments are the choice symbols —
//!   and the *client* is the sender;
//! * the **IKNP** session inside Yao's protocol for activations, where the
//!   client garbles and the server evaluates (so the server is the OT
//!   receiver for its input labels).
//!
//! Both are seeded once per connection by base OTs over the Edwards curve.

use crate::ProtocolError;
use abnn2_gc::{YaoEvaluator, YaoGarbler};
use abnn2_net::Transport;
use abnn2_ot::{KkChooser, KkSender};
use rand::Rng;

/// Server-side session state (model holder).
#[derive(Debug, Clone)]
pub struct ServerSession {
    /// 1-out-of-N OT chooser used by the matmul triplet protocol.
    pub kk: KkChooser,
    /// Garbled-circuit evaluator used by activation layers.
    pub yao: YaoEvaluator,
}

/// Client-side session state (data owner).
#[derive(Debug)]
pub struct ClientSession {
    /// 1-out-of-N OT sender used by the matmul triplet protocol.
    pub kk: KkSender,
    /// Garbled-circuit garbler used by activation layers.
    pub yao: YaoGarbler,
}

impl ServerSession {
    /// Runs both base-OT setups; must pair with [`ClientSession::setup`] on
    /// the other endpoint.
    ///
    /// # Errors
    ///
    /// Propagates base-OT failures.
    pub fn setup<T: Transport, R: Rng + ?Sized>(
        ch: &mut T,
        rng: &mut R,
    ) -> Result<Self, ProtocolError> {
        let kk = KkChooser::setup(ch, rng)?;
        let yao = YaoEvaluator::setup(ch, rng)?;
        Ok(ServerSession { kk, yao })
    }
}

impl ClientSession {
    /// Runs both base-OT setups; must pair with [`ServerSession::setup`].
    ///
    /// # Errors
    ///
    /// Propagates base-OT failures.
    pub fn setup<T: Transport, R: Rng + ?Sized>(
        ch: &mut T,
        rng: &mut R,
    ) -> Result<Self, ProtocolError> {
        let kk = KkSender::setup(ch, rng)?;
        let yao = YaoGarbler::setup(ch, rng)?;
        Ok(ClientSession { kk, yao })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_net::{run_pair, NetworkModel};
    use rand::SeedableRng;

    #[test]
    fn sessions_establish() {
        let (s, c, report) = run_pair(
            NetworkModel::instant(),
            |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(1);
                ServerSession::setup(ch, &mut rng).is_ok()
            },
            |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(2);
                ClientSession::setup(ch, &mut rng).is_ok()
            },
        );
        assert!(s && c);
        // 2κ + κ base OTs worth of points crossed the wire.
        assert!(report.total_bytes() > 0);
    }
}
