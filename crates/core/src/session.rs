//! Per-connection protocol sessions: OT extension and Yao state.
//!
//! ABNN² uses two OT sessions with opposite roles:
//!
//! * the **fragment-OT** session for linear layers, where the *server*
//!   (model holder) is the chooser — its weight fragments are the choice
//!   symbols — and the *client* is the sender. The backend is the
//!   negotiated [`OfflineMode`]: KK13 extension or silent (LPN) expansion;
//! * the **IKNP** session inside Yao's protocol for activations, where the
//!   client garbles and the server evaluates (so the server is the OT
//!   receiver for its input labels).
//!
//! Both are seeded once per connection by base OTs over the Edwards curve.

use crate::ProtocolError;
use abnn2_gc::{YaoEvaluator, YaoGarbler};
use abnn2_net::Transport;
use abnn2_ot::{FragmentChooser, FragmentSender, OfflineMode};
use rand::Rng;

/// Server-side session state (model holder).
#[derive(Debug, Clone)]
pub struct ServerSession {
    /// 1-out-of-N OT chooser used by the matmul triplet protocol.
    pub kk: FragmentChooser,
    /// Garbled-circuit evaluator used by activation layers.
    pub yao: YaoEvaluator,
}

/// Client-side session state (data owner).
#[derive(Debug)]
pub struct ClientSession {
    /// 1-out-of-N OT sender used by the matmul triplet protocol.
    pub kk: FragmentSender,
    /// Garbled-circuit garbler used by activation layers.
    pub yao: YaoGarbler,
}

impl ServerSession {
    /// Runs both base-OT setups with the portable KK13 backend; must pair
    /// with [`ClientSession::setup`] on the other endpoint.
    ///
    /// # Errors
    ///
    /// Propagates base-OT failures.
    pub fn setup<T: Transport, R: Rng + ?Sized>(
        ch: &mut T,
        rng: &mut R,
    ) -> Result<Self, ProtocolError> {
        Self::setup_with(ch, OfflineMode::Iknp, rng)
    }

    /// Runs both base-OT setups with an explicit offline mode; must pair
    /// with [`ClientSession::setup_with`] using the *same* mode.
    ///
    /// # Errors
    ///
    /// Propagates base-OT failures.
    pub fn setup_with<T: Transport, R: Rng + ?Sized>(
        ch: &mut T,
        mode: OfflineMode,
        rng: &mut R,
    ) -> Result<Self, ProtocolError> {
        let kk = FragmentChooser::setup(ch, mode, rng)?;
        let yao = YaoEvaluator::setup(ch, rng)?;
        Ok(ServerSession { kk, yao })
    }

    /// The offline mode this session was established with.
    #[must_use]
    pub fn mode(&self) -> OfflineMode {
        self.kk.mode()
    }
}

impl ClientSession {
    /// Runs both base-OT setups with the portable KK13 backend; must pair
    /// with [`ServerSession::setup`].
    ///
    /// # Errors
    ///
    /// Propagates base-OT failures.
    pub fn setup<T: Transport, R: Rng + ?Sized>(
        ch: &mut T,
        rng: &mut R,
    ) -> Result<Self, ProtocolError> {
        Self::setup_with(ch, OfflineMode::Iknp, rng)
    }

    /// Runs both base-OT setups with an explicit offline mode; must pair
    /// with [`ServerSession::setup_with`] using the *same* mode.
    ///
    /// # Errors
    ///
    /// Propagates base-OT failures.
    pub fn setup_with<T: Transport, R: Rng + ?Sized>(
        ch: &mut T,
        mode: OfflineMode,
        rng: &mut R,
    ) -> Result<Self, ProtocolError> {
        let kk = FragmentSender::setup(ch, mode, rng)?;
        let yao = YaoGarbler::setup(ch, rng)?;
        Ok(ClientSession { kk, yao })
    }

    /// The offline mode this session was established with.
    #[must_use]
    pub fn mode(&self) -> OfflineMode {
        self.kk.mode()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_net::{run_pair, NetworkModel};
    use rand::SeedableRng;

    #[test]
    fn sessions_establish() {
        let (s, c, report) = run_pair(
            NetworkModel::instant(),
            |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(1);
                ServerSession::setup(ch, &mut rng).is_ok()
            },
            |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(2);
                ClientSession::setup(ch, &mut rng).is_ok()
            },
        );
        assert!(s && c);
        // 2κ + κ base OTs worth of points crossed the wire.
        assert!(report.total_bytes() > 0);
    }

    #[test]
    fn silent_sessions_establish() {
        let (s, c, _) = run_pair(
            NetworkModel::instant(),
            |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(3);
                ServerSession::setup_with(ch, OfflineMode::Silent, &mut rng)
                    .map(|s| s.mode())
                    .expect("server setup")
            },
            |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(4);
                ClientSession::setup_with(ch, OfflineMode::Silent, &mut rng)
                    .map(|c| c.mode())
                    .expect("client setup")
            },
        );
        assert_eq!(s, OfflineMode::Silent);
        assert_eq!(c, OfflineMode::Silent);
    }
}
