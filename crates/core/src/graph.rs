//! Secure planner and executor over the [`LayerGraph`] IR.
//!
//! The paper describes one protocol pipeline — OT-based dot-product
//! triplets offline (§4.1), share-and-reconstruct non-linear layers online
//! (§4.2) — and both served topologies run it. This module is the single
//! implementation: [`SecureGraph`] pins a validated graph to a batch size,
//! the **planner** ([`SecureGraph::plan`]) emits one [`TripletPlan`] per
//! linear op (dimensions, batch `o`, message-layout mode), and the
//! **executor** halves ([`server_offline_with`] / [`server_online_to_logits`]
//! and [`client_offline_with`] / [`client_online_to_logits`]) walk the same
//! op sequence consuming planned state. `SecureServer`/`SecureClient` and
//! `CnnServer`/`CnnClient` are thin adapters over these functions.
//!
//! The executor's state invariant, per party:
//!
//! * the server walks with its additive share of the current activation —
//!   after a linear op it holds `W·x⁰ + b + U`, after a re-share op the
//!   garbled circuit's output share;
//! * the client's share is *known offline*: the input mask `R⁰`, then `V`
//!   after each linear op, then the fresh mask it fed the re-sharing
//!   circuit. That is why the triplet randomness for every linear op is
//!   exactly the client share entering it (im2col'ed for conv) — and why
//!   offline state bundles ([`crate::bundle`]) are connection-independent.
//!
//! Executors terminate at the graph's [`LayerOp::Output`] op by
//! construction; a graph missing it fails validation up front.
//!
//! Per-op instrumentation: every phase of the walk calls
//! [`Transport::mark_phase`] with labels like `offline:op0/conv` or
//! `online:op2/relu`, so metering transports report bytes and time per
//! layer while plain transports ignore the calls.

use crate::cnn::{maxpool_client, maxpool_server, PublicCnnInfo};
use crate::config::ExecConfig;
use crate::frames::BlindedInput;
use crate::inference::{ClientOffline, PublicModelInfo, PublicTransformerInfo, ServerOffline};
use crate::matbeaver::{generate_matrix_p0, generate_matrix_p1, mul_matrix_shares, MatrixTriple};
use crate::matmul::{triplet_client_with, triplet_server_with, TripletMode};
use crate::nonlinear::{
    gelu_client, gelu_server, layernorm_client, layernorm_server, matmul_close_client,
    matmul_close_server, softmax_client, softmax_server,
};
use crate::relu::{relu_client, relu_server};
use crate::session::{ClientSession, ServerSession};
use crate::ProtocolError;
use abnn2_math::{Matrix, Ring};
use abnn2_net::Transport;
use abnn2_nn::conv::im2col;
use abnn2_nn::graph::{LayerGraph, LayerOp, OpResource};
use abnn2_nn::quant::{QuantConfig, QuantizedDense, QuantizedNetwork};
use abnn2_nn::transformer::QuantizedTransformer;
use abnn2_nn::QuantizedCnn;
use abnn2_ot::{IknpReceiver, IknpSender};
use rand::Rng;

/// A server-side model of any supported topology, with its weights.
#[derive(Debug, Clone)]
pub enum ServedModel {
    /// Fully-connected stack (the paper's evaluation target).
    Mlp(QuantizedNetwork),
    /// Convolutional extension: conv → ReLU → max-pool → dense stack.
    Cnn(QuantizedCnn),
    /// Quantized transformer encoder (attention + GELU feed-forward +
    /// LayerNorm), served through the extended op family.
    Transformer {
        /// The model, with its per-token projection weights (boxed: the
        /// transformer carries far more inline state than the other arms).
        model: Box<QuantizedTransformer>,
        /// Per-linear-op dense layers in graph order, with the per-token
        /// projections expanded block-diagonally once at construction so
        /// the executor's weight lookups can return borrows.
        expanded: Vec<QuantizedDense>,
    },
}

impl From<QuantizedNetwork> for ServedModel {
    fn from(net: QuantizedNetwork) -> Self {
        ServedModel::Mlp(net)
    }
}

impl From<QuantizedCnn> for ServedModel {
    fn from(net: QuantizedCnn) -> Self {
        ServedModel::Cnn(net)
    }
}

impl From<QuantizedTransformer> for ServedModel {
    fn from(model: QuantizedTransformer) -> Self {
        let expanded =
            (0..model.graph().linear_count()).map(|li| model.linear_params(li)).collect();
        ServedModel::Transformer { model: Box::new(model), expanded }
    }
}

impl ServedModel {
    /// The layer graph this model lowers to.
    #[must_use]
    pub fn graph(&self) -> LayerGraph {
        match self {
            ServedModel::Mlp(net) => LayerGraph::from(net),
            ServedModel::Cnn(net) => LayerGraph::from(net),
            ServedModel::Transformer { model, .. } => LayerGraph::from(model.as_ref()),
        }
    }

    /// Fixed-point pipeline hyper-parameters.
    #[must_use]
    pub fn config(&self) -> &QuantConfig {
        match self {
            ServedModel::Mlp(net) => &net.config,
            ServedModel::Cnn(net) => &net.config,
            ServedModel::Transformer { model, .. } => &model.config,
        }
    }

    /// The weight-free public description to hand to clients.
    #[must_use]
    pub fn public(&self) -> PublicModel {
        match self {
            ServedModel::Mlp(net) => PublicModel::Mlp(PublicModelInfo::from(net)),
            ServedModel::Cnn(net) => PublicModel::Cnn(PublicCnnInfo::from(net)),
            ServedModel::Transformer { model, .. } => {
                PublicModel::Transformer(PublicTransformerInfo::from(model.as_ref()))
            }
        }
    }

    /// Weights and bias of the `index`-th linear op, in graph order
    /// (row-major `m × n` weights, one bias entry per output row).
    pub(crate) fn linear_params(&self, index: usize) -> (&[i64], &[u64]) {
        match self {
            ServedModel::Mlp(net) => {
                let l = &net.layers[index];
                (&l.weights, &l.bias)
            }
            ServedModel::Cnn(net) => {
                if index == 0 {
                    (&net.conv.weights, &net.conv.bias)
                } else {
                    let l = &net.dense[index - 1];
                    (&l.weights, &l.bias)
                }
            }
            ServedModel::Transformer { expanded, .. } => {
                let l = &expanded[index];
                (&l.weights, &l.bias)
            }
        }
    }
}

/// The client-side view of a served model: architecture and fixed-point
/// hyper-parameters, never weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PublicModel {
    /// Fully-connected stack.
    Mlp(PublicModelInfo),
    /// Convolutional extension.
    Cnn(PublicCnnInfo),
    /// Quantized transformer encoder.
    Transformer(PublicTransformerInfo),
}

impl From<PublicModelInfo> for PublicModel {
    fn from(info: PublicModelInfo) -> Self {
        PublicModel::Mlp(info)
    }
}

impl From<PublicCnnInfo> for PublicModel {
    fn from(info: PublicCnnInfo) -> Self {
        PublicModel::Cnn(info)
    }
}

impl From<PublicTransformerInfo> for PublicModel {
    fn from(info: PublicTransformerInfo) -> Self {
        PublicModel::Transformer(info)
    }
}

impl PublicModel {
    /// The layer graph this model lowers to.
    #[must_use]
    pub fn graph(&self) -> LayerGraph {
        match self {
            PublicModel::Mlp(info) => info.graph(),
            PublicModel::Cnn(info) => info.graph(),
            PublicModel::Transformer(info) => info.graph(),
        }
    }

    /// Fixed-point pipeline hyper-parameters.
    #[must_use]
    pub fn config(&self) -> &QuantConfig {
        match self {
            PublicModel::Mlp(info) => &info.config,
            PublicModel::Cnn(info) => &info.config,
            PublicModel::Transformer(info) => info.config(),
        }
    }
}

/// One linear op's offline triplet requirement, as emitted by the planner:
/// generate `U + V = W·R` with `W` of shape `m × n` and `o` input columns,
/// using the §4.1.2 (`MultiBatch`) or §4.1.3 (`OneBatch`) message layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TripletPlan {
    /// Index of the op in the graph's op sequence.
    pub op: usize,
    /// Ordinal among the graph's linear ops (indexes `us`/`vs`).
    pub linear: usize,
    /// Weight rows (output dimension / filter count).
    pub m: usize,
    /// Weight columns (input dimension / im2col patch length).
    pub n: usize,
    /// Input columns: the batch size for dense ops, the number of output
    /// positions for conv ops.
    pub o: usize,
    /// Message layout, per the paper's batch-size selection rule.
    pub mode: TripletMode,
    /// Op kind tag (for instrumentation labels).
    pub kind: &'static str,
}

/// One secret×secret matmul op's offline matrix-triple requirement:
/// generate `(X, Y, Z = X·Y)` with `X` of shape `m × k` and `Y` of shape
/// `k × n` (effective, post-transpose dimensions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatmulPlan {
    /// Index of the op in the graph's op sequence.
    pub op: usize,
    /// Ordinal among the graph's matmul ops (indexes the `mats` vectors).
    pub index: usize,
    /// Left rows.
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// Right cols.
    pub n: usize,
}

/// A validated [`LayerGraph`] pinned to a batch size — the unit the
/// planner and both executor halves operate on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecureGraph {
    graph: LayerGraph,
    batch: usize,
}

impl SecureGraph {
    /// Validates `graph` and pins it to `batch` samples per prediction.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Dimension`] if the batch is zero, the graph is
    /// structurally ill-formed, or a spatial graph (conv/max-pool) or a
    /// graph with extended tape ops (transformer family) is asked for
    /// multi-sample batching (those ops are laid out per-map/per-tape-slot
    /// and run one sample at a time).
    pub fn new(graph: LayerGraph, batch: usize) -> Result<Self, ProtocolError> {
        if batch == 0 {
            return Err(ProtocolError::Dimension("batch must be positive"));
        }
        graph.validate().map_err(|e| ProtocolError::Dimension(e.message()))?;
        if batch > 1 && graph.has_spatial_ops() {
            return Err(ProtocolError::Dimension("spatial graphs run with batch 1"));
        }
        if batch > 1 && graph.has_extended_ops() {
            return Err(ProtocolError::Dimension("extended graphs run with batch 1"));
        }
        Ok(SecureGraph { graph, batch })
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &LayerGraph {
        &self.graph
    }

    /// Samples per prediction batch.
    #[must_use]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The offline plan: one triplet requirement per linear op, in graph
    /// order.
    #[must_use]
    pub fn plan(&self) -> Vec<TripletPlan> {
        let mut plans = Vec::with_capacity(self.graph.linear_count());
        for (i, op) in self.graph.ops.iter().enumerate() {
            let (m, n, o) = match *op {
                LayerOp::Dense { out_dim, in_dim } | LayerOp::Linear { out_dim, in_dim, .. } => {
                    (out_dim, in_dim, self.batch)
                }
                LayerOp::Conv { out_channels, in_shape, kh, kw, .. } => {
                    let positions = op.out_len() / out_channels;
                    (out_channels, in_shape.channels * kh * kw, positions)
                }
                _ => continue,
            };
            plans.push(TripletPlan {
                op: i,
                linear: plans.len(),
                m,
                n,
                o,
                mode: TripletMode::for_batch(o),
                kind: op.kind(),
            });
        }
        plans
    }

    /// The matrix-triple plan: one [`MatmulPlan`] per secret×secret matmul
    /// op, in graph order. Dimensions are *effective* (post-transpose):
    /// the triple always lives in `(m × k) · (k × n)` space regardless of
    /// how the graph stores the right operand.
    #[must_use]
    pub fn matmul_plans(&self) -> Vec<MatmulPlan> {
        let mut plans = Vec::with_capacity(self.graph.matmul_count());
        for (i, op) in self.graph.ops.iter().enumerate() {
            if let OpResource::MatTriple { m, k, n } = op.resource() {
                plans.push(MatmulPlan { op: i, index: plans.len(), m, k, n });
            }
        }
        plans
    }

    /// Shapes `(rows, cols)` of the client masks, in consumption order:
    /// the input mask first, then one fresh mask per re-sharing op.
    #[must_use]
    pub fn mask_shapes(&self) -> Vec<(usize, usize)> {
        let mut shapes = vec![(self.graph.input_len(), self.batch)];
        for op in &self.graph.ops {
            if op.is_reshare() {
                shapes.push((op.out_len(), self.batch));
            }
        }
        shapes
    }

    /// Shapes `(rows, cols)` of the per-linear-op triplet shares `U`/`V`.
    #[must_use]
    pub fn triplet_shapes(&self) -> Vec<(usize, usize)> {
        self.plan().iter().map(|p| (p.m, p.o)).collect()
    }

    /// Analytic ceiling on the traffic a *well-behaved* client sends the
    /// server over one full cold session under this plan. Serving
    /// governors use it as the per-session inbound quota: the planner
    /// knows every op's communication shape (the same γ(N−1)·m·n·elem
    /// counts `tests/comm_shape.rs` pins), so a peer whose inbound volume
    /// exceeds the ceiling is provably not running the protocol and can
    /// be evicted.
    ///
    /// The bound is deliberately generous — each term is an over-estimate
    /// of the corresponding protocol phase, and the total carries a 4×
    /// slack factor — because a false eviction of an honest client is far
    /// worse than letting a flood run a few times longer than necessary.
    #[must_use]
    pub fn inbound_ceiling(&self) -> CommCeiling {
        let cfg = &self.graph.config;
        let ring_bytes = cfg.ring.byte_len() as u64;
        let ring_bits = u64::from(cfg.ring.bits());
        let gamma = cfg.scheme.gamma() as u64;
        // Hello, base-OT setup (κ Edwards points + ciphertexts), and
        // per-phase framing slop.
        let mut frames: u64 = 64;
        let mut bytes: u64 = 1 << 16;
        for p in self.plan() {
            // KK13 fragment OTs: the client sends its masked triplet
            // messages — Σ over fragments of (N−1)·m·n messages of
            // `o`-element length (comm_shape.rs pins this count exactly) —
            // plus per-extension column/correction overhead folded into
            // the slack below.
            let elem = p.o as u64 * ring_bytes;
            let masked: u64 = cfg
                .scheme
                .fragments()
                .iter()
                .map(|f| (f.n - 1) * (p.m as u64) * (p.n as u64) * elem)
                .sum();
            bytes += masked;
            frames += gamma + 8;
        }
        for p in self.matmul_plans() {
            // Interactive matrix-triple generation: m·n·k scalar Gilboa
            // products at ℓ correlated OTs each. The client's IKNP column
            // matrices (16 bytes per OT), corrections (one ring element per
            // OT) and base-OT setup stay under 64 bytes per OT.
            let ots = (p.m * p.k * p.n) as u64 * ring_bits;
            bytes += ots * 64;
            // Online openings `D‖E` plus framing.
            bytes += (p.m * p.k + p.k * p.n) as u64 * ring_bytes;
            frames += 16;
        }
        for op in &self.graph.ops {
            if op.is_reshare() {
                // GC evaluation: the client garbles, so its tables and the
                // OT-extension traffic for the server's input labels flow
                // inbound. For the cheap comparison-style circuits (ReLU,
                // max-pool, the matmul closing trunc-reshare) 64 bytes per
                // output wire dominates; the extended nonlinearities
                // (softmax/GELU/LayerNorm) garble multiply/divide/isqrt
                // cores of O(ℓ²) AND gates per element, bounded by an extra
                // 256·ℓ bytes per wire.
                let per_wire = if op.is_extended() { 64 + 256 * ring_bits } else { 64 };
                let wires = (op.out_len() * self.batch) as u64 * ring_bits;
                bytes += wires * per_wire;
                frames += 32;
            }
        }
        // Online: blinded input shares plus small per-op exchanges.
        bytes += (self.graph.input_len() * self.batch) as u64 * ring_bytes;
        bytes += self.graph.ops.len() as u64 * 4096;
        frames += self.graph.ops.len() as u64 * 8;
        CommCeiling { frames: frames * 4, bytes: bytes * 4 }
    }
}

/// Upper bound on one direction of a session's traffic, as computed by
/// [`SecureGraph::inbound_ceiling`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommCeiling {
    /// Maximum number of frames.
    pub frames: u64,
    /// Maximum total payload bytes.
    pub bytes: u64,
}

/// `W·X + b + U` — the server's online share of any linear op. `weights`
/// is row-major `m × n`, `bias` has one entry per output row (broadcast
/// over the `o` input columns). Exposed so baseline protocols can share
/// the identical online linear step with their own offline triplets.
///
/// # Panics
///
/// Panics if `weights`, `bias`, `x` or `u` disagree with `m × n` and
/// `x.cols()`.
#[must_use]
pub fn linear_share(
    weights: &[i64],
    bias: &[u64],
    m: usize,
    n: usize,
    x: &Matrix,
    u: &Matrix,
    ring: Ring,
) -> Matrix {
    assert_eq!(weights.len(), m * n, "weight shape mismatch");
    assert_eq!(bias.len(), m, "bias shape mismatch");
    assert_eq!(x.rows(), n, "input rows mismatch");
    assert_eq!((u.rows(), u.cols()), (m, x.cols()), "triplet share shape mismatch");
    let o = x.cols();
    let mut y = Matrix::zeros(m, o);
    for i in 0..m {
        let row = &weights[i * n..(i + 1) * n];
        for k in 0..o {
            let mut acc = ring.add(bias[i], u.get(i, k));
            for (j, &w) in row.iter().enumerate() {
                acc = acc.wrapping_add(x.get(j, k).wrapping_mul(w as u64));
            }
            y.set(i, k, ring.reduce(acc));
        }
    }
    y
}

/// `W·R` over the ring — the right-hand side of the triplet relation,
/// shared by the dealer ([`crate::bundle::dealer_bundle_for`]) and tests.
#[must_use]
pub fn weight_product(weights: &[i64], m: usize, n: usize, r: &Matrix, ring: Ring) -> Matrix {
    assert_eq!(weights.len(), m * n, "weight shape mismatch");
    assert_eq!(r.rows(), n, "randomness rows mismatch");
    let o = r.cols();
    let mut wr = Matrix::zeros(m, o);
    for i in 0..m {
        let row = &weights[i * n..(i + 1) * n];
        for k in 0..o {
            let mut acc = 0u64;
            for (j, &w) in row.iter().enumerate() {
                acc = acc.wrapping_add(r.get(j, k).wrapping_mul(w as u64));
            }
            wr.set(i, k, ring.reduce(acc));
        }
    }
    wr
}

fn check_shapes(
    matrices: &[Matrix],
    shapes: &[(usize, usize)],
    what: &'static str,
) -> Result<(), ProtocolError> {
    if matrices.len() != shapes.len()
        || matrices.iter().zip(shapes).any(|(m, &(r, c))| m.rows() != r || m.cols() != c)
    {
        return Err(ProtocolError::Malformed(what));
    }
    Ok(())
}

fn check_mat_shapes(mats: &[MatrixTriple], plans: &[MatmulPlan]) -> Result<(), ProtocolError> {
    if mats.len() != plans.len() || mats.iter().zip(plans).any(|(t, p)| !t.fits(p.m, p.k, p.n)) {
        return Err(ProtocolError::Malformed("offline state does not fit the graph"));
    }
    Ok(())
}

/// Reshapes a party's flat tape slot into the effective `k × n` right
/// operand of a secret×secret matmul. With `transpose_b` the slot stores
/// `B` row-major as `n × k`; transposition is linear, so each party
/// transposes its share locally and the matrix triple never sees the
/// storage layout.
fn reshape_rhs(slot: &Matrix, k: usize, n: usize, transpose_b: bool) -> Matrix {
    let data = slot.as_slice().to_vec();
    if transpose_b {
        Matrix::new(n, k, data).transpose()
    } else {
        Matrix::new(k, n, data)
    }
}

/// Offline phase, server half: walks the op sequence generating one §4.1
/// triplet per linear op and one matrix Beaver triple per secret×secret
/// matmul op over an established session. The Gilboa cross products behind
/// matrix triples run over a dedicated IKNP pair, set up lazily at the
/// first matmul op — graphs without matmul ops (MLP/CNN) send exactly the
/// same bytes as before the extension.
///
/// # Errors
///
/// Returns [`ProtocolError`] on any subprotocol failure.
pub fn server_offline_with<T: Transport, R: Rng + ?Sized>(
    ch: &mut T,
    mut session: ServerSession,
    model: &ServedModel,
    sg: &SecureGraph,
    exec: ExecConfig,
    rng: &mut R,
) -> Result<ServerOffline, ProtocolError> {
    let config = &sg.graph().config;
    let (ring, scheme) = (config.ring, config.scheme.clone());
    // Parallel offline schedule: worker threads for local OT compute only,
    // the wire transcript is byte-identical for any thread count.
    session.kk.set_threads(exec.threads);
    let plans = sg.plan();
    let mut pi = 0usize;
    let mut us = Vec::with_capacity(sg.graph().linear_count());
    let mut mats = Vec::with_capacity(sg.graph().matmul_count());
    let mut ots: Option<(IknpReceiver, IknpSender)> = None;
    for (i, op) in sg.graph().ops.iter().enumerate() {
        match op.resource() {
            OpResource::Triplet { m, n } => {
                let plan = plans[pi];
                pi += 1;
                let (weights, _) = model.linear_params(plan.linear);
                if weights.len() != m * n {
                    return Err(ProtocolError::Dimension("model does not match graph"));
                }
                ch.mark_phase(&format!("offline:op{i}/{}", plan.kind));
                us.push(triplet_server_with(
                    ch,
                    &mut session.kk,
                    weights,
                    plan.m,
                    plan.n,
                    plan.o,
                    &scheme,
                    ring,
                    exec.triplet(plan.mode),
                )?);
            }
            OpResource::MatTriple { m, k, n } => {
                ch.mark_phase(&format!("offline:op{i}/matmulss"));
                let pair = match &mut ots {
                    Some(pair) => pair,
                    slot @ None => {
                        let mut r = IknpReceiver::setup(ch, rng)?;
                        let mut s = IknpSender::setup(ch, rng)?;
                        r.set_threads(exec.threads);
                        s.set_threads(exec.threads);
                        slot.insert((r, s))
                    }
                };
                mats.push(generate_matrix_p0(ch, &mut pair.0, &mut pair.1, m, k, n, ring, rng)?);
            }
            OpResource::FreshMask { .. } | OpResource::Output => {}
        }
    }
    Ok(ServerOffline { session, us, mats, batch: sg.batch() })
}

/// Offline phase, client half: walks the graph as a tape machine sampling
/// the input mask, one fresh mask per re-sharing op, one §4.1 triplet per
/// linear op, and one matrix Beaver triple per secret×secret matmul op.
/// The tape carries the client's offline-known share of every activation:
/// the input mask `R⁰`, `V` after each linear op (im2col'ed for conv), and
/// the fresh mask after each re-sharing op — which is exactly the triplet
/// randomness each downstream linear op consumes.
///
/// # Errors
///
/// Returns [`ProtocolError`] on any subprotocol failure.
pub fn client_offline_with<T: Transport, R: Rng + ?Sized>(
    ch: &mut T,
    mut session: ClientSession,
    sg: &SecureGraph,
    exec: ExecConfig,
    rng: &mut R,
) -> Result<ClientOffline, ProtocolError> {
    let config = &sg.graph().config;
    let (ring, scheme) = (config.ring, config.scheme.clone());
    // Parallel offline schedule: worker threads for local OT compute only,
    // the wire transcript is byte-identical for any thread count.
    session.kk.set_threads(exec.threads);
    let batch = sg.batch();
    let mut rs = Vec::with_capacity(sg.graph().mask_count());
    let mut vs = Vec::with_capacity(sg.graph().linear_count());
    let mut mats = Vec::with_capacity(sg.graph().matmul_count());
    let mut ots: Option<(IknpSender, IknpReceiver)> = None;
    let mut tape: Vec<Matrix> = Vec::with_capacity(sg.graph().ops.len() + 1);
    tape.push(Matrix::random(sg.graph().input_len(), batch, &ring, rng));
    rs.push(tape[0].clone());
    for (i, op) in sg.graph().ops.iter().enumerate() {
        let out = match *op {
            LayerOp::Dense { out_dim, .. } => {
                ch.mark_phase(&format!("offline:op{i}/dense"));
                let v = triplet_client_with(
                    ch,
                    &mut session.kk,
                    &tape[i],
                    out_dim,
                    &scheme,
                    ring,
                    exec.triplet(TripletMode::for_batch(batch)),
                    rng,
                )?;
                vs.push(v.clone());
                v
            }
            LayerOp::Linear { out_dim, src, .. } => {
                ch.mark_phase(&format!("offline:op{i}/linear"));
                let v = triplet_client_with(
                    ch,
                    &mut session.kk,
                    &tape[src],
                    out_dim,
                    &scheme,
                    ring,
                    exec.triplet(TripletMode::for_batch(batch)),
                    rng,
                )?;
                vs.push(v.clone());
                v
            }
            LayerOp::Conv { out_channels, in_shape, kh, kw, stride } => {
                ch.mark_phase(&format!("offline:op{i}/conv"));
                let r_col = im2col(tape[i].as_slice(), in_shape, kh, kw, stride);
                let mode = TripletMode::for_batch(r_col.cols());
                let v = triplet_client_with(
                    ch,
                    &mut session.kk,
                    &r_col,
                    out_channels,
                    &scheme,
                    ring,
                    exec.triplet(mode),
                    rng,
                )?;
                vs.push(v.clone());
                v
            }
            LayerOp::MatMulSS { m, k, n, .. } => {
                ch.mark_phase(&format!("offline:op{i}/matmulss"));
                let pair = match &mut ots {
                    Some(pair) => pair,
                    slot @ None => {
                        // Mirror of the server's lazy setup: sender first.
                        let mut s = IknpSender::setup(ch, rng)?;
                        let mut r = IknpReceiver::setup(ch, rng)?;
                        s.set_threads(exec.threads);
                        r.set_threads(exec.threads);
                        slot.insert((s, r))
                    }
                };
                mats.push(generate_matrix_p1(ch, &mut pair.0, &mut pair.1, m, k, n, ring, rng)?);
                let fresh = Matrix::random(m * n, batch, &ring, rng);
                rs.push(fresh.clone());
                fresh
            }
            LayerOp::Relu { .. }
            | LayerOp::MaxPool { .. }
            | LayerOp::Softmax { .. }
            | LayerOp::Gelu { .. }
            | LayerOp::LayerNorm { .. } => {
                let fresh = Matrix::random(op.out_len(), batch, &ring, rng);
                rs.push(fresh.clone());
                fresh
            }
            LayerOp::Output { .. } => break,
        };
        tape.push(out);
    }
    Ok(ClientOffline { session, rs, vs, mats, batch })
}

/// Online phase, server half: receives the blinded input, walks the graph
/// combining planned triplets with garbled-circuit re-shares, and returns
/// the session plus the server's share of the output op's input — the
/// caller decides whether to open it ([`crate::SecureServer::online`]) or
/// feed it to a masked argmax ([`crate::SecureServer::online_classify`]).
///
/// # Errors
///
/// [`ProtocolError::Malformed`] on a blinded input of the wrong length or
/// offline state that does not fit the graph; any subprotocol error
/// otherwise.
pub fn server_online_to_logits<T: Transport>(
    ch: &mut T,
    state: ServerOffline,
    model: &ServedModel,
    sg: &SecureGraph,
    exec: ExecConfig,
) -> Result<(ServerSession, Matrix), ProtocolError> {
    let ServerOffline { mut session, us, mats, batch } = state;
    let config = &sg.graph().config;
    let (ring, f, fw) = (config.ring, config.frac_bits, config.weight_frac_bits);
    if batch != sg.batch() {
        return Err(ProtocolError::Malformed("offline state batch mismatch"));
    }
    check_shapes(&us, &sg.triplet_shapes(), "offline state does not fit the graph")?;
    check_mat_shapes(&mats, &sg.matmul_plans())?;

    ch.mark_phase("online:input");
    let n0 = sg.graph().input_len();
    let BlindedInput(x0_bytes) = ch.recv_frame()?;
    if x0_bytes.len() != n0 * batch * ring.byte_len() {
        return Err(ProtocolError::Malformed("blinded input length"));
    }
    let mut tape: Vec<Matrix> = Vec::with_capacity(sg.graph().ops.len() + 1);
    tape.push(Matrix::new(n0, batch, ring.decode_slice(&x0_bytes)));

    let (mut li, mut qi) = (0usize, 0usize);
    for (i, op) in sg.graph().ops.iter().enumerate() {
        ch.mark_phase(&format!("online:op{i}/{}", op.kind()));
        let out = match *op {
            LayerOp::Dense { out_dim, in_dim } => {
                let (weights, bias) = model.linear_params(li);
                let y = linear_share(weights, bias, out_dim, in_dim, &tape[i], &us[li], ring);
                li += 1;
                y
            }
            LayerOp::Linear { out_dim, in_dim, src } => {
                let (weights, bias) = model.linear_params(li);
                let y = linear_share(weights, bias, out_dim, in_dim, &tape[src], &us[li], ring);
                li += 1;
                y
            }
            LayerOp::Conv { out_channels, in_shape, kh, kw, stride } => {
                let (weights, bias) = model.linear_params(li);
                let x_col = im2col(tape[i].as_slice(), in_shape, kh, kw, stride);
                let patch = in_shape.channels * kh * kw;
                let y = linear_share(weights, bias, out_channels, patch, &x_col, &us[li], ring);
                li += 1;
                y
            }
            LayerOp::Relu { dim } => {
                let z0 =
                    relu_server(ch, &mut session.yao, tape[i].as_slice(), ring, fw, exec.variant)?;
                Matrix::new(dim, batch, z0)
            }
            LayerOp::MaxPool { shape, window } => {
                let pooled =
                    maxpool_server(ch, &mut session.yao, tape[i].as_slice(), shape, window, ring)?;
                Matrix::column(pooled)
            }
            LayerOp::MatMulSS { m, k, n, transpose_b, shift, a_src, b_src } => {
                let a = Matrix::new(m, k, tape[a_src].as_slice().to_vec());
                let b = reshape_rhs(&tape[b_src], k, n, transpose_b);
                let p0 = mul_matrix_shares(ch, &mats[qi], &a, &b, ring, 0)?;
                qi += 1;
                let z0 = matmul_close_server(ch, &mut session.yao, p0.as_slice(), ring, shift)?;
                Matrix::new(m * n, batch, z0)
            }
            LayerOp::Softmax { rows, cols, shift } => {
                let z0 = softmax_server(
                    ch,
                    &mut session.yao,
                    tape[i].as_slice(),
                    rows,
                    cols,
                    ring,
                    shift,
                    f,
                )?;
                Matrix::new(rows * cols, batch, z0)
            }
            LayerOp::Gelu { dim, shift } => {
                let z0 = gelu_server(ch, &mut session.yao, tape[i].as_slice(), ring, shift, f)?;
                Matrix::new(dim, batch, z0)
            }
            LayerOp::LayerNorm { tokens, dim, a_src, b_src, shift_a, shift_b } => {
                let z0 = layernorm_server(
                    ch,
                    &mut session.yao,
                    tape[a_src].as_slice(),
                    tape[b_src].as_slice(),
                    tokens,
                    dim,
                    ring,
                    shift_a,
                    shift_b,
                    f,
                )?;
                Matrix::new(tokens * dim, batch, z0)
            }
            LayerOp::Output { .. } => return Ok((session, tape[i].clone())),
        };
        tape.push(out);
    }
    Err(ProtocolError::Dimension("graph missing output op"))
}

/// Online phase, client half: blinds the input with the offline mask,
/// walks the graph supplying its half of each re-sharing circuit, and
/// returns the session plus the client's share of the output op's input
/// (the final linear op's `V`).
///
/// # Errors
///
/// [`ProtocolError::Dimension`] if `x` does not match the graph's input
/// shape; [`ProtocolError::Malformed`] if the offline state does not fit
/// the graph; any subprotocol error otherwise.
pub fn client_online_to_logits<T: Transport, R: Rng + ?Sized>(
    ch: &mut T,
    state: ClientOffline,
    sg: &SecureGraph,
    exec: ExecConfig,
    x: &Matrix,
    rng: &mut R,
) -> Result<(ClientSession, Matrix), ProtocolError> {
    let ClientOffline { mut session, rs, vs, mats, batch } = state;
    let config = &sg.graph().config;
    let (ring, f, fw) = (config.ring, config.frac_bits, config.weight_frac_bits);
    if batch != sg.batch() {
        return Err(ProtocolError::Malformed("offline state batch mismatch"));
    }
    check_shapes(&rs, &sg.mask_shapes(), "offline state does not fit the graph")?;
    check_shapes(&vs, &sg.triplet_shapes(), "offline state does not fit the graph")?;
    check_mat_shapes(&mats, &sg.matmul_plans())?;
    if x.rows() != sg.graph().input_len() || x.cols() != batch {
        return Err(ProtocolError::Dimension("input dimension mismatch"));
    }

    ch.mark_phase("online:input");
    let x0 = x.sub(&rs[0], &ring);
    ch.send_frame(&BlindedInput(ring.encode_slice(x0.as_slice())))?;

    let (mut li, mut mi, mut qi) = (0usize, 1usize, 0usize);
    let mut tape: Vec<&Matrix> = Vec::with_capacity(sg.graph().ops.len() + 1);
    tape.push(&rs[0]);
    for (i, op) in sg.graph().ops.iter().enumerate() {
        ch.mark_phase(&format!("online:op{i}/{}", op.kind()));
        let out = match *op {
            LayerOp::Dense { .. } | LayerOp::Linear { .. } | LayerOp::Conv { .. } => {
                li += 1;
                &vs[li - 1]
            }
            LayerOp::Relu { .. } => {
                relu_client(
                    ch,
                    &mut session.yao,
                    tape[i].as_slice(),
                    rs[mi].as_slice(),
                    ring,
                    fw,
                    exec.variant,
                    rng,
                )?;
                mi += 1;
                &rs[mi - 1]
            }
            LayerOp::MaxPool { shape, window } => {
                maxpool_client(
                    ch,
                    &mut session.yao,
                    tape[i].as_slice(),
                    rs[mi].as_slice(),
                    shape,
                    window,
                    ring,
                    rng,
                )?;
                mi += 1;
                &rs[mi - 1]
            }
            LayerOp::MatMulSS { m, k, n, transpose_b, shift, a_src, b_src } => {
                let a = Matrix::new(m, k, tape[a_src].as_slice().to_vec());
                let b = reshape_rhs(tape[b_src], k, n, transpose_b);
                let p1 = mul_matrix_shares(ch, &mats[qi], &a, &b, ring, 1)?;
                qi += 1;
                matmul_close_client(
                    ch,
                    &mut session.yao,
                    p1.as_slice(),
                    rs[mi].as_slice(),
                    ring,
                    shift,
                    rng,
                )?;
                mi += 1;
                &rs[mi - 1]
            }
            LayerOp::Softmax { rows, cols, shift } => {
                softmax_client(
                    ch,
                    &mut session.yao,
                    tape[i].as_slice(),
                    rs[mi].as_slice(),
                    rows,
                    cols,
                    ring,
                    shift,
                    f,
                    rng,
                )?;
                mi += 1;
                &rs[mi - 1]
            }
            LayerOp::Gelu { shift, .. } => {
                gelu_client(
                    ch,
                    &mut session.yao,
                    tape[i].as_slice(),
                    rs[mi].as_slice(),
                    ring,
                    shift,
                    f,
                    rng,
                )?;
                mi += 1;
                &rs[mi - 1]
            }
            LayerOp::LayerNorm { tokens, dim, a_src, b_src, shift_a, shift_b } => {
                layernorm_client(
                    ch,
                    &mut session.yao,
                    tape[a_src].as_slice(),
                    tape[b_src].as_slice(),
                    rs[mi].as_slice(),
                    tokens,
                    dim,
                    ring,
                    shift_a,
                    shift_b,
                    f,
                    rng,
                )?;
                mi += 1;
                &rs[mi - 1]
            }
            LayerOp::Output { .. } => {
                let y1 = tape[i].clone();
                return Ok((session, y1));
            }
        };
        tape.push(out);
    }
    Err(ProtocolError::Dimension("graph missing output op"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_math::FragmentScheme;

    fn config() -> QuantConfig {
        QuantConfig {
            ring: Ring::new(32),
            frac_bits: 8,
            weight_frac_bits: 2,
            scheme: FragmentScheme::signed_bit_fields(&[2, 2]),
        }
    }

    #[test]
    fn mlp_plan_follows_the_batch_rule() {
        let g = LayerGraph::mlp(&[12, 8, 6, 4], config());
        let sg = SecureGraph::new(g, 3).unwrap();
        let plan = sg.plan();
        assert_eq!(plan.len(), 3);
        assert_eq!((plan[0].m, plan[0].n, plan[0].o), (8, 12, 3));
        assert!(plan.iter().all(|p| p.mode == TripletMode::MultiBatch));
        let sg1 = SecureGraph::new(sg.graph().clone(), 1).unwrap();
        assert!(sg1.plan().iter().all(|p| p.mode == TripletMode::OneBatch));
        assert_eq!(sg1.mask_shapes(), vec![(12, 1), (8, 1), (6, 1)]);
        assert_eq!(sg1.triplet_shapes(), vec![(8, 1), (6, 1), (4, 1)]);
    }

    #[test]
    fn cnn_plan_uses_positions_as_batch() {
        let in_shape = abnn2_nn::ConvShape { channels: 1, height: 8, width: 8 };
        let g = LayerGraph::cnn(in_shape, 2, (3, 3, 1), 2, &[18, 6, 4], config());
        let sg = SecureGraph::new(g, 1).unwrap();
        let plan = sg.plan();
        assert_eq!(plan.len(), 3);
        // conv: 2 filters over 1·3·3 patches at 6×6 = 36 positions.
        assert_eq!((plan[0].m, plan[0].n, plan[0].o), (2, 9, 36));
        assert_eq!(plan[0].mode, TripletMode::MultiBatch);
        assert_eq!(plan[0].kind, "conv");
        assert_eq!((plan[1].o, plan[1].mode), (1, TripletMode::OneBatch));
        // masks: input image, conv-relu map, pooled map, dense-relu vector.
        assert_eq!(sg.mask_shapes(), vec![(64, 1), (72, 1), (18, 1), (6, 1)]);
        assert_eq!(sg.triplet_shapes(), vec![(2, 36), (6, 1), (4, 1)]);
    }

    #[test]
    fn spatial_graphs_reject_multi_sample_batches() {
        let in_shape = abnn2_nn::ConvShape { channels: 1, height: 8, width: 8 };
        let g = LayerGraph::cnn(in_shape, 2, (3, 3, 1), 2, &[18, 4], config());
        assert!(matches!(SecureGraph::new(g, 2), Err(ProtocolError::Dimension(_))));
        let g = LayerGraph::mlp(&[12, 4], config());
        assert!(SecureGraph::new(g, 2).is_ok());
    }

    #[test]
    fn linear_share_and_weight_product_agree_with_triplet_relation() {
        let ring = Ring::new(32);
        let weights: Vec<i64> = vec![1, -2, 3, 0, 5, -1];
        let bias = vec![7u64, 11];
        let r = Matrix::new(3, 2, vec![1, 2, 3, 4, 5, 6]);
        let u = Matrix::new(2, 2, vec![9, 8, 7, 6]);
        let y = linear_share(&weights, &bias, 2, 3, &r, &u, ring);
        let wr = weight_product(&weights, 2, 3, &r, ring);
        for i in 0..2 {
            for k in 0..2 {
                let expect = ring.add(ring.add(wr.get(i, k), bias[i]), u.get(i, k));
                assert_eq!(y.get(i, k), expect);
            }
        }
    }
}
