//! Versioned session handshake (§3c of DESIGN.md).
//!
//! Before any base OT flows, the two parties exchange one fixed-size hello
//! frame each and agree on every parameter that must match for the
//! transcript to make sense: protocol version, ring width ℓ, fixed-point
//! fraction bits, weight-fragmentation scheme, activation variant, batch
//! size, and a digest of the model architecture. A mismatch that previously
//! surfaced deep inside the protocol as a garbled-circuit failure — or
//! worse, as silently wrong logits — now fails at connect time with a typed
//! [`ProtocolError::Negotiation`] carrying both parties' views.
//!
//! The hello frame also carries a 16-byte session-resume token: a client
//! reconnecting after a mid-protocol failure presents the token of its
//! checkpointed offline state, and the server answers whether it still
//! holds the matching checkpoint, so both sides agree on *fresh run* versus
//! *resume* before spending any cryptography.
//!
//! Wire layout (56 bytes, little-endian):
//!
//! ```text
//! magic[4]=b"ABN2" | version[2] | variant[1] | flags[1]
//! ring_bits[4] | frac_bits[4] | weight_frac_bits[4] | batch[4]
//! scheme_digest[8] | model_digest[8] | token[16]
//! ```
//!
//! `flags` bit 0 is the resume bit: set by the client to *request*
//! resumption, set by the server to *accept* it. The digests are the
//! leading 8 bytes of SHA-256 over a canonical description, so two models
//! with the same dimensions but different fragmentation cannot be confused.
//!
//! The client speaks first (the server cannot know the batch size until the
//! client announces it); the server replies with its own hello *even when
//! the parameters mismatch*, so both sides observe the same symmetric
//! [`ProtocolError::Negotiation`] rather than one of them seeing a bare
//! `Closed`.

use crate::frames::Hello;
use crate::graph::PublicModel;
use crate::inference::PublicModelInfo;
use crate::relu::ReluVariant;
use crate::ProtocolError;
use abnn2_crypto::sha256::sha256;
use abnn2_net::{Transport, TransportError};
use abnn2_nn::graph::LayerGraph;

/// First four bytes of every hello frame.
pub const HANDSHAKE_MAGIC: [u8; 4] = *b"ABN2";

/// Version of the wire protocol spoken after the handshake. Bump on any
/// transcript-incompatible change.
///
/// v2: model digests are derived from the canonical [`LayerGraph`]
/// description (covering CNN topologies), and offline bundles carry a
/// leading layout-version byte.
///
/// v3: every protocol message carries a one-byte frame tag
/// ([`abnn2_net::wire::tags`]) ahead of its payload, checked on receive.
///
/// v4: the hello flags carry a silent-OT capability bit; sessions where
/// both sides set it run the offline phase over the LPN-based silent
/// extension (new frame tags `0x40..=0x43`) instead of IKNP/KK13. The
/// frame layout is unchanged — a v3 peer simply never sets the bit — but
/// the version is bumped because a v4 transcript with the bit set is
/// unreadable to v3.
///
/// v5: the op pipeline is extensible — graphs may contain secret×secret
/// matmul (matrix Beaver triplets, `MATMUL_OPENINGS` frames), softmax,
/// GELU, and layer-norm ops, and offline bundles use layout version 3
/// (matrix-triple sections). MLP/CNN transcripts are byte-identical to
/// v4 apart from the version field and the bundle layout byte.
pub const PROTOCOL_VERSION: u16 = 5;

/// Length of the hello frame in bytes.
pub const HELLO_LEN: usize = 56;

/// Opaque identifier of a resumable offline-phase checkpoint.
pub type ResumeToken = [u8; 16];

/// Everything that must match between the two parties for the protocol
/// transcript to be meaningful. Exchanged inside the hello frame and
/// compared field-for-field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionParams {
    /// Wire-protocol version ([`PROTOCOL_VERSION`]).
    pub version: u16,
    /// Ring width ℓ of ℤ_{2^ℓ}.
    pub ring_bits: u32,
    /// Fractional bits of activations.
    pub frac_bits: u32,
    /// Fractional bits of weights.
    pub weight_frac_bits: u32,
    /// Leading 8 bytes of SHA-256 over the fragment scheme's canonical
    /// label and weight range.
    pub scheme_digest: [u8; 8],
    /// Activation variant (`0` = oblivious, `1` = optimized).
    pub variant: u8,
    /// Number of samples per prediction batch.
    pub batch: u32,
    /// Leading 8 bytes of SHA-256 over the model architecture (layer
    /// dimensions plus fixed-point configuration).
    pub model_digest: [u8; 8],
}

fn variant_code(variant: ReluVariant) -> u8 {
    match variant {
        ReluVariant::Oblivious => 0,
        ReluVariant::Optimized => 1,
    }
}

fn digest8(data: &[u8]) -> [u8; 8] {
    let full = sha256(data);
    full[..8].try_into().expect("8 bytes")
}

/// The `(scheme_digest, model_digest)` pair for a layer graph — the
/// canonical derivation shared by the handshake and the offline-bundle
/// pool key ([`crate::bundle::BundleKey`]). The model digest covers the
/// canonical op-by-op graph description plus the fixed-point
/// configuration, so any two architectures that lower to different graphs
/// (MLP or CNN alike) get distinct digests.
#[must_use]
pub fn graph_digests(graph: &LayerGraph) -> ([u8; 8], [u8; 8]) {
    let scheme = &graph.config.scheme;
    let (lo, hi) = scheme.weight_range();
    let scheme_desc = format!("{} [{lo},{hi}]", scheme.label());

    let model_desc = format!(
        "{}|ring{}|f{}|fw{}|{}",
        graph.describe(),
        graph.config.ring.bits(),
        graph.config.frac_bits,
        graph.config.weight_frac_bits,
        scheme_desc,
    );

    (digest8(scheme_desc.as_bytes()), digest8(model_desc.as_bytes()))
}

/// The `(scheme_digest, model_digest)` pair for a served MLP — lowers the
/// architecture to its layer graph and delegates to [`graph_digests`].
#[must_use]
pub fn model_digests(info: &PublicModelInfo) -> ([u8; 8], [u8; 8]) {
    graph_digests(&info.graph())
}

impl SessionParams {
    /// Derives the parameters both parties must agree on from the layer
    /// graph a model lowers to, the chosen activation variant, and the
    /// batch size. This is the canonical derivation; the model-facing
    /// constructors delegate here.
    #[must_use]
    pub fn for_graph(graph: &LayerGraph, variant: ReluVariant, batch: usize) -> Self {
        let (scheme_digest, model_digest) = graph_digests(graph);
        SessionParams {
            version: PROTOCOL_VERSION,
            ring_bits: graph.config.ring.bits(),
            frac_bits: graph.config.frac_bits,
            weight_frac_bits: graph.config.weight_frac_bits,
            scheme_digest,
            variant: variant_code(variant),
            batch: batch as u32,
            model_digest,
        }
    }

    /// Derives the parameters from a public model of any topology.
    #[must_use]
    pub fn for_public(model: &PublicModel, variant: ReluVariant, batch: usize) -> Self {
        Self::for_graph(&model.graph(), variant, batch)
    }

    /// Derives the parameters both parties must agree on from the public
    /// MLP description, the chosen activation variant, and the batch
    /// size.
    #[must_use]
    pub fn for_model(info: &PublicModelInfo, variant: ReluVariant, batch: usize) -> Self {
        Self::for_graph(&info.graph(), variant, batch)
    }

    fn encode(&self, flags: u8, token: &ResumeToken) -> [u8; HELLO_LEN] {
        let mut frame = [0u8; HELLO_LEN];
        frame[0..4].copy_from_slice(&HANDSHAKE_MAGIC);
        frame[4..6].copy_from_slice(&self.version.to_le_bytes());
        frame[6] = self.variant;
        frame[7] = flags;
        frame[8..12].copy_from_slice(&self.ring_bits.to_le_bytes());
        frame[12..16].copy_from_slice(&self.frac_bits.to_le_bytes());
        frame[16..20].copy_from_slice(&self.weight_frac_bits.to_le_bytes());
        frame[20..24].copy_from_slice(&self.batch.to_le_bytes());
        frame[24..32].copy_from_slice(&self.scheme_digest);
        frame[32..40].copy_from_slice(&self.model_digest);
        frame[40..56].copy_from_slice(token);
        frame
    }

    fn decode(frame: &[u8]) -> Result<(Self, u8, ResumeToken), ProtocolError> {
        if frame.len() != HELLO_LEN {
            return Err(ProtocolError::Handshake("hello frame length"));
        }
        if frame[0..4] != HANDSHAKE_MAGIC {
            return Err(ProtocolError::Handshake("bad magic (peer is not ABNN2)"));
        }
        let le_u16 =
            |r: std::ops::Range<usize>| u16::from_le_bytes(frame[r].try_into().expect("2 bytes"));
        let le_u32 =
            |r: std::ops::Range<usize>| u32::from_le_bytes(frame[r].try_into().expect("4 bytes"));
        let params = SessionParams {
            version: le_u16(4..6),
            variant: frame[6],
            ring_bits: le_u32(8..12),
            frac_bits: le_u32(12..16),
            weight_frac_bits: le_u32(16..20),
            batch: le_u32(20..24),
            scheme_digest: frame[24..32].try_into().expect("8 bytes"),
            model_digest: frame[32..40].try_into().expect("8 bytes"),
        };
        let token: ResumeToken = frame[40..56].try_into().expect("16 bytes");
        Ok((params, frame[7], token))
    }
}

const FLAG_RESUME: u8 = 1;
const FLAG_BUNDLE: u8 = 2;
const FLAG_BUSY: u8 = 4;
const FLAG_SILENT: u8 = 8;

/// A hello that fails wire-level framing (wrong tag, wrong length) means
/// the peer is not speaking this protocol: classify it as
/// [`ProtocolError::Handshake`] rather than the generic `Malformed` used
/// for post-handshake traffic.
fn hello_err(e: TransportError) -> ProtocolError {
    match e {
        TransportError::Malformed(what) => ProtocolError::Handshake(what),
        other => other.into(),
    }
}

/// What the client asks of a session beyond the baseline protocol run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HelloRequest {
    /// Resume the offline checkpoint identified by the hello's token.
    pub resume: bool,
    /// Install a server-precomputed offline bundle (dealer mode) so the
    /// interactive offline phase can be skipped. Ignored by the server when
    /// a resume was requested and accepted.
    pub bundle: bool,
    /// This client can run the offline phase over the silent (LPN) OT
    /// extension; the session uses it only if the server sets the bit too.
    pub silent: bool,
}

/// The server's answer to a [`HelloRequest`], read from the reply flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HelloReply {
    /// The server holds the checkpoint and will resume it.
    pub resume: bool,
    /// The server has a warm precomputed bundle and will send it right
    /// after session setup.
    pub bundle: bool,
    /// Both sides are silent-OT capable: the offline phase (and any pooled
    /// bundle) uses [`abnn2_ot::OfflineMode::Silent`].
    pub silent: bool,
}

impl HelloReply {
    /// The negotiated offline mode this reply implies.
    #[must_use]
    pub fn mode(&self) -> abnn2_ot::OfflineMode {
        if self.silent {
            abnn2_ot::OfflineMode::Silent
        } else {
            abnn2_ot::OfflineMode::Iknp
        }
    }
}

/// Client side of the handshake: sends our hello carrying the
/// [`HelloRequest`] (resume and/or warm-bundle), receives the server's
/// hello, and verifies agreement.
///
/// # Errors
///
/// [`ProtocolError::Overloaded`] if the server refused admission,
/// [`ProtocolError::Handshake`] if the reply is not a valid hello frame,
/// [`ProtocolError::Negotiation`] if the parameters disagree, or a
/// transport-level error.
pub fn handshake_client_ext<T: Transport>(
    ch: &mut T,
    ours: SessionParams,
    token: &ResumeToken,
    request: HelloRequest,
) -> Result<HelloReply, ProtocolError> {
    let mut flags = 0;
    if request.resume {
        flags |= FLAG_RESUME;
    }
    if request.bundle {
        flags |= FLAG_BUNDLE;
    }
    if request.silent {
        flags |= FLAG_SILENT;
    }
    ch.send_frame(&Hello(ours.encode(flags, token).to_vec()))?;
    let Hello(reply) = ch.recv_frame().map_err(hello_err)?;
    let (theirs, reply_flags, reply_token) = SessionParams::decode(&reply)?;
    // Admission rejection outranks the parameter check: an overloaded
    // server replies with a minimal busy frame, not its real parameters.
    // The token field of a busy frame is repurposed to carry the server's
    // retry-after hint in its leading four bytes (zero from older peers).
    if reply_flags & FLAG_BUSY != 0 {
        let retry_after_ms =
            u32::from_le_bytes(reply_token[..4].try_into().expect("token is 16 bytes"));
        return Err(ProtocolError::Overloaded { retry_after_ms });
    }
    if theirs != ours {
        return Err(ProtocolError::Negotiation { ours, theirs });
    }
    Ok(HelloReply {
        resume: request.resume && reply_flags & FLAG_RESUME != 0,
        bundle: request.bundle && reply_flags & FLAG_BUNDLE != 0,
        silent: request.silent && reply_flags & FLAG_SILENT != 0,
    })
}

/// Client side of the handshake: sends our hello (optionally requesting
/// resumption of the checkpoint identified by `token`), receives the
/// server's hello, and verifies agreement.
///
/// Returns whether the server accepted the resume request (always `false`
/// when `resume` was not requested).
///
/// # Errors
///
/// [`ProtocolError::Handshake`] if the reply is not a valid hello frame,
/// [`ProtocolError::Negotiation`] if the parameters disagree, or a
/// transport-level error.
pub fn handshake_client<T: Transport>(
    ch: &mut T,
    ours: SessionParams,
    token: &ResumeToken,
    resume: bool,
) -> Result<bool, ProtocolError> {
    let request = HelloRequest { resume, ..HelloRequest::default() };
    let reply = handshake_client_ext(ch, ours, token, request)?;
    Ok(reply.resume)
}

/// Server side of the handshake: receives the client hello, derives our
/// own parameters for the announced batch via `ours_for`, decides on the
/// client's [`HelloRequest`] via `can_resume`/`offer_bundle`, and replies.
///
/// `offer_bundle` is consulted only when the client asked for a bundle and
/// no resume was accepted (a resumed session already has its offline
/// state); it receives the negotiated parameters *and the negotiated
/// offline mode* so it can look up the matching pool key — bundles pooled
/// for silent sessions are keyed apart from IKNP ones — and, when it
/// answers `true`, it has *committed* to sending the bundle right after
/// session setup.
///
/// The reply is sent *before* the mismatch check so a disagreeing client
/// observes the same [`ProtocolError::Negotiation`] we do.
///
/// Returns `(batch, client_token, reply)`.
///
/// # Errors
///
/// [`ProtocolError::Handshake`] if the hello is not a valid frame,
/// [`ProtocolError::Negotiation`] if the parameters disagree, or a
/// transport-level error.
pub fn handshake_server_ext<T: Transport>(
    ch: &mut T,
    ours_for: impl FnOnce(usize) -> SessionParams,
    can_resume: impl FnOnce(&ResumeToken) -> bool,
    offer_bundle: impl FnOnce(&SessionParams, abnn2_ot::OfflineMode) -> bool,
) -> Result<(usize, ResumeToken, HelloReply), ProtocolError> {
    let Hello(hello) = ch.recv_frame().map_err(hello_err)?;
    let (theirs, flags, token) = SessionParams::decode(&hello)?;
    let batch = theirs.batch as usize;
    let ours = ours_for(batch);
    // Only honor requests from a matching peer: a client that is about to
    // fail negotiation must not consume a checkpoint or a pooled bundle.
    let matched = theirs == ours;
    // The server is always silent-capable; the client's bit decides. A
    // mixed fleet thus degrades per-connection: silent clients get silent
    // sessions, IKNP clients keep the KK13 path, on one server.
    let silent_ok = matched && flags & FLAG_SILENT != 0;
    let mode = if silent_ok { abnn2_ot::OfflineMode::Silent } else { abnn2_ot::OfflineMode::Iknp };
    let resume_ok = matched && flags & FLAG_RESUME != 0 && can_resume(&token);
    let bundle_ok = matched && !resume_ok && flags & FLAG_BUNDLE != 0 && offer_bundle(&ours, mode);
    let mut reply_flags = 0;
    if resume_ok {
        reply_flags |= FLAG_RESUME;
    }
    if bundle_ok {
        reply_flags |= FLAG_BUNDLE;
    }
    if silent_ok {
        reply_flags |= FLAG_SILENT;
    }
    ch.send_frame(&Hello(ours.encode(reply_flags, &token).to_vec()))?;
    ch.flush()?;
    if !matched {
        return Err(ProtocolError::Negotiation { ours, theirs });
    }
    Ok((batch, token, HelloReply { resume: resume_ok, bundle: bundle_ok, silent: silent_ok }))
}

/// Server side of the handshake: receives the client hello, derives our
/// own parameters for the announced batch via `ours_for`, decides on the
/// resume request via `can_resume`, and replies.
///
/// Returns `(batch, client_token, resume_accepted)`.
///
/// # Errors
///
/// [`ProtocolError::Handshake`] if the hello is not a valid frame,
/// [`ProtocolError::Negotiation`] if the parameters disagree, or a
/// transport-level error.
pub fn handshake_server<T: Transport>(
    ch: &mut T,
    ours_for: impl FnOnce(usize) -> SessionParams,
    can_resume: impl FnOnce(&ResumeToken) -> bool,
) -> Result<(usize, ResumeToken, bool), ProtocolError> {
    let (batch, token, reply) = handshake_server_ext(ch, ours_for, can_resume, |_, _| false)?;
    Ok((batch, token, reply.resume))
}

/// Admission-control rejection: sent by a server that will not serve this
/// connection (accept queue full, or draining for shutdown), *without*
/// reading the client's hello. The busy frame carries the server's
/// parameters for batch 0 purely to satisfy the frame format; the client
/// checks the busy flag before anything else and surfaces
/// [`ProtocolError::Overloaded`].
///
/// # Errors
///
/// Transport-level errors only; a peer that vanished mid-rejection is not
/// worth reporting beyond that.
pub fn reject_busy<T: Transport>(ch: &mut T, ours: SessionParams) -> Result<(), ProtocolError> {
    reject_busy_with(ch, ours, 0)
}

/// [`reject_busy`] with a load-shedding hint: the client should wait at
/// least `retry_after_ms` before its next admission attempt. The hint
/// rides in the leading four bytes of the busy frame's otherwise-unused
/// token field, so the frame format and protocol version are unchanged;
/// clients that predate the hint see only the busy flag they already
/// understand.
///
/// # Errors
///
/// Transport-level errors only; a peer that vanished mid-rejection is not
/// worth reporting beyond that.
pub fn reject_busy_with<T: Transport>(
    ch: &mut T,
    ours: SessionParams,
    retry_after_ms: u32,
) -> Result<(), ProtocolError> {
    let mut token = [0u8; 16];
    token[..4].copy_from_slice(&retry_after_ms.to_le_bytes());
    ch.send_frame(&Hello(ours.encode(FLAG_BUSY, &token).to_vec()))?;
    ch.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_math::{FragmentScheme, Ring};
    use abnn2_net::{Endpoint, NetworkModel};
    use abnn2_nn::quant::QuantConfig;

    fn info(dims: &[usize], ring_bits: u32) -> PublicModelInfo {
        PublicModelInfo {
            dims: dims.to_vec(),
            config: QuantConfig {
                ring: Ring::new(ring_bits),
                frac_bits: 8,
                weight_frac_bits: 4,
                scheme: FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]),
            },
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = SessionParams::for_model(&info(&[784, 16, 10], 32), ReluVariant::Optimized, 3);
        let token: ResumeToken = [7; 16];
        let frame = p.encode(FLAG_RESUME, &token);
        assert_eq!(frame.len(), HELLO_LEN);
        let (q, flags, t) = SessionParams::decode(&frame).unwrap();
        assert_eq!(q, p);
        assert_eq!(flags, FLAG_RESUME);
        assert_eq!(t, token);
    }

    #[test]
    fn digests_distinguish_models_and_schemes() {
        let base = SessionParams::for_model(&info(&[784, 16, 10], 32), ReluVariant::Oblivious, 1);
        let other_dims =
            SessionParams::for_model(&info(&[784, 12, 10], 32), ReluVariant::Oblivious, 1);
        assert_ne!(base.model_digest, other_dims.model_digest);

        let mut ternary = info(&[784, 16, 10], 32);
        ternary.config.scheme = FragmentScheme::ternary();
        let other_scheme = SessionParams::for_model(&ternary, ReluVariant::Oblivious, 1);
        assert_ne!(base.scheme_digest, other_scheme.scheme_digest);
    }

    #[test]
    fn matching_parties_agree_and_resume_flows_through() {
        let i = info(&[8, 4, 2], 32);
        let (mut c, mut s) = Endpoint::pair(NetworkModel::instant());
        let ours = SessionParams::for_model(&i, ReluVariant::Oblivious, 2);
        let token: ResumeToken = [3; 16];

        let i2 = i.clone();
        std::thread::scope(|scope| {
            let server = scope.spawn(move || {
                handshake_server(
                    &mut s,
                    |batch| SessionParams::for_model(&i2, ReluVariant::Oblivious, batch),
                    |t| *t == [3; 16],
                )
            });
            let accepted = handshake_client(&mut c, ours, &token, true).unwrap();
            assert!(accepted);
            let (batch, seen_token, resumed) = server.join().unwrap().unwrap();
            assert_eq!(batch, 2);
            assert_eq!(seen_token, token);
            assert!(resumed);
        });
    }

    #[test]
    fn mismatched_parties_both_see_negotiation() {
        let client_info = info(&[8, 4, 2], 32);
        let server_info = info(&[8, 4, 2], 16); // different ring width
        let (mut c, mut s) = Endpoint::pair(NetworkModel::instant());
        let ours = SessionParams::for_model(&client_info, ReluVariant::Oblivious, 1);

        std::thread::scope(|scope| {
            let server = scope.spawn(move || {
                handshake_server(
                    &mut s,
                    |batch| SessionParams::for_model(&server_info, ReluVariant::Oblivious, batch),
                    |_| false,
                )
            });
            let client_err = handshake_client(&mut c, ours, &[0; 16], false).unwrap_err();
            let server_err = server.join().unwrap().unwrap_err();
            match (client_err, server_err) {
                (
                    ProtocolError::Negotiation { ours: co, theirs: ct },
                    ProtocolError::Negotiation { ours: so, theirs: st },
                ) => {
                    // Each party's "theirs" is the other's "ours".
                    assert_eq!(co, st);
                    assert_eq!(so, ct);
                    assert_ne!(co.ring_bits, ct.ring_bits);
                }
                other => panic!("expected symmetric negotiation errors, got {other:?}"),
            }
        });
    }

    #[test]
    fn variant_mismatch_is_negotiation() {
        let i = info(&[8, 4, 2], 32);
        let (mut c, mut s) = Endpoint::pair(NetworkModel::instant());
        let ours = SessionParams::for_model(&i, ReluVariant::Optimized, 1);
        let i2 = i.clone();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let _ = handshake_server(
                    &mut s,
                    |batch| SessionParams::for_model(&i2, ReluVariant::Oblivious, batch),
                    |_| false,
                );
            });
            let err = handshake_client(&mut c, ours, &[0; 16], false).unwrap_err();
            assert!(matches!(err, ProtocolError::Negotiation { .. }));
        });
    }

    #[test]
    fn busy_rejection_surfaces_overloaded_before_negotiation() {
        // The server's busy frame carries mismatching parameters (batch 0),
        // but the busy flag must win: the client reports Overloaded, not
        // Negotiation.
        let i = info(&[8, 4, 2], 32);
        let (mut c, mut s) = Endpoint::pair(NetworkModel::instant());
        let ours = SessionParams::for_model(&i, ReluVariant::Oblivious, 3);
        let i2 = i.clone();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                reject_busy_with(
                    &mut s,
                    SessionParams::for_model(&i2, ReluVariant::Oblivious, 0),
                    250,
                )
                .unwrap();
                // Drain the client's hello so the link stays open until the
                // client has sent it (a real acceptor closes after reject;
                // the hello sits in the socket buffer either way). Raw
                // recv on purpose: the frame is discarded unparsed.
                let _ = Transport::recv(&mut s);
            });
            let err = handshake_client(&mut c, ours, &[0; 16], false).unwrap_err();
            assert_eq!(err, ProtocolError::Overloaded { retry_after_ms: 250 });
        });
    }

    #[test]
    fn plain_busy_rejection_carries_no_hint() {
        let i = info(&[8, 4, 2], 32);
        let (mut c, mut s) = Endpoint::pair(NetworkModel::instant());
        let ours = SessionParams::for_model(&i, ReluVariant::Oblivious, 1);
        let i2 = i.clone();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                reject_busy(&mut s, SessionParams::for_model(&i2, ReluVariant::Oblivious, 0))
                    .unwrap();
                let _ = Transport::recv(&mut s);
            });
            let err = handshake_client(&mut c, ours, &[0; 16], false).unwrap_err();
            assert_eq!(err, ProtocolError::Overloaded { retry_after_ms: 0 });
        });
    }

    #[test]
    fn bundle_request_honored_for_matching_peer() {
        let i = info(&[8, 4, 2], 32);
        let (mut c, mut s) = Endpoint::pair(NetworkModel::instant());
        let ours = SessionParams::for_model(&i, ReluVariant::Oblivious, 2);
        let i2 = i.clone();
        std::thread::scope(|scope| {
            let server = scope.spawn(move || {
                handshake_server_ext(
                    &mut s,
                    |batch| SessionParams::for_model(&i2, ReluVariant::Oblivious, batch),
                    |_| false,
                    |params, _| params.batch == 2,
                )
            });
            let reply = handshake_client_ext(
                &mut c,
                ours,
                &[0; 16],
                HelloRequest { bundle: true, ..HelloRequest::default() },
            )
            .unwrap();
            assert_eq!(reply, HelloReply { bundle: true, ..HelloReply::default() });
            let (_, _, srv_reply) = server.join().unwrap().unwrap();
            assert_eq!(srv_reply, reply);
        });
    }

    #[test]
    fn resume_wins_over_bundle() {
        // A client asking for both gets the resume; the pool must not also
        // commit a bundle to a session that already has offline state.
        let i = info(&[8, 4, 2], 32);
        let (mut c, mut s) = Endpoint::pair(NetworkModel::instant());
        let ours = SessionParams::for_model(&i, ReluVariant::Oblivious, 1);
        let i2 = i.clone();
        std::thread::scope(|scope| {
            let server = scope.spawn(move || {
                handshake_server_ext(
                    &mut s,
                    |batch| SessionParams::for_model(&i2, ReluVariant::Oblivious, batch),
                    |_| true,
                    |_, _| true,
                )
            });
            let reply = handshake_client_ext(
                &mut c,
                ours,
                &[5; 16],
                HelloRequest { resume: true, bundle: true, ..HelloRequest::default() },
            )
            .unwrap();
            assert_eq!(reply, HelloReply { resume: true, bundle: false, silent: false });
            server.join().unwrap().unwrap();
        });
    }

    #[test]
    fn silent_capability_negotiates_per_connection() {
        use abnn2_ot::OfflineMode;
        // A silent-capable client gets a silent session; a legacy client on
        // the same server silently (pun intended) keeps the KK13 path.
        let i = info(&[8, 4, 2], 32);
        for client_silent in [true, false] {
            let (mut c, mut s) = Endpoint::pair(NetworkModel::instant());
            let ours = SessionParams::for_model(&i, ReluVariant::Oblivious, 1);
            let i2 = i.clone();
            std::thread::scope(|scope| {
                let server = scope.spawn(move || {
                    handshake_server_ext(
                        &mut s,
                        |batch| SessionParams::for_model(&i2, ReluVariant::Oblivious, batch),
                        |_| false,
                        |_, _| false,
                    )
                });
                let reply = handshake_client_ext(
                    &mut c,
                    ours,
                    &[0; 16],
                    HelloRequest { silent: client_silent, ..HelloRequest::default() },
                )
                .unwrap();
                assert_eq!(reply.silent, client_silent);
                let expect = if client_silent { OfflineMode::Silent } else { OfflineMode::Iknp };
                assert_eq!(reply.mode(), expect);
                let (_, _, srv_reply) = server.join().unwrap().unwrap();
                assert_eq!(srv_reply, reply);
            });
        }
    }

    #[test]
    fn mismatched_peer_cannot_consume_bundle_or_checkpoint() {
        let client_info = info(&[8, 4, 2], 32);
        let server_info = info(&[8, 4, 2], 16);
        let (mut c, mut s) = Endpoint::pair(NetworkModel::instant());
        let ours = SessionParams::for_model(&client_info, ReluVariant::Oblivious, 1);
        std::thread::scope(|scope| {
            let server = scope.spawn(move || {
                let consulted = std::cell::Cell::new(false);
                let r = handshake_server_ext(
                    &mut s,
                    |batch| SessionParams::for_model(&server_info, ReluVariant::Oblivious, batch),
                    |_| {
                        consulted.set(true);
                        true
                    },
                    |_, _| {
                        consulted.set(true);
                        true
                    },
                );
                (r, consulted.get())
            });
            let err = handshake_client_ext(
                &mut c,
                ours,
                &[9; 16],
                HelloRequest { resume: true, bundle: true, ..HelloRequest::default() },
            )
            .unwrap_err();
            assert!(matches!(err, ProtocolError::Negotiation { .. }));
            let (result, consulted) = server.join().unwrap();
            assert!(matches!(result, Err(ProtocolError::Negotiation { .. })));
            assert!(!consulted, "mismatched peers must not reach the store or pool");
        });
    }

    #[test]
    fn garbage_hello_is_handshake_error() {
        let (mut c, mut s) = Endpoint::pair(NetworkModel::instant());
        let our_params =
            |_: usize| SessionParams::for_model(&info(&[2, 2], 32), ReluVariant::Oblivious, 1);

        // Raw sends on purpose: these messages simulate a peer that does
        // not speak the framed protocol at all.
        Transport::send(&mut c, b"GET / HTTP/1.1\r\n").unwrap();
        let err = handshake_server(&mut s, our_params, |_| false).unwrap_err();
        assert_eq!(err, ProtocolError::Handshake("hello frame tag"));

        // Right tag, wrong payload length.
        Transport::send(&mut c, &[abnn2_net::wire::tags::HELLO, 1, 2, 3]).unwrap();
        let err = handshake_server(&mut s, our_params, |_| false).unwrap_err();
        assert_eq!(err, ProtocolError::Handshake("hello frame length"));

        // Right tag and length, wrong magic.
        let mut msg = vec![abnn2_net::wire::tags::HELLO];
        msg.extend_from_slice(&[0u8; HELLO_LEN]);
        msg[1..5].copy_from_slice(b"HTTP");
        Transport::send(&mut c, &msg).unwrap();
        let err = handshake_server(&mut s, our_params, |_| false).unwrap_err();
        assert_eq!(err, ProtocolError::Handshake("bad magic (peer is not ABNN2)"));
    }
}
