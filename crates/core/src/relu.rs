//! Online activation protocols (§4.2).
//!
//! Both variants compute, per neuron, fresh shares of
//! `ReLU((y₀ + y₁) ≫ₐ shift)` where `shift` removes the weight-scale
//! fractional bits (exactly — the shift happens inside the circuit on the
//! reconstructed value, not on shares):
//!
//! * [`ReluVariant::Oblivious`] — Algorithm 2: one garbled circuit
//!   reconstructs, applies ReLU + truncation, and re-shares. Nothing about
//!   the data is revealed.
//! * [`ReluVariant::Optimized`] — the paper's optimized ReLU: a small
//!   comparison circuit first reveals *which neurons are negative*; those
//!   are re-shared as zero with no further garbling, and only the
//!   non-negative subset pays for the reconstruct-and-reshare circuit.
//!   **Trade-off**: the sign of every pre-activation leaks to both parties
//!   (the paper accepts this; we default to `Oblivious`).

use crate::frames::{NegShares, SignBits};
use crate::ProtocolError;
use abnn2_gc::circuit::{bits_to_u64, u64_to_bits};
use abnn2_gc::{circuits, YaoEvaluator, YaoGarbler};
use abnn2_math::Ring;
use abnn2_net::Transport;
use abnn2_ot::bits::{get_bit, pack_bits};
use rand::Rng;

/// Which §4.2 activation protocol to run. Both parties must agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReluVariant {
    /// Algorithm 2 — fully oblivious (default).
    #[default]
    Oblivious,
    /// Comparison-first optimization — cheaper, leaks pre-activation signs.
    Optimized,
}

/// Flattens ring words into the little-endian bit vector a Yao circuit
/// consumes. Shared with the nonlinear-op family in [`crate::nonlinear`].
pub(crate) fn words_to_bits(words: &[u64], bits: usize) -> Vec<bool> {
    words.iter().flat_map(|&w| u64_to_bits(w, bits)).collect()
}

/// Inverse of [`words_to_bits`]: repacks circuit output bits into ring
/// words. Shared with [`crate::nonlinear`].
pub(crate) fn bits_to_words(bits_vec: &[bool], bits: usize) -> Vec<u64> {
    bits_vec.chunks(bits).map(bits_to_u64).collect()
}

/// Server (evaluator) side: holds shares `y0`, obtains fresh shares `z0` of
/// the activated, truncated values.
///
/// # Errors
///
/// Returns [`ProtocolError`] on disconnection or garbling failures.
pub fn relu_server<T: Transport>(
    ch: &mut T,
    yao: &mut YaoEvaluator,
    y0: &[u64],
    ring: Ring,
    shift: u32,
    variant: ReluVariant,
) -> Result<Vec<u64>, ProtocolError> {
    let bits = ring.bits() as usize;
    let n = y0.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    match variant {
        ReluVariant::Oblivious => {
            let circuit = circuits::relu_trunc_reshare_vec_circuit(bits, n, shift as usize);
            let out = yao.run(ch, &circuit, &words_to_bits(y0, bits))?;
            Ok(bits_to_words(&out, bits))
        }
        ReluVariant::Optimized => {
            // Phase 1: comparison circuit reveals per-neuron signs.
            let sign_circuit = circuits::relu_sign_vec_circuit(bits, n);
            let non_neg = yao.run(ch, &sign_circuit, &words_to_bits(y0, bits))?;
            ch.send_frame(&SignBits(pack_bits(&non_neg)))?;

            // Negative neurons: the client re-shares zero by sending −z1.
            let neg_count = non_neg.iter().filter(|&&b| !b).count();
            let NegShares(neg_bytes) = ch.recv_frame()?;
            if neg_bytes.len() != neg_count * ring.byte_len() {
                return Err(ProtocolError::Malformed("negative-neuron share batch length"));
            }
            let neg_shares = ring.decode_slice(&neg_bytes);

            // Phase 2: reconstruct-and-reshare only the non-negative subset.
            let pos: Vec<usize> = (0..n).filter(|&j| non_neg[j]).collect();
            let pos_shares = if pos.is_empty() {
                Vec::new()
            } else {
                let y0_pos: Vec<u64> = pos.iter().map(|&j| y0[j]).collect();
                let circuit = circuits::reconstruct_trunc_reshare_vec_circuit(
                    bits,
                    pos.len(),
                    shift as usize,
                );
                let out = yao.run(ch, &circuit, &words_to_bits(&y0_pos, bits))?;
                bits_to_words(&out, bits)
            };

            let mut z0 = vec![0u64; n];
            let (mut pi, mut ni) = (0usize, 0usize);
            for (j, z) in z0.iter_mut().enumerate() {
                if non_neg[j] {
                    *z = pos_shares[pi];
                    pi += 1;
                } else {
                    *z = neg_shares[ni];
                    ni += 1;
                }
            }
            Ok(z0)
        }
    }
}

/// Client (garbler) side: holds shares `y1` and supplies its fresh output
/// shares `z1` (which in the full pipeline equal the next layer's offline
/// randomness `R`).
///
/// # Errors
///
/// Returns [`ProtocolError`] on disconnection or garbling failures.
///
/// # Panics
///
/// Panics if `y1.len() != z1.len()`.
#[allow(clippy::too_many_arguments)]
pub fn relu_client<T: Transport, RNG: Rng + ?Sized>(
    ch: &mut T,
    yao: &mut YaoGarbler,
    y1: &[u64],
    z1: &[u64],
    ring: Ring,
    shift: u32,
    variant: ReluVariant,
    rng: &mut RNG,
) -> Result<(), ProtocolError> {
    assert_eq!(y1.len(), z1.len(), "share vectors must align");
    let bits = ring.bits() as usize;
    let n = y1.len();
    if n == 0 {
        return Ok(());
    }
    match variant {
        ReluVariant::Oblivious => {
            let circuit = circuits::relu_trunc_reshare_vec_circuit(bits, n, shift as usize);
            let mut gbits = words_to_bits(y1, bits);
            gbits.extend(words_to_bits(z1, bits));
            yao.run(ch, &circuit, &gbits, rng)?;
            Ok(())
        }
        ReluVariant::Optimized => {
            let sign_circuit = circuits::relu_sign_vec_circuit(bits, n);
            yao.run(ch, &sign_circuit, &words_to_bits(y1, bits), rng)?;
            let SignBits(sign_bytes) = ch.recv_frame()?;
            if sign_bytes.len() != n.div_ceil(8) {
                return Err(ProtocolError::Malformed("sign-bit batch length"));
            }
            let non_neg: Vec<bool> = (0..n).map(|j| get_bit(&sign_bytes, j)).collect();

            // z = 0 for negative neurons: z0 must equal −z1.
            let neg_shares: Vec<u64> =
                (0..n).filter(|&j| !non_neg[j]).map(|j| ring.neg(z1[j])).collect();
            ch.send_frame(&NegShares(ring.encode_slice(&neg_shares)))?;

            let pos: Vec<usize> = (0..n).filter(|&j| non_neg[j]).collect();
            if !pos.is_empty() {
                let circuit = circuits::reconstruct_trunc_reshare_vec_circuit(
                    bits,
                    pos.len(),
                    shift as usize,
                );
                let mut gbits: Vec<bool> = Vec::with_capacity(2 * pos.len() * bits);
                for &j in &pos {
                    gbits.extend(u64_to_bits(y1[j], bits));
                }
                for &j in &pos {
                    gbits.extend(u64_to_bits(z1[j], bits));
                }
                yao.run(ch, &circuit, &gbits, rng)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_net::{run_pair, NetworkModel, TrafficReport};
    use rand::SeedableRng;

    fn run_relu(
        y: Vec<i64>,
        shift: u32,
        variant: ReluVariant,
        seed: u64,
    ) -> (Vec<u64>, Vec<u64>, TrafficReport) {
        let ring = Ring::new(32);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let y_ring: Vec<u64> = y.iter().map(|&v| ring.from_i64(v)).collect();
        let y1: Vec<u64> = ring.sample_vec(&mut rng, y.len());
        let y0: Vec<u64> = ring.sub_vec(&y_ring, &y1);
        let z1: Vec<u64> = ring.sample_vec(&mut rng, y.len());
        let (y1c, z1c) = (y1.clone(), z1.clone());
        let (z0, (), _report) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 1);
                let mut yao = YaoEvaluator::setup(ch, &mut rng).expect("setup");
                relu_server(ch, &mut yao, &y0, ring, shift, variant).expect("server")
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 2);
                let mut yao = YaoGarbler::setup(ch, &mut rng).expect("setup");
                relu_client(ch, &mut yao, &y1c, &z1c, ring, shift, variant, &mut rng)
                    .expect("client");
            },
        );
        (z0, z1, _report)
    }

    fn check(y: Vec<i64>, shift: u32, variant: ReluVariant, seed: u64) {
        let ring = Ring::new(32);
        let (z0, z1, _) = run_relu(y.clone(), shift, variant, seed);
        for (j, &yv) in y.iter().enumerate() {
            let t = yv >> shift;
            let expect = if t < 0 { 0 } else { ring.from_i64(t) };
            assert_eq!(ring.add(z0[j], z1[j]), expect, "variant {variant:?}, y = {yv}");
        }
    }

    #[test]
    fn oblivious_relu_mixed_signs() {
        check(vec![100, -100, 0, 65535, -65536, 7, -1], 0, ReluVariant::Oblivious, 1000);
    }

    #[test]
    fn oblivious_relu_with_truncation() {
        check(vec![4096, -4096, 255, -255, 1 << 20], 8, ReluVariant::Oblivious, 2000);
    }

    #[test]
    fn optimized_relu_mixed_signs() {
        check(vec![100, -100, 0, 65535, -65536, 7, -1], 0, ReluVariant::Optimized, 3000);
    }

    #[test]
    fn optimized_relu_with_truncation() {
        check(vec![4096, -4096, 255, -255, 1 << 20], 8, ReluVariant::Optimized, 4000);
    }

    #[test]
    fn optimized_relu_all_negative() {
        check(vec![-5, -10, -1], 0, ReluVariant::Optimized, 5000);
    }

    #[test]
    fn optimized_relu_all_positive() {
        check(vec![5, 10, 1], 0, ReluVariant::Optimized, 6000);
    }

    #[test]
    fn optimized_saves_gc_traffic_when_neurons_negative() {
        // With every neuron negative, the optimized variant sends only the
        // comparison circuit, far less than the full Algorithm 2 circuit.
        let y: Vec<i64> = vec![-1000; 64];
        let (_, _, rep_obl) = run_relu(y.clone(), 0, ReluVariant::Oblivious, 7000);
        let (_, _, rep_opt) = run_relu(y, 0, ReluVariant::Optimized, 7001);
        assert!(
            rep_opt.total_bytes() < rep_obl.total_bytes(),
            "optimized {} >= oblivious {}",
            rep_opt.total_bytes(),
            rep_obl.total_bytes()
        );
    }

    #[test]
    fn empty_input_is_noop() {
        let (z0, _, _) = run_relu(vec![], 0, ReluVariant::Oblivious, 8000);
        assert!(z0.is_empty());
    }
}
