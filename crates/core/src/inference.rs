//! End-to-end secure inference (Fig 2 of the paper) — thin adapters over
//! the [`crate::graph`] planner/executor.
//!
//! The server holds a [`QuantizedNetwork`]; the client holds inputs and the
//! public [`PublicModelInfo`] (architecture + fixed-point hyper-parameters —
//! never the weights). Both lower the model to the shared
//! [`LayerGraph`] IR and drive the graph executor:
//!
//! * **offline** — data-independent: the planner emits one dot-product
//!   triplet requirement `U + V = W·R` per linear op, generated from
//!   client-chosen randomness `R` via the §4.1 OT protocols;
//! * **online** — the client blinds its input with `R⁰`, each linear op
//!   costs one local matrix product plus the precomputed triplet, each
//!   re-sharing op runs a §4.2 garbled circuit whose fresh client share
//!   *is* the next linear op's `R`, and the graph's terminal `Output` op
//!   opens the final shares toward the client.
//!
//! The client's reconstructed outputs equal
//! [`QuantizedNetwork::forward_exact`] bit for bit. The same adapters
//! serve CNNs through [`crate::graph::ServedModel`]; see [`crate::cnn`]
//! for the topology-specific convenience wrappers.

use crate::bundle::{ClientBundle, ServerBundle};
use crate::config::ExecConfig;
use crate::frames::OutputShares;
use crate::graph::{
    client_offline_with, client_online_to_logits, server_offline_with, server_online_to_logits,
    PublicModel, SecureGraph, ServedModel,
};
use crate::handshake::{handshake_client_ext, handshake_server_ext, HelloRequest, SessionParams};
use crate::matbeaver::MatrixTriple;
use crate::relu::ReluVariant;
use crate::session::{ClientSession, ServerSession};
use crate::ProtocolError;
use abnn2_math::{Matrix, Ring};
use abnn2_net::Transport;
use abnn2_nn::graph::LayerGraph;
use abnn2_nn::quant::{QuantConfig, QuantizedDense, QuantizedNetwork};
use abnn2_nn::transformer::QuantizedTransformer;
use abnn2_ot::OfflineMode;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The public description of a served model: everything the client needs to
/// run the protocol, nothing that reveals the weights.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublicModelInfo {
    /// Layer dimensions `[in, hidden…, out]`.
    pub dims: Vec<usize>,
    /// Fixed-point pipeline hyper-parameters (ring, fraction bits, scheme).
    pub config: QuantConfig,
}

impl From<&QuantizedNetwork> for PublicModelInfo {
    fn from(net: &QuantizedNetwork) -> Self {
        PublicModelInfo { dims: net.dims(), config: net.config.clone() }
    }
}

impl PublicModelInfo {
    /// The layer graph this architecture lowers to.
    #[must_use]
    pub fn graph(&self) -> LayerGraph {
        LayerGraph::mlp(&self.dims, self.config.clone())
    }
}

/// The public description of a served transformer encoder: shape
/// hyper-parameters and the validated layer graph, never weights. Unlike
/// [`PublicModelInfo`] it stores the graph it was derived from (transformer
/// graph construction is fallible; deriving once keeps `graph()`
/// infallible and the handshake digests stable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublicTransformerInfo {
    /// Sequence length (tokens).
    pub seq: usize,
    /// Model width per token.
    pub d: usize,
    /// Feed-forward hidden width per token.
    pub d_ff: usize,
    /// Classifier output classes.
    pub n_classes: usize,
    graph: LayerGraph,
}

impl From<&QuantizedTransformer> for PublicTransformerInfo {
    fn from(model: &QuantizedTransformer) -> Self {
        PublicTransformerInfo {
            seq: model.seq,
            d: model.d,
            d_ff: model.d_ff,
            n_classes: model.n_classes,
            graph: model.graph().clone(),
        }
    }
}

impl PublicTransformerInfo {
    /// The layer graph this architecture lowers to.
    #[must_use]
    pub fn graph(&self) -> LayerGraph {
        self.graph.clone()
    }

    /// Fixed-point pipeline hyper-parameters.
    #[must_use]
    pub fn config(&self) -> &QuantConfig {
        &self.graph.config
    }
}

/// `W·X + b + U` — the server's online share of a dense layer; delegates to
/// the op-generic [`crate::graph::linear_share`]. Exposed so baseline
/// protocols (MiniONN, QUOTIENT) can share the identical online linear step
/// while substituting their own offline triplets.
#[must_use]
pub fn layer_share(layer: &QuantizedDense, x: &Matrix, u: &Matrix, ring: Ring) -> Matrix {
    crate::graph::linear_share(&layer.weights, &layer.bias, layer.out_dim, layer.in_dim, x, u, ring)
}

/// Server-side state after the offline phase: one triplet share `U` per
/// linear op of the graph, in graph order.
#[derive(Debug, Clone)]
pub struct ServerOffline {
    pub(crate) session: ServerSession,
    pub(crate) us: Vec<Matrix>,
    pub(crate) mats: Vec<MatrixTriple>,
    pub(crate) batch: usize,
}

impl ServerOffline {
    /// Reassembles offline state from a fresh session and an offline
    /// bundle — checkpointed after a connection loss (reconnect-and-resume)
    /// or manufactured ahead of time by a precompute pool. Triplets survive
    /// a connection loss; the cheap per-connection session setup does not.
    #[must_use]
    pub fn from_bundle(session: ServerSession, bundle: ServerBundle) -> Self {
        ServerOffline { session, us: bundle.us, mats: bundle.mats, batch: bundle.batch }
    }

    /// Copies the connection-independent part of this state into a bundle
    /// (for checkpointing; the session is consumed by the online phase).
    #[must_use]
    pub fn to_bundle(&self) -> ServerBundle {
        ServerBundle { us: self.us.clone(), mats: self.mats.clone(), batch: self.batch }
    }
}

/// Client-side state after the offline phase: the masks `R` (input mask
/// plus one fresh mask per re-sharing op) and one triplet share `V` per
/// linear op, in graph order.
#[derive(Debug)]
pub struct ClientOffline {
    pub(crate) session: ClientSession,
    pub(crate) rs: Vec<Matrix>,
    pub(crate) vs: Vec<Matrix>,
    pub(crate) mats: Vec<MatrixTriple>,
    pub(crate) batch: usize,
}

impl ClientOffline {
    /// Reassembles offline state from a fresh session and an offline
    /// bundle (the reconnect-and-resume path, or a server-dealt bundle).
    #[must_use]
    pub fn from_bundle(session: ClientSession, bundle: ClientBundle) -> Self {
        ClientOffline {
            session,
            rs: bundle.rs,
            vs: bundle.vs,
            mats: bundle.mats,
            batch: bundle.batch,
        }
    }

    /// Copies the connection-independent part of this state into a bundle.
    #[must_use]
    pub fn to_bundle(&self) -> ClientBundle {
        ClientBundle {
            rs: self.rs.clone(),
            vs: self.vs.clone(),
            mats: self.mats.clone(),
            batch: self.batch,
        }
    }
}

/// The model-serving party. Holds any [`ServedModel`] topology; the MLP
/// constructor [`SecureServer::new`] and the CNN-aware
/// [`SecureServer::for_model`] drive the identical graph executor.
#[derive(Debug, Clone)]
pub struct SecureServer {
    pub(crate) model: ServedModel,
    pub(crate) exec: ExecConfig,
}

impl SecureServer {
    /// Serves an MLP with the default (fully oblivious) activation protocol.
    #[must_use]
    pub fn new(net: QuantizedNetwork) -> Self {
        Self::for_model(net)
    }

    /// Serves any supported model topology.
    #[must_use]
    pub fn for_model(model: impl Into<ServedModel>) -> Self {
        SecureServer { model: model.into(), exec: ExecConfig::new() }
    }

    /// Replaces the whole execution configuration.
    #[must_use]
    pub fn with_exec(mut self, exec: ExecConfig) -> Self {
        self.exec = exec;
        self
    }

    /// Selects the activation variant (must match the client's).
    #[must_use]
    pub fn with_variant(mut self, variant: ReluVariant) -> Self {
        self.exec = self.exec.with_variant(variant);
        self
    }

    /// Enables multi-core triplet generation (the paper's future-work
    /// optimization; transcript-compatible with any client thread count).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.exec = self.exec.with_threads(threads);
        self
    }

    /// The public MLP description to hand to clients.
    ///
    /// # Panics
    ///
    /// Panics if the served model is not an MLP — use
    /// [`public_model`](Self::public_model) for topology-generic code.
    #[must_use]
    pub fn public_info(&self) -> PublicModelInfo {
        match &self.model {
            ServedModel::Mlp(net) => PublicModelInfo::from(net),
            ServedModel::Cnn(_) | ServedModel::Transformer { .. } => {
                panic!("public_info is MLP-only; use public_model")
            }
        }
    }

    /// The public description of the served model, any topology.
    #[must_use]
    pub fn public_model(&self) -> PublicModel {
        self.model.public()
    }

    pub(crate) fn secure_graph(&self, batch: usize) -> Result<SecureGraph, ProtocolError> {
        SecureGraph::new(self.model.graph(), batch)
    }

    /// Per-session inbound traffic quota for a negotiated batch size —
    /// [`SecureGraph::inbound_ceiling`] for this model's plan. Serving
    /// layers evict sessions that exceed it.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Dimension`] if `batch` is invalid for the model.
    pub fn inbound_ceiling(
        &self,
        batch: usize,
    ) -> Result<crate::graph::CommCeiling, ProtocolError> {
        Ok(self.secure_graph(batch)?.inbound_ceiling())
    }

    /// Offline phase: handshake, session setup, and per-op triplet
    /// generation for a batch of `batch` predictions.
    ///
    /// The handshake pins down protocol version, ring, fixed-point and
    /// fragmentation parameters, activation variant, batch size and model
    /// graph *before* any base OT flows, so a misconfigured pairing fails
    /// with [`ProtocolError::Negotiation`] at connect time instead of
    /// garbling mid-protocol.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on any subprotocol failure.
    pub fn offline<T: Transport, R: Rng + ?Sized>(
        &self,
        ch: &mut T,
        batch: usize,
        rng: &mut R,
    ) -> Result<ServerOffline, ProtocolError> {
        let sg = self.secure_graph(batch)?;
        // The server derives its parameters for *its own* expected batch:
        // a client announcing a different batch is a negotiation failure,
        // not something to silently adopt.
        let ours = SessionParams::for_graph(sg.graph(), self.exec.variant, batch);
        let (_, _, reply) = handshake_server_ext(ch, |_| ours, |_| false, |_, _| false)?;
        self.offline_after_handshake(ch, batch, reply.mode(), rng)
    }

    /// The post-handshake portion of the offline phase: base-OT session
    /// setup plus triplet generation. Split out so the resilient driver can
    /// run its own handshake (with resume tokens) first.
    pub(crate) fn offline_after_handshake<T: Transport, R: Rng + ?Sized>(
        &self,
        ch: &mut T,
        batch: usize,
        mode: OfflineMode,
        rng: &mut R,
    ) -> Result<ServerOffline, ProtocolError> {
        let session = ServerSession::setup_with(ch, mode, rng)?;
        self.offline_with(ch, session, batch, rng)
    }

    /// Triplet generation over an already-established session. Split from
    /// session setup so a serving layer can attribute the two to separate
    /// instrumentation phases (base OTs are per-connection and cheap;
    /// triplets are the expensive, poolable part). The `rng` feeds the
    /// server's matrix-triple shares for secret×secret matmul ops; plain
    /// MLP/CNN graphs never draw from it.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on any subprotocol failure.
    pub fn offline_with<T: Transport, R: Rng + ?Sized>(
        &self,
        ch: &mut T,
        session: ServerSession,
        batch: usize,
        rng: &mut R,
    ) -> Result<ServerOffline, ProtocolError> {
        let sg = self.secure_graph(batch)?;
        server_offline_with(ch, session, &self.model, &sg, self.exec, rng)
    }

    /// Online phase: consumes offline state, processes one batch, opening
    /// the logit shares toward the client (the paper's Fig-2 flow).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on any subprotocol failure.
    pub fn online<T: Transport>(
        &self,
        ch: &mut T,
        state: ServerOffline,
    ) -> Result<(), ProtocolError> {
        let ring = self.model.config().ring;
        let sg = self.secure_graph(state.batch)?;
        let (_, y0) = server_online_to_logits(ch, state, &self.model, &sg, self.exec)?;
        ch.send_frame(&OutputShares(ring.encode_slice(y0.as_slice())))?;
        Ok(())
    }

    /// Classification-only online phase (extension): instead of opening the
    /// logits, a masked-argmax circuit reveals *only the class index* to
    /// the client.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on any subprotocol failure.
    pub fn online_classify<T: Transport>(
        &self,
        ch: &mut T,
        state: ServerOffline,
    ) -> Result<(), ProtocolError> {
        let ring = self.model.config().ring;
        let batch = state.batch;
        let sg = self.secure_graph(batch)?;
        let (mut session, y0) = server_online_to_logits(ch, state, &self.model, &sg, self.exec)?;
        for k in 0..batch {
            crate::argmax::argmax_server(ch, &mut session.yao, &y0.col(k), ring)?;
        }
        Ok(())
    }

    /// Convenience: offline followed by online, run through the
    /// suspendable [`SessionDriver`](crate::driver::SessionDriver) so the
    /// blocking and event-loop paths exercise one protocol
    /// implementation (the wire transcript is unchanged — see
    /// `tests/graph_parity.rs`).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on any subprotocol failure.
    pub fn run<T: Transport, R: Rng + ?Sized>(
        &self,
        ch: &mut T,
        batch: usize,
        rng: &mut R,
    ) -> Result<(), ProtocolError> {
        let sg = self.secure_graph(batch)?;
        let ours = SessionParams::for_graph(sg.graph(), self.exec.variant, batch);
        let mut driver = crate::driver::SessionDriver::new(
            std::sync::Arc::new(self.clone()),
            crate::driver::NullHost { ours },
            rand::rngs::StdRng::seed_from_u64(rng.next_u64()),
        );
        crate::driver::drive_blocking(ch, &mut driver)
    }
}

/// The data-owning party. Holds any [`PublicModel`] topology; see
/// [`SecureClient::new`] (MLP) and [`SecureClient::for_model`].
#[derive(Debug, Clone)]
pub struct SecureClient {
    pub(crate) model: PublicModel,
    pub(crate) exec: ExecConfig,
    pub(crate) silent: bool,
}

impl SecureClient {
    /// Creates a client for a served MLP.
    #[must_use]
    pub fn new(info: PublicModelInfo) -> Self {
        Self::for_model(info)
    }

    /// Creates a client for a served model of any supported topology.
    #[must_use]
    pub fn for_model(model: impl Into<PublicModel>) -> Self {
        SecureClient { model: model.into(), exec: ExecConfig::new(), silent: false }
    }

    /// Opts into the silent (LPN) OT extension for the offline phase. The
    /// session actually uses it only when the server is silent-capable
    /// too; otherwise it falls back to the portable IKNP/KK13 path. Off by
    /// default so existing transcripts stay byte-identical.
    #[must_use]
    pub fn with_silent(mut self, silent: bool) -> Self {
        self.silent = silent;
        self
    }

    /// Replaces the whole execution configuration.
    #[must_use]
    pub fn with_exec(mut self, exec: ExecConfig) -> Self {
        self.exec = exec;
        self
    }

    /// Selects the activation variant (must match the server's).
    #[must_use]
    pub fn with_variant(mut self, variant: ReluVariant) -> Self {
        self.exec = self.exec.with_variant(variant);
        self
    }

    /// Multi-core triplet generation.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.exec = self.exec.with_threads(threads);
        self
    }

    /// The MLP description this client was built for.
    ///
    /// # Panics
    ///
    /// Panics if the model is not an MLP — use
    /// [`public_model`](Self::public_model) for topology-generic code.
    #[must_use]
    pub fn public_info(&self) -> &PublicModelInfo {
        match &self.model {
            PublicModel::Mlp(info) => info,
            PublicModel::Cnn(_) | PublicModel::Transformer(_) => {
                panic!("public_info is MLP-only; use public_model")
            }
        }
    }

    /// The public model description, any topology.
    #[must_use]
    pub fn public_model(&self) -> &PublicModel {
        &self.model
    }

    pub(crate) fn secure_graph(&self, batch: usize) -> Result<SecureGraph, ProtocolError> {
        SecureGraph::new(self.model.graph(), batch)
    }

    /// Offline phase: handshake, session setup, and per-op triplet
    /// generation (see the server counterpart).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on any subprotocol failure.
    pub fn offline<T: Transport, R: Rng + ?Sized>(
        &self,
        ch: &mut T,
        batch: usize,
        rng: &mut R,
    ) -> Result<ClientOffline, ProtocolError> {
        let sg = self.secure_graph(batch)?;
        let ours = SessionParams::for_graph(sg.graph(), self.exec.variant, batch);
        let request = HelloRequest { silent: self.silent, ..HelloRequest::default() };
        let reply = handshake_client_ext(ch, ours, &[0u8; 16], request)?;
        self.offline_after_handshake(ch, batch, reply.mode(), rng)
    }

    /// The post-handshake portion of the offline phase (see the server
    /// counterpart for why this is split out).
    pub(crate) fn offline_after_handshake<T: Transport, R: Rng + ?Sized>(
        &self,
        ch: &mut T,
        batch: usize,
        mode: OfflineMode,
        rng: &mut R,
    ) -> Result<ClientOffline, ProtocolError> {
        let session = ClientSession::setup_with(ch, mode, rng)?;
        self.offline_with(ch, session, batch, rng)
    }

    /// Triplet generation over an already-established session (see the
    /// server counterpart for why this is split out).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on any subprotocol failure.
    pub fn offline_with<T: Transport, R: Rng + ?Sized>(
        &self,
        ch: &mut T,
        session: ClientSession,
        batch: usize,
        rng: &mut R,
    ) -> Result<ClientOffline, ProtocolError> {
        let sg = self.secure_graph(batch)?;
        client_offline_with(ch, session, &sg, self.exec, rng)
    }

    /// Runs the graph, returning the session and the client's share of the
    /// final-layer outputs.
    fn online_to_logits<T: Transport, R: Rng + ?Sized>(
        &self,
        ch: &mut T,
        state: ClientOffline,
        inputs_fp: &[Vec<u64>],
        rng: &mut R,
    ) -> Result<(ClientSession, Matrix), ProtocolError> {
        let batch = state.batch;
        let sg = self.secure_graph(batch)?;
        let ring = self.model.config().ring;
        let n0 = sg.graph().input_len();
        if inputs_fp.len() != batch {
            return Err(ProtocolError::Dimension("input count must equal batch"));
        }
        if inputs_fp.iter().any(|x| x.len() != n0) {
            return Err(ProtocolError::Dimension("input dimension mismatch"));
        }

        // x as a n0×batch matrix, one column per sample.
        let mut x = Matrix::zeros(n0, batch);
        for (k, sample) in inputs_fp.iter().enumerate() {
            for (j, &v) in sample.iter().enumerate() {
                x.set(j, k, ring.reduce(v));
            }
        }
        client_online_to_logits(ch, state, &sg, self.exec, &x, rng)
    }

    /// Online phase over ring-encoded inputs: returns the raw output shares
    /// reconstructed into ring elements (`out_dim × batch`, at
    /// `f + f_w` fractional bits).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on failure or if inputs mismatch the batch.
    pub fn online_raw<T: Transport, R: Rng + ?Sized>(
        &self,
        ch: &mut T,
        state: ClientOffline,
        inputs_fp: &[Vec<u64>],
        rng: &mut R,
    ) -> Result<Matrix, ProtocolError> {
        let ring = self.model.config().ring;
        let batch = state.batch;
        let m = self.model.graph().output_len();
        let (_, y1) = self.online_to_logits(ch, state, inputs_fp, rng)?;
        let OutputShares(y0_bytes) = ch.recv_frame()?;
        if y0_bytes.len() != m * batch * ring.byte_len() {
            return Err(ProtocolError::Malformed("output share length"));
        }
        let y0 = Matrix::new(m, batch, ring.decode_slice(&y0_bytes));
        Ok(y0.add(&y1, &ring))
    }

    /// Classification-only online phase (extension): returns just the
    /// predicted class per sample; neither party sees a logit.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on failure or if inputs mismatch the batch.
    pub fn online_classify<T: Transport, R: Rng + ?Sized>(
        &self,
        ch: &mut T,
        state: ClientOffline,
        inputs_fp: &[Vec<u64>],
        rng: &mut R,
    ) -> Result<Vec<usize>, ProtocolError> {
        let ring = self.model.config().ring;
        let batch = state.batch;
        let (mut session, y1) = self.online_to_logits(ch, state, inputs_fp, rng)?;
        (0..batch)
            .map(|k| crate::argmax::argmax_client(ch, &mut session.yao, &y1.col(k), ring, rng))
            .collect()
    }

    /// Online phase over float inputs: returns per-sample logits.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on failure or mismatched inputs.
    pub fn online<T: Transport, R: Rng + ?Sized>(
        &self,
        ch: &mut T,
        state: ClientOffline,
        inputs: &[Vec<f64>],
        rng: &mut R,
    ) -> Result<Vec<Vec<f64>>, ProtocolError> {
        let in_codec = self.model.config().activation_codec();
        let out_codec = self.model.config().output_codec();
        let inputs_fp: Vec<Vec<u64>> = inputs.iter().map(|x| in_codec.encode_vec(x)).collect();
        let y = self.online_raw(ch, state, &inputs_fp, rng)?;
        Ok((0..y.cols()).map(|k| out_codec.decode_vec(&y.col(k))).collect())
    }

    /// Convenience: offline followed by online.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on any subprotocol failure.
    pub fn run<T: Transport, R: Rng + ?Sized>(
        &self,
        ch: &mut T,
        inputs: &[Vec<f64>],
        rng: &mut R,
    ) -> Result<Vec<Vec<f64>>, ProtocolError> {
        let state = self.offline(ch, inputs.len(), rng)?;
        self.online(ch, state, inputs, rng)
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_math::FragmentScheme;
    use abnn2_net::{run_pair, Endpoint, NetworkModel};
    use abnn2_nn::{Network, SyntheticMnist};
    use rand::SeedableRng;

    fn tiny_quantized(seed: u64, scheme: FragmentScheme, fw: u32) -> QuantizedNetwork {
        let data = SyntheticMnist::generate(120, 0, seed);
        let mut net = Network::new(&[784, 12, 8, 10], seed);
        net.train_epoch(&data.train, 0.05);
        let config =
            QuantConfig { ring: Ring::new(32), frac_bits: 8, weight_frac_bits: fw, scheme };
        QuantizedNetwork::quantize(&net, config)
    }

    fn secure_vs_plaintext(q: QuantizedNetwork, batch: usize, variant: ReluVariant, seed: u64) {
        let data = SyntheticMnist::generate(batch, 0, seed + 9);
        let inputs: Vec<Vec<f64>> =
            data.train.iter().take(batch).map(|s| s.pixels.clone()).collect();
        let codec = q.config.activation_codec();
        let inputs_fp: Vec<Vec<u64>> = inputs.iter().map(|x| codec.encode_vec(x)).collect();
        let expected: Vec<Vec<u64>> = inputs_fp.iter().map(|x| q.forward_exact(x)).collect();

        let server = SecureServer::new(q.clone()).with_variant(variant);
        let client = SecureClient::new(server.public_info()).with_variant(variant);
        let inputs_fp2 = inputs_fp.clone();
        let (srv, y, _) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 1);
                server.run(ch, batch, &mut rng)
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 2);
                let state = client.offline(ch, batch, &mut rng).expect("offline");
                client.online_raw(ch, state, &inputs_fp2, &mut rng).expect("online")
            },
        );
        srv.expect("server");
        for k in 0..batch {
            assert_eq!(y.col(k), expected[k], "sample {k} must match forward_exact");
        }
    }

    #[test]
    fn secure_inference_matches_plaintext_8bit_single() {
        let q = tiny_quantized(50, FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]), 4);
        secure_vs_plaintext(q, 1, ReluVariant::Oblivious, 60);
    }

    #[test]
    fn secure_inference_matches_plaintext_8bit_batch() {
        let q = tiny_quantized(51, FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]), 4);
        secure_vs_plaintext(q, 3, ReluVariant::Oblivious, 61);
    }

    #[test]
    fn secure_inference_matches_plaintext_ternary() {
        let q = tiny_quantized(52, FragmentScheme::ternary(), 0);
        secure_vs_plaintext(q, 2, ReluVariant::Oblivious, 62);
    }

    #[test]
    fn secure_inference_optimized_relu() {
        let q = tiny_quantized(53, FragmentScheme::signed_bit_fields(&[3, 3, 2]), 4);
        secure_vs_plaintext(q, 2, ReluVariant::Optimized, 63);
    }

    #[test]
    fn float_logits_classify_like_plaintext() {
        let q = tiny_quantized(54, FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]), 4);
        let data = SyntheticMnist::generate(2, 0, 70);
        let inputs: Vec<Vec<f64>> = data.train.iter().map(|s| s.pixels.clone()).collect();
        let server = SecureServer::new(q.clone());
        let client = SecureClient::new(server.public_info());
        let inputs2 = inputs.clone();
        let (_, logits, _) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(71);
                server.run(ch, 2, &mut rng).expect("server");
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(72);
                client.run(ch, &inputs2, &mut rng).expect("client")
            },
        );
        for (k, input) in inputs.iter().enumerate() {
            let plain = q.forward(input);
            assert_eq!(abnn2_nn::model::argmax(&logits[k]), abnn2_nn::model::argmax(&plain));
        }
    }

    #[test]
    fn classify_reveals_only_the_class() {
        let q = tiny_quantized(56, FragmentScheme::signed_bit_fields(&[2, 2]), 2);
        let batch = 2;
        let data = SyntheticMnist::generate(batch, 0, 57);
        let inputs: Vec<Vec<f64>> = data.train.iter().map(|s| s.pixels.clone()).collect();
        let codec = q.config.activation_codec();
        let inputs_fp: Vec<Vec<u64>> = inputs.iter().map(|x| codec.encode_vec(x)).collect();
        let server = SecureServer::new(q.clone());
        let client = SecureClient::new(server.public_info());
        let inputs_fp2 = inputs_fp.clone();
        let (srv, classes, _) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(58);
                let state = server.offline(ch, batch, &mut rng)?;
                server.online_classify(ch, state)
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(59);
                let state = client.offline(ch, batch, &mut rng).expect("offline");
                client.online_classify(ch, state, &inputs_fp2, &mut rng).expect("online")
            },
        );
        srv.expect("server");
        for (k, input) in inputs.iter().enumerate() {
            assert_eq!(classes[k], q.predict(input), "sample {k}");
        }
    }

    #[test]
    fn zero_batch_rejected() {
        let q = tiny_quantized(55, FragmentScheme::binary(), 0);
        let server = SecureServer::new(q);
        let (mut a, _b) = Endpoint::pair(NetworkModel::instant());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(
            server.offline(&mut a, 0, &mut rng).err(),
            Some(ProtocolError::Dimension("batch must be positive"))
        );
    }
}
