//! Convolution and pooling layers (CNN extension).
//!
//! The paper evaluates fully-connected networks only, but its matrix-
//! multiplication protocol extends to convolutions for free via the
//! standard **im2col** lowering: `conv(W, x) = W_mat · im2col(x)`, and
//! im2col is a linear rearrangement, so each party can apply it *locally
//! to its share*. Max-pooling operates on shared values and needs a
//! garbled circuit (`abnn2_gc::circuits::max_pool_reshare_vec_circuit`);
//! the secure pipeline lives in `abnn2_core::cnn`.
//!
//! Data layout: channel-major (CHW) flattened vectors of ring elements.

use crate::quant::sar;
use crate::QuantizedDense;
use abnn2_math::{Matrix, Ring};
use serde::{Deserialize, Serialize};

/// Shape of a CHW feature map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvShape {
    /// Channels.
    pub channels: usize,
    /// Height.
    pub height: usize,
    /// Width.
    pub width: usize,
}

impl ConvShape {
    /// Total element count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// True for degenerate shapes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Output spatial dimensions of a valid (no-padding) convolution.
#[must_use]
pub fn conv_out_dims(shape: ConvShape, kh: usize, kw: usize, stride: usize) -> (usize, usize) {
    assert!(stride > 0, "stride must be positive");
    assert!(shape.height >= kh && shape.width >= kw, "kernel larger than input");
    ((shape.height - kh) / stride + 1, (shape.width - kw) / stride + 1)
}

/// The im2col lowering: returns a `(channels·kh·kw) × (oh·ow)` matrix whose
/// column `p` is the receptive field of output position `p`.
///
/// Linear in the input, so `im2col(x₀ + x₁) = im2col(x₀) + im2col(x₁)` —
/// both parties apply it locally to their shares.
///
/// # Panics
///
/// Panics if `x.len() != shape.len()` or the kernel exceeds the input.
#[must_use]
pub fn im2col(x: &[u64], shape: ConvShape, kh: usize, kw: usize, stride: usize) -> Matrix {
    assert_eq!(x.len(), shape.len(), "input length mismatch");
    let (oh, ow) = conv_out_dims(shape, kh, kw, stride);
    let rows = shape.channels * kh * kw;
    let cols = oh * ow;
    let mut out = Matrix::zeros(rows, cols);
    for c in 0..shape.channels {
        for dy in 0..kh {
            for dx in 0..kw {
                let row = (c * kh + dy) * kw + dx;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let iy = oy * stride + dy;
                        let ix = ox * stride + dx;
                        out.set(row, oy * ow + ox, x[(c * shape.height + iy) * shape.width + ix]);
                    }
                }
            }
        }
    }
    out
}

/// A quantized 2-D convolution layer (valid padding).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantizedConv {
    /// Number of filters.
    pub out_channels: usize,
    /// Input feature-map shape.
    pub in_shape: ConvShape,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride.
    pub stride: usize,
    /// Row-major filter weights, `out_channels × (channels·kh·kw)`, in the
    /// scheme domain.
    pub weights: Vec<i64>,
    /// Per-filter bias encoded at `f + f_w` fractional bits.
    pub bias: Vec<u64>,
}

impl QuantizedConv {
    /// Columns of the lowered weight matrix.
    #[must_use]
    pub fn patch_len(&self) -> usize {
        self.in_shape.channels * self.kh * self.kw
    }

    /// Output shape.
    #[must_use]
    pub fn out_shape(&self) -> ConvShape {
        let (oh, ow) = conv_out_dims(self.in_shape, self.kh, self.kw, self.stride);
        ConvShape { channels: self.out_channels, height: oh, width: ow }
    }

    /// `W_mat · im2col(x) + b` over the ring; output is CHW-flattened with
    /// `f + f_w` fractional bits.
    ///
    /// # Panics
    ///
    /// Panics if the input length mismatches `in_shape`.
    #[must_use]
    pub fn forward_ring(&self, x: &[u64], ring: Ring) -> Vec<u64> {
        let cols = im2col(x, self.in_shape, self.kh, self.kw, self.stride);
        let p = cols.cols();
        let mut out = vec![0u64; self.out_channels * p];
        for oc in 0..self.out_channels {
            let row = &self.weights[oc * self.patch_len()..(oc + 1) * self.patch_len()];
            for pos in 0..p {
                let mut acc = self.bias[oc];
                for (j, &w) in row.iter().enumerate() {
                    acc = acc.wrapping_add(cols.get(j, pos).wrapping_mul(w as u64));
                }
                out[oc * p + pos] = ring.reduce(acc);
            }
        }
        out
    }
}

/// Plaintext max-pooling over non-overlapping `window×window` blocks
/// (signed comparison). Returns the pooled CHW vector and its shape.
///
/// # Panics
///
/// Panics if the spatial dimensions are not divisible by `window`.
#[must_use]
pub fn maxpool_ring(
    x: &[u64],
    shape: ConvShape,
    window: usize,
    ring: Ring,
) -> (Vec<u64>, ConvShape) {
    assert_eq!(x.len(), shape.len(), "input length mismatch");
    assert!(
        window > 0 && shape.height.is_multiple_of(window) && shape.width.is_multiple_of(window),
        "pool window must divide the spatial dims"
    );
    let (ph, pw) = (shape.height / window, shape.width / window);
    let mut out = Vec::with_capacity(shape.channels * ph * pw);
    for c in 0..shape.channels {
        for py in 0..ph {
            for px in 0..pw {
                let mut best = i64::MIN;
                for dy in 0..window {
                    for dx in 0..window {
                        let iy = py * window + dy;
                        let ix = px * window + dx;
                        best = best.max(ring.to_i64(x[(c * shape.height + iy) * shape.width + ix]));
                    }
                }
                out.push(ring.from_i64(best));
            }
        }
    }
    (out, ConvShape { channels: shape.channels, height: ph, width: pw })
}

/// Index lists of the pooling windows, in output order — shared by the
/// secure protocol so both parties pack circuit inputs identically.
///
/// # Panics
///
/// Panics if the spatial dimensions are not divisible by `window`.
#[must_use]
pub fn pool_windows(shape: ConvShape, window: usize) -> Vec<Vec<usize>> {
    assert!(
        window > 0 && shape.height.is_multiple_of(window) && shape.width.is_multiple_of(window),
        "pool window must divide the spatial dims"
    );
    let (ph, pw) = (shape.height / window, shape.width / window);
    let mut out = Vec::with_capacity(shape.channels * ph * pw);
    for c in 0..shape.channels {
        for py in 0..ph {
            for px in 0..pw {
                let mut idxs = Vec::with_capacity(window * window);
                for dy in 0..window {
                    for dx in 0..window {
                        let iy = py * window + dy;
                        let ix = px * window + dx;
                        idxs.push((c * shape.height + iy) * shape.width + ix);
                    }
                }
                out.push(idxs);
            }
        }
    }
    out
}

/// A small quantized CNN: conv → ReLU → max-pool → dense stack, sharing the
/// fixed-point semantics of [`crate::QuantizedNetwork`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantizedCnn {
    /// Fixed-point pipeline hyper-parameters.
    pub config: crate::QuantConfig,
    /// The convolution layer.
    pub conv: QuantizedConv,
    /// Pooling window (non-overlapping `window×window`).
    pub pool_window: usize,
    /// Dense layers; ReLU+truncation between them, none after the last.
    pub dense: Vec<QuantizedDense>,
}

impl QuantizedCnn {
    /// Bit-exact fixed-point forward pass (the secure pipeline's oracle):
    /// conv accumulators → truncate+ReLU → max-pool → dense stack; the last
    /// dense layer returns raw accumulators at `f + f_w` fractional bits.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    #[must_use]
    pub fn forward_exact(&self, x_fp: &[u64]) -> Vec<u64> {
        let ring = self.config.ring;
        let fw = self.config.weight_frac_bits;
        let acc = self.conv.forward_ring(x_fp, ring);
        let activated: Vec<u64> = acc
            .iter()
            .map(|&v| {
                let t = sar(ring, v, fw);
                if ring.is_negative(t) {
                    0
                } else {
                    t
                }
            })
            .collect();
        let (pooled, pooled_shape) =
            maxpool_ring(&activated, self.conv.out_shape(), self.pool_window, ring);
        assert_eq!(pooled_shape.len(), self.dense[0].in_dim, "pool/dense shape mismatch");

        let mut a = pooled;
        let last = self.dense.len() - 1;
        for (i, layer) in self.dense.iter().enumerate() {
            let acc = layer.forward_ring(&a, ring);
            if i == last {
                return acc;
            }
            a = acc
                .iter()
                .map(|&v| {
                    let t = sar(ring, v, fw);
                    if ring.is_negative(t) {
                        0
                    } else {
                        t
                    }
                })
                .collect();
        }
        unreachable!("loop returns at the last layer")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn shape_3x6x6() -> ConvShape {
        ConvShape { channels: 3, height: 6, width: 6 }
    }

    #[test]
    fn out_dims_basic() {
        assert_eq!(conv_out_dims(shape_3x6x6(), 3, 3, 1), (4, 4));
        assert_eq!(conv_out_dims(shape_3x6x6(), 2, 2, 2), (3, 3));
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1×1 kernel, stride 1: im2col is just a channel-row reshape.
        let shape = ConvShape { channels: 2, height: 2, width: 2 };
        let x: Vec<u64> = (0..8).collect();
        let cols = im2col(&x, shape, 1, 1, 1);
        assert_eq!(cols.rows(), 2);
        assert_eq!(cols.cols(), 4);
        assert_eq!(cols.row(0), &x[..4]);
        assert_eq!(cols.row(1), &x[4..]);
    }

    #[test]
    fn im2col_is_linear() {
        let ring = Ring::new(32);
        let shape = shape_3x6x6();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = ring.sample_vec(&mut rng, shape.len());
        let b = ring.sample_vec(&mut rng, shape.len());
        let sum = ring.add_vec(&a, &b);
        let lhs = im2col(&sum, shape, 3, 3, 1);
        let rhs = im2col(&a, shape, 3, 3, 1).add(&im2col(&b, shape, 3, 3, 1), &ring);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn conv_matches_direct_convolution() {
        let ring = Ring::new(32);
        let shape = ConvShape { channels: 1, height: 4, width: 4 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let x = ring.sample_vec(&mut rng, shape.len());
        let conv = QuantizedConv {
            out_channels: 1,
            in_shape: shape,
            kh: 2,
            kw: 2,
            stride: 1,
            weights: vec![1, -2, 3, -4],
            bias: vec![7],
        };
        let got = conv.forward_ring(&x, ring);
        // Direct sliding-window reference.
        for oy in 0..3 {
            for ox in 0..3 {
                let mut acc = 7u64;
                for (widx, (dy, dx)) in [(0, 0), (0, 1), (1, 0), (1, 1)].iter().enumerate() {
                    let v = x[(oy + dy) * 4 + (ox + dx)];
                    acc = acc.wrapping_add(v.wrapping_mul(conv.weights[widx] as u64));
                }
                assert_eq!(got[oy * 3 + ox], ring.reduce(acc), "pos ({oy},{ox})");
            }
        }
    }

    #[test]
    fn maxpool_known_values() {
        let ring = Ring::new(16);
        let shape = ConvShape { channels: 1, height: 2, width: 4 };
        let x = vec![
            ring.from_i64(5),
            ring.from_i64(-3),
            ring.from_i64(0),
            ring.from_i64(9),
            ring.from_i64(2),
            ring.from_i64(8),
            ring.from_i64(-1),
            ring.from_i64(-7),
        ];
        let (pooled, pshape) = maxpool_ring(&x, shape, 2, ring);
        assert_eq!(pshape, ConvShape { channels: 1, height: 1, width: 2 });
        assert_eq!(pooled, vec![ring.from_i64(8), ring.from_i64(9)]);
    }

    #[test]
    fn pool_windows_cover_all_indices_once() {
        let shape = shape_3x6x6();
        let windows = pool_windows(shape, 2);
        assert_eq!(windows.len(), 3 * 3 * 3);
        let mut seen = vec![false; shape.len()];
        for w in &windows {
            assert_eq!(w.len(), 4);
            for &i in w {
                assert!(!seen[i], "index {i} in two windows");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    #[should_panic(expected = "pool window must divide")]
    fn ragged_pool_rejected() {
        let shape = ConvShape { channels: 1, height: 5, width: 4 };
        let _ = pool_windows(shape, 2);
    }

    #[test]
    fn cnn_forward_is_deterministic_and_shaped() {
        let ring = Ring::new(32);
        let config = crate::QuantConfig::default_8bit();
        let in_shape = ConvShape { channels: 1, height: 8, width: 8 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let conv = QuantizedConv {
            out_channels: 2,
            in_shape,
            kh: 3,
            kw: 3,
            stride: 1,
            weights: (0..2 * 9).map(|_| rng.gen_range(-20i64..20)).collect(),
            bias: vec![0, 0],
        };
        // conv out 2×6×6 → pool 2 → 2×3×3 = 18 → dense 18→4.
        let dense = QuantizedDense {
            out_dim: 4,
            in_dim: 18,
            weights: (0..72).map(|_| rng.gen_range(-20i64..20)).collect(),
            bias: vec![0; 4],
        };
        let cnn = QuantizedCnn { config, conv, pool_window: 2, dense: vec![dense] };
        let x = ring.sample_vec(&mut rng, in_shape.len());
        let a = cnn.forward_exact(&x);
        assert_eq!(a.len(), 4);
        assert_eq!(a, cnn.forward_exact(&x));
    }
}
