//! Synthetic MNIST-like dataset.
//!
//! The paper benchmarks on MNIST. The raw dataset is not shipped here, so we
//! generate a structurally similar task: 28×28 grayscale images in `[0,1]`,
//! ten classes, each class a smooth random prototype plus per-sample noise.
//! The secure protocols are data-oblivious — their cost depends only on the
//! layer dimensions — so this substitution affects accuracy numbers only,
//! not any table the paper reports.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Image side length (28, as MNIST).
pub const IMAGE_SIDE: usize = 28;
/// Flattened input dimension (784).
pub const INPUT_DIM: usize = IMAGE_SIDE * IMAGE_SIDE;
/// Number of classes.
pub const NUM_CLASSES: usize = 10;

/// A labelled sample: flattened pixels in `[0,1]` and a class index.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Pixel intensities, length [`INPUT_DIM`].
    pub pixels: Vec<f64>,
    /// Class label in `0..NUM_CLASSES`.
    pub label: usize,
}

/// A deterministic synthetic dataset with train and test splits.
#[derive(Debug, Clone)]
pub struct SyntheticMnist {
    /// Training samples.
    pub train: Vec<Sample>,
    /// Held-out test samples.
    pub test: Vec<Sample>,
}

impl SyntheticMnist {
    /// Generates `n_train` + `n_test` samples from `seed`.
    ///
    /// Class prototypes are smooth 2-D bump mixtures (so nearby pixels
    /// correlate, like handwriting strokes); samples add Gaussian pixel
    /// noise and are clamped to `[0,1]`.
    #[must_use]
    pub fn generate(n_train: usize, n_test: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let prototypes: Vec<Vec<f64>> = (0..NUM_CLASSES).map(|_| prototype(&mut rng)).collect();
        let draw = |n: usize, rng: &mut StdRng| -> Vec<Sample> {
            (0..n)
                .map(|i| {
                    let label = i % NUM_CLASSES;
                    let pixels = prototypes[label]
                        .iter()
                        .map(|&p| (p + 0.15 * gaussian(rng)).clamp(0.0, 1.0))
                        .collect();
                    Sample { pixels, label }
                })
                .collect()
        };
        let train = draw(n_train, &mut rng);
        let test = draw(n_test, &mut rng);
        SyntheticMnist { train, test }
    }
}

/// A smooth prototype: a sum of a few random 2-D Gaussian bumps.
fn prototype(rng: &mut StdRng) -> Vec<f64> {
    let bumps: Vec<(f64, f64, f64, f64)> = (0..4)
        .map(|_| {
            (
                rng.gen_range(4.0..24.0), // center x
                rng.gen_range(4.0..24.0), // center y
                rng.gen_range(2.0..5.0),  // width
                rng.gen_range(0.5..1.0),  // amplitude
            )
        })
        .collect();
    let mut img = vec![0.0f64; INPUT_DIM];
    for y in 0..IMAGE_SIDE {
        for x in 0..IMAGE_SIDE {
            let mut v = 0.0;
            for &(cx, cy, w, a) in &bumps {
                let d2 = (x as f64 - cx).powi(2) + (y as f64 - cy).powi(2);
                v += a * (-d2 / (2.0 * w * w)).exp();
            }
            img[y * IMAGE_SIDE + x] = v.min(1.0);
        }
    }
    img
}

/// Standard normal via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = SyntheticMnist::generate(20, 10, 7);
        let b = SyntheticMnist::generate(20, 10, 7);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticMnist::generate(10, 0, 1);
        let b = SyntheticMnist::generate(10, 0, 2);
        assert_ne!(a.train[0].pixels, b.train[0].pixels);
    }

    #[test]
    fn shapes_and_ranges() {
        let d = SyntheticMnist::generate(30, 15, 3);
        assert_eq!(d.train.len(), 30);
        assert_eq!(d.test.len(), 15);
        for s in d.train.iter().chain(&d.test) {
            assert_eq!(s.pixels.len(), INPUT_DIM);
            assert!(s.label < NUM_CLASSES);
            assert!(s.pixels.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn labels_are_balanced() {
        let d = SyntheticMnist::generate(100, 0, 4);
        let mut counts = [0usize; NUM_CLASSES];
        for s in &d.train {
            counts[s.label] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10));
    }

    #[test]
    fn classes_are_separated() {
        // Same-class samples should be closer than cross-class on average.
        let d = SyntheticMnist::generate(40, 0, 5);
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f64>()
        };
        let s0: Vec<&Sample> = d.train.iter().filter(|s| s.label == 0).collect();
        let s1: Vec<&Sample> = d.train.iter().filter(|s| s.label == 1).collect();
        let within = dist(&s0[0].pixels, &s0[1].pixels);
        let across = dist(&s0[0].pixels, &s1[0].pixels);
        assert!(within < across, "within = {within}, across = {across}");
    }
}
