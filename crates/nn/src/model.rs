//! Float networks, SGD training, and the paper's Fig-4 architecture.

use crate::data::Sample;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The Fig-4 workload: 784 → 128 → 128 → 10 fully-connected with ReLU
/// between layers (none after the last).
#[must_use]
pub fn paper_network_dims() -> Vec<usize> {
    vec![784, 128, 128, 10]
}

/// One dense (fully-connected) layer `y = Wx + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    /// Output dimension m.
    pub out_dim: usize,
    /// Input dimension n.
    pub in_dim: usize,
    /// Row-major weights, length `out_dim · in_dim`.
    pub weights: Vec<f64>,
    /// Bias, length `out_dim`.
    pub bias: Vec<f64>,
}

impl Dense {
    /// He-initialized layer.
    #[must_use]
    pub fn new(out_dim: usize, in_dim: usize, rng: &mut StdRng) -> Self {
        let scale = (2.0 / in_dim as f64).sqrt();
        Dense {
            out_dim,
            in_dim,
            weights: (0..out_dim * in_dim).map(|_| scale * gaussian(rng)).collect(),
            bias: vec![0.0; out_dim],
        }
    }

    /// `Wx + b`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    #[must_use]
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "input dimension mismatch");
        (0..self.out_dim)
            .map(|i| {
                let row = &self.weights[i * self.in_dim..(i + 1) * self.in_dim];
                row.iter().zip(x).map(|(w, xv)| w * xv).sum::<f64>() + self.bias[i]
            })
            .collect()
    }
}

/// A multilayer perceptron with ReLU activations between dense layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    /// Dense layers in order; ReLU is applied after every layer except the
    /// last.
    pub layers: Vec<Dense>,
}

impl Network {
    /// Builds a network with the given layer dimensions, e.g.
    /// `[784, 128, 128, 10]` for the paper's Fig-4 model.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dimensions are given.
    #[must_use]
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let mut rng = StdRng::seed_from_u64(seed);
        Network { layers: dims.windows(2).map(|w| Dense::new(w[1], w[0], &mut rng)).collect() }
    }

    /// Layer dimensions, `[in, hidden…, out]`.
    #[must_use]
    pub fn dims(&self) -> Vec<usize> {
        let mut d = vec![self.layers[0].in_dim];
        d.extend(self.layers.iter().map(|l| l.out_dim));
        d
    }

    /// Forward pass returning logits.
    #[must_use]
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut a = x.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            a = layer.forward(&a);
            if i + 1 < self.layers.len() {
                for v in &mut a {
                    *v = v.max(0.0);
                }
            }
        }
        a
    }

    /// Index of the largest logit.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.forward(x))
    }

    /// Fraction of correctly classified samples.
    #[must_use]
    pub fn accuracy(&self, samples: &[Sample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples.iter().filter(|s| self.predict(&s.pixels) == s.label).count();
        correct as f64 / samples.len() as f64
    }

    /// One epoch of plain SGD with softmax cross-entropy loss. Returns the
    /// mean loss over the epoch.
    pub fn train_epoch(&mut self, samples: &[Sample], lr: f64) -> f64 {
        let mut total_loss = 0.0;
        for s in samples {
            total_loss += self.sgd_step(&s.pixels, s.label, lr);
        }
        total_loss / samples.len().max(1) as f64
    }

    /// One SGD step; returns the sample's loss.
    fn sgd_step(&mut self, x: &[f64], label: usize, lr: f64) -> f64 {
        // Forward pass, caching activations (post-ReLU) per layer.
        let n_layers = self.layers.len();
        let mut acts: Vec<Vec<f64>> = vec![x.to_vec()];
        let mut pre: Vec<Vec<f64>> = Vec::with_capacity(n_layers);
        for (i, layer) in self.layers.iter().enumerate() {
            let z = layer.forward(&acts[i]);
            pre.push(z.clone());
            let a = if i + 1 < n_layers { z.iter().map(|&v| v.max(0.0)).collect() } else { z };
            acts.push(a);
        }

        // Softmax cross-entropy on the logits (acts[0] = x, so this is
        // total even for a zero-layer network).
        let logits = &acts[n_layers];
        let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = logits.iter().map(|&v| (v - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        let probs: Vec<f64> = exps.iter().map(|e| e / sum).collect();
        let loss = -probs[label].max(1e-12).ln();

        // Backward pass.
        let mut delta: Vec<f64> =
            probs.iter().enumerate().map(|(i, &p)| p - (i == label) as usize as f64).collect();
        for i in (0..n_layers).rev() {
            let input = acts[i].clone();
            let next_delta = if i > 0 {
                let layer = &self.layers[i];
                let mut nd = vec![0.0; layer.in_dim];
                for (r, &d) in delta.iter().enumerate() {
                    let row = &layer.weights[r * layer.in_dim..(r + 1) * layer.in_dim];
                    for (c, &w) in row.iter().enumerate() {
                        nd[c] += w * d;
                    }
                }
                // ReLU derivative of the previous layer's pre-activation.
                for (c, v) in nd.iter_mut().enumerate() {
                    if pre[i - 1][c] <= 0.0 {
                        *v = 0.0;
                    }
                }
                Some(nd)
            } else {
                None
            };
            let layer = &mut self.layers[i];
            for (r, &d) in delta.iter().enumerate() {
                let row = &mut layer.weights[r * layer.in_dim..(r + 1) * layer.in_dim];
                for (c, w) in row.iter_mut().enumerate() {
                    *w -= lr * d * input[c];
                }
                layer.bias[r] -= lr * d;
            }
            if let Some(nd) = next_delta {
                delta = nd;
            }
        }
        loss
    }
}

/// Index of the maximum element (first on ties). Total: an empty slice
/// yields 0, and NaN entries are skipped rather than panicking, so a
/// degenerate model cannot take down a serving worker through its
/// prediction path.
#[must_use]
pub fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    let mut best_v = f64::NEG_INFINITY;
    for (i, &v) in xs.iter().enumerate() {
        if v > best_v {
            best = i;
            best_v = v;
        }
    }
    best
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticMnist;

    #[test]
    fn dims_round_trip() {
        let net = Network::new(&[784, 128, 128, 10], 1);
        assert_eq!(net.dims(), vec![784, 128, 128, 10]);
        assert_eq!(net.layers.len(), 3);
        assert_eq!(net.layers[0].weights.len(), 128 * 784);
    }

    #[test]
    fn forward_shapes() {
        let net = Network::new(&[6, 4, 3], 2);
        let out = net.forward(&[0.1; 6]);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn dense_known_values() {
        let layer = Dense {
            out_dim: 2,
            in_dim: 2,
            weights: vec![1.0, 2.0, 3.0, 4.0],
            bias: vec![0.5, -0.5],
        };
        assert_eq!(layer.forward(&[1.0, 1.0]), vec![3.5, 6.5]);
    }

    #[test]
    fn training_reduces_loss_and_learns() {
        // Small synthetic task: a 2-layer net should beat chance easily.
        let data = SyntheticMnist::generate(300, 100, 11);
        let mut net = Network::new(&[784, 32, 10], 3);
        let first = net.train_epoch(&data.train, 0.05);
        let mut last = first;
        for _ in 0..3 {
            last = net.train_epoch(&data.train, 0.05);
        }
        assert!(last < first, "loss should drop: {first} -> {last}");
        let acc = net.accuracy(&data.test);
        assert!(acc > 0.5, "test accuracy too low: {acc}");
    }

    #[test]
    fn argmax_basics() {
        assert_eq!(argmax(&[0.1, 0.9, 0.5]), 1);
        assert_eq!(argmax(&[1.0]), 0);
    }

    #[test]
    fn paper_dims() {
        assert_eq!(paper_network_dims(), vec![784, 128, 128, 10]);
    }
}
