//! Arbitrary-bitwidth post-training quantization and the bit-exact
//! fixed-point forward pass.
//!
//! Semantics shared with the secure protocol (`abnn2-core`):
//!
//! * activations carry `f` fractional bits in ℤ_{2^ℓ},
//! * weights are integers in the [`FragmentScheme`] domain with implicit
//!   scale `2^{-f_w}`,
//! * a linear layer accumulates at `f + f_w` fractional bits and the
//!   activation step truncates back to `f` with an arithmetic right shift
//!   (performed *inside* the garbled circuit in the secure version, so the
//!   two pipelines agree bit for bit),
//! * the last layer returns raw accumulators at `f + f_w` fractional bits.

use crate::data::Sample;
use crate::model::{argmax, Network};
use abnn2_math::{FixedPoint, FragmentScheme, Ring};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the fixed-point pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantConfig {
    /// The share/activation ring ℤ_{2^ℓ}.
    pub ring: Ring,
    /// Fractional bits `f` of activations.
    pub frac_bits: u32,
    /// Fractional bits `f_w` of weights (weight value = integer · 2^{-f_w}).
    pub weight_frac_bits: u32,
    /// Weight domain and OT fragmentation.
    pub scheme: FragmentScheme,
}

impl QuantConfig {
    /// A sensible default: ℤ_{2^32}, 8 activation fraction bits, 4 weight
    /// fraction bits, signed 8-bit weights fragmented as (2,2,2,2).
    #[must_use]
    pub fn default_8bit() -> Self {
        QuantConfig {
            ring: Ring::new(32),
            frac_bits: 8,
            weight_frac_bits: 4,
            scheme: FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]),
        }
    }

    /// The fixed-point codec for network inputs/activations.
    #[must_use]
    pub fn activation_codec(&self) -> FixedPoint {
        FixedPoint::new(self.ring, self.frac_bits)
    }

    /// The fixed-point codec for raw network outputs (last-layer
    /// accumulators at `f + f_w` fractional bits).
    #[must_use]
    pub fn output_codec(&self) -> FixedPoint {
        FixedPoint::new(self.ring, self.frac_bits + self.weight_frac_bits)
    }
}

/// A dense layer with integer weights and ring-encoded bias.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantizedDense {
    /// Output dimension m.
    pub out_dim: usize,
    /// Input dimension n.
    pub in_dim: usize,
    /// Row-major integer weights in the scheme domain.
    pub weights: Vec<i64>,
    /// Bias encoded in the ring at `f + f_w` fractional bits.
    pub bias: Vec<u64>,
}

impl QuantizedDense {
    /// Weight row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn row(&self, i: usize) -> &[i64] {
        assert!(i < self.out_dim, "row {i} out of bounds");
        &self.weights[i * self.in_dim..(i + 1) * self.in_dim]
    }

    /// `W·x + b` over the ring, with `x` at `f` fractional bits; the result
    /// carries `f + f_w` fractional bits.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    #[must_use]
    pub fn forward_ring(&self, x: &[u64], ring: Ring) -> Vec<u64> {
        assert_eq!(x.len(), self.in_dim, "input dimension mismatch");
        (0..self.out_dim)
            .map(|i| {
                let mut acc = self.bias[i];
                for (&w, &xv) in self.row(i).iter().zip(x) {
                    acc = acc.wrapping_add(xv.wrapping_mul(w as u64));
                }
                ring.reduce(acc)
            })
            .collect()
    }
}

/// A fully quantized network: the exact object the secure protocol
/// evaluates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantizedNetwork {
    /// Pipeline hyper-parameters.
    pub config: QuantConfig,
    /// Dense layers; ReLU+truncation after each except the last.
    pub layers: Vec<QuantizedDense>,
}

/// Arithmetic shift right by `k` on the signed lift (the truncation step).
#[must_use]
pub fn sar(ring: Ring, v: u64, k: u32) -> u64 {
    ring.from_i64(ring.to_i64(v) >> k)
}

impl QuantizedNetwork {
    /// Quantizes a trained float network under `config`.
    ///
    /// Weights are rounded to `w · 2^{f_w}` and clamped into the scheme
    /// domain; biases are encoded at `f + f_w` fractional bits.
    #[must_use]
    pub fn quantize(net: &Network, config: QuantConfig) -> Self {
        let wscale = (config.weight_frac_bits as f64).exp2();
        let bcodec = config.output_codec();
        let layers = net
            .layers
            .iter()
            .map(|l| QuantizedDense {
                out_dim: l.out_dim,
                in_dim: l.in_dim,
                weights: l
                    .weights
                    .iter()
                    .map(|&w| config.scheme.clamp((w * wscale).round() as i64))
                    .collect(),
                bias: l.bias.iter().map(|&b| bcodec.encode(b)).collect(),
            })
            .collect();
        QuantizedNetwork { config, layers }
    }

    /// Layer dimensions `[in, hidden…, out]`.
    #[must_use]
    pub fn dims(&self) -> Vec<usize> {
        let mut d = vec![self.layers[0].in_dim];
        d.extend(self.layers.iter().map(|l| l.out_dim));
        d
    }

    /// Total number of weights (the paper's OT-count driver `Σ mₗ·nₗ`).
    #[must_use]
    pub fn weight_count(&self) -> usize {
        self.layers.iter().map(|l| l.weights.len()).sum()
    }

    /// The bit-exact fixed-point forward pass.
    ///
    /// Input: activations at `f` fractional bits; output: last-layer
    /// accumulators at `f + f_w` fractional bits. Secure inference must
    /// reproduce this value exactly (shares summing to it).
    ///
    /// # Panics
    ///
    /// Panics if the input length mismatches the first layer.
    #[must_use]
    pub fn forward_exact(&self, x_fp: &[u64]) -> Vec<u64> {
        let ring = self.config.ring;
        let fw = self.config.weight_frac_bits;
        let mut a = x_fp.to_vec();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let acc = layer.forward_ring(&a, ring);
            if i == last {
                return acc;
            }
            a = acc
                .iter()
                .map(|&v| {
                    let t = sar(ring, v, fw);
                    if ring.is_negative(t) {
                        0
                    } else {
                        t
                    }
                })
                .collect();
        }
        unreachable!("loop returns at the last layer")
    }

    /// Float-in/float-out convenience around [`Self::forward_exact`].
    #[must_use]
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let in_codec = self.config.activation_codec();
        let out_codec = self.config.output_codec();
        out_codec.decode_vec(&self.forward_exact(&in_codec.encode_vec(x)))
    }

    /// Predicted class.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.forward(x))
    }

    /// Classification accuracy on labelled samples.
    #[must_use]
    pub fn accuracy(&self, samples: &[Sample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples.iter().filter(|s| self.predict(&s.pixels) == s.label).count();
        correct as f64 / samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticMnist;
    use proptest::prelude::*;

    fn tiny_trained(seed: u64) -> (Network, SyntheticMnist) {
        let data = SyntheticMnist::generate(300, 100, seed);
        let mut net = Network::new(&[784, 24, 10], seed + 1);
        for _ in 0..4 {
            net.train_epoch(&data.train, 0.05);
        }
        (net, data)
    }

    #[test]
    fn sar_matches_signed_shift() {
        let ring = Ring::new(16);
        assert_eq!(ring.to_i64(sar(ring, ring.from_i64(-8), 2)), -2);
        assert_eq!(ring.to_i64(sar(ring, ring.from_i64(7), 1)), 3);
        assert_eq!(ring.to_i64(sar(ring, ring.from_i64(-7), 1)), -4); // floor
    }

    #[test]
    fn quantized_weights_in_domain() {
        let (net, _) = tiny_trained(21);
        let q = QuantizedNetwork::quantize(&net, QuantConfig::default_8bit());
        let (lo, hi) = q.config.scheme.weight_range();
        for l in &q.layers {
            assert!(l.weights.iter().all(|&w| (lo..=hi).contains(&w)));
        }
        assert_eq!(q.dims(), vec![784, 24, 10]);
        assert_eq!(q.weight_count(), 784 * 24 + 24 * 10);
    }

    #[test]
    fn eight_bit_quantization_preserves_accuracy() {
        let (net, data) = tiny_trained(22);
        let float_acc = net.accuracy(&data.test);
        let q = QuantizedNetwork::quantize(&net, QuantConfig::default_8bit());
        let q_acc = q.accuracy(&data.test);
        assert!(
            q_acc >= float_acc - 0.15,
            "8-bit accuracy dropped too far: {float_acc} -> {q_acc}"
        );
    }

    #[test]
    fn forward_exact_is_deterministic_and_wrapped() {
        let (net, data) = tiny_trained(23);
        let q = QuantizedNetwork::quantize(&net, QuantConfig::default_8bit());
        let x = q.config.activation_codec().encode_vec(&data.test[0].pixels);
        let a = q.forward_exact(&x);
        let b = q.forward_exact(&x);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| v <= q.config.ring.mask()));
    }

    #[test]
    fn ternary_and_binary_quantization_run() {
        let (net, data) = tiny_trained(24);
        for scheme in [FragmentScheme::ternary(), FragmentScheme::binary()] {
            let config =
                QuantConfig { ring: Ring::new(32), frac_bits: 8, weight_frac_bits: 0, scheme };
            let q = QuantizedNetwork::quantize(&net, config);
            // Low-bitwidth nets lose accuracy but the pipeline must still run.
            let _ = q.forward(&data.test[0].pixels);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn forward_matches_manual_reference(seed in 0u64..100) {
            // A 1-layer network: forward_exact == ring dot product + bias.
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let config = QuantConfig::default_8bit();
            let ring = config.ring;
            let layer = QuantizedDense {
                out_dim: 2,
                in_dim: 3,
                weights: (0..6).map(|_| rng.gen_range(-128i64..128)).collect(),
                bias: vec![ring.sample(&mut rng), ring.sample(&mut rng)],
            };
            let q = QuantizedNetwork { config, layers: vec![layer.clone()] };
            let x: Vec<u64> = ring.sample_vec(&mut rng, 3);
            let got = q.forward_exact(&x);
            for i in 0..2 {
                let mut acc = layer.bias[i];
                for j in 0..3 {
                    acc = ring.add(acc, ring.mul_signed(x[j], layer.weights[i * 3 + j]));
                }
                prop_assert_eq!(got[i], acc);
            }
        }
    }
}
