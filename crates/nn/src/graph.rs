//! Layer-graph descriptor: the topology-neutral IR behind secure inference.
//!
//! All served topologies — the paper's fully-connected stack
//! ([`QuantizedNetwork`]), the CNN extension ([`QuantizedCnn`]) and the
//! transformer-encoder extension (`QuantizedTransformer`) — lower to the
//! same sequence of typed ops. The op family is open-ended along three
//! axes that the planner and executors consume *generically* instead of
//! matching on a closed five-way enum:
//!
//! * [`LayerOp::sources`] — which tape slots an op reads (the executor is a
//!   tape machine: slot 0 is the graph input, slot `i + 1` is op `i`'s
//!   output; legacy ops implicitly read the previous slot, attention-style
//!   ops carry explicit source indices for fan-out and residuals),
//! * [`LayerOp::resource`] — which offline precomputation the op consumes
//!   (a dot-product triplet, a matrix Beaver triple, a fresh re-sharing
//!   mask, or nothing),
//! * [`LayerOp::describe`] — the canonical digest fragment.
//!
//! The descriptor carries dimensions only — never weights — so it is safe
//! to derive on the client side from a public model description and to
//! feed into handshake/bundle digests.
//!
//! The secure planner and executor over this IR live in
//! `abnn2-core::graph`; this module owns only the shape.

use crate::conv::{conv_out_dims, ConvShape, QuantizedCnn};
use crate::quant::{QuantConfig, QuantizedNetwork};

/// Typed error for graph construction and validation. Replaces the old
/// panicking `expect("non-empty dims")` construction paths so a degenerate
/// model description surfaces as an error instead of panicking a serving
/// worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A model constructor was given no layers / empty dimensions.
    EmptyModel(&'static str),
    /// Structural validation failure (static description of the first
    /// violation).
    Invalid(&'static str),
}

impl GraphError {
    /// The static description of the violation, without the kind prefix —
    /// for callers that wrap the error in their own typed variant.
    #[must_use]
    pub fn message(&self) -> &'static str {
        match self {
            GraphError::EmptyModel(msg) | GraphError::Invalid(msg) => msg,
        }
    }
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::EmptyModel(msg) => write!(f, "empty model: {msg}"),
            GraphError::Invalid(msg) => write!(f, "invalid graph: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Which offline precomputation an op consumes. The planner, mask/bundle
/// walks and the communication-ceiling accounting all branch on this
/// classification instead of on concrete op variants, so adding an op kind
/// means adding one `resource()` arm — not editing five match sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpResource {
    /// A §4.1 dot-product triplet for public-weight matrices of shape
    /// `m × n` (rows × cols).
    Triplet {
        /// Weight rows.
        m: usize,
        /// Weight cols.
        n: usize,
    },
    /// A matrix Beaver triple `(X, Y, Z = X·Y)` for a secret×secret
    /// product of shape `(m × k) · (k × n)`.
    MatTriple {
        /// Left rows.
        m: usize,
        /// Inner dimension.
        k: usize,
        /// Right cols.
        n: usize,
    },
    /// A fresh client mask of `len` elements (re-sharing nonlinearity).
    FreshMask {
        /// Mask length per sample.
        len: usize,
    },
    /// Terminal op; consumes nothing.
    Output,
}

/// One typed node of the inference pipeline. Ops form a sequence evaluated
/// on a tape: slot 0 holds the graph input and slot `i + 1` holds op `i`'s
/// output. Legacy ops consume the previous slot; ops with explicit source
/// fields (`Linear`, `MatMulSS`, `LayerNorm`) may read any earlier slot,
/// which is what expresses attention fan-out and residual connections in a
/// straight-line op list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayerOp {
    /// Fully-connected layer `W·x + b`, `out_dim × in_dim`.
    Dense {
        /// Output rows.
        out_dim: usize,
        /// Input rows.
        in_dim: usize,
    },
    /// Convolution lowered to a matrix product through im2col: weights are
    /// `out_channels × (channels·kh·kw)`, the input column matrix has one
    /// column per output position.
    Conv {
        /// Filter count.
        out_channels: usize,
        /// Input feature-map shape.
        in_shape: ConvShape,
        /// Kernel height.
        kh: usize,
        /// Kernel width.
        kw: usize,
        /// Stride.
        stride: usize,
    },
    /// Truncate by the weight fraction bits, then ReLU; re-shares its
    /// output under a fresh client mask.
    Relu {
        /// Elements per sample.
        dim: usize,
    },
    /// Non-overlapping `window × window` max-pool over a CHW map;
    /// re-shares each window maximum under a fresh client mask.
    MaxPool {
        /// Input feature-map shape.
        shape: ConvShape,
        /// Pooling window.
        window: usize,
    },
    /// Fully-connected layer with an explicit source tape slot — the
    /// tape-aware sibling of [`LayerOp::Dense`], used by topologies with
    /// fan-out (e.g. the Q/K/V projections all reading the same input).
    Linear {
        /// Output rows.
        out_dim: usize,
        /// Input rows.
        in_dim: usize,
        /// Tape slot of the input.
        src: usize,
    },
    /// Secret×secret matrix product `(m × k) · (k × n)` backed by a matrix
    /// Beaver triple, followed by an exact in-circuit truncation by
    /// `shift` and a re-share under a fresh client mask. With
    /// `transpose_b` the right operand is stored `n × k` and multiplied
    /// transposed (the attention `Q·Kᵀ` shape).
    MatMulSS {
        /// Left rows.
        m: usize,
        /// Inner dimension.
        k: usize,
        /// Right cols.
        n: usize,
        /// Multiply against `Bᵀ` (B stored `n × k`).
        transpose_b: bool,
        /// Arithmetic right shift applied to the reconstructed product.
        shift: u32,
        /// Tape slot of the left operand (`m·k` elements).
        a_src: usize,
        /// Tape slot of the right operand (`k·n` elements).
        b_src: usize,
    },
    /// Row-wise fixed-point softmax over a `rows × cols` matrix (GC
    /// lowering: max-subtract, polynomial exp, restoring division);
    /// re-shares under a fresh client mask.
    Softmax {
        /// Matrix rows (softmax is per row).
        rows: usize,
        /// Matrix cols.
        cols: usize,
        /// Arithmetic right shift applied before the softmax.
        shift: u32,
    },
    /// Fixed-point GELU (hard-sigmoid approximation) after an arithmetic
    /// right shift by `shift`; re-shares under a fresh client mask.
    Gelu {
        /// Elements per sample.
        dim: usize,
        /// Arithmetic right shift applied before the GELU.
        shift: u32,
    },
    /// Per-token fixed-point LayerNorm over `tokens` tokens of `dim`
    /// values (`dim` a power of two), with a residual add folded in:
    /// `x = (a ≫ₐ shift_a) + (b ≫ₐ shift_b)` element-wise before
    /// normalizing. Re-shares under a fresh client mask.
    LayerNorm {
        /// Token count.
        tokens: usize,
        /// Values per token (power of two).
        dim: usize,
        /// Tape slot of the primary operand.
        a_src: usize,
        /// Tape slot of the residual operand.
        b_src: usize,
        /// Shift applied to the primary operand.
        shift_a: u32,
        /// Shift applied to the residual operand.
        shift_b: u32,
    },
    /// Terminal op: the server opens its share of the final linear layer
    /// toward the client. Executors terminate here by construction.
    Output {
        /// Elements per sample.
        dim: usize,
    },
}

impl LayerOp {
    /// Elements consumed per sample (from the primary source slot).
    #[must_use]
    pub fn in_len(&self) -> usize {
        match *self {
            LayerOp::Dense { in_dim, .. } | LayerOp::Linear { in_dim, .. } => in_dim,
            LayerOp::Conv { in_shape, .. } => in_shape.len(),
            LayerOp::Relu { dim } | LayerOp::Output { dim } => dim,
            LayerOp::Gelu { dim, .. } => dim,
            LayerOp::MaxPool { shape, .. } => shape.len(),
            LayerOp::MatMulSS { m, k, .. } => m * k,
            LayerOp::Softmax { rows, cols, .. } => rows * cols,
            LayerOp::LayerNorm { tokens, dim, .. } => tokens * dim,
        }
    }

    /// Elements produced per sample.
    #[must_use]
    pub fn out_len(&self) -> usize {
        match *self {
            LayerOp::Dense { out_dim, .. } | LayerOp::Linear { out_dim, .. } => out_dim,
            LayerOp::Conv { out_channels, in_shape, kh, kw, stride } => {
                let (oh, ow) = conv_out_dims(in_shape, kh, kw, stride);
                out_channels * oh * ow
            }
            LayerOp::Relu { dim } | LayerOp::Output { dim } => dim,
            LayerOp::Gelu { dim, .. } => dim,
            LayerOp::MaxPool { shape, window } => ConvShape {
                channels: shape.channels,
                height: shape.height / window,
                width: shape.width / window,
            }
            .len(),
            LayerOp::MatMulSS { m, n, .. } => m * n,
            LayerOp::Softmax { rows, cols, .. } => rows * cols,
            LayerOp::LayerNorm { tokens, dim, .. } => tokens * dim,
        }
    }

    /// Tape slots this op reads, given its own position `idx` in the op
    /// sequence (slot `idx` holds the previous op's output). Legacy ops
    /// read `[idx]`; tape-aware ops return their explicit sources.
    #[must_use]
    pub fn sources(&self, idx: usize) -> Vec<usize> {
        match *self {
            LayerOp::Linear { src, .. } => vec![src],
            LayerOp::MatMulSS { a_src, b_src, .. } => vec![a_src, b_src],
            LayerOp::LayerNorm { a_src, b_src, .. } => vec![a_src, b_src],
            _ => vec![idx],
        }
    }

    /// Which offline precomputation this op consumes.
    #[must_use]
    pub fn resource(&self) -> OpResource {
        match *self {
            LayerOp::Dense { out_dim, in_dim } | LayerOp::Linear { out_dim, in_dim, .. } => {
                OpResource::Triplet { m: out_dim, n: in_dim }
            }
            LayerOp::Conv { out_channels, in_shape, kh, kw, .. } => {
                OpResource::Triplet { m: out_channels, n: in_shape.channels * kh * kw }
            }
            LayerOp::MatMulSS { m, k, n, .. } => OpResource::MatTriple { m, k, n },
            LayerOp::Relu { .. }
            | LayerOp::MaxPool { .. }
            | LayerOp::Softmax { .. }
            | LayerOp::Gelu { .. }
            | LayerOp::LayerNorm { .. } => OpResource::FreshMask { len: self.out_len() },
            LayerOp::Output { .. } => OpResource::Output,
        }
    }

    /// Whether this op consumes an offline dot-product triplet.
    #[must_use]
    pub fn is_linear(&self) -> bool {
        matches!(self.resource(), OpResource::Triplet { .. })
    }

    /// Whether this op re-shares its output under a fresh client mask.
    /// `MatMulSS` counts: its open-and-combine ends in a
    /// reconstruct-truncate-reshare circuit so the client's share of the
    /// output is (as for every op) known offline.
    #[must_use]
    pub fn is_reshare(&self) -> bool {
        matches!(self.resource(), OpResource::FreshMask { .. } | OpResource::MatTriple { .. })
    }

    /// Whether this op is tied to a spatial (CHW) layout and therefore to
    /// single-sample execution.
    #[must_use]
    pub fn is_spatial(&self) -> bool {
        matches!(self, LayerOp::Conv { .. } | LayerOp::MaxPool { .. })
    }

    /// Whether this op belongs to the tape-aware extended family
    /// (transformer ops), which also pins execution to single-sample
    /// batches.
    #[must_use]
    pub fn is_extended(&self) -> bool {
        matches!(
            self,
            LayerOp::Linear { .. }
                | LayerOp::MatMulSS { .. }
                | LayerOp::Softmax { .. }
                | LayerOp::Gelu { .. }
                | LayerOp::LayerNorm { .. }
        )
    }

    /// Short kind tag used in per-op instrumentation phase labels.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            LayerOp::Dense { .. } => "dense",
            LayerOp::Conv { .. } => "conv",
            LayerOp::Relu { .. } => "relu",
            LayerOp::MaxPool { .. } => "pool",
            LayerOp::Linear { .. } => "linear",
            LayerOp::MatMulSS { .. } => "matmulss",
            LayerOp::Softmax { .. } => "softmax",
            LayerOp::Gelu { .. } => "gelu",
            LayerOp::LayerNorm { .. } => "layernorm",
            LayerOp::Output { .. } => "output",
        }
    }

    /// Canonical description fragment (feeds handshake/bundle digests).
    #[must_use]
    pub fn describe(&self) -> String {
        match *self {
            LayerOp::Dense { out_dim, in_dim } => format!("dense({out_dim}x{in_dim})"),
            LayerOp::Conv { out_channels, in_shape, kh, kw, stride } => format!(
                "conv({out_channels}@{kh}x{kw}/{stride}:{}x{}x{})",
                in_shape.channels, in_shape.height, in_shape.width
            ),
            LayerOp::Relu { dim } => format!("relu({dim})"),
            LayerOp::MaxPool { shape, window } => {
                format!("pool({window}:{}x{}x{})", shape.channels, shape.height, shape.width)
            }
            LayerOp::Linear { out_dim, in_dim, src } => {
                format!("linear({out_dim}x{in_dim}@{src})")
            }
            LayerOp::MatMulSS { m, k, n, transpose_b, shift, a_src, b_src } => {
                let t = if transpose_b { "t" } else { "" };
                format!("matmulss({m}x{k}x{n}{t}>>{shift}@{a_src},{b_src})")
            }
            LayerOp::Softmax { rows, cols, shift } => {
                format!("softmax({rows}x{cols}>>{shift})")
            }
            LayerOp::Gelu { dim, shift } => format!("gelu({dim}>>{shift})"),
            LayerOp::LayerNorm { tokens, dim, a_src, b_src, shift_a, shift_b } => {
                format!("ln({tokens}x{dim}>>{shift_a},{shift_b}@{a_src},{b_src})")
            }
            LayerOp::Output { dim } => format!("out({dim})"),
        }
    }
}

/// A straight-line graph of [`LayerOp`]s plus the fixed-point
/// hyper-parameters the pipeline runs under. Construct via
/// [`LayerGraph::mlp`], [`LayerGraph::cnn`], [`LayerGraph::transformer`],
/// or the `From` impls on the quantized model types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerGraph {
    /// Fixed-point pipeline hyper-parameters.
    pub config: QuantConfig,
    /// The op sequence, ending in [`LayerOp::Output`].
    pub ops: Vec<LayerOp>,
}

impl LayerGraph {
    /// The paper's fully-connected pipeline: `dense → relu → … → dense →
    /// output` over `dims = [in, hidden…, out]`.
    ///
    /// # Errors
    ///
    /// [`GraphError::EmptyModel`] if `dims` has fewer than two entries.
    pub fn try_mlp(dims: &[usize], config: QuantConfig) -> Result<Self, GraphError> {
        let [.., out] = dims else {
            return Err(GraphError::EmptyModel("an MLP needs at least one layer"));
        };
        if dims.len() < 2 {
            return Err(GraphError::EmptyModel("an MLP needs at least one layer"));
        }
        let mut ops = Vec::with_capacity(2 * (dims.len() - 1));
        for l in 0..dims.len() - 1 {
            ops.push(LayerOp::Dense { out_dim: dims[l + 1], in_dim: dims[l] });
            if l + 2 < dims.len() {
                ops.push(LayerOp::Relu { dim: dims[l + 1] });
            }
        }
        ops.push(LayerOp::Output { dim: *out });
        Ok(LayerGraph { config, ops })
    }

    /// Infallible [`LayerGraph::try_mlp`]: a degenerate `dims` yields an
    /// empty graph, which [`LayerGraph::validate`] rejects with a typed
    /// error downstream — construction itself never panics.
    #[must_use]
    pub fn mlp(dims: &[usize], config: QuantConfig) -> Self {
        Self::try_mlp(dims, config.clone()).unwrap_or(LayerGraph { config, ops: Vec::new() })
    }

    /// The CNN extension: `conv → relu → maxpool → dense stack → output`.
    /// `dense_dims` includes the flattened pool output as its first entry.
    ///
    /// # Errors
    ///
    /// [`GraphError::EmptyModel`] if `dense_dims` has fewer than two
    /// entries.
    pub fn try_cnn(
        in_shape: ConvShape,
        out_channels: usize,
        kernel: (usize, usize, usize),
        pool_window: usize,
        dense_dims: &[usize],
        config: QuantConfig,
    ) -> Result<Self, GraphError> {
        let [.., out] = dense_dims else {
            return Err(GraphError::EmptyModel("a CNN needs at least one dense layer"));
        };
        if dense_dims.len() < 2 {
            return Err(GraphError::EmptyModel("a CNN needs at least one dense layer"));
        }
        let (kh, kw, stride) = kernel;
        let (oh, ow) = conv_out_dims(in_shape, kh, kw, stride);
        let conv_out = ConvShape { channels: out_channels, height: oh, width: ow };
        let mut ops = vec![
            LayerOp::Conv { out_channels, in_shape, kh, kw, stride },
            LayerOp::Relu { dim: conv_out.len() },
            LayerOp::MaxPool { shape: conv_out, window: pool_window },
        ];
        for l in 0..dense_dims.len() - 1 {
            ops.push(LayerOp::Dense { out_dim: dense_dims[l + 1], in_dim: dense_dims[l] });
            if l + 2 < dense_dims.len() {
                ops.push(LayerOp::Relu { dim: dense_dims[l + 1] });
            }
        }
        ops.push(LayerOp::Output { dim: *out });
        Ok(LayerGraph { config, ops })
    }

    /// Infallible [`LayerGraph::try_cnn`]: degenerate dims yield an empty
    /// graph rejected by [`LayerGraph::validate`] — never a panic.
    #[must_use]
    pub fn cnn(
        in_shape: ConvShape,
        out_channels: usize,
        kernel: (usize, usize, usize),
        pool_window: usize,
        dense_dims: &[usize],
        config: QuantConfig,
    ) -> Self {
        Self::try_cnn(in_shape, out_channels, kernel, pool_window, dense_dims, config.clone())
            .unwrap_or(LayerGraph { config, ops: Vec::new() })
    }

    /// One pre-norm-free BERT-style encoder block plus a classifier head
    /// over `seq` tokens of model width `d` (`d` a power of two):
    ///
    /// ```text
    /// Q = Wq·x   K = Wk·x   V = Wv·x          (per-token projections)
    /// S = softmax((Q·Kᵀ) / √d)                (MatMulSS + Softmax)
    /// A = Wo·(S·V)                            (MatMulSS + projection)
    /// h = LayerNorm(A + x)                    (residual folded in)
    /// y = LayerNorm(W2·gelu(W1·h) + h)        (feed-forward block)
    /// logits = Wh·y                           (classifier head)
    /// ```
    ///
    /// All truncation happens exactly inside the re-sharing circuits; the
    /// `1/√d` attention scaling folds into the first `MatMulSS` shift
    /// (`h = log₂(d)/2` extra shift bits).
    ///
    /// # Errors
    ///
    /// [`GraphError::EmptyModel`] for zero dimensions,
    /// [`GraphError::Invalid`] if `d` is not a power of two or the shifts
    /// do not fit the ring.
    pub fn transformer(
        seq: usize,
        d: usize,
        d_ff: usize,
        n_classes: usize,
        config: QuantConfig,
    ) -> Result<Self, GraphError> {
        if seq == 0 || d == 0 || d_ff == 0 || n_classes == 0 {
            return Err(GraphError::EmptyModel("transformer dims must be positive"));
        }
        if !d.is_power_of_two() {
            return Err(GraphError::Invalid("model width d must be a power of two"));
        }
        let f = config.frac_bits;
        let fw = config.weight_frac_bits;
        let h = d.trailing_zeros() / 2; // 1/√d as shift bits
        let score_shift = f + 2 * fw + h;
        if score_shift >= config.ring.bits() {
            return Err(GraphError::Invalid("attention shift does not fit the ring"));
        }
        let dm = seq * d;
        let dff = seq * d_ff;
        let ops = vec![
            // 0..=2: Q/K/V projections, all reading the input (slot 0).
            LayerOp::Linear { out_dim: dm, in_dim: dm, src: 0 },
            LayerOp::Linear { out_dim: dm, in_dim: dm, src: 0 },
            LayerOp::Linear { out_dim: dm, in_dim: dm, src: 0 },
            // 3: scores = (Q·Kᵀ) >> (f + 2fw + h), at f fraction bits.
            LayerOp::MatMulSS {
                m: seq,
                k: d,
                n: seq,
                transpose_b: true,
                shift: score_shift,
                a_src: 1,
                b_src: 2,
            },
            // 4: row softmax over the seq×seq score matrix.
            LayerOp::Softmax { rows: seq, cols: seq, shift: 0 },
            // 5: attention = (probs·V) >> (f + fw), back to f fraction bits.
            LayerOp::MatMulSS {
                m: seq,
                k: seq,
                n: d,
                transpose_b: false,
                shift: f + fw,
                a_src: 5,
                b_src: 3,
            },
            // 6: output projection Wo.
            LayerOp::Linear { out_dim: dm, in_dim: dm, src: 6 },
            // 7: LayerNorm(Wo-out >> fw + residual x).
            LayerOp::LayerNorm { tokens: seq, dim: d, a_src: 7, b_src: 0, shift_a: fw, shift_b: 0 },
            // 8..=10: feed-forward W1 → gelu → W2.
            LayerOp::Linear { out_dim: dff, in_dim: dm, src: 8 },
            LayerOp::Gelu { dim: dff, shift: fw },
            LayerOp::Linear { out_dim: dm, in_dim: dff, src: 10 },
            // 11: LayerNorm(W2-out >> fw + residual h).
            LayerOp::LayerNorm {
                tokens: seq,
                dim: d,
                a_src: 11,
                b_src: 8,
                shift_a: fw,
                shift_b: 0,
            },
            // 12: classifier head over the flattened sequence.
            LayerOp::Linear { out_dim: n_classes, in_dim: dm, src: 12 },
            LayerOp::Output { dim: n_classes },
        ];
        let graph = LayerGraph { config, ops };
        graph.validate()?;
        Ok(graph)
    }

    /// Elements per input sample.
    #[must_use]
    pub fn input_len(&self) -> usize {
        self.ops.first().map_or(0, LayerOp::in_len)
    }

    /// Elements per output sample.
    #[must_use]
    pub fn output_len(&self) -> usize {
        self.ops.last().map_or(0, LayerOp::out_len)
    }

    /// Number of triplet-consuming (linear) ops.
    #[must_use]
    pub fn linear_count(&self) -> usize {
        self.ops.iter().filter(|op| op.is_linear()).count()
    }

    /// Number of secret×secret matmul ops (matrix-Beaver consumers).
    #[must_use]
    pub fn matmul_count(&self) -> usize {
        self.ops.iter().filter(|op| matches!(op, LayerOp::MatMulSS { .. })).count()
    }

    /// Number of client masks the pipeline consumes: one for the input
    /// blinding plus one per re-sharing op.
    #[must_use]
    pub fn mask_count(&self) -> usize {
        1 + self.ops.iter().filter(|op| op.is_reshare()).count()
    }

    /// Whether the graph contains spatially-laid-out ops (conv/max-pool),
    /// which pin execution to batch size 1.
    #[must_use]
    pub fn has_spatial_ops(&self) -> bool {
        self.ops.iter().any(LayerOp::is_spatial)
    }

    /// Whether the graph contains tape-aware extended ops (transformer
    /// family), which also pin execution to batch size 1.
    #[must_use]
    pub fn has_extended_ops(&self) -> bool {
        self.ops.iter().any(LayerOp::is_extended)
    }

    /// Checks structural well-formedness: non-empty, every op's sources
    /// refer to already-produced tape slots with matching lengths, exactly
    /// one [`LayerOp::Output`] and it comes last, shifts fit the ring.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError::Invalid`] describing the first violation.
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.ops.is_empty() {
            return Err(GraphError::Invalid("graph has no ops"));
        }
        let bits = self.config.ring.bits();
        // tape[0] = input; tape[i + 1] = output of op i.
        let mut tape: Vec<usize> = vec![self.ops[0].in_len()];
        for (i, op) in self.ops.iter().enumerate() {
            let terminal = matches!(op, LayerOp::Output { .. });
            if terminal != (i == self.ops.len() - 1) {
                return Err(GraphError::Invalid("output op must be exactly the last op"));
            }
            for &s in &op.sources(i) {
                if s >= tape.len() {
                    return Err(GraphError::Invalid("op source refers to a later tape slot"));
                }
            }
            match *op {
                LayerOp::Linear { in_dim, src, .. } => {
                    if tape[src] != in_dim {
                        return Err(GraphError::Invalid(
                            "linear input length does not match its source slot",
                        ));
                    }
                }
                LayerOp::MatMulSS { m, k, n, shift, a_src, b_src, .. } => {
                    if tape[a_src] != m * k || tape[b_src] != k * n {
                        return Err(GraphError::Invalid(
                            "matmul operand length does not match its source slot",
                        ));
                    }
                    if shift >= bits {
                        return Err(GraphError::Invalid("matmul shift does not fit the ring"));
                    }
                }
                LayerOp::Softmax { rows, cols, shift } => {
                    if tape[i] != rows * cols {
                        return Err(GraphError::Invalid(
                            "softmax input length does not match predecessor output",
                        ));
                    }
                    if shift >= bits {
                        return Err(GraphError::Invalid("softmax shift does not fit the ring"));
                    }
                }
                LayerOp::Gelu { shift, .. } => {
                    if tape[i] != op.in_len() {
                        return Err(GraphError::Invalid(
                            "op input length does not match predecessor output",
                        ));
                    }
                    if shift >= bits {
                        return Err(GraphError::Invalid("gelu shift does not fit the ring"));
                    }
                }
                LayerOp::LayerNorm { tokens, dim, a_src, b_src, shift_a, shift_b } => {
                    if tape[a_src] != tokens * dim || tape[b_src] != tokens * dim {
                        return Err(GraphError::Invalid(
                            "layernorm operand length does not match its source slot",
                        ));
                    }
                    if !dim.is_power_of_two() {
                        return Err(GraphError::Invalid("layernorm width must be a power of two"));
                    }
                    if shift_a >= bits || shift_b >= bits {
                        return Err(GraphError::Invalid("layernorm shift does not fit the ring"));
                    }
                }
                LayerOp::MaxPool { shape, window } => {
                    if tape[i] != op.in_len() {
                        return Err(GraphError::Invalid(
                            "op input length does not match predecessor output",
                        ));
                    }
                    if window == 0 || shape.height % window != 0 || shape.width % window != 0 {
                        return Err(GraphError::Invalid("pool window must evenly divide the map"));
                    }
                }
                _ => {
                    if tape[i] != op.in_len() {
                        return Err(GraphError::Invalid(
                            "op input length does not match predecessor output",
                        ));
                    }
                }
            }
            tape.push(op.out_len());
        }
        Ok(())
    }

    /// Canonical architecture string (op descriptions joined with `>`);
    /// the digest input shared by the handshake and bundle keys.
    #[must_use]
    pub fn describe(&self) -> String {
        self.ops.iter().map(LayerOp::describe).collect::<Vec<_>>().join(">")
    }
}

impl From<&QuantizedNetwork> for LayerGraph {
    fn from(net: &QuantizedNetwork) -> Self {
        LayerGraph::mlp(&net.dims(), net.config.clone())
    }
}

impl From<&QuantizedCnn> for LayerGraph {
    fn from(net: &QuantizedCnn) -> Self {
        let Some(first) = net.dense.first() else {
            return LayerGraph { config: net.config.clone(), ops: Vec::new() };
        };
        let mut dense_dims = vec![first.in_dim];
        dense_dims.extend(net.dense.iter().map(|l| l.out_dim));
        LayerGraph::cnn(
            net.conv.in_shape,
            net.conv.out_channels,
            (net.conv.kh, net.conv.kw, net.conv.stride),
            net.pool_window,
            &dense_dims,
            net.config.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_math::{FragmentScheme, Ring};

    fn config() -> QuantConfig {
        QuantConfig {
            ring: Ring::new(32),
            frac_bits: 8,
            weight_frac_bits: 2,
            scheme: FragmentScheme::signed_bit_fields(&[2, 2]),
        }
    }

    #[test]
    fn mlp_graph_shape() {
        let g = LayerGraph::mlp(&[12, 8, 6, 4], config());
        assert_eq!(g.ops.len(), 6); // 3 dense + 2 relu + output
        assert!(g.validate().is_ok());
        assert_eq!(g.input_len(), 12);
        assert_eq!(g.output_len(), 4);
        assert_eq!(g.linear_count(), 3);
        assert_eq!(g.mask_count(), 3);
        assert!(!g.has_spatial_ops());
        assert!(!g.has_extended_ops());
        assert_eq!(g.describe(), "dense(8x12)>relu(8)>dense(6x8)>relu(6)>dense(4x6)>out(4)");
    }

    #[test]
    fn cnn_graph_shape() {
        let in_shape = ConvShape { channels: 1, height: 8, width: 8 };
        let g = LayerGraph::cnn(in_shape, 2, (3, 3, 1), 2, &[18, 6, 4], config());
        // conv, relu, pool, dense, relu, dense, output
        assert_eq!(g.ops.len(), 7);
        assert!(g.validate().is_ok());
        assert_eq!(g.input_len(), 64);
        assert_eq!(g.output_len(), 4);
        assert_eq!(g.linear_count(), 3);
        assert_eq!(g.mask_count(), 4); // input + conv-relu + pool + dense-relu
        assert!(g.has_spatial_ops());
        // conv out 2×6×6 = 72 feeds relu; pool 2 halves each spatial dim.
        assert_eq!(g.ops[1], LayerOp::Relu { dim: 72 });
        assert_eq!(g.ops[2].out_len(), 18);
    }

    #[test]
    fn transformer_graph_shape() {
        let cfg = QuantConfig {
            ring: Ring::new(16),
            frac_bits: 6,
            weight_frac_bits: 2,
            scheme: FragmentScheme::signed_bit_fields(&[2, 2]),
        };
        let g = LayerGraph::transformer(4, 4, 8, 3, cfg).expect("valid transformer");
        assert_eq!(g.ops.len(), 14);
        assert!(g.validate().is_ok());
        assert_eq!(g.input_len(), 16);
        assert_eq!(g.output_len(), 3);
        assert_eq!(g.linear_count(), 7); // Wq Wk Wv Wo W1 W2 head
        assert_eq!(g.matmul_count(), 2);
        // input + 2 matmul + softmax + gelu + 2 layernorm = 7 masks
        assert_eq!(g.mask_count(), 7);
        assert!(g.has_extended_ops());
        assert!(!g.has_spatial_ops());
        // Score shift folds 1/√d: f + 2fw + log2(4)/2 = 6 + 4 + 1.
        assert!(g.describe().contains("matmulss(4x4x4t>>11@1,2)"));
    }

    #[test]
    fn empty_models_yield_typed_errors_not_panics() {
        assert_eq!(
            LayerGraph::try_mlp(&[], config()),
            Err(GraphError::EmptyModel("an MLP needs at least one layer"))
        );
        assert_eq!(
            LayerGraph::try_mlp(&[7], config()),
            Err(GraphError::EmptyModel("an MLP needs at least one layer"))
        );
        // The infallible constructor degrades to an empty graph that
        // validation rejects with a typed error.
        let g = LayerGraph::mlp(&[], config());
        assert_eq!(g.validate(), Err(GraphError::Invalid("graph has no ops")));
        let in_shape = ConvShape { channels: 1, height: 8, width: 8 };
        assert!(matches!(
            LayerGraph::try_cnn(in_shape, 2, (3, 3, 1), 2, &[], config()),
            Err(GraphError::EmptyModel(_))
        ));
        assert!(matches!(
            LayerGraph::transformer(0, 4, 8, 3, config()),
            Err(GraphError::EmptyModel(_))
        ));
        assert!(matches!(
            LayerGraph::transformer(4, 3, 8, 3, config()),
            Err(GraphError::Invalid(_))
        ));
    }

    #[test]
    fn mismatched_dims_fail_validation() {
        let mut g = LayerGraph::mlp(&[12, 8, 4], config());
        g.ops[1] = LayerOp::Relu { dim: 7 };
        assert!(g.validate().is_err());
        let mut g2 = LayerGraph::mlp(&[12, 8, 4], config());
        g2.ops.pop();
        assert_eq!(
            g2.validate(),
            Err(GraphError::Invalid("output op must be exactly the last op"))
        );
    }

    #[test]
    fn forward_source_references_fail_validation() {
        let cfg = QuantConfig {
            ring: Ring::new(16),
            frac_bits: 6,
            weight_frac_bits: 2,
            scheme: FragmentScheme::signed_bit_fields(&[2, 2]),
        };
        let mut g = LayerGraph::transformer(4, 4, 8, 3, cfg).expect("valid transformer");
        // Point the first projection at a slot that does not exist yet.
        g.ops[0] = LayerOp::Linear { out_dim: 16, in_dim: 16, src: 9 };
        assert_eq!(g.validate(), Err(GraphError::Invalid("op source refers to a later tape slot")));
    }

    #[test]
    fn describe_distinguishes_topologies() {
        let a = LayerGraph::mlp(&[12, 8, 4], config());
        let b = LayerGraph::mlp(&[12, 6, 4], config());
        assert_ne!(a.describe(), b.describe());
    }
}
