//! Layer-graph descriptor: the topology-neutral IR behind secure inference.
//!
//! Both served topologies — the paper's fully-connected stack
//! ([`QuantizedNetwork`]) and the CNN
//! extension ([`QuantizedCnn`]) — lower to the
//! same sequence of typed ops: linear layers ([`LayerOp::Dense`],
//! [`LayerOp::Conv`] via the im2col rewrite), re-sharing non-linearities
//! ([`LayerOp::Relu`], [`LayerOp::MaxPool`]) and one terminal
//! [`LayerOp::Output`]. The descriptor carries dimensions only — never
//! weights — so it is safe to derive on the client side from a public model
//! description and to feed into handshake/bundle digests.
//!
//! The secure planner and executor over this IR live in
//! `abnn2-core::graph`; this module owns only the shape.

use crate::conv::{conv_out_dims, ConvShape, QuantizedCnn};
use crate::quant::{QuantConfig, QuantizedNetwork};

/// One typed node of the inference pipeline. Ops form a straight-line
/// sequence; each consumes the previous op's output (`in_len` elements per
/// sample) and produces `out_len` elements per sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayerOp {
    /// Fully-connected layer `W·x + b`, `out_dim × in_dim`.
    Dense {
        /// Output rows.
        out_dim: usize,
        /// Input rows.
        in_dim: usize,
    },
    /// Convolution lowered to a matrix product through im2col: weights are
    /// `out_channels × (channels·kh·kw)`, the input column matrix has one
    /// column per output position.
    Conv {
        /// Filter count.
        out_channels: usize,
        /// Input feature-map shape.
        in_shape: ConvShape,
        /// Kernel height.
        kh: usize,
        /// Kernel width.
        kw: usize,
        /// Stride.
        stride: usize,
    },
    /// Truncate by the weight fraction bits, then ReLU; re-shares its
    /// output under a fresh client mask.
    Relu {
        /// Elements per sample.
        dim: usize,
    },
    /// Non-overlapping `window × window` max-pool over a CHW map;
    /// re-shares each window maximum under a fresh client mask.
    MaxPool {
        /// Input feature-map shape.
        shape: ConvShape,
        /// Pooling window.
        window: usize,
    },
    /// Terminal op: the server opens its share of the final linear layer
    /// toward the client. Executors terminate here by construction.
    Output {
        /// Elements per sample.
        dim: usize,
    },
}

impl LayerOp {
    /// Elements consumed per sample.
    #[must_use]
    pub fn in_len(&self) -> usize {
        match *self {
            LayerOp::Dense { in_dim, .. } => in_dim,
            LayerOp::Conv { in_shape, .. } => in_shape.len(),
            LayerOp::Relu { dim } | LayerOp::Output { dim } => dim,
            LayerOp::MaxPool { shape, .. } => shape.len(),
        }
    }

    /// Elements produced per sample.
    #[must_use]
    pub fn out_len(&self) -> usize {
        match *self {
            LayerOp::Dense { out_dim, .. } => out_dim,
            LayerOp::Conv { out_channels, in_shape, kh, kw, stride } => {
                let (oh, ow) = conv_out_dims(in_shape, kh, kw, stride);
                out_channels * oh * ow
            }
            LayerOp::Relu { dim } | LayerOp::Output { dim } => dim,
            LayerOp::MaxPool { shape, window } => ConvShape {
                channels: shape.channels,
                height: shape.height / window,
                width: shape.width / window,
            }
            .len(),
        }
    }

    /// Whether this op consumes an offline dot-product triplet.
    #[must_use]
    pub fn is_linear(&self) -> bool {
        matches!(self, LayerOp::Dense { .. } | LayerOp::Conv { .. })
    }

    /// Whether this op re-shares its output under a fresh client mask.
    #[must_use]
    pub fn is_reshare(&self) -> bool {
        matches!(self, LayerOp::Relu { .. } | LayerOp::MaxPool { .. })
    }

    /// Whether this op is tied to a spatial (CHW) layout and therefore to
    /// single-sample execution.
    #[must_use]
    pub fn is_spatial(&self) -> bool {
        matches!(self, LayerOp::Conv { .. } | LayerOp::MaxPool { .. })
    }

    /// Short kind tag used in per-op instrumentation phase labels.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            LayerOp::Dense { .. } => "dense",
            LayerOp::Conv { .. } => "conv",
            LayerOp::Relu { .. } => "relu",
            LayerOp::MaxPool { .. } => "pool",
            LayerOp::Output { .. } => "output",
        }
    }

    /// Canonical description fragment (feeds handshake/bundle digests).
    #[must_use]
    pub fn describe(&self) -> String {
        match *self {
            LayerOp::Dense { out_dim, in_dim } => format!("dense({out_dim}x{in_dim})"),
            LayerOp::Conv { out_channels, in_shape, kh, kw, stride } => format!(
                "conv({out_channels}@{kh}x{kw}/{stride}:{}x{}x{})",
                in_shape.channels, in_shape.height, in_shape.width
            ),
            LayerOp::Relu { dim } => format!("relu({dim})"),
            LayerOp::MaxPool { shape, window } => {
                format!("pool({window}:{}x{}x{})", shape.channels, shape.height, shape.width)
            }
            LayerOp::Output { dim } => format!("out({dim})"),
        }
    }
}

/// A straight-line graph of [`LayerOp`]s plus the fixed-point
/// hyper-parameters the pipeline runs under. Construct via
/// [`LayerGraph::mlp`], [`LayerGraph::cnn`], or the `From` impls on the
/// quantized model types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerGraph {
    /// Fixed-point pipeline hyper-parameters.
    pub config: QuantConfig,
    /// The op sequence, ending in [`LayerOp::Output`].
    pub ops: Vec<LayerOp>,
}

impl LayerGraph {
    /// The paper's fully-connected pipeline: `dense → relu → … → dense →
    /// output` over `dims = [in, hidden…, out]`.
    ///
    /// # Panics
    ///
    /// Panics if `dims` has fewer than two entries.
    #[must_use]
    pub fn mlp(dims: &[usize], config: QuantConfig) -> Self {
        assert!(dims.len() >= 2, "an MLP needs at least one layer");
        let mut ops = Vec::with_capacity(2 * (dims.len() - 1));
        for l in 0..dims.len() - 1 {
            ops.push(LayerOp::Dense { out_dim: dims[l + 1], in_dim: dims[l] });
            if l + 2 < dims.len() {
                ops.push(LayerOp::Relu { dim: dims[l + 1] });
            }
        }
        ops.push(LayerOp::Output { dim: *dims.last().expect("non-empty dims") });
        LayerGraph { config, ops }
    }

    /// The CNN extension: `conv → relu → maxpool → dense stack → output`.
    /// `dense_dims` includes the flattened pool output as its first entry.
    ///
    /// # Panics
    ///
    /// Panics if `dense_dims` has fewer than two entries.
    #[must_use]
    pub fn cnn(
        in_shape: ConvShape,
        out_channels: usize,
        kernel: (usize, usize, usize),
        pool_window: usize,
        dense_dims: &[usize],
        config: QuantConfig,
    ) -> Self {
        assert!(dense_dims.len() >= 2, "a CNN needs at least one dense layer");
        let (kh, kw, stride) = kernel;
        let (oh, ow) = conv_out_dims(in_shape, kh, kw, stride);
        let conv_out = ConvShape { channels: out_channels, height: oh, width: ow };
        let mut ops = vec![
            LayerOp::Conv { out_channels, in_shape, kh, kw, stride },
            LayerOp::Relu { dim: conv_out.len() },
            LayerOp::MaxPool { shape: conv_out, window: pool_window },
        ];
        for l in 0..dense_dims.len() - 1 {
            ops.push(LayerOp::Dense { out_dim: dense_dims[l + 1], in_dim: dense_dims[l] });
            if l + 2 < dense_dims.len() {
                ops.push(LayerOp::Relu { dim: dense_dims[l + 1] });
            }
        }
        ops.push(LayerOp::Output { dim: *dense_dims.last().expect("non-empty dims") });
        LayerGraph { config, ops }
    }

    /// Elements per input sample.
    #[must_use]
    pub fn input_len(&self) -> usize {
        self.ops.first().map_or(0, LayerOp::in_len)
    }

    /// Elements per output sample.
    #[must_use]
    pub fn output_len(&self) -> usize {
        self.ops.last().map_or(0, LayerOp::out_len)
    }

    /// Number of triplet-consuming (linear) ops.
    #[must_use]
    pub fn linear_count(&self) -> usize {
        self.ops.iter().filter(|op| op.is_linear()).count()
    }

    /// Number of client masks the pipeline consumes: one for the input
    /// blinding plus one per re-sharing op.
    #[must_use]
    pub fn mask_count(&self) -> usize {
        1 + self.ops.iter().filter(|op| op.is_reshare()).count()
    }

    /// Whether the graph contains spatially-laid-out ops (conv/max-pool),
    /// which pin execution to batch size 1.
    #[must_use]
    pub fn has_spatial_ops(&self) -> bool {
        self.ops.iter().any(LayerOp::is_spatial)
    }

    /// Checks structural well-formedness: non-empty, every op's input
    /// length matches its predecessor's output length, exactly one
    /// [`LayerOp::Output`] and it comes last.
    ///
    /// # Errors
    ///
    /// Returns a static description of the first violation.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.ops.is_empty() {
            return Err("graph has no ops");
        }
        for (i, op) in self.ops.iter().enumerate() {
            let terminal = matches!(op, LayerOp::Output { .. });
            if terminal != (i == self.ops.len() - 1) {
                return Err("output op must be exactly the last op");
            }
            if i > 0 && self.ops[i - 1].out_len() != op.in_len() {
                return Err("op input length does not match predecessor output");
            }
            if let LayerOp::MaxPool { shape, window } = *op {
                if window == 0 || shape.height % window != 0 || shape.width % window != 0 {
                    return Err("pool window must evenly divide the map");
                }
            }
        }
        Ok(())
    }

    /// Canonical architecture string (op descriptions joined with `>`);
    /// the digest input shared by the handshake and bundle keys.
    #[must_use]
    pub fn describe(&self) -> String {
        self.ops.iter().map(LayerOp::describe).collect::<Vec<_>>().join(">")
    }
}

impl From<&QuantizedNetwork> for LayerGraph {
    fn from(net: &QuantizedNetwork) -> Self {
        LayerGraph::mlp(&net.dims(), net.config.clone())
    }
}

impl From<&QuantizedCnn> for LayerGraph {
    fn from(net: &QuantizedCnn) -> Self {
        let mut dense_dims = vec![net.dense[0].in_dim];
        dense_dims.extend(net.dense.iter().map(|l| l.out_dim));
        LayerGraph::cnn(
            net.conv.in_shape,
            net.conv.out_channels,
            (net.conv.kh, net.conv.kw, net.conv.stride),
            net.pool_window,
            &dense_dims,
            net.config.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_math::{FragmentScheme, Ring};

    fn config() -> QuantConfig {
        QuantConfig {
            ring: Ring::new(32),
            frac_bits: 8,
            weight_frac_bits: 2,
            scheme: FragmentScheme::signed_bit_fields(&[2, 2]),
        }
    }

    #[test]
    fn mlp_graph_shape() {
        let g = LayerGraph::mlp(&[12, 8, 6, 4], config());
        assert_eq!(g.ops.len(), 6); // 3 dense + 2 relu + output
        assert!(g.validate().is_ok());
        assert_eq!(g.input_len(), 12);
        assert_eq!(g.output_len(), 4);
        assert_eq!(g.linear_count(), 3);
        assert_eq!(g.mask_count(), 3);
        assert!(!g.has_spatial_ops());
        assert_eq!(g.describe(), "dense(8x12)>relu(8)>dense(6x8)>relu(6)>dense(4x6)>out(4)");
    }

    #[test]
    fn cnn_graph_shape() {
        let in_shape = ConvShape { channels: 1, height: 8, width: 8 };
        let g = LayerGraph::cnn(in_shape, 2, (3, 3, 1), 2, &[18, 6, 4], config());
        // conv, relu, pool, dense, relu, dense, output
        assert_eq!(g.ops.len(), 7);
        assert!(g.validate().is_ok());
        assert_eq!(g.input_len(), 64);
        assert_eq!(g.output_len(), 4);
        assert_eq!(g.linear_count(), 3);
        assert_eq!(g.mask_count(), 4); // input + conv-relu + pool + dense-relu
        assert!(g.has_spatial_ops());
        // conv out 2×6×6 = 72 feeds relu; pool 2 halves each spatial dim.
        assert_eq!(g.ops[1], LayerOp::Relu { dim: 72 });
        assert_eq!(g.ops[2].out_len(), 18);
    }

    #[test]
    fn mismatched_dims_fail_validation() {
        let mut g = LayerGraph::mlp(&[12, 8, 4], config());
        g.ops[1] = LayerOp::Relu { dim: 7 };
        assert!(g.validate().is_err());
        let mut g2 = LayerGraph::mlp(&[12, 8, 4], config());
        g2.ops.pop();
        assert_eq!(g2.validate(), Err("output op must be exactly the last op"));
    }

    #[test]
    fn describe_distinguishes_topologies() {
        let a = LayerGraph::mlp(&[12, 8, 4], config());
        let b = LayerGraph::mlp(&[12, 6, 4], config());
        assert_ne!(a.describe(), b.describe());
    }
}
