//! Quantized BERT-style transformer encoder (single block + classifier).
//!
//! The plaintext twin of the secure transformer pipeline: one self-attention
//! block with a single head, a GELU feed-forward block, per-token LayerNorm
//! with residuals, and a classifier head over the flattened sequence.
//! [`QuantizedTransformer::forward_exact`] is a generic tape interpreter
//! over the [`LayerGraph`] op list, evaluating every op with the
//! `abnn2_math::fixedops` reference operators — the same bit-level
//! algorithms the garbled circuits implement — so secure inference must
//! reproduce its output share-for-share, exactly as with
//! [`crate::QuantizedNetwork`].
//!
//! Weight layout: the projections `Wq/Wk/Wv/Wo` and the feed-forward
//! `W1/W2` are *per-token* matrices applied independently to each of the
//! `seq` tokens; the graph's `Linear` ops see their block-diagonal
//! expansion over the flattened `seq·d` activation vector
//! ([`QuantizedTransformer::linear_params`]). The head `Wh` reads the whole
//! flattened sequence.

use crate::graph::{GraphError, LayerGraph, LayerOp};
use crate::quant::{QuantConfig, QuantizedDense};
use abnn2_math::fixedops;
use rand::Rng;

/// A quantized single-block transformer encoder with classifier head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizedTransformer {
    /// Pipeline hyper-parameters.
    pub config: QuantConfig,
    /// Sequence length (tokens).
    pub seq: usize,
    /// Model width per token (power of two).
    pub d: usize,
    /// Feed-forward hidden width per token.
    pub d_ff: usize,
    /// Classifier output classes.
    pub n_classes: usize,
    /// Per-token Q/K/V/O projections (`d × d` each).
    pub wq: QuantizedDense,
    /// Key projection.
    pub wk: QuantizedDense,
    /// Value projection.
    pub wv: QuantizedDense,
    /// Attention output projection.
    pub wo: QuantizedDense,
    /// Feed-forward up projection (`d_ff × d`).
    pub w1: QuantizedDense,
    /// Feed-forward down projection (`d × d_ff`).
    pub w2: QuantizedDense,
    /// Classifier head (`n_classes × seq·d`).
    pub wh: QuantizedDense,
    graph: LayerGraph,
}

/// Expands a per-token `m × n` layer to its block-diagonal `seq·m × seq·n`
/// form over the flattened sequence, repeating the bias per token.
fn expand_block_diag(per_tok: &QuantizedDense, seq: usize) -> QuantizedDense {
    let (m, n) = (per_tok.out_dim, per_tok.in_dim);
    let mut weights = vec![0i64; (seq * m) * (seq * n)];
    let mut bias = Vec::with_capacity(seq * m);
    for t in 0..seq {
        for i in 0..m {
            let row = t * m + i;
            weights[row * seq * n + t * n..row * seq * n + (t + 1) * n]
                .copy_from_slice(per_tok.row(i));
        }
        bias.extend_from_slice(&per_tok.bias);
    }
    QuantizedDense { out_dim: seq * m, in_dim: seq * n, weights, bias }
}

impl QuantizedTransformer {
    /// Samples a random model: weights uniform in the scheme domain,
    /// per-token biases small values at `f + f_w` fractional bits.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] for degenerate dimensions (see
    /// [`LayerGraph::transformer`]).
    pub fn random<R: Rng>(
        seq: usize,
        d: usize,
        d_ff: usize,
        n_classes: usize,
        config: QuantConfig,
        rng: &mut R,
    ) -> Result<Self, GraphError> {
        let graph = LayerGraph::transformer(seq, d, d_ff, n_classes, config.clone())?;
        let (lo, hi) = config.scheme.weight_range();
        let bcodec = config.output_codec();
        let mut dense = |out_dim: usize, in_dim: usize| QuantizedDense {
            out_dim,
            in_dim,
            weights: (0..out_dim * in_dim)
                .map(|_| config.scheme.clamp(rng.gen_range(lo..=hi)))
                .collect(),
            bias: (0..out_dim).map(|_| bcodec.encode(rng.gen_range(-0.25..0.25))).collect(),
        };
        let (wq, wk, wv, wo) = (dense(d, d), dense(d, d), dense(d, d), dense(d, d));
        let (w1, w2) = (dense(d_ff, d), dense(d, d_ff));
        let wh = dense(n_classes, seq * d);
        Ok(QuantizedTransformer {
            config,
            seq,
            d,
            d_ff,
            n_classes,
            wq,
            wk,
            wv,
            wo,
            w1,
            w2,
            wh,
            graph,
        })
    }

    /// The validated layer graph this model lowers to.
    #[must_use]
    pub fn graph(&self) -> &LayerGraph {
        &self.graph
    }

    /// The expanded weight matrix for the `li`-th `Linear` op of the graph
    /// (order: Wq, Wk, Wv, Wo, W1, W2, head). Per-token matrices come back
    /// block-diagonally expanded over the sequence; the head is returned
    /// as-is.
    ///
    /// # Panics
    ///
    /// Panics if `li >= 7`.
    #[must_use]
    pub fn linear_params(&self, li: usize) -> QuantizedDense {
        match li {
            0 => expand_block_diag(&self.wq, self.seq),
            1 => expand_block_diag(&self.wk, self.seq),
            2 => expand_block_diag(&self.wv, self.seq),
            3 => expand_block_diag(&self.wo, self.seq),
            4 => expand_block_diag(&self.w1, self.seq),
            5 => expand_block_diag(&self.w2, self.seq),
            6 => self.wh.clone(),
            _ => panic!("transformer has 7 linear ops, asked for {li}"),
        }
    }

    /// Total number of weights across the expanded linear ops (OT-count
    /// driver, mirroring [`crate::QuantizedNetwork::weight_count`]).
    #[must_use]
    pub fn weight_count(&self) -> usize {
        (0..7).map(|li| self.linear_params(li).weights.len()).sum()
    }

    /// The bit-exact fixed-point forward pass: a tape interpreter over the
    /// graph, one `fixedops` reference evaluation per op. Input:
    /// `seq·d` activations at `f` fractional bits; output: head
    /// accumulators at `f + f_w` fractional bits.
    ///
    /// # Panics
    ///
    /// Panics if the input length mismatches `seq·d`.
    #[must_use]
    pub fn forward_exact(&self, x_fp: &[u64]) -> Vec<u64> {
        assert_eq!(x_fp.len(), self.seq * self.d, "input length mismatch");
        let ring = self.config.ring;
        let f = self.config.frac_bits;
        let mut tape: Vec<Vec<u64>> = vec![x_fp.to_vec()];
        let mut li = 0usize;
        for (i, op) in self.graph.ops.iter().enumerate() {
            let out = match *op {
                LayerOp::Linear { src, .. } => {
                    let layer = self.linear_params(li);
                    li += 1;
                    layer.forward_ring(&tape[src], ring)
                }
                LayerOp::MatMulSS { m, k, n, transpose_b, shift, a_src, b_src } => {
                    let (a, b) = (&tape[a_src], &tape[b_src]);
                    let mut out = Vec::with_capacity(m * n);
                    for r in 0..m {
                        for c in 0..n {
                            let mut acc = 0u64;
                            for t in 0..k {
                                let bv = if transpose_b { b[c * k + t] } else { b[t * n + c] };
                                acc = acc.wrapping_add(a[r * k + t].wrapping_mul(bv));
                            }
                            out.push(fixedops::sar(&ring, ring.reduce(acc), shift));
                        }
                    }
                    out
                }
                LayerOp::Softmax { rows, cols, shift } => {
                    let src = &tape[i];
                    let mut out = Vec::with_capacity(rows * cols);
                    for r in 0..rows {
                        let row: Vec<u64> = src[r * cols..(r + 1) * cols]
                            .iter()
                            .map(|&v| fixedops::sar(&ring, v, shift))
                            .collect();
                        out.extend(fixedops::softmax_row(&ring, f, &row));
                    }
                    out
                }
                LayerOp::Gelu { shift, .. } => tape[i]
                    .iter()
                    .map(|&v| fixedops::gelu(&ring, f, fixedops::sar(&ring, v, shift)))
                    .collect(),
                LayerOp::LayerNorm { tokens, dim, a_src, b_src, shift_a, shift_b } => {
                    let (a, b) = (&tape[a_src], &tape[b_src]);
                    let mut out = Vec::with_capacity(tokens * dim);
                    for t in 0..tokens {
                        out.extend(fixedops::layernorm_token(
                            &ring,
                            f,
                            &a[t * dim..(t + 1) * dim],
                            &b[t * dim..(t + 1) * dim],
                            shift_a,
                            shift_b,
                        ));
                    }
                    out
                }
                LayerOp::Output { .. } => tape[i].clone(),
                ref other => unreachable!("transformer graphs do not emit {}", other.kind()),
            };
            tape.push(out);
        }
        tape.pop().unwrap_or_default()
    }

    /// Float-in/float-out convenience around [`Self::forward_exact`].
    #[must_use]
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let in_codec = self.config.activation_codec();
        let out_codec = self.config.output_codec();
        out_codec.decode_vec(&self.forward_exact(&in_codec.encode_vec(x)))
    }
}

impl From<&QuantizedTransformer> for LayerGraph {
    fn from(t: &QuantizedTransformer) -> Self {
        t.graph.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_math::{FragmentScheme, Ring};
    use rand::{rngs::StdRng, SeedableRng};

    fn config() -> QuantConfig {
        QuantConfig {
            ring: Ring::new(16),
            frac_bits: 6,
            weight_frac_bits: 2,
            scheme: FragmentScheme::signed_bit_fields(&[2, 2]),
        }
    }

    fn tiny(seed: u64) -> QuantizedTransformer {
        let mut rng = StdRng::seed_from_u64(seed);
        QuantizedTransformer::random(4, 4, 8, 3, config(), &mut rng).expect("valid dims")
    }

    #[test]
    fn graph_matches_constructor() {
        let t = tiny(1);
        let g = LayerGraph::transformer(4, 4, 8, 3, config()).expect("valid dims");
        assert_eq!(LayerGraph::from(&t), g);
        assert_eq!(t.graph().linear_count(), 7);
    }

    #[test]
    fn block_diag_expansion_shapes_and_content() {
        let t = tiny(2);
        let wq = t.linear_params(0);
        assert_eq!((wq.out_dim, wq.in_dim), (16, 16));
        // Row 0 holds wq row 0 in cols 0..4, zeros elsewhere; token 1's
        // block starts at (4, 4).
        assert_eq!(&wq.row(0)[..4], t.wq.row(0));
        assert!(wq.row(0)[4..].iter().all(|&w| w == 0));
        assert_eq!(&wq.row(4)[4..8], t.wq.row(0));
        assert_eq!(wq.bias[4], t.wq.bias[0]);
        let head = t.linear_params(6);
        assert_eq!((head.out_dim, head.in_dim), (3, 16));
    }

    #[test]
    fn forward_exact_is_deterministic_and_wrapped() {
        let t = tiny(3);
        let mut rng = StdRng::seed_from_u64(7);
        let codec = t.config.activation_codec();
        let x: Vec<u64> = (0..16).map(|_| codec.encode(rng.gen_range(-1.0..1.0))).collect();
        let a = t.forward_exact(&x);
        let b = t.forward_exact(&x);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|&v| v <= t.config.ring.mask()));
    }

    #[test]
    fn weights_stay_in_scheme_domain() {
        let t = tiny(4);
        let (lo, hi) = t.config.scheme.weight_range();
        for li in 0..7 {
            let l = t.linear_params(li);
            assert!(l.weights.iter().all(|&w| (lo..=hi).contains(&w)));
        }
        // 4 block-diag d×d projections, W1 (32×16), W2 (16×32), head (3×16).
        assert_eq!(t.weight_count(), 4 * 16 * 16 + 32 * 16 + 16 * 32 + 3 * 16);
    }

    #[test]
    fn eta_sweep_runs_end_to_end() {
        for eta in [2u32, 3, 4, 8] {
            let cfg = QuantConfig {
                ring: Ring::new(16),
                frac_bits: 6,
                weight_frac_bits: 2,
                scheme: FragmentScheme::optimal(eta),
            };
            let mut rng = StdRng::seed_from_u64(9);
            let t = QuantizedTransformer::random(4, 4, 8, 3, cfg, &mut rng).expect("valid");
            let logits = t.forward(&vec![0.25; 16]);
            assert_eq!(logits.len(), 3);
        }
    }
}
