//! Plaintext quantized neural networks for the ABNN² reproduction.
//!
//! The secure protocols in `abnn2-core` evaluate exactly the fixed-point
//! pipeline defined here, so this crate is both the workload generator and
//! the correctness oracle:
//!
//! * [`data`] — a synthetic MNIST-like dataset (the real MNIST files are not
//!   available in this environment; see `DESIGN.md` §2 for the substitution
//!   rationale — the protocols are data-oblivious, so costs depend only on
//!   layer shapes),
//! * [`model`] — float networks, SGD training, and
//!   [`model::paper_network_dims`] (the Fig-4 architecture
//!   784 → 128 → 128 → 10),
//! * [`quant`] — arbitrary-bitwidth post-training quantization onto a
//!   [`abnn2_math::FragmentScheme`], plus the bit-exact fixed-point forward
//!   pass ([`quant::QuantizedNetwork::forward_exact`]) that secure inference
//!   must reproduce share-for-share,
//! * [`conv`] — the CNN extension: im2col convolution, max-pooling and
//!   [`conv::QuantizedCnn`] (its secure counterpart is `abnn2_core::cnn`),
//! * [`transformer`] — the transformer extension: a quantized single-block
//!   BERT-style encoder ([`transformer::QuantizedTransformer`]) whose
//!   forward pass interprets the layer graph with the
//!   `abnn2_math::fixedops` reference operators,
//! * [`graph`] — the topology-neutral [`graph::LayerGraph`] IR all model
//!   kinds lower to; the secure planner/executor over it lives in
//!   `abnn2_core::graph`.

pub mod conv;
pub mod data;
pub mod graph;
pub mod model;
pub mod quant;
pub mod transformer;

pub use conv::{ConvShape, QuantizedCnn, QuantizedConv};
pub use data::SyntheticMnist;
pub use graph::{GraphError, LayerGraph, LayerOp, OpResource};
pub use model::{Dense, Network};
pub use quant::{QuantConfig, QuantizedDense, QuantizedNetwork};
pub use transformer::QuantizedTransformer;
