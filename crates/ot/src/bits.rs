//! Packed-bit helpers and the column→row transposition used by OT extension.

/// Reads bit `i` from a packed little-endian bit buffer.
#[inline]
#[must_use]
pub fn get_bit(buf: &[u8], i: usize) -> bool {
    (buf[i / 8] >> (i % 8)) & 1 == 1
}

/// Sets bit `i` in a packed little-endian bit buffer.
#[inline]
pub fn set_bit(buf: &mut [u8], i: usize, v: bool) {
    if v {
        buf[i / 8] |= 1 << (i % 8);
    } else {
        buf[i / 8] &= !(1 << (i % 8));
    }
}

/// Packs a slice of bools into little-endian bytes.
#[must_use]
pub fn pack_bits(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

/// XORs `src` into `dst` element-wise.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xor_in_place(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

/// Transposes `k` packed bit columns of `m` bits each into `m` packed rows
/// of `k` bits (⌈k/8⌉ bytes) each.
///
/// This is the matrix transposition at the heart of IKNP-style OT extension:
/// the PRG naturally produces columns, the hash needs rows.
///
/// # Panics
///
/// Panics if any column is shorter than ⌈m/8⌉ bytes.
#[must_use]
pub fn transpose_columns(cols: &[Vec<u8>], m: usize) -> Vec<Vec<u8>> {
    let k = cols.len();
    let row_bytes = k.div_ceil(8);
    let col_bytes = m.div_ceil(8);
    for (i, c) in cols.iter().enumerate() {
        assert!(c.len() >= col_bytes, "column {i} too short: {} < {col_bytes}", c.len());
    }
    let mut rows = vec![vec![0u8; row_bytes]; m];
    for (i, col) in cols.iter().enumerate() {
        let (byte_i, mask_i) = (i / 8, 1u8 << (i % 8));
        for (j, row) in rows.iter_mut().enumerate() {
            if (col[j / 8] >> (j % 8)) & 1 == 1 {
                row[byte_i] |= mask_i;
            }
        }
    }
    rows
}

/// [`transpose_columns`] with the output rows sharded across `threads`
/// scoped workers.
///
/// Each worker owns a contiguous row range and reads all columns, so the
/// result is byte-identical to the sequential transpose for any thread
/// count — this is the local-compute half of the parallel offline
/// schedule; nothing about the wire transcript can change. Small matrices
/// stay on the calling thread.
///
/// # Panics
///
/// Panics if any column is shorter than ⌈m/8⌉ bytes.
#[must_use]
pub fn transpose_columns_par(cols: &[Vec<u8>], m: usize, threads: usize) -> Vec<Vec<u8>> {
    /// Below this many rows the spawn/join overhead dominates the work.
    const MIN_PAR_ROWS: usize = 512;
    if threads <= 1 || m < MIN_PAR_ROWS {
        return transpose_columns(cols, m);
    }
    let k = cols.len();
    let row_bytes = k.div_ceil(8);
    let col_bytes = m.div_ceil(8);
    for (i, c) in cols.iter().enumerate() {
        assert!(c.len() >= col_bytes, "column {i} too short: {} < {col_bytes}", c.len());
    }
    let mut rows = vec![vec![0u8; row_bytes]; m];
    let shard = m.div_ceil(threads);
    std::thread::scope(|scope| {
        for (w, chunk) in rows.chunks_mut(shard).enumerate() {
            let start = w * shard;
            scope.spawn(move || {
                for (i, col) in cols.iter().enumerate() {
                    let (byte_i, mask_i) = (i / 8, 1u8 << (i % 8));
                    for (jj, row) in chunk.iter_mut().enumerate() {
                        let j = start + jj;
                        if (col[j / 8] >> (j % 8)) & 1 == 1 {
                            row[byte_i] |= mask_i;
                        }
                    }
                }
            });
        }
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bit_round_trip() {
        let mut buf = vec![0u8; 4];
        set_bit(&mut buf, 0, true);
        set_bit(&mut buf, 9, true);
        set_bit(&mut buf, 31, true);
        assert!(get_bit(&buf, 0));
        assert!(get_bit(&buf, 9));
        assert!(get_bit(&buf, 31));
        assert!(!get_bit(&buf, 1));
        set_bit(&mut buf, 9, false);
        assert!(!get_bit(&buf, 9));
    }

    #[test]
    fn pack_matches_get() {
        let bits = [true, false, true, true, false, false, false, true, true];
        let packed = pack_bits(&bits);
        assert_eq!(packed.len(), 2);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(get_bit(&packed, i), b);
        }
    }

    #[test]
    fn xor_is_involutive() {
        let mut a = vec![1u8, 2, 3];
        let b = vec![7u8, 7, 7];
        xor_in_place(&mut a, &b);
        xor_in_place(&mut a, &b);
        assert_eq!(a, vec![1, 2, 3]);
    }

    #[test]
    fn parallel_transpose_is_byte_identical() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        // Above and below the parallel threshold, ragged thread splits.
        for m in [13usize, 511, 512, 700, 2048, 2049] {
            let cols: Vec<Vec<u8>> =
                (0..128).map(|_| (0..m.div_ceil(8)).map(|_| rng.gen()).collect()).collect();
            let want = transpose_columns(&cols, m);
            for threads in [1, 2, 3, 4, 7] {
                assert_eq!(transpose_columns_par(&cols, m, threads), want, "m={m} t={threads}");
            }
        }
    }

    proptest! {
        #[test]
        fn transpose_is_correct(m in 1usize..70, k_bytes in 1usize..5, seed: u64) {
            use rand::{Rng, SeedableRng};
            let k = k_bytes * 8;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let cols: Vec<Vec<u8>> = (0..k).map(|_| {
                (0..m.div_ceil(8)).map(|_| rng.gen()).collect()
            }).collect();
            let rows = transpose_columns(&cols, m);
            prop_assert_eq!(rows.len(), m);
            for i in 0..k {
                for j in 0..m {
                    prop_assert_eq!(get_bit(&rows[j], i), get_bit(&cols[i], j));
                }
            }
        }
    }
}
