//! Oblivious-transfer stack for the ABNN² reproduction.
//!
//! Three layers, mirroring what the paper gets from the ABY framework:
//!
//! 1. [`base`] — Chou–Orlandi "simplest OT" over our from-scratch Edwards
//!    curve; used only to seed the extensions (κ or 2κ instances).
//! 2. [`iknp`] — the classic IKNP 1-out-of-2 OT extension with chosen,
//!    correlated, and random message variants. Used by the garbled-circuit
//!    evaluator-input transfer and by the SecureML baseline.
//! 3. [`kk13`] — the Kolesnikov–Kumaresan 1-out-of-N OT extension
//!    \[KK13\], instantiated with the 256-bit Walsh–Hadamard code (distance
//!    κ = 128 for any N ≤ 256). This is the workhorse of ABNN²'s quantized
//!    matrix multiplication: the model holder plays the *chooser* with its
//!    weight fragment as the choice symbol.
//!
//! Party naming follows the OT literature: the **sender** holds the N
//! messages, the **chooser** (receiver) learns exactly one. Note the role
//! reversal in ABNN² itself: the *client* is the OT sender and the *server*
//! (model holder) is the chooser.

pub mod base;
pub mod bits;
pub mod error;
pub mod frames;
pub mod iknp;
pub mod kk13;

pub use error::OtError;
pub use iknp::{IknpReceiver, IknpSender};
pub use kk13::{KkChooser, KkSender};

/// Computational security parameter κ (bits).
pub const KAPPA: usize = 128;
