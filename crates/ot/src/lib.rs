//! Oblivious-transfer stack for the ABNN² reproduction.
//!
//! Three layers, mirroring what the paper gets from the ABY framework:
//!
//! 1. [`base`] — Chou–Orlandi "simplest OT" over our from-scratch Edwards
//!    curve; used only to seed the extensions (κ or 2κ instances).
//! 2. [`iknp`] — the classic IKNP 1-out-of-2 OT extension with chosen,
//!    correlated, and random message variants. Used by the garbled-circuit
//!    evaluator-input transfer and by the SecureML baseline.
//! 3. [`kk13`] — the Kolesnikov–Kumaresan 1-out-of-N OT extension
//!    \[KK13\], instantiated with the 256-bit Walsh–Hadamard code (distance
//!    κ = 128 for any N ≤ 256). This is the workhorse of ABNN²'s quantized
//!    matrix multiplication: the model holder plays the *chooser* with its
//!    weight fragment as the choice symbol.
//!
//! Party naming follows the OT literature: the **sender** holds the N
//! messages, the **chooser** (receiver) learns exactly one. Note the role
//! reversal in ABNN² itself: the *client* is the OT sender and the *server*
//! (model holder) is the chooser.
//!
//! A fourth layer, [`silent`], removes the per-OT wire cost entirely: an
//! LPN-based pseudorandom correlation generator (Ferret-style SPCOT/MPCOT
//! trees plus primal-LPN expansion) stretches one small seed exchange into
//! thousands of random COTs, and a derandomization adapter turns those into
//! the same chosen-input fragment OTs KK13 produces. The [`fragment`]
//! enums dispatch the triplet protocol over whichever backend the session
//! negotiated.

pub mod base;
pub mod bits;
pub mod error;
pub mod fragment;
pub mod frames;
pub mod iknp;
pub mod kk13;
pub mod silent;

pub use error::OtError;
pub use fragment::{
    FragmentChooser, FragmentChooserKeys, FragmentSender, FragmentSenderKeys, OfflineMode,
};
pub use iknp::{IknpReceiver, IknpSender};
pub use kk13::{KkChooser, KkSender};
pub use silent::{LpnParams, SilentCotReceiver, SilentCotSender, SilentKkChooser, SilentKkSender};

/// Computational security parameter κ (bits).
pub const KAPPA: usize = 128;
