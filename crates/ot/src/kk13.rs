//! KK13 1-out-of-N OT extension (Kolesnikov–Kumaresan, CRYPTO 2013).
//!
//! The generalization of IKNP that ABNN² builds on: the receiver's choice is
//! a *symbol* `w ∈ [N]` rather than a bit, encoded with a binary code of
//! minimum distance κ. We use the 256-bit Walsh–Hadamard code (codeword
//! `c(w)ᵢ = ⟨w, i⟩ mod 2`), whose pairwise distance is exactly 128 for any
//! two distinct symbols below 256 — so a single instantiation covers every
//! radix the paper uses (N ≤ 16) with the `2κ` column cost that appears in
//! Table 1.
//!
//! The API hands out *key handles* instead of performing message transfer:
//! ABNN²'s matrix-multiplication protocol needs direct access to the per-
//! symbol masks to implement the one-batch "N−1 messages" optimization
//! (§4.1.3), where the mask for symbol 0 is itself the sender's share.

use crate::bits::{get_bit, transpose_columns_par, xor_in_place};
use crate::frames::KkColumns;
use crate::iknp::PAR_MIN_OTS;
use crate::{base, OtError};
use abnn2_crypto::{Block, Prg, RoHash};
use abnn2_net::Transport;
use rand::Rng;

/// Code length 2κ = 256: the column count of the extension matrix.
pub const CODE_LEN: usize = 256;

/// Maximum supported radix (limited by the Walsh–Hadamard code length).
pub const MAX_N: u64 = 256;

/// The Walsh–Hadamard codeword of symbol `v`: bit `i` is `parity(v & i)`.
///
/// # Panics
///
/// Panics if `v >= 256`.
#[must_use]
pub fn codeword(v: u64) -> [u8; 32] {
    assert!(v < MAX_N, "symbol {v} exceeds the WH code domain");
    let mut out = [0u8; 32];
    for i in 0..CODE_LEN {
        if ((v & i as u64).count_ones() & 1) == 1 {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

/// OT-extension **sender**: after `extend`, can derive the mask for *every*
/// symbol of every OT. In ABNN² this is the client (data owner).
pub struct KkSender {
    s: [u8; 32],
    prgs: Vec<Prg>,
    tweak: u64,
    threads: usize,
}

impl std::fmt::Debug for KkSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KkSender").field("tweak", &self.tweak).finish()
    }
}

/// OT-extension **chooser**: learns only the mask of its chosen symbol per
/// OT. In ABNN² this is the server (model owner) choosing weight fragments.
#[derive(Clone)]
pub struct KkChooser {
    prg_pairs: Vec<(Prg, Prg)>,
    tweak: u64,
    threads: usize,
}

impl std::fmt::Debug for KkChooser {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KkChooser").field("tweak", &self.tweak).finish()
    }
}

/// Key material the sender obtains from one `extend` call.
#[derive(Debug)]
pub struct KkSenderKeys {
    rows: Vec<[u8; 32]>,
    s: [u8; 32],
    base_tweak: u64,
    hash: RoHash,
}

/// Key material the chooser obtains from one `extend` call.
#[derive(Debug)]
pub struct KkChooserKeys {
    rows: Vec<[u8; 32]>,
    base_tweak: u64,
    hash: RoHash,
}

impl KkSender {
    /// One-time setup: 2κ base OTs with this party as base-OT chooser
    /// holding the correlation secret `s`.
    ///
    /// # Errors
    ///
    /// Propagates base-OT failures.
    pub fn setup<T: Transport, R: Rng + ?Sized>(ch: &mut T, rng: &mut R) -> Result<Self, OtError> {
        let s_bits: Vec<bool> = (0..CODE_LEN).map(|_| rng.gen()).collect();
        let seeds = base::recv(ch, &s_bits, rng)?;
        let mut s = [0u8; 32];
        for (i, &b) in s_bits.iter().enumerate() {
            if b {
                s[i / 8] |= 1 << (i % 8);
            }
        }
        Ok(KkSender {
            s,
            prgs: seeds.into_iter().map(Prg::from_seed).collect(),
            tweak: 0,
            threads: 1,
        })
    }

    /// Sets the worker-thread count for column expansion and transposes.
    /// Local compute only: the transcript is byte-identical for any value.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Extends to `m` fresh 1-out-of-N OTs (any N ≤ 256 at mask time),
    /// consuming the chooser's column message.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnection or malformed chooser messages.
    pub fn extend<T: Transport>(&mut self, ch: &mut T, m: usize) -> Result<KkSenderKeys, OtError> {
        let col_bytes = m.div_ceil(8);
        let KkColumns(u) = ch.recv_frame()?;
        if u.len() != CODE_LEN * col_bytes {
            return Err(OtError::Malformed("KK13 column batch has wrong length"));
        }
        let threads = if m < PAR_MIN_OTS { 1 } else { self.threads };
        let mut cols: Vec<Vec<u8>> = vec![Vec::new(); CODE_LEN];
        if threads <= 1 {
            for (i, (prg, out)) in self.prgs.iter_mut().zip(cols.iter_mut()).enumerate() {
                let mut col = prg.bytes(col_bytes);
                if get_bit(&self.s, i) {
                    xor_in_place(&mut col, &u[i * col_bytes..(i + 1) * col_bytes]);
                }
                *out = col;
            }
        } else {
            // Contiguous column shards per worker: identical output to the
            // sequential loop, so the derived keys (and hence any masked
            // traffic) cannot change.
            let shard = CODE_LEN.div_ceil(threads);
            let s = &self.s;
            std::thread::scope(|scope| {
                for (w, (prgs, (outs, us))) in self
                    .prgs
                    .chunks_mut(shard)
                    .zip(cols.chunks_mut(shard).zip(u.chunks(shard * col_bytes)))
                    .enumerate()
                {
                    let start = w * shard;
                    scope.spawn(move || {
                        for (k, ((prg, out), ui)) in prgs
                            .iter_mut()
                            .zip(outs.iter_mut())
                            .zip(us.chunks(col_bytes))
                            .enumerate()
                        {
                            let mut col = prg.bytes(col_bytes);
                            if get_bit(s, start + k) {
                                xor_in_place(&mut col, ui);
                            }
                            *out = col;
                        }
                    });
                }
            });
        }
        let rows = transpose_columns_par(&cols, m, threads)
            .into_iter()
            .map(|r| {
                let arr: [u8; 32] = r.try_into().expect("32-byte row");
                arr
            })
            .collect();
        let base_tweak = self.tweak;
        self.tweak += m as u64;
        Ok(KkSenderKeys { rows, s: self.s, base_tweak, hash: RoHash::new() })
    }
}

impl KkSenderKeys {
    /// Number of OTs in this batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the batch is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The `len`-byte mask of symbol `v` in OT `j` — XOR a plaintext with
    /// this before sending; only a chooser that picked `v` can remove it.
    ///
    /// # Panics
    ///
    /// Panics if `j` or `v` is out of range.
    #[must_use]
    pub fn mask(&self, j: usize, v: u64, len: usize) -> Vec<u8> {
        // Sender key for symbol v: H(j, q_j ⊕ (c(v) ∧ s)). For the chooser's
        // actual symbol this cancels to its t0 row.
        let mut row = self.rows[j];
        let cw = codeword(v);
        for (i, r) in row.iter_mut().enumerate() {
            *r ^= cw[i] & self.s[i];
        }
        self.hash.hash_expand((self.base_tweak + j as u64) as u128, &row, len)
    }
}

impl KkChooserKeys {
    /// Number of OTs in this batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the batch is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The `len`-byte mask of the symbol this chooser selected in OT `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn mask(&self, j: usize, len: usize) -> Vec<u8> {
        self.hash.hash_expand((self.base_tweak + j as u64) as u128, &self.rows[j], len)
    }
}

impl KkChooser {
    /// One-time setup: 2κ base OTs with this party as base-OT sender holding
    /// random seed pairs.
    ///
    /// # Errors
    ///
    /// Propagates base-OT failures.
    pub fn setup<T: Transport, R: Rng + ?Sized>(ch: &mut T, rng: &mut R) -> Result<Self, OtError> {
        let seed_pairs: Vec<(Block, Block)> =
            (0..CODE_LEN).map(|_| (Block::random(rng), Block::random(rng))).collect();
        base::send(ch, &seed_pairs, rng)?;
        Ok(KkChooser {
            prg_pairs: seed_pairs
                .into_iter()
                .map(|(a, b)| (Prg::from_seed(a), Prg::from_seed(b)))
                .collect(),
            tweak: 0,
            threads: 1,
        })
    }

    /// Sets the worker-thread count for column expansion and transposes.
    /// Local compute only: the transcript is byte-identical for any value.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Extends with one choice symbol per OT; all symbols must be below `n`.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnection.
    ///
    /// # Panics
    ///
    /// Panics if any choice is ≥ `n` or `n` exceeds [`MAX_N`].
    pub fn extend<T: Transport>(
        &mut self,
        ch: &mut T,
        choices: &[u64],
        n: u64,
    ) -> Result<KkChooserKeys, OtError> {
        assert!((2..=MAX_N).contains(&n), "radix {n} out of range");
        assert!(choices.iter().all(|&c| c < n), "choice symbol out of range");
        let m = choices.len();
        let col_bytes = m.div_ceil(8);

        // D matrix: row j is codeword(w_j); build its columns directly.
        let codewords: Vec<[u8; 32]> = (0..n).map(codeword).collect();
        let threads = if m < PAR_MIN_OTS { 1 } else { self.threads };
        let mut t0_cols: Vec<Vec<u8>> = vec![Vec::new(); CODE_LEN];
        let mut u = vec![0u8; CODE_LEN * col_bytes];
        let expand_col =
            |i: usize, prg0: &mut Prg, prg1: &mut Prg, out: &mut Vec<u8>, ui: &mut [u8]| {
                let t0 = prg0.bytes(col_bytes);
                let t1 = prg1.bytes(col_bytes);
                ui.copy_from_slice(&t0);
                xor_in_place(ui, &t1);
                // XOR in column i of D.
                for (j, &w) in choices.iter().enumerate() {
                    if get_bit(&codewords[w as usize], i) {
                        ui[j / 8] ^= 1 << (j % 8);
                    }
                }
                *out = t0;
            };
        if threads <= 1 {
            for (i, ((prg0, prg1), (out, ui))) in self
                .prg_pairs
                .iter_mut()
                .zip(t0_cols.iter_mut().zip(u.chunks_exact_mut(col_bytes)))
                .enumerate()
            {
                expand_col(i, prg0, prg1, out, ui);
            }
        } else {
            // Contiguous column shards per worker: identical to the
            // sequential loop, so the wire message is byte-identical.
            let shard = CODE_LEN.div_ceil(threads);
            let expand_col = &expand_col;
            std::thread::scope(|scope| {
                for (w, (prgs, (outs, us))) in self
                    .prg_pairs
                    .chunks_mut(shard)
                    .zip(t0_cols.chunks_mut(shard).zip(u.chunks_mut(shard * col_bytes)))
                    .enumerate()
                {
                    let start = w * shard;
                    scope.spawn(move || {
                        for (k, ((prg0, prg1), (out, ui))) in prgs
                            .iter_mut()
                            .zip(outs.iter_mut().zip(us.chunks_exact_mut(col_bytes)))
                            .enumerate()
                        {
                            expand_col(start + k, prg0, prg1, out, ui);
                        }
                    });
                }
            });
        }
        ch.send_frame(&KkColumns(u))?;

        let rows = transpose_columns_par(&t0_cols, m, threads)
            .into_iter()
            .map(|r| {
                let arr: [u8; 32] = r.try_into().expect("32-byte row");
                arr
            })
            .collect();
        let base_tweak = self.tweak;
        self.tweak += m as u64;
        Ok(KkChooserKeys { rows, base_tweak, hash: RoHash::new() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_net::{run_pair, Endpoint, NetworkModel};
    use rand::SeedableRng;

    fn run_kk<A: Send, B: Send>(
        f_s: impl FnOnce(&mut KkSender, &mut Endpoint) -> A + Send,
        f_c: impl FnOnce(&mut KkChooser, &mut Endpoint) -> B + Send,
    ) -> (A, B) {
        let (a, b, _) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(11);
                let mut s = KkSender::setup(ch, &mut rng).expect("sender setup");
                f_s(&mut s, ch)
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(12);
                let mut c = KkChooser::setup(ch, &mut rng).expect("chooser setup");
                f_c(&mut c, ch)
            },
        );
        (a, b)
    }

    #[test]
    fn codeword_distance_is_kappa() {
        for v1 in 0..16u64 {
            for v2 in 0..16u64 {
                let (c1, c2) = (codeword(v1), codeword(v2));
                let dist: u32 = c1.iter().zip(&c2).map(|(a, b)| (a ^ b).count_ones()).sum();
                if v1 == v2 {
                    assert_eq!(dist, 0);
                } else {
                    assert_eq!(dist, 128, "v1={v1} v2={v2}");
                }
            }
        }
    }

    #[test]
    fn chooser_mask_matches_sender_mask_at_choice() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let n = 16u64;
        let m = 50;
        let choices: Vec<u64> = (0..m).map(|_| rng.gen_range(0..n)).collect();
        let choices2 = choices.clone();
        let (sender_keys, chooser_keys) = run_kk(
            move |s, ch| s.extend(ch, m).expect("extend"),
            move |c, ch| c.extend(ch, &choices2, n).expect("extend"),
        );
        for j in 0..m {
            let want = sender_keys.mask(j, choices[j], 24);
            assert_eq!(chooser_keys.mask(j, 24), want, "ot {j}");
            // Masks for other symbols must differ.
            for v in 0..n {
                if v != choices[j] {
                    assert_ne!(sender_keys.mask(j, v, 24), chooser_keys.mask(j, 24));
                }
            }
        }
    }

    #[test]
    fn binary_and_ternary_radix() {
        for n in [2u64, 3, 4] {
            let m = 17;
            let choices: Vec<u64> = (0..m as u64).map(|j| j % n).collect();
            let choices2 = choices.clone();
            let (sk, ck) = run_kk(
                move |s, ch| s.extend(ch, m).expect("extend"),
                move |c, ch| c.extend(ch, &choices2, n).expect("extend"),
            );
            for j in 0..m {
                assert_eq!(ck.mask(j, 8), sk.mask(j, choices[j], 8), "n={n} ot={j}");
            }
        }
    }

    #[test]
    fn sequential_extends_are_independent() {
        let (masks_s, masks_c) = run_kk(
            |s, ch| {
                let k1 = s.extend(ch, 4).expect("extend 1");
                let k2 = s.extend(ch, 4).expect("extend 2");
                (k1.mask(0, 1, 16), k2.mask(0, 1, 16))
            },
            |c, ch| {
                let k1 = c.extend(ch, &[1, 0, 1, 0], 2).expect("extend 1");
                let k2 = c.extend(ch, &[1, 1, 1, 1], 2).expect("extend 2");
                (k1.mask(0, 16), k2.mask(0, 16))
            },
        );
        assert_eq!(masks_s.0, masks_c.0);
        assert_eq!(masks_s.1, masks_c.1);
        assert_ne!(masks_s.0, masks_s.1, "tweaks must separate batches");
    }

    #[test]
    #[should_panic(expected = "choice symbol out of range")]
    fn oversized_choice_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let (mut a, _b) = Endpoint::pair(NetworkModel::instant());
        // Construct a chooser directly to test the assertion without a peer.
        let mut chooser = KkChooser {
            prg_pairs: (0..CODE_LEN)
                .map(|_| {
                    (
                        Prg::from_seed(Block::random(&mut rng)),
                        Prg::from_seed(Block::random(&mut rng)),
                    )
                })
                .collect(),
            tweak: 0,
            threads: 1,
        };
        let _ = chooser.extend(&mut a, &[4], 4);
    }

    #[test]
    fn variable_mask_lengths_are_prefix_consistent() {
        let (sk, ck) = run_kk(
            |s, ch| s.extend(ch, 1).expect("extend"),
            |c, ch| c.extend(ch, &[2], 4).expect("extend"),
        );
        let long = sk.mask(0, 2, 64);
        let short = ck.mask(0, 32);
        assert_eq!(&long[..32], &short[..]);
    }
}
