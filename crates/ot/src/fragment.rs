//! Mode-dispatched fragment OT: one API over the KK13 and silent backends.
//!
//! ABNN²'s triplet protocol only needs the key-handle contract — sender
//! derives the mask of *every* symbol, chooser derives the mask of *its*
//! symbol — so the backends are interchangeable behind these enums. Which
//! one a session uses is the negotiated [`OfflineMode`]: KK13 is the
//! portable fallback and correctness oracle, silent OT the low-bandwidth
//! default for capable peers.

use crate::kk13::{KkChooser, KkChooserKeys, KkSender, KkSenderKeys};
use crate::silent::{SilentChooserKeys, SilentKkChooser, SilentKkSender, SilentSenderKeys};
use crate::OtError;
use abnn2_net::Transport;
use rand::Rng;

/// Which OT machinery drives the offline phase — negotiated at handshake,
/// baked into bundle keys so pools never cross-serve modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OfflineMode {
    /// IKNP/KK13 extension: Θ(κ) wire bits per OT, no LPN assumption.
    #[default]
    Iknp,
    /// Silent (LPN) expansion: near-zero wire bytes per OT.
    Silent,
}

/// Fragment-OT sender dispatched over the negotiated mode (ABNN² client).
#[derive(Debug)]
pub enum FragmentSender {
    /// KK13 Walsh–Hadamard extension.
    Kk(KkSender),
    /// Silent COTs plus the derandomization adapter (boxed: the COT
    /// expander's buffers dwarf the KK13 state).
    Silent(Box<SilentKkSender>),
}

/// Fragment-OT chooser dispatched over the negotiated mode (ABNN² server).
#[derive(Debug, Clone)]
pub enum FragmentChooser {
    /// KK13 Walsh–Hadamard extension.
    Kk(KkChooser),
    /// Silent COTs plus the derandomization adapter (boxed: the COT
    /// expander's buffers dwarf the KK13 state).
    Silent(Box<SilentKkChooser>),
}

/// Sender key material from one `extend` call, either backend.
#[derive(Debug)]
pub enum FragmentSenderKeys {
    /// KK13 keys.
    Kk(KkSenderKeys),
    /// Silent keys.
    Silent(SilentSenderKeys),
}

/// Chooser key material from one `extend` call, either backend.
#[derive(Debug)]
pub enum FragmentChooserKeys {
    /// KK13 keys.
    Kk(KkChooserKeys),
    /// Silent keys.
    Silent(SilentChooserKeys),
}

impl FragmentSender {
    /// One-time setup of the selected backend.
    ///
    /// # Errors
    ///
    /// Propagates base-OT failures.
    pub fn setup<T: Transport, R: Rng + ?Sized>(
        ch: &mut T,
        mode: OfflineMode,
        rng: &mut R,
    ) -> Result<Self, OtError> {
        Ok(match mode {
            OfflineMode::Iknp => FragmentSender::Kk(KkSender::setup(ch, rng)?),
            OfflineMode::Silent => {
                FragmentSender::Silent(Box::new(SilentKkSender::setup(ch, rng)?))
            }
        })
    }

    /// The mode this sender was set up with.
    #[must_use]
    pub fn mode(&self) -> OfflineMode {
        match self {
            FragmentSender::Kk(_) => OfflineMode::Iknp,
            FragmentSender::Silent(_) => OfflineMode::Silent,
        }
    }

    /// Sets the worker-thread count for local offline compute. The silent
    /// backend's GGM expansion is sequential by construction (each level
    /// feeds the next), so only the KK13 path fans out; transcripts are
    /// byte-identical for any value either way.
    pub fn set_threads(&mut self, threads: usize) {
        if let FragmentSender::Kk(s) = self {
            s.set_threads(threads);
        }
    }

    /// Extends to `m` fresh 1-out-of-`n` fragment OTs.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnection or malformed peer messages.
    ///
    /// # Panics
    ///
    /// Panics if `n` is outside `2..=256`.
    pub fn extend<T: Transport>(
        &mut self,
        ch: &mut T,
        m: usize,
        n: u64,
    ) -> Result<FragmentSenderKeys, OtError> {
        Ok(match self {
            FragmentSender::Kk(s) => FragmentSenderKeys::Kk(s.extend(ch, m)?),
            FragmentSender::Silent(s) => FragmentSenderKeys::Silent(s.extend(ch, m, n)?),
        })
    }
}

impl FragmentChooser {
    /// One-time setup of the selected backend.
    ///
    /// # Errors
    ///
    /// Propagates base-OT failures.
    pub fn setup<T: Transport, R: Rng + ?Sized>(
        ch: &mut T,
        mode: OfflineMode,
        rng: &mut R,
    ) -> Result<Self, OtError> {
        Ok(match mode {
            OfflineMode::Iknp => FragmentChooser::Kk(KkChooser::setup(ch, rng)?),
            OfflineMode::Silent => {
                FragmentChooser::Silent(Box::new(SilentKkChooser::setup(ch, rng)?))
            }
        })
    }

    /// The mode this chooser was set up with.
    #[must_use]
    pub fn mode(&self) -> OfflineMode {
        match self {
            FragmentChooser::Kk(_) => OfflineMode::Iknp,
            FragmentChooser::Silent(_) => OfflineMode::Silent,
        }
    }

    /// Sets the worker-thread count for local offline compute. The silent
    /// backend's GGM expansion is sequential by construction (each level
    /// feeds the next), so only the KK13 path fans out; transcripts are
    /// byte-identical for any value either way.
    pub fn set_threads(&mut self, threads: usize) {
        if let FragmentChooser::Kk(c) = self {
            c.set_threads(threads);
        }
    }

    /// Extends with one choice symbol per OT; all symbols must be below `n`.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnection or malformed peer messages.
    ///
    /// # Panics
    ///
    /// Panics if any choice is ≥ `n` or `n` is outside `2..=256`.
    pub fn extend<T: Transport>(
        &mut self,
        ch: &mut T,
        choices: &[u64],
        n: u64,
    ) -> Result<FragmentChooserKeys, OtError> {
        Ok(match self {
            FragmentChooser::Kk(c) => FragmentChooserKeys::Kk(c.extend(ch, choices, n)?),
            FragmentChooser::Silent(c) => FragmentChooserKeys::Silent(c.extend(ch, choices, n)?),
        })
    }
}

impl FragmentSenderKeys {
    /// Number of OTs in this batch.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            FragmentSenderKeys::Kk(k) => k.len(),
            FragmentSenderKeys::Silent(k) => k.len(),
        }
    }

    /// True if the batch is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `len`-byte mask of symbol `v` in OT `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` or `v` is out of range.
    #[must_use]
    pub fn mask(&self, j: usize, v: u64, len: usize) -> Vec<u8> {
        match self {
            FragmentSenderKeys::Kk(k) => k.mask(j, v, len),
            FragmentSenderKeys::Silent(k) => k.mask(j, v, len),
        }
    }
}

impl FragmentChooserKeys {
    /// Number of OTs in this batch.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            FragmentChooserKeys::Kk(k) => k.len(),
            FragmentChooserKeys::Silent(k) => k.len(),
        }
    }

    /// True if the batch is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `len`-byte mask of the symbol this chooser selected in OT `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn mask(&self, j: usize, len: usize) -> Vec<u8> {
        match self {
            FragmentChooserKeys::Kk(k) => k.mask(j, len),
            FragmentChooserKeys::Silent(k) => k.mask(j, len),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_net::{run_pair, NetworkModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_mode_is_the_portable_fallback() {
        assert_eq!(OfflineMode::default(), OfflineMode::Iknp);
    }

    #[test]
    fn both_backends_agree_through_the_enum() {
        for mode in [OfflineMode::Iknp, OfflineMode::Silent] {
            let n = 4u64;
            let choices = vec![0u64, 3, 1, 2, 2];
            let choices2 = choices.clone();
            let m = choices.len();
            let (sender_out, ck, _) = run_pair(
                NetworkModel::instant(),
                move |ch| {
                    let mut rng = StdRng::seed_from_u64(41);
                    let mut s = FragmentSender::setup(ch, mode, &mut rng).expect("setup");
                    (s.extend(ch, m, n).expect("extend"), s.mode())
                },
                move |ch| {
                    let mut rng = StdRng::seed_from_u64(42);
                    let mut c = FragmentChooser::setup(ch, mode, &mut rng).expect("setup");
                    c.extend(ch, &choices2, n).expect("extend")
                },
            );
            let (sk, smode) = sender_out;
            assert_eq!(smode, mode);
            assert_eq!(sk.len(), m);
            assert_eq!(ck.len(), m);
            for (j, &w) in choices.iter().enumerate() {
                assert_eq!(ck.mask(j, 24), sk.mask(j, w, 24), "mode={mode:?} ot={j}");
            }
        }
    }
}
