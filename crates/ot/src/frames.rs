//! Typed wire frames for the OT stack.
//!
//! Every message the base-OT, IKNP, and KK13 protocols exchange is one of
//! the frames below, moved exclusively through
//! [`Transport::send_frame`]/[`Transport::recv_frame`]. Frame-level checks
//! cover each payload's *shape* (fixed point sizes, block granularity);
//! exact batch lengths depend on runtime parameters (OT count, ring width)
//! and remain with the protocol code, which reports them as
//! [`OtError::Malformed`](crate::OtError::Malformed).
//!
//! [`Transport::send_frame`]: abnn2_net::Transport::send_frame
//! [`Transport::recv_frame`]: abnn2_net::Transport::recv_frame

use crate::KAPPA;
use abnn2_net::wire::tags;
use abnn2_net::{block_frame, byte_frame};

byte_frame! {
    /// The base-OT sender's setup point `A = yB` (64-byte Edwards point).
    pub struct BasePoint, tag = tags::BASE_POINT, name = "base-OT setup point", exact = 64
}

byte_frame! {
    /// The base-OT chooser's batch of blinded points `Rᵢ`, 64 bytes each.
    pub struct BasePointBatch, tag = tags::BASE_POINT_BATCH, name = "base-OT point batch", unit = 64
}

byte_frame! {
    /// The base-OT sender's ciphertext pairs, 32 bytes (two blocks) per OT.
    pub struct BaseCtBatch, tag = tags::BASE_CT_BATCH, name = "base-OT ciphertext batch", unit = 32
}

byte_frame! {
    /// The IKNP receiver's masked `u` column matrix: κ columns of
    /// ⌈m/8⌉ bytes each, so always a multiple of κ bytes.
    pub struct IknpColumns, tag = tags::IKNP_COLUMNS, name = "IKNP column matrix", unit = KAPPA
}

block_frame! {
    /// The IKNP sender's masked message pairs: two blocks per OT.
    pub struct IknpCts, tag = tags::IKNP_CTS, name = "IKNP ciphertext batch", unit = 2
}

byte_frame! {
    /// Correlated-OT corrections: one ring element per OT (width set by
    /// the ring, validated at the call site).
    pub struct OtCorrections, tag = tags::OT_CORRECTIONS, name = "C-OT correction batch", unit = 1
}

byte_frame! {
    /// Vector-correlated-OT corrections: one ring-element vector per OT.
    pub struct OtVecPayload, tag = tags::OT_VEC_PAYLOAD, name = "vector C-OT payload", unit = 1
}

byte_frame! {
    /// The KK13 chooser's masked column matrix: 2κ = 256 columns of
    /// ⌈m/8⌉ bytes each, so always a multiple of 256 bytes.
    pub struct KkColumns, tag = tags::KK_COLUMNS, name = "KK13 column matrix", unit = crate::kk13::CODE_LEN
}

byte_frame! {
    /// The silent-OT bootstrap's raw-COT column matrix: the one IKNP-style
    /// extension that seeds the first refill, under its own tag so silent
    /// traffic is fully self-labelled.
    pub struct SilentBaseColumns, tag = tags::SILENT_BASE_COLUMNS, name = "silent bootstrap column matrix", unit = KAPPA
}

byte_frame! {
    /// Packed derandomization bits: SPCOT path corrections during a refill,
    /// or fragment-choice corrections in the derandomization adapter.
    pub struct SilentDerand, tag = tags::SILENT_DERAND, name = "silent derandomization bits", unit = 1
}

byte_frame! {
    /// SPCOT masked GGM level sums: two 16-byte blocks per tree level.
    pub struct SilentSpcotMasks, tag = tags::SILENT_SPCOT_MASKS, name = "SPCOT level masks", unit = 32
}

byte_frame! {
    /// SPCOT punctured correction blocks: one 16-byte block per tree.
    pub struct SilentSpcotSums, tag = tags::SILENT_SPCOT_SUMS, name = "SPCOT punctured sums", unit = 16
}
