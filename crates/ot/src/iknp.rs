//! IKNP 1-out-of-2 OT extension with chosen, correlated and random variants.
//!
//! After a one-time setup of κ = 128 base OTs (with roles reversed), any
//! number of OTs cost only symmetric operations plus κ bits per OT from the
//! receiver. The correlated variant (`C-OT`) is what SecureML's triplet
//! generation uses: the sender's first message is pseudorandom and only an
//! ℓ-bit correction word crosses the wire.

use crate::bits::{pack_bits, transpose_columns_par, xor_in_place};
use crate::frames::{IknpColumns, IknpCts, OtCorrections, OtVecPayload, SilentBaseColumns};
use crate::{base, OtError, KAPPA};
use abnn2_crypto::{Block, Prg, RoHash};
use abnn2_math::Ring;
use abnn2_net::Transport;
use rand::Rng;

/// Extensions below this many OTs run single-threaded regardless of the
/// configured worker count: spawn/join overhead would dominate. The gate
/// depends only on the batch size, so the schedule stays deterministic.
pub(crate) const PAR_MIN_OTS: usize = 4096;

/// Sender side of IKNP extension (holds the message pairs).
pub struct IknpSender {
    s_bits: Vec<bool>,
    s_block: Block,
    prgs: Vec<Prg>,
    hash: RoHash,
    tweak: u64,
    threads: usize,
}

impl std::fmt::Debug for IknpSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IknpSender").field("tweak", &self.tweak).finish()
    }
}

/// Receiver side of IKNP extension (holds the choice bits).
#[derive(Clone)]
pub struct IknpReceiver {
    prg_pairs: Vec<(Prg, Prg)>,
    hash: RoHash,
    tweak: u64,
    threads: usize,
}

impl std::fmt::Debug for IknpReceiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IknpReceiver").field("tweak", &self.tweak).finish()
    }
}

impl IknpSender {
    /// Runs setup: κ base OTs with this party as base-OT chooser holding the
    /// global secret `s`.
    ///
    /// # Errors
    ///
    /// Propagates base-OT failures.
    pub fn setup<T: Transport, R: Rng + ?Sized>(ch: &mut T, rng: &mut R) -> Result<Self, OtError> {
        let s_bits: Vec<bool> = (0..KAPPA).map(|_| rng.gen()).collect();
        let seeds = base::recv(ch, &s_bits, rng)?;
        let s_block = Block::from_bytes(pack_bits(&s_bits).try_into().expect("16 bytes"));
        Ok(IknpSender {
            s_bits,
            s_block,
            prgs: seeds.into_iter().map(Prg::from_seed).collect(),
            hash: RoHash::new(),
            tweak: 0,
            threads: 1,
        })
    }

    /// Sets the worker-thread count for column expansion, transposes and
    /// per-OT hashing. Local compute only: the transcript is byte-identical
    /// for any value.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The global correlation block `s`: for every extension row,
    /// `q_j = t_j ⊕ c_j·s`. The silent-OT bootstrap reads this as its Δ.
    #[must_use]
    pub fn delta(&self) -> Block {
        self.s_block
    }

    /// Core extension step: receives the masked columns and returns the row
    /// values `q_j`, from which both message keys derive.
    fn extend_rows<T: Transport>(&mut self, ch: &mut T, m: usize) -> Result<Vec<Block>, OtError> {
        let IknpColumns(u) = ch.recv_frame()?;
        self.rows_from_columns(&u, m)
    }

    /// Raw correlated-OT extension for the silent-OT bootstrap: returns the
    /// *unhashed* rows `q_j = t_j ⊕ c_j·Δ` (Δ = [`delta`](Self::delta)),
    /// moved under the dedicated silent bootstrap frame so silent traffic
    /// stays fully self-labelled on the wire.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnection or malformed receiver messages.
    pub fn extend_cot<T: Transport>(
        &mut self,
        ch: &mut T,
        m: usize,
    ) -> Result<Vec<Block>, OtError> {
        let SilentBaseColumns(u) = ch.recv_frame()?;
        let rows = self.rows_from_columns(&u, m)?;
        self.bump_tweak(m);
        Ok(rows)
    }

    fn rows_from_columns(&mut self, u: &[u8], m: usize) -> Result<Vec<Block>, OtError> {
        let col_bytes = m.div_ceil(8);
        if u.len() != KAPPA * col_bytes {
            return Err(OtError::Malformed("IKNP column batch has wrong length"));
        }
        if m == 0 {
            return Ok(Vec::new());
        }
        let threads = if m < PAR_MIN_OTS { 1 } else { self.threads };
        let mut cols: Vec<Vec<u8>> = vec![Vec::new(); KAPPA];
        if threads <= 1 {
            for ((prg, &bit), (out, ui)) in self
                .prgs
                .iter_mut()
                .zip(&self.s_bits)
                .zip(cols.iter_mut().zip(u.chunks_exact(col_bytes)))
            {
                let mut col = prg.bytes(col_bytes);
                if bit {
                    xor_in_place(&mut col, ui);
                }
                *out = col;
            }
        } else {
            // Each worker owns a contiguous column shard: PRG states,
            // output slots and `u` slices split identically, so the result
            // matches the sequential loop byte for byte.
            let shard = KAPPA.div_ceil(threads);
            std::thread::scope(|scope| {
                for ((prgs, bits), (outs, us)) in self
                    .prgs
                    .chunks_mut(shard)
                    .zip(self.s_bits.chunks(shard))
                    .zip(cols.chunks_mut(shard).zip(u.chunks(shard * col_bytes)))
                {
                    scope.spawn(move || {
                        for ((prg, &bit), (out, ui)) in prgs
                            .iter_mut()
                            .zip(bits)
                            .zip(outs.iter_mut().zip(us.chunks_exact(col_bytes)))
                        {
                            let mut col = prg.bytes(col_bytes);
                            if bit {
                                xor_in_place(&mut col, ui);
                            }
                            *out = col;
                        }
                    });
                }
            });
        }
        let rows = transpose_columns_par(&cols, m, threads);
        Ok(rows
            .into_iter()
            .map(|r| Block::from_bytes(r.try_into().expect("16-byte row")))
            .collect())
    }

    /// Sends `pairs.len()` chosen-message OTs of one block each.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnection or malformed receiver messages.
    pub fn send_chosen<T: Transport>(
        &mut self,
        ch: &mut T,
        pairs: &[(Block, Block)],
    ) -> Result<(), OtError> {
        let qs = self.extend_rows(ch, pairs.len())?;
        let base_tweak = self.bump_tweak(pairs.len());
        let hs = self.hash_both(&qs, base_tweak);
        let cts = pairs
            .iter()
            .zip(hs.chunks_exact(2))
            .flat_map(|(pair, h)| [pair.0 ^ h[0], pair.1 ^ h[1]])
            .collect();
        ch.send_frame(&IknpCts(cts))?;
        Ok(())
    }

    /// One batched hash pass over `H(t, q)` and `H(t, q ⊕ s)` for every
    /// row, interleaved `[h0, h1, h0, h1, …]`.
    fn hash_both(&self, qs: &[Block], base_tweak: u64) -> Vec<Block> {
        let mut sigmas = Vec::with_capacity(qs.len() * 2);
        for (j, q) in qs.iter().enumerate() {
            let t = Block::from((base_tweak + j as u64) as u128);
            sigmas.push(*q ^ t);
            sigmas.push(*q ^ self.s_block ^ t);
        }
        self.hash.hash_blocks_par(&mut sigmas, self.threads);
        sigmas
    }

    /// Random OT: returns `m` pseudorandom pairs with no extra message
    /// beyond the extension itself.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnection or malformed receiver messages.
    pub fn send_random<T: Transport>(
        &mut self,
        ch: &mut T,
        m: usize,
    ) -> Result<Vec<(Block, Block)>, OtError> {
        let qs = self.extend_rows(ch, m)?;
        let base_tweak = self.bump_tweak(m);
        let hs = self.hash_both(&qs, base_tweak);
        Ok(hs.chunks_exact(2).map(|h| (h[0], h[1])).collect())
    }

    /// Correlated OT over a ring: for each `delta`, the sender learns a
    /// pseudorandom `x0` and the receiver learns `x0` or `x0 + delta`.
    /// Only one ⌈ℓ/8⌉-byte correction per OT crosses the wire.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnection or malformed receiver messages.
    pub fn send_correlated<T: Transport>(
        &mut self,
        ch: &mut T,
        deltas: &[u64],
        ring: Ring,
    ) -> Result<Vec<u64>, OtError> {
        let qs = self.extend_rows(ch, deltas.len())?;
        let base_tweak = self.bump_tweak(deltas.len());
        let hs = self.hash_both(&qs, base_tweak);
        let mut x0s = Vec::with_capacity(deltas.len());
        let mut corrections = Vec::with_capacity(deltas.len());
        for (h, &delta) in hs.chunks_exact(2).zip(deltas) {
            let x0 = ring.reduce(h[0].as_u128() as u64);
            let mask1 = ring.reduce(h[1].as_u128() as u64);
            // correction = x0 + delta − H(q ⊕ s): receiver with bit 1 adds its
            // mask back to recover x0 + delta.
            corrections.push(ring.sub(ring.add(x0, delta), mask1));
            x0s.push(x0);
        }
        ch.send_frame(&OtCorrections(ring.encode_slice(&corrections)))?;
        Ok(x0s)
    }

    /// Vector correlated OT: like [`IknpSender::send_correlated`] but each
    /// OT carries a whole vector of ring elements (the batch-packing used
    /// by amortized triplet generation). Returns the per-OT `x0` vectors.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnection or malformed receiver messages.
    ///
    /// # Panics
    ///
    /// Panics if the delta vectors are ragged.
    pub fn send_correlated_vec<T: Transport>(
        &mut self,
        ch: &mut T,
        deltas: &[Vec<u64>],
        ring: Ring,
    ) -> Result<Vec<Vec<u64>>, OtError> {
        let width = deltas.first().map_or(0, Vec::len);
        assert!(deltas.iter().all(|d| d.len() == width), "ragged delta vectors");
        let qs = self.extend_rows(ch, deltas.len())?;
        let base_tweak = self.bump_tweak(deltas.len());
        let elem_len = width * ring.byte_len();
        let mut x0s = Vec::with_capacity(deltas.len());
        let mut payload = Vec::with_capacity(deltas.len() * elem_len);
        for (j, (q, delta)) in qs.iter().zip(deltas).enumerate() {
            let t = (base_tweak + j as u64) as u128;
            let x0 = ring.decode_slice(&self.hash.hash_expand(t, &q.to_bytes(), elem_len));
            let mask1 = ring.decode_slice(&self.hash.hash_expand(
                t,
                &(*q ^ self.s_block).to_bytes(),
                elem_len,
            ));
            for k in 0..width {
                payload.extend_from_slice(
                    &ring.encode_slice(&[ring.sub(ring.add(x0[k], delta[k]), mask1[k])]),
                );
            }
            x0s.push(x0);
        }
        ch.send_frame(&OtVecPayload(payload))?;
        Ok(x0s)
    }

    fn bump_tweak(&mut self, m: usize) -> u64 {
        let t = self.tweak;
        self.tweak += m as u64;
        t
    }
}

impl IknpReceiver {
    /// Runs setup: κ base OTs with this party as base-OT sender holding
    /// random seed pairs.
    ///
    /// # Errors
    ///
    /// Propagates base-OT failures.
    pub fn setup<T: Transport, R: Rng + ?Sized>(ch: &mut T, rng: &mut R) -> Result<Self, OtError> {
        let seed_pairs: Vec<(Block, Block)> =
            (0..KAPPA).map(|_| (Block::random(rng), Block::random(rng))).collect();
        base::send(ch, &seed_pairs, rng)?;
        Ok(IknpReceiver {
            prg_pairs: seed_pairs
                .into_iter()
                .map(|(a, b)| (Prg::from_seed(a), Prg::from_seed(b)))
                .collect(),
            hash: RoHash::new(),
            tweak: 0,
            threads: 1,
        })
    }

    /// Sets the worker-thread count for column expansion, transposes and
    /// per-OT hashing. Local compute only: the transcript is byte-identical
    /// for any value.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Core extension step: sends masked columns, returns per-row blocks
    /// `t_j` (the key for the chosen message).
    fn extend_rows<T: Transport>(
        &mut self,
        ch: &mut T,
        choices: &[bool],
    ) -> Result<Vec<Block>, OtError> {
        let (u, rows) = self.derive_rows(choices);
        ch.send_frame(&IknpColumns(u))?;
        Ok(rows)
    }

    /// Raw correlated-OT extension for the silent-OT bootstrap: returns the
    /// *unhashed* rows `t_j` with `q_j = t_j ⊕ c_j·Δ` on the sender side,
    /// moved under the dedicated silent bootstrap frame.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnection.
    pub fn extend_cot<T: Transport>(
        &mut self,
        ch: &mut T,
        choices: &[bool],
    ) -> Result<Vec<Block>, OtError> {
        let (u, rows) = self.derive_rows(choices);
        ch.send_frame(&SilentBaseColumns(u))?;
        self.bump_tweak(choices.len());
        Ok(rows)
    }

    fn derive_rows(&mut self, choices: &[bool]) -> (Vec<u8>, Vec<Block>) {
        let m = choices.len();
        if m == 0 {
            return (Vec::new(), Vec::new());
        }
        let col_bytes = m.div_ceil(8);
        let b = pack_bits(choices);
        let threads = if m < PAR_MIN_OTS { 1 } else { self.threads };
        let mut t_cols: Vec<Vec<u8>> = vec![Vec::new(); KAPPA];
        let mut u = vec![0u8; KAPPA * col_bytes];
        if threads <= 1 {
            for ((prg0, prg1), (out, ui)) in
                self.prg_pairs.iter_mut().zip(t_cols.iter_mut().zip(u.chunks_exact_mut(col_bytes)))
            {
                let t0 = prg0.bytes(col_bytes);
                let t1 = prg1.bytes(col_bytes);
                ui.copy_from_slice(&t0);
                xor_in_place(ui, &t1);
                xor_in_place(ui, &b);
                *out = t0;
            }
        } else {
            // Each worker owns a contiguous column shard: PRG states,
            // output slots and `u` slices split identically, so the result
            // matches the sequential loop byte for byte.
            let shard = KAPPA.div_ceil(threads);
            let b = &b;
            std::thread::scope(|scope| {
                for (prgs, (outs, us)) in self
                    .prg_pairs
                    .chunks_mut(shard)
                    .zip(t_cols.chunks_mut(shard).zip(u.chunks_mut(shard * col_bytes)))
                {
                    scope.spawn(move || {
                        for ((prg0, prg1), (out, ui)) in
                            prgs.iter_mut().zip(outs.iter_mut().zip(us.chunks_exact_mut(col_bytes)))
                        {
                            let t0 = prg0.bytes(col_bytes);
                            let t1 = prg1.bytes(col_bytes);
                            ui.copy_from_slice(&t0);
                            xor_in_place(ui, &t1);
                            xor_in_place(ui, b);
                            *out = t0;
                        }
                    });
                }
            });
        }
        let rows = transpose_columns_par(&t_cols, m, threads)
            .into_iter()
            .map(|r| Block::from_bytes(r.try_into().expect("16-byte row")))
            .collect();
        (u, rows)
    }

    /// One batched hash pass over `H(t, t_j)` for every row.
    fn hash_rows(&self, ts: &[Block], base_tweak: u64) -> Vec<Block> {
        let mut sigmas: Vec<Block> = ts
            .iter()
            .enumerate()
            .map(|(j, t)| *t ^ Block::from((base_tweak + j as u64) as u128))
            .collect();
        self.hash.hash_blocks_par(&mut sigmas, self.threads);
        sigmas
    }

    /// Receives chosen-message OTs: one block per choice bit.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnection or malformed sender messages.
    pub fn recv<T: Transport>(
        &mut self,
        ch: &mut T,
        choices: &[bool],
    ) -> Result<Vec<Block>, OtError> {
        let ts = self.extend_rows(ch, choices)?;
        let base_tweak = self.bump_tweak(choices.len());
        let IknpCts(cts) = ch.recv_frame()?;
        if cts.len() != 2 * choices.len() {
            return Err(OtError::Malformed("IKNP ciphertext batch has wrong length"));
        }
        let hs = self.hash_rows(&ts, base_tweak);
        Ok(hs
            .iter()
            .zip(choices)
            .enumerate()
            .map(|(j, (h, &c))| cts[2 * j + c as usize] ^ *h)
            .collect())
    }

    /// Random OT receiver: learns `x_c` for pseudorandom pairs.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnection or malformed sender messages.
    pub fn recv_random<T: Transport>(
        &mut self,
        ch: &mut T,
        choices: &[bool],
    ) -> Result<Vec<Block>, OtError> {
        let ts = self.extend_rows(ch, choices)?;
        let base_tweak = self.bump_tweak(choices.len());
        Ok(self.hash_rows(&ts, base_tweak))
    }

    /// Correlated OT receiver: learns `x0 + c·delta` per OT.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnection or malformed sender messages.
    pub fn recv_correlated<T: Transport>(
        &mut self,
        ch: &mut T,
        choices: &[bool],
        ring: Ring,
    ) -> Result<Vec<u64>, OtError> {
        let ts = self.extend_rows(ch, choices)?;
        let base_tweak = self.bump_tweak(choices.len());
        let OtCorrections(corr_bytes) = ch.recv_frame()?;
        if corr_bytes.len() != ring.byte_len() * choices.len() {
            return Err(OtError::Malformed("C-OT correction batch has wrong length"));
        }
        let corrections = ring.decode_slice(&corr_bytes);
        let hs = self.hash_rows(&ts, base_tweak);
        Ok(hs
            .iter()
            .zip(choices)
            .zip(&corrections)
            .map(|((h, &c), &corr)| {
                let mask = ring.reduce(h.as_u128() as u64);
                if c {
                    ring.add(corr, mask)
                } else {
                    mask
                }
            })
            .collect())
    }

    /// Vector correlated OT receiver: learns `x0 + c·delta` element-wise
    /// per OT.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnection or malformed sender messages.
    pub fn recv_correlated_vec<T: Transport>(
        &mut self,
        ch: &mut T,
        choices: &[bool],
        width: usize,
        ring: Ring,
    ) -> Result<Vec<Vec<u64>>, OtError> {
        let ts = self.extend_rows(ch, choices)?;
        let base_tweak = self.bump_tweak(choices.len());
        let elem_len = width * ring.byte_len();
        let OtVecPayload(payload) = ch.recv_frame()?;
        if payload.len() != elem_len * choices.len() {
            return Err(OtError::Malformed("vector C-OT correction batch length"));
        }
        Ok(ts
            .iter()
            .zip(choices)
            .enumerate()
            .map(|(j, (t, &c))| {
                let tw = (base_tweak + j as u64) as u128;
                let mask = ring.decode_slice(&self.hash.hash_expand(tw, &t.to_bytes(), elem_len));
                if c {
                    let corr = ring.decode_slice(&payload[j * elem_len..(j + 1) * elem_len]);
                    ring.add_vec(&corr, &mask)
                } else {
                    mask
                }
            })
            .collect())
    }

    fn bump_tweak(&mut self, m: usize) -> u64 {
        let t = self.tweak;
        self.tweak += m as u64;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_net::{run_pair, Endpoint, NetworkModel};
    use rand::SeedableRng;

    fn setup_pair(
        test: impl FnOnce(&mut IknpSender, &mut Endpoint) -> Vec<(Block, Block)> + Send,
        choices: Vec<bool>,
    ) -> (Vec<(Block, Block)>, Vec<Block>) {
        run_two(test, move |r, ch| r.recv(ch, &choices).expect("recv"))
    }

    fn run_two<A: Send, B: Send>(
        f_s: impl FnOnce(&mut IknpSender, &mut Endpoint) -> A + Send,
        f_r: impl FnOnce(&mut IknpReceiver, &mut Endpoint) -> B + Send,
    ) -> (A, B) {
        let (a, b, _) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(1);
                let mut s = IknpSender::setup(ch, &mut rng).expect("sender setup");
                f_s(&mut s, ch)
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(2);
                let mut r = IknpReceiver::setup(ch, &mut rng).expect("receiver setup");
                f_r(&mut r, ch)
            },
        );
        (a, b)
    }

    #[test]
    fn chosen_message_ot() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let m = 300;
        let choices: Vec<bool> = (0..m).map(|_| rng.gen()).collect();
        let choices2 = choices.clone();
        let (pairs, got) = setup_pair(
            move |s, ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(4);
                let pairs: Vec<(Block, Block)> =
                    (0..m).map(|_| (Block::random(&mut rng), Block::random(&mut rng))).collect();
                s.send_chosen(ch, &pairs).expect("send");
                pairs
            },
            choices2,
        );
        for (j, &c) in choices.iter().enumerate() {
            assert_eq!(got[j], if c { pairs[j].1 } else { pairs[j].0 }, "ot {j}");
        }
    }

    #[test]
    fn random_ot_agrees() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let m = 100;
        let choices: Vec<bool> = (0..m).map(|_| rng.gen()).collect();
        let choices2 = choices.clone();
        let (pairs, got) = run_two(
            move |s, ch| s.send_random(ch, m).expect("send_random"),
            move |r, ch| r.recv_random(ch, &choices2).expect("recv_random"),
        );
        for (j, &c) in choices.iter().enumerate() {
            assert_eq!(got[j], if c { pairs[j].1 } else { pairs[j].0 });
            assert_ne!(pairs[j].0, pairs[j].1);
        }
    }

    #[test]
    fn correlated_ot_over_rings() {
        for bits in [8u32, 32, 64] {
            let ring = Ring::new(bits);
            let mut rng = rand::rngs::StdRng::seed_from_u64(6);
            let m = 200;
            let choices: Vec<bool> = (0..m).map(|_| rng.gen()).collect();
            let deltas: Vec<u64> = ring.sample_vec(&mut rng, m);
            let (choices2, deltas2) = (choices.clone(), deltas.clone());
            let (x0s, xcs) = run_two(
                move |s, ch| s.send_correlated(ch, &deltas2, ring).expect("send_correlated"),
                move |r, ch| r.recv_correlated(ch, &choices2, ring).expect("recv_correlated"),
            );
            for j in 0..m {
                let expect = if choices[j] { ring.add(x0s[j], deltas[j]) } else { x0s[j] };
                assert_eq!(xcs[j], expect, "bits={bits} ot {j}");
            }
        }
    }

    #[test]
    fn vector_correlated_ot() {
        let ring = Ring::new(32);
        let mut rng = rand::rngs::StdRng::seed_from_u64(60);
        let (m, width) = (50, 3);
        let choices: Vec<bool> = (0..m).map(|_| rng.gen()).collect();
        let deltas: Vec<Vec<u64>> = (0..m).map(|_| ring.sample_vec(&mut rng, width)).collect();
        let (choices2, deltas2) = (choices.clone(), deltas.clone());
        let (x0s, xcs) = run_two(
            move |s, ch| s.send_correlated_vec(ch, &deltas2, ring).expect("send"),
            move |r, ch| r.recv_correlated_vec(ch, &choices2, width, ring).expect("recv"),
        );
        for j in 0..m {
            for k in 0..width {
                let expect = if choices[j] { ring.add(x0s[j][k], deltas[j][k]) } else { x0s[j][k] };
                assert_eq!(xcs[j][k], expect, "ot {j} slot {k}");
            }
        }
    }

    #[test]
    fn multiple_extends_use_fresh_tweaks() {
        let choices = vec![true, false, true];
        let choices2 = choices.clone();
        let ((p1, p2), (g1, g2)) = run_two(
            move |s, ch| {
                let pairs: Vec<(Block, Block)> = (0..3)
                    .map(|i| (Block::from(i as u128), Block::from((i + 10) as u128)))
                    .collect();
                s.send_chosen(ch, &pairs).expect("send 1");
                s.send_chosen(ch, &pairs).expect("send 2");
                (pairs.clone(), pairs)
            },
            move |r, ch| {
                let g1 = r.recv(ch, &choices2).expect("recv 1");
                let g2 = r.recv(ch, &choices2).expect("recv 2");
                (g1, g2)
            },
        );
        for (j, &c) in choices.iter().enumerate() {
            assert_eq!(g1[j], if c { p1[j].1 } else { p1[j].0 });
            assert_eq!(g2[j], if c { p2[j].1 } else { p2[j].0 });
        }
    }

    #[test]
    fn raw_cot_rows_satisfy_the_correlation() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(70);
        let m = 77;
        let choices: Vec<bool> = (0..m).map(|_| rng.gen()).collect();
        let choices2 = choices.clone();
        let ((qs, delta), ts) = run_two(
            move |s, ch| {
                let qs = s.extend_cot(ch, m).expect("sender cot");
                (qs, s.delta())
            },
            move |r, ch| r.extend_cot(ch, &choices2).expect("receiver cot"),
        );
        for (j, &c) in choices.iter().enumerate() {
            let want = if c { qs[j] ^ delta } else { qs[j] };
            assert_eq!(ts[j], want, "ot {j}");
        }
    }

    #[test]
    fn non_multiple_of_eight_batch() {
        let choices = vec![true; 13];
        let (pairs, got) = setup_pair(
            move |s, ch| {
                let pairs: Vec<(Block, Block)> = (0..13)
                    .map(|i| (Block::from(i as u128), Block::from((100 + i) as u128)))
                    .collect();
                s.send_chosen(ch, &pairs).expect("send");
                pairs
            },
            choices,
        );
        assert!(got.iter().zip(&pairs).all(|(g, p)| *g == p.1));
    }
}
