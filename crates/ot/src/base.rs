//! Chou–Orlandi "simplest OT" base oblivious transfer.
//!
//! The sender holds message pairs `(m₀, m₁)`; the chooser holds bits `c` and
//! learns `m_c`. One batch runs any number of OTs with a single round trip
//! after the sender's setup message:
//!
//! ```text
//! S: y ←$,  A = yB,  T = yA                  --A-->
//! R: xᵢ ←$, Rᵢ = cᵢ·A + xᵢ·B                 <--Rᵢ--
//! S: k⁰ᵢ = KDF(i, yRᵢ), k¹ᵢ = KDF(i, yRᵢ−T)  --ctᵢ-->
//! R: k^cᵢ = KDF(i, xᵢ·A)
//! ```
//!
//! Security holds in the random-oracle model under computational
//! Diffie–Hellman on the curve (semi-honest parties; the chooser's `Rᵢ` is a
//! uniformly random point for either choice).

use crate::frames::{BaseCtBatch, BasePoint, BasePointBatch};
use crate::OtError;
use abnn2_crypto::curve::EdwardsPoint;
use abnn2_crypto::{sha256::sha256, Block};
use abnn2_net::Transport;
use rand::Rng;

fn random_scalar<R: Rng + ?Sized>(rng: &mut R) -> [u8; 32] {
    let mut s = [0u8; 32];
    rng.fill(&mut s);
    s[31] &= 0x0f; // < 2^252, comfortably below the group order × cofactor
    s
}

fn kdf(index: u64, point: &EdwardsPoint) -> Block {
    let mut data = [0u8; 72];
    data[..64].copy_from_slice(&point.to_bytes());
    data[64..].copy_from_slice(&index.to_le_bytes());
    let digest = sha256(&data);
    Block::from_bytes(digest[..16].try_into().expect("16 bytes"))
}

/// Runs the sender side, transferring `pairs[i].0` or `pairs[i].1` according
/// to the chooser's bit.
///
/// # Errors
///
/// Returns [`OtError`] on disconnection or if the chooser sends invalid
/// curve points.
pub fn send<T: Transport, R: Rng + ?Sized>(
    ch: &mut T,
    pairs: &[(Block, Block)],
    rng: &mut R,
) -> Result<(), OtError> {
    let y = random_scalar(rng);
    let base = EdwardsPoint::base();
    let a = base.scalar_mul(&y);
    let t = a.scalar_mul(&y);
    ch.send_frame(&BasePoint(a.to_bytes().to_vec()))?;

    let BasePointBatch(r_bytes) = ch.recv_frame()?;
    if r_bytes.len() != 64 * pairs.len() {
        return Err(OtError::Malformed("chooser point batch has wrong length"));
    }
    let mut cts = Vec::with_capacity(pairs.len() * 32);
    for (i, pair) in pairs.iter().enumerate() {
        let mut pt = [0u8; 64];
        pt.copy_from_slice(&r_bytes[64 * i..64 * (i + 1)]);
        let r_i = EdwardsPoint::from_bytes(&pt).map_err(|_| OtError::InvalidPoint)?;
        let yr = r_i.scalar_mul(&y);
        let k0 = kdf(i as u64, &yr);
        let k1 = kdf(i as u64, &yr.sub(&t));
        cts.extend_from_slice(&(pair.0 ^ k0).to_bytes());
        cts.extend_from_slice(&(pair.1 ^ k1).to_bytes());
    }
    ch.send_frame(&BaseCtBatch(cts))?;
    Ok(())
}

/// Runs the chooser side, learning one block per choice bit.
///
/// # Errors
///
/// Returns [`OtError`] on disconnection or malformed sender messages.
pub fn recv<T: Transport, R: Rng + ?Sized>(
    ch: &mut T,
    choices: &[bool],
    rng: &mut R,
) -> Result<Vec<Block>, OtError> {
    let BasePoint(a_bytes) = ch.recv_frame()?;
    let a_arr: [u8; 64] = a_bytes.as_slice().try_into().expect("frame-validated 64 bytes");
    let a = EdwardsPoint::from_bytes(&a_arr).map_err(|_| OtError::InvalidPoint)?;
    let base = EdwardsPoint::base();

    let mut xs = Vec::with_capacity(choices.len());
    let mut r_batch = Vec::with_capacity(choices.len() * 64);
    for &c in choices {
        let x = random_scalar(rng);
        let xb = base.scalar_mul(&x);
        let r = if c { a.add(&xb) } else { xb };
        r_batch.extend_from_slice(&r.to_bytes());
        xs.push(x);
    }
    ch.send_frame(&BasePointBatch(r_batch))?;

    let BaseCtBatch(cts) = ch.recv_frame()?;
    if cts.len() != 32 * choices.len() {
        return Err(OtError::Malformed("ciphertext batch has wrong length"));
    }
    let mut out = Vec::with_capacity(choices.len());
    for (i, (&c, x)) in choices.iter().zip(&xs).enumerate() {
        let k = kdf(i as u64, &a.scalar_mul(x));
        let off = 32 * i + if c { 16 } else { 0 };
        let ct = Block::from_bytes(cts[off..off + 16].try_into().expect("16 bytes"));
        out.push(ct ^ k);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_net::{run_pair, NetworkModel};
    use rand::SeedableRng;

    fn run_base_ot(choices: Vec<bool>, seed: u64) -> (Vec<(Block, Block)>, Vec<Block>) {
        let n = choices.len();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pairs: Vec<(Block, Block)> =
            (0..n).map(|_| (Block::random(&mut rng), Block::random(&mut rng))).collect();
        let pairs_clone = pairs.clone();
        let (_, got, _) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 1);
                send(ch, &pairs_clone, &mut rng).expect("sender");
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 2);
                recv(ch, &choices, &mut rng).expect("chooser")
            },
        );
        (pairs, got)
    }

    #[test]
    fn transfers_chosen_messages() {
        let choices = vec![false, true, true, false, true];
        let (pairs, got) = run_base_ot(choices.clone(), 42);
        for (i, &c) in choices.iter().enumerate() {
            let expect = if c { pairs[i].1 } else { pairs[i].0 };
            assert_eq!(got[i], expect, "ot {i}");
        }
    }

    #[test]
    fn all_zero_and_all_one_choices() {
        let (pairs, got) = run_base_ot(vec![false; 8], 1);
        assert!(got.iter().zip(&pairs).all(|(g, p)| *g == p.0));
        let (pairs, got) = run_base_ot(vec![true; 8], 2);
        assert!(got.iter().zip(&pairs).all(|(g, p)| *g == p.1));
    }

    #[test]
    fn kappa_sized_batch() {
        // The size used to seed IKNP.
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let choices: Vec<bool> = (0..128).map(|_| rng.gen()).collect();
        let (pairs, got) = run_base_ot(choices.clone(), 7);
        for (i, &c) in choices.iter().enumerate() {
            assert_eq!(got[i], if c { pairs[i].1 } else { pairs[i].0 });
        }
    }

    #[test]
    fn kdf_separates_indices() {
        let p = EdwardsPoint::base();
        assert_ne!(kdf(0, &p), kdf(1, &p));
    }
}
