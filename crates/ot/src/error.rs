//! Error type shared by all OT protocols.

use abnn2_net::ChannelError;

/// Errors raised by OT protocol executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OtError {
    /// The peer disconnected mid-protocol.
    Channel,
    /// A received elliptic-curve point failed validation.
    InvalidPoint,
    /// A received message had an unexpected length or structure.
    Malformed(&'static str),
}

impl std::fmt::Display for OtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OtError::Channel => write!(f, "peer disconnected during oblivious transfer"),
            OtError::InvalidPoint => write!(f, "received point is not on the curve"),
            OtError::Malformed(what) => write!(f, "malformed OT message: {what}"),
        }
    }
}

impl std::error::Error for OtError {}

impl From<ChannelError> for OtError {
    fn from(_: ChannelError) -> Self {
        OtError::Channel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(OtError::Channel.to_string().contains("disconnected"));
        assert!(OtError::Malformed("short row").to_string().contains("short row"));
        assert!(OtError::InvalidPoint.to_string().contains("curve"));
    }

    #[test]
    fn channel_error_converts() {
        let e: OtError = ChannelError.into();
        assert_eq!(e, OtError::Channel);
    }
}
