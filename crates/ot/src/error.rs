//! Error type shared by all OT protocols.

use abnn2_net::TransportError;

/// Errors raised by OT protocol executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OtError {
    /// The peer disconnected mid-protocol.
    Channel,
    /// The peer went silent past the configured transport deadline.
    TimedOut,
    /// A received elliptic-curve point failed validation.
    InvalidPoint,
    /// A received message had an unexpected length or structure.
    Malformed(&'static str),
}

impl OtError {
    /// Whether reconnecting and retrying could plausibly clear the error.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(self, OtError::Channel | OtError::TimedOut)
    }
}

impl std::fmt::Display for OtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OtError::Channel => write!(f, "peer disconnected during oblivious transfer"),
            OtError::TimedOut => write!(f, "peer silent past deadline during oblivious transfer"),
            OtError::InvalidPoint => write!(f, "received point is not on the curve"),
            OtError::Malformed(what) => write!(f, "malformed OT message: {what}"),
        }
    }
}

impl std::error::Error for OtError {}

impl From<TransportError> for OtError {
    fn from(e: TransportError) -> Self {
        match e {
            TransportError::Closed => OtError::Channel,
            // WouldBlock is intercepted by the session driver's replay
            // channel; the stray case maps to the retryable TimedOut.
            TransportError::TimedOut | TransportError::WouldBlock => OtError::TimedOut,
            TransportError::Malformed(what) => OtError::Malformed(what),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(OtError::Channel.to_string().contains("disconnected"));
        assert!(OtError::Malformed("short row").to_string().contains("short row"));
        assert!(OtError::InvalidPoint.to_string().contains("curve"));
    }

    #[test]
    fn transport_errors_convert_by_cause() {
        let closed: OtError = TransportError::Closed.into();
        assert_eq!(closed, OtError::Channel);
        let malformed: OtError = TransportError::Malformed("u64 message length").into();
        assert_eq!(malformed, OtError::Malformed("u64 message length"));
        let timed_out: OtError = TransportError::TimedOut.into();
        assert_eq!(timed_out, OtError::TimedOut);
    }

    #[test]
    fn retryability_tracks_transience() {
        assert!(OtError::Channel.is_retryable());
        assert!(OtError::TimedOut.is_retryable());
        assert!(!OtError::InvalidPoint.is_retryable());
        assert!(!OtError::Malformed("x").is_retryable());
    }
}
