//! Silent OT: LPN-based correlation expansion (Ferret-style).
//!
//! The IKNP/KK13 extensions pay Θ(κ) wire bits per OT — the offline phase's
//! dominant cost. Silent OT replaces that with a *pseudorandom correlation
//! generator*: a tiny seed exchange expands locally into a long vector of
//! random correlated OTs (COTs), after which only derandomization bits cross
//! the wire. The pipeline, bottom to top:
//!
//! 1. **Bootstrap** — one raw IKNP COT extension ([`IknpSender::extend_cot`])
//!    seeds the first refill with [`RESERVE`] base COTs; the IKNP sender's
//!    global secret `s` becomes the silent correlation Δ. Every later refill
//!    reseeds itself from its own output (self-bootstrapping), so the IKNP
//!    column matrix is paid exactly once per session.
//! 2. **SPCOT** (single-point COT) — per tree, the sender GGM-expands a
//!    random root to `2^d` leaves and transfers, per level, the XOR of all
//!    left / all right children masked under one consumed base COT. The
//!    receiver derandomizes its base-COT choice bit toward the *complement*
//!    of its secret path bit, unmasks exactly one sum per level, and
//!    reconstructs every leaf except its secret index α. A final correction
//!    `c* = Δ ⊕ ⊕ᵥ vⱼ` gives it `v_α ⊕ Δ` at the punctured point: a COT
//!    vector whose choice vector is the weight-1 indicator of α.
//! 3. **MPCOT** — [`LPN_T`] independent trees, one secret point per
//!    `2^d`-leaf block (regular noise), concatenate to a weight-[`LPN_T`]
//!    sparse COT of length [`LPN_N`].
//! 4. **Primal LPN** — a public `D`-local linear code (fixed PRG seed)
//!    compresses [`LPN_K`] reserved base COTs with the sparse vector:
//!    `x_j = (⊕_{i∈S_j} u_i) ⊕ e_j` is pseudorandom under LPN with regular
//!    noise, and the blocks combine linearly so the COT correlation is
//!    preserved.
//!
//! On top sits a **derandomization adapter** ([`SilentKkSender`] /
//! [`SilentKkChooser`]) that converts `⌈log₂ N⌉` random COTs into one
//! chosen-input 1-of-N fragment OT with the same key-handle API as KK13 —
//! so ABNN²'s γ(N−1) masked-triplet protocol runs unchanged on top.
//!
//! # Parameters
//!
//! The fixed parameter set (`k = 512, t = 16, n = 8192, D = 8`) is a *toy*
//! instantiation sized for tests and the repo's CI budget, not a
//! production-hardened LPN choice; see DESIGN.md §3i for the wire-cost
//! accounting and the security discussion. Each refill consumes
//! [`RESERVE`]` = k + t·d` of its own outputs and nets [`REFILL_YIELD`]
//! fresh COTs for ≈ 4.9 KB on the wire — two orders of magnitude below the
//! 16 B/COT an IKNP extension would move.
//!
//! [`IknpSender::extend_cot`]: crate::iknp::IknpSender::extend_cot

mod cot;
mod frag;
mod spcot;

pub use cot::{SilentCotReceiver, SilentCotSender};
pub use frag::{SilentChooserKeys, SilentKkChooser, SilentKkSender, SilentSenderKeys};

/// LPN dimension: base COTs compressed by the local code per refill.
pub const LPN_K: usize = 512;

/// Regular-noise weight: SPCOT trees (= secret points) per refill.
pub const LPN_T: usize = 16;

/// LPN output length: COTs produced by one refill before the reserve is
/// set aside.
pub const LPN_N: usize = 8192;

/// GGM tree depth: each tree covers `2^TREE_DEPTH = LPN_N / LPN_T` leaves.
pub const TREE_DEPTH: usize = 9;

/// Code locality: base positions XORed into each LPN output.
pub const LPN_D: usize = 8;

/// Base COTs one refill consumes: `LPN_K` for the code plus one per tree
/// level for the SPCOT masks. Reserved out of the previous refill's output.
pub const RESERVE: usize = LPN_K + LPN_T * TREE_DEPTH;

/// Net fresh COTs one refill adds to the consumable pool.
pub const REFILL_YIELD: usize = LPN_N - RESERVE;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameters_are_consistent() {
        assert_eq!(LPN_T << TREE_DEPTH, LPN_N, "trees must tile the output");
        assert!(LPN_K.is_power_of_two(), "unbiased index sampling needs 2^k");
        assert_eq!(RESERVE, 656);
        assert_eq!(REFILL_YIELD, 7536);
    }
}
