//! Silent OT: LPN-based correlation expansion (Ferret-style).
//!
//! The IKNP/KK13 extensions pay Θ(κ) wire bits per OT — the offline phase's
//! dominant cost. Silent OT replaces that with a *pseudorandom correlation
//! generator*: a tiny seed exchange expands locally into a long vector of
//! random correlated OTs (COTs), after which only derandomization bits cross
//! the wire. The pipeline, bottom to top:
//!
//! 1. **Bootstrap** — one raw IKNP COT extension ([`IknpSender::extend_cot`])
//!    seeds the first refill with [`LpnParams::reserve`] base COTs; the IKNP
//!    sender's global secret `s` becomes the silent correlation Δ. Every
//!    later refill reseeds itself from its own output (self-bootstrapping),
//!    so the IKNP column matrix is paid exactly once per session.
//! 2. **SPCOT** (single-point COT) — per tree, the sender GGM-expands a
//!    random root to `2^d` leaves and transfers, per level, the XOR of all
//!    left / all right children masked under one consumed base COT. The
//!    receiver derandomizes its base-COT choice bit toward the *complement*
//!    of its secret path bit, unmasks exactly one sum per level, and
//!    reconstructs every leaf except its secret index α. A final correction
//!    `c* = Δ ⊕ ⊕ᵥ vⱼ` gives it `v_α ⊕ Δ` at the punctured point: a COT
//!    vector whose choice vector is the weight-1 indicator of α.
//! 3. **MPCOT** — `t` independent trees, one secret point per
//!    `2^d`-leaf block (regular noise), concatenate to a weight-`t`
//!    sparse COT of length `n`.
//! 4. **Primal LPN** — a public `D`-local linear code (fixed PRG seed)
//!    compresses `k` reserved base COTs with the sparse vector:
//!    `x_j = (⊕_{i∈S_j} u_i) ⊕ e_j` is pseudorandom under LPN with regular
//!    noise, and the blocks combine linearly so the COT correlation is
//!    preserved.
//!
//! On top sits a **derandomization adapter** ([`SilentKkSender`] /
//! [`SilentKkChooser`]) that converts `⌈log₂ N⌉` random COTs into one
//! chosen-input 1-of-N fragment OT with the same key-handle API as KK13 —
//! so ABNN²'s γ(N−1) masked-triplet protocol runs unchanged on top.
//!
//! # Parameters
//!
//! All sizes live in the [`LpnParams`] preset struct; both parties must run
//! the same preset since the refill schedule is derived deterministically
//! from it. [`LpnParams::CI`] (the default) is a *toy* instantiation sized
//! for tests and the repo's CI budget, not a production-hardened LPN
//! choice; see DESIGN.md §3i for the wire-cost accounting and the security
//! discussion. Per refill, each side consumes [`LpnParams::reserve`]
//! `= k + t·d` of its own outputs and nets [`LpnParams::refill_yield`]
//! fresh COTs for ≈ 4.9 KB on the wire (CI preset) — two orders of
//! magnitude below the 16 B/COT an IKNP extension would move.
//!
//! [`IknpSender::extend_cot`]: crate::iknp::IknpSender::extend_cot

mod cot;
mod frag;
mod spcot;

pub use cot::{SilentCotReceiver, SilentCotSender};
pub use frag::{SilentChooserKeys, SilentKkChooser, SilentKkSender, SilentSenderKeys};

/// A primal-LPN parameter preset for the silent expansion.
///
/// Invariants (checked by [`validate`](Self::validate)): the trees tile the
/// output (`t · 2^tree_depth = n`), `k` is a power of two not above 2¹⁶
/// (the code samples indices by masking a `u16`), and one refill nets a
/// positive yield (`n > k + t·tree_depth`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LpnParams {
    /// LPN dimension: base COTs compressed by the local code per refill.
    pub k: usize,
    /// Regular-noise weight: SPCOT trees (= secret points) per refill.
    pub t: usize,
    /// LPN output length: COTs produced by one refill before the reserve
    /// is set aside.
    pub n: usize,
    /// GGM tree depth: each tree covers `2^tree_depth = n / t` leaves.
    pub tree_depth: usize,
    /// Code locality: base positions XORed into each LPN output.
    pub d: usize,
}

impl LpnParams {
    /// CI-sized preset (`k = 512, t = 16, n = 8192, depth = 9, D = 8`):
    /// small enough that a full refill runs in a unit test, **not** a
    /// security-bearing choice. This is the default.
    pub const CI: LpnParams = LpnParams { k: 512, t: 16, n: 8192, tree_depth: 9, d: 8 };

    /// Production-scale preset (`k = 2¹⁵, t = 64, n = 2²¹, depth = 15,
    /// D = 8`), in the regime of the Ferret one-tree parameters for ≥ 128-
    /// bit primal-LPN security with regular noise. Each refill nets ≈ 2M
    /// COTs for ≈ 66 KB of wire traffic; the ≈ 33 MB expanded code table
    /// and multi-second refill cost are why CI does not run it.
    pub const PRODUCTION: LpnParams =
        LpnParams { k: 1 << 15, t: 64, n: 1 << 21, tree_depth: 15, d: 8 };

    /// Base COTs one refill consumes: `k` for the code plus one per tree
    /// level for the SPCOT masks. Reserved out of the previous refill's
    /// output.
    #[must_use]
    pub const fn reserve(&self) -> usize {
        self.k + self.t * self.tree_depth
    }

    /// Net fresh COTs one refill adds to the consumable pool.
    #[must_use]
    pub const fn refill_yield(&self) -> usize {
        self.n - self.reserve()
    }

    /// Checks the structural invariants listed on the type.
    ///
    /// # Panics
    ///
    /// Panics if any invariant fails.
    pub fn validate(&self) {
        assert_eq!(self.t << self.tree_depth, self.n, "trees must tile the output");
        assert!(
            self.k.is_power_of_two() && self.k <= 1 << 16,
            "unbiased u16 index sampling needs k = 2^j ≤ 2^16"
        );
        assert!(self.n > self.reserve(), "a refill must net a positive yield");
        assert!(self.d >= 1, "the code must touch at least one base position");
    }
}

impl Default for LpnParams {
    fn default() -> Self {
        LpnParams::CI
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_parameters_are_consistent() {
        LpnParams::CI.validate();
        assert_eq!(LpnParams::default(), LpnParams::CI);
        assert_eq!(LpnParams::CI.reserve(), 656);
        assert_eq!(LpnParams::CI.refill_yield(), 7536);
    }

    #[test]
    fn production_parameters_are_consistent() {
        LpnParams::PRODUCTION.validate();
        assert_eq!(LpnParams::PRODUCTION.reserve(), 32768 + 64 * 15);
        assert!(LpnParams::PRODUCTION.refill_yield() > 2_000_000);
    }

    #[test]
    #[should_panic(expected = "trees must tile the output")]
    fn mismatched_tree_tiling_is_rejected() {
        LpnParams { n: 8191, ..LpnParams::CI }.validate();
    }
}
