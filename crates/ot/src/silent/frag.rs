//! Derandomization adapter: chosen-input 1-of-N fragment OTs from random
//! COTs.
//!
//! One fragment OT over radix `n` consumes `B = ⌈log₂ n⌉` pooled COTs. The
//! chooser sends `d_b = x_b ⊕ v_b` per bit of its choice symbol `v` (random
//! `x_b` makes this uniform), after which the per-bit key for value `u` at
//! position `b` is `κ_{b,u} = H(y_b ⊕ (u ⊕ d_b)·Δ)`: the sender can derive
//! it for every `u`, while the chooser's COT block `z_b = y_b ⊕ x_b·Δ`
//! *is* the key for its own bit — and for `u ≠ v_b` the key hides behind
//! the correlation-robust hash of an unknown `Δ`-shifted block. The symbol
//! mask is `hash_expand` over the concatenated per-bit keys, mirroring the
//! KK13 key-handle API so the γ(N−1) triplet protocol is oblivious to which
//! extension produced its masks.

use super::{SilentCotReceiver, SilentCotSender};
use crate::bits::{get_bit, pack_bits};
use crate::frames::SilentDerand;
use crate::kk13::MAX_N;
use crate::OtError;
use abnn2_crypto::{Block, RoHash};
use abnn2_net::Transport;
use rand::Rng;

/// Tweak domain for per-bit keys: bit 126 set, bit 127 clear.
const BIT_TWEAK: u128 = 1 << 126;

/// Tweak domain for the symbol-mask expansion: bits 127 and 126 set.
const MASK_TWEAK: u128 = (1 << 127) | (1 << 126);

/// Choice bits per fragment OT of radix `n`.
///
/// # Panics
///
/// Panics if `n` is outside `2..=MAX_N`.
#[must_use]
pub fn choice_bits(n: u64) -> usize {
    assert!((2..=MAX_N).contains(&n), "radix {n} out of range");
    (64 - (n - 1).leading_zeros()) as usize
}

fn bit_tweak(ot: u64, b: usize) -> u128 {
    BIT_TWEAK | (u128::from(ot) << 8) | b as u128
}

/// Fragment-OT **sender** over silent COTs (the ABNN² client).
#[derive(Debug)]
pub struct SilentKkSender {
    cot: SilentCotSender,
    tweak: u64,
}

/// Fragment-OT **chooser** over silent COTs (the ABNN² server).
#[derive(Debug, Clone)]
pub struct SilentKkChooser {
    cot: SilentCotReceiver,
    tweak: u64,
}

/// Key material the sender obtains from one `extend` call.
#[derive(Debug)]
pub struct SilentSenderKeys {
    ys: Vec<Block>,
    derand: Vec<u8>,
    delta: Block,
    bits: usize,
    base_tweak: u64,
    hash: RoHash,
}

/// Key material the chooser obtains from one `extend` call.
#[derive(Debug)]
pub struct SilentChooserKeys {
    zs: Vec<Block>,
    bits: usize,
    base_tweak: u64,
    hash: RoHash,
}

impl SilentKkSender {
    /// One-time setup: bootstraps the silent COT generator.
    ///
    /// # Errors
    ///
    /// Propagates base-OT failures.
    pub fn setup<T: Transport, R: Rng + ?Sized>(ch: &mut T, rng: &mut R) -> Result<Self, OtError> {
        Ok(SilentKkSender { cot: SilentCotSender::setup(ch, rng)?, tweak: 0 })
    }

    /// Extends to `m` fresh 1-out-of-`n` fragment OTs, consuming pooled
    /// COTs and the chooser's derandomization bits.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnection or malformed chooser messages.
    ///
    /// # Panics
    ///
    /// Panics if `n` is outside `2..=256`.
    pub fn extend<T: Transport>(
        &mut self,
        ch: &mut T,
        m: usize,
        n: u64,
    ) -> Result<SilentSenderKeys, OtError> {
        let bits = choice_bits(n);
        let ys = self.cot.take(ch, m * bits)?;
        let SilentDerand(derand) = ch.recv_frame()?;
        if derand.len() != (m * bits).div_ceil(8) {
            return Err(OtError::Malformed("fragment derandomization batch has wrong length"));
        }
        let base_tweak = self.tweak;
        self.tweak += m as u64;
        Ok(SilentSenderKeys {
            ys,
            derand,
            delta: self.cot.delta(),
            bits,
            base_tweak,
            hash: RoHash::new(),
        })
    }
}

impl SilentKkChooser {
    /// One-time setup: bootstraps the silent COT generator with an internal
    /// replay-deterministic RNG.
    ///
    /// # Errors
    ///
    /// Propagates base-OT failures.
    pub fn setup<T: Transport, R: Rng + ?Sized>(ch: &mut T, rng: &mut R) -> Result<Self, OtError> {
        Ok(SilentKkChooser { cot: SilentCotReceiver::setup(ch, rng)?, tweak: 0 })
    }

    /// Extends with one choice symbol per OT; all symbols must be below `n`.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnection or malformed refill messages.
    ///
    /// # Panics
    ///
    /// Panics if any choice is ≥ `n` or `n` is outside `2..=256`.
    pub fn extend<T: Transport>(
        &mut self,
        ch: &mut T,
        choices: &[u64],
        n: u64,
    ) -> Result<SilentChooserKeys, OtError> {
        let bits = choice_bits(n);
        assert!(choices.iter().all(|&c| c < n), "choice symbol out of range");
        let m = choices.len();
        let xz = self.cot.take(ch, m * bits)?;
        let mut derand = vec![false; m * bits];
        for (j, &w) in choices.iter().enumerate() {
            for b in 0..bits {
                derand[j * bits + b] = xz[j * bits + b].0 ^ ((w >> b) & 1 == 1);
            }
        }
        ch.send_frame(&SilentDerand(pack_bits(&derand)))?;
        let base_tweak = self.tweak;
        self.tweak += m as u64;
        Ok(SilentChooserKeys {
            zs: xz.into_iter().map(|(_, z)| z).collect(),
            bits,
            base_tweak,
            hash: RoHash::new(),
        })
    }
}

impl SilentSenderKeys {
    /// Number of OTs in this batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ys.len().checked_div(self.bits).unwrap_or(0)
    }

    /// True if the batch is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ys.is_empty()
    }

    /// The `len`-byte mask of symbol `v` in OT `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` or `v` is out of range.
    #[must_use]
    pub fn mask(&self, j: usize, v: u64, len: usize) -> Vec<u8> {
        assert!(v < 1 << self.bits, "symbol {v} exceeds the fragment radix");
        let ot = self.base_tweak + j as u64;
        // All per-bit key hashes in one backend batch.
        let mut h = Vec::with_capacity(self.bits);
        for b in 0..self.bits {
            let d = get_bit(&self.derand, j * self.bits + b);
            let u = (v >> b) & 1 == 1;
            let mut block = self.ys[j * self.bits + b];
            if u != d {
                block ^= self.delta;
            }
            h.push(block ^ Block::from(bit_tweak(ot, b)));
        }
        self.hash.hash_blocks(&mut h);
        let mut keys = Vec::with_capacity(self.bits * 16);
        for k in &h {
            keys.extend_from_slice(&k.to_bytes());
        }
        self.hash.hash_expand(MASK_TWEAK | u128::from(ot), &keys, len)
    }
}

impl SilentChooserKeys {
    /// Number of OTs in this batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.zs.len().checked_div(self.bits).unwrap_or(0)
    }

    /// True if the batch is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.zs.is_empty()
    }

    /// The `len`-byte mask of the symbol this chooser selected in OT `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn mask(&self, j: usize, len: usize) -> Vec<u8> {
        let ot = self.base_tweak + j as u64;
        // All per-bit key hashes in one backend batch.
        let mut h: Vec<Block> = (0..self.bits)
            .map(|b| self.zs[j * self.bits + b] ^ Block::from(bit_tweak(ot, b)))
            .collect();
        self.hash.hash_blocks(&mut h);
        let mut keys = Vec::with_capacity(self.bits * 16);
        for k in &h {
            keys.extend_from_slice(&k.to_bytes());
        }
        self.hash.hash_expand(MASK_TWEAK | u128::from(ot), &keys, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_net::{run_pair, Endpoint, NetworkModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_frag<A: Send, B: Send>(
        f_s: impl FnOnce(&mut SilentKkSender, &mut Endpoint) -> A + Send,
        f_c: impl FnOnce(&mut SilentKkChooser, &mut Endpoint) -> B + Send,
    ) -> (A, B) {
        let (a, b, _) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = StdRng::seed_from_u64(31);
                let mut s = SilentKkSender::setup(ch, &mut rng).expect("sender setup");
                f_s(&mut s, ch)
            },
            move |ch| {
                let mut rng = StdRng::seed_from_u64(32);
                let mut c = SilentKkChooser::setup(ch, &mut rng).expect("chooser setup");
                f_c(&mut c, ch)
            },
        );
        (a, b)
    }

    #[test]
    fn choice_bits_covers_paper_radices() {
        assert_eq!(choice_bits(2), 1);
        assert_eq!(choice_bits(3), 2);
        assert_eq!(choice_bits(4), 2);
        assert_eq!(choice_bits(16), 4);
        assert_eq!(choice_bits(256), 8);
    }

    #[test]
    fn chooser_mask_matches_sender_mask_at_choice() {
        let mut rng = StdRng::seed_from_u64(33);
        let n = 16u64;
        let m = 50;
        let choices: Vec<u64> = (0..m).map(|_| rng.gen_range(0..n)).collect();
        let choices2 = choices.clone();
        let (sender_keys, chooser_keys) = run_frag(
            move |s, ch| s.extend(ch, m, n).expect("extend"),
            move |c, ch| c.extend(ch, &choices2, n).expect("extend"),
        );
        assert_eq!(sender_keys.len(), m);
        assert_eq!(chooser_keys.len(), m);
        for j in 0..m {
            let want = sender_keys.mask(j, choices[j], 24);
            assert_eq!(chooser_keys.mask(j, 24), want, "ot {j}");
            for v in 0..n {
                if v != choices[j] {
                    assert_ne!(sender_keys.mask(j, v, 24), chooser_keys.mask(j, 24));
                }
            }
        }
    }

    #[test]
    fn binary_and_ternary_radix() {
        for n in [2u64, 3, 4] {
            let m = 17;
            let choices: Vec<u64> = (0..m as u64).map(|j| j % n).collect();
            let choices2 = choices.clone();
            let (sk, ck) = run_frag(
                move |s, ch| s.extend(ch, m, n).expect("extend"),
                move |c, ch| c.extend(ch, &choices2, n).expect("extend"),
            );
            for j in 0..m {
                assert_eq!(ck.mask(j, 8), sk.mask(j, choices[j], 8), "n={n} ot={j}");
            }
        }
    }

    #[test]
    fn sequential_extends_are_independent() {
        let (masks_s, masks_c) = run_frag(
            |s, ch| {
                let k1 = s.extend(ch, 4, 2).expect("extend 1");
                let k2 = s.extend(ch, 4, 2).expect("extend 2");
                (k1.mask(0, 1, 16), k2.mask(0, 1, 16))
            },
            |c, ch| {
                let k1 = c.extend(ch, &[1, 0, 1, 0], 2).expect("extend 1");
                let k2 = c.extend(ch, &[1, 1, 1, 1], 2).expect("extend 2");
                (k1.mask(0, 16), k2.mask(0, 16))
            },
        );
        assert_eq!(masks_s.0, masks_c.0);
        assert_eq!(masks_s.1, masks_c.1);
        assert_ne!(masks_s.0, masks_s.1, "tweaks must separate batches");
    }

    #[test]
    fn variable_mask_lengths_are_prefix_consistent() {
        let (sk, ck) = run_frag(
            |s, ch| s.extend(ch, 1, 4).expect("extend"),
            |c, ch| c.extend(ch, &[2], 4).expect("extend"),
        );
        let long = sk.mask(0, 2, 64);
        let short = ck.mask(0, 32);
        assert_eq!(&long[..32], &short[..]);
    }
}
