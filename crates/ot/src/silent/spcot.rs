//! GGM puncturable-PRF tree underlying SPCOT.
//!
//! The sender expands a random root into a full binary tree; the receiver,
//! given per level the XOR of all nodes on the side *opposite* its secret
//! path, rebuilds every leaf except the one at its secret index. Child
//! derivation uses the shared random oracle under two fixed tweaks whose
//! high bits keep them disjoint from every per-OT tweak domain in the repo.

use abnn2_crypto::{Block, RoHash};

/// Left/right child tweaks: bit 125 marks the GGM domain.
const GGM_LEFT: u128 = 1 << 125;
const GGM_RIGHT: u128 = (1 << 125) | 1;

/// Expands `root` to depth `depth`. Returns the `2^depth` leaves and, per
/// level, the XOR of all left children and of all right children produced
/// at that level — the values the SPCOT sender masks with base COTs.
///
/// All child derivations of one level run as a single batched hash call,
/// so the deepest levels (hundreds of nodes) hit the backend's wide path.
pub(super) fn expand(
    hash: &RoHash,
    root: Block,
    depth: usize,
) -> (Vec<Block>, Vec<(Block, Block)>) {
    let (tl, tr) = (Block::from(GGM_LEFT), Block::from(GGM_RIGHT));
    let mut level = vec![root];
    let mut sums = Vec::with_capacity(depth);
    for _ in 0..depth {
        let mut next = Vec::with_capacity(level.len() * 2);
        for &node in &level {
            next.push(node ^ tl);
            next.push(node ^ tr);
        }
        hash.hash_blocks(&mut next);
        let (mut k0, mut k1) = (Block::ZERO, Block::ZERO);
        for pair in next.chunks_exact(2) {
            k0 ^= pair[0];
            k1 ^= pair[1];
        }
        sums.push((k0, k1));
        level = next;
    }
    (level, sums)
}

/// Rebuilds every leaf except index `alpha` from `ks[ℓ]` = the XOR of all
/// level-`ℓ+1` nodes on the side opposite `alpha`'s path bit. The punctured
/// slot comes back as `Block::ZERO` for the caller to patch.
///
/// At each level the receiver expands every known node; the one unknown
/// child on the complement side is the path node's sibling, recovered as
/// the difference between `ks[ℓ]` and the known same-side children.
pub(super) fn reconstruct(hash: &RoHash, alpha: usize, depth: usize, ks: &[Block]) -> Vec<Block> {
    assert_eq!(ks.len(), depth, "one complement sum per level");
    assert!(alpha < 1 << depth, "punctured index outside the tree");
    let (tl, tr) = (Block::from(GGM_LEFT), Block::from(GGM_RIGHT));
    let mut nodes = vec![Block::ZERO];
    let mut path = 0usize;
    for (l, &k) in ks.iter().enumerate() {
        let bit = (alpha >> (depth - 1 - l)) & 1;
        let side = bit ^ 1;
        // Both children of every known node in one batched hash call; the
        // path node stays skipped, exactly as in the scalar loop.
        let mut h = Vec::with_capacity(nodes.len().saturating_sub(1) * 2);
        for (i, &node) in nodes.iter().enumerate() {
            if i == path {
                continue;
            }
            h.push(node ^ tl);
            h.push(node ^ tr);
        }
        hash.hash_blocks(&mut h);
        let mut next = vec![Block::ZERO; nodes.len() * 2];
        let mut sum = k;
        let mut pairs = h.chunks_exact(2);
        for i in 0..nodes.len() {
            if i == path {
                continue;
            }
            let pair = pairs.next().expect("one child pair per known node");
            sum ^= pair[side];
            next[2 * i] = pair[0];
            next[2 * i + 1] = pair[1];
        }
        next[2 * path + side] = sum;
        path = 2 * path + bit;
        nodes = next;
    }
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconstruction_matches_expansion_except_at_alpha() {
        let hash = RoHash::new();
        let depth = 4;
        let root = Block::from(0x5eed_5eedu128);
        let (leaves, sums) = expand(&hash, root, depth);
        assert_eq!(leaves.len(), 16);
        for alpha in 0..16usize {
            let ks: Vec<Block> = (0..depth)
                .map(|l| {
                    let bit = (alpha >> (depth - 1 - l)) & 1;
                    if bit == 0 {
                        sums[l].1
                    } else {
                        sums[l].0
                    }
                })
                .collect();
            let got = reconstruct(&hash, alpha, depth, &ks);
            for (j, (&want, &have)) in leaves.iter().zip(&got).enumerate() {
                if j == alpha {
                    assert_eq!(have, Block::ZERO, "alpha={alpha}");
                } else {
                    assert_eq!(have, want, "alpha={alpha} leaf {j}");
                }
            }
        }
    }

    #[test]
    fn level_sums_cover_all_children() {
        let hash = RoHash::new();
        let (leaves, sums) = expand(&hash, Block::from(7u128), 3);
        let mut left = Block::ZERO;
        let mut right = Block::ZERO;
        for (j, &leaf) in leaves.iter().enumerate() {
            if j % 2 == 0 {
                left = left ^ leaf;
            } else {
                right = right ^ leaf;
            }
        }
        assert_eq!(sums[2], (left, right));
    }

    #[test]
    fn depth_one_tree() {
        let hash = RoHash::new();
        let (leaves, sums) = expand(&hash, Block::from(1u128), 1);
        // alpha = 0: receiver learns the right child directly.
        let got = reconstruct(&hash, 0, 1, &[sums[0].1]);
        assert_eq!(got[1], leaves[1]);
        assert_eq!(got[0], Block::ZERO);
    }
}
