//! The silent random-COT generator: bootstrap, SPCOT/MPCOT refills, and
//! primal-LPN expansion.
//!
//! Both sides hold a pool of random correlated OTs over 128-bit blocks —
//! the receiver `(x, z)`, the sender `(Δ, y)` with `z = y ⊕ x·Δ` — and
//! consume from it in lockstep via [`take`](SilentCotSender::take). When the
//! pool runs dry both sides deterministically run one refill, so no control
//! messages are needed: the only wire traffic is the one-time bootstrap
//! column matrix, then per refill ⌈t·d/8⌉ derandomization bytes, `t·d`
//! masked sum pairs, and `t` correction blocks.
//!
//! The receiver carries its own seeded [`StdRng`]: after setup it draws no
//! external randomness, so a cloned receiver replays bit-identically — the
//! property the session driver's checkpoint/resume machinery relies on.

use super::{spcot, LpnParams};
use crate::bits::{get_bit, pack_bits};
use crate::frames::{SilentDerand, SilentSpcotMasks, SilentSpcotSums};
use crate::iknp::{IknpReceiver, IknpSender};
use crate::OtError;
use abnn2_crypto::{Block, Prg, RoHash};
use abnn2_net::Transport;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Tweak domain for SPCOT level masks: bit 127 set, bits 126/125 clear.
const SPCOT_TWEAK: u128 = 1 << 127;

/// Fixed public seed of the LPN local code ("ABNN2 LPN code." as bytes).
const LPN_CODE_SEED: [u8; 16] = *b"ABNN2 LPN code.\0";

/// The public `D`-local code: `params.d` base indices per output position,
/// derived from a fixed PRG seed so both parties expand identically.
fn lpn_indices(params: LpnParams) -> Vec<u16> {
    let bytes = Prg::from_seed(Block::from_bytes(LPN_CODE_SEED)).bytes(params.n * params.d * 2);
    let mask = (params.k - 1) as u16;
    bytes.chunks_exact(2).map(|c| u16::from_le_bytes([c[0], c[1]]) & mask).collect()
}

/// Sender side of the silent COT generator: holds Δ and one `y` block per
/// produced COT. In ABNN² this is the client (the fragment-OT sender).
pub struct SilentCotSender {
    iknp: IknpSender,
    params: LpnParams,
    delta: Block,
    hash: RoHash,
    rng: StdRng,
    reserve: Vec<Block>,
    pool: VecDeque<Block>,
    tweak: u64,
}

impl std::fmt::Debug for SilentCotSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SilentCotSender")
            .field("tweak", &self.tweak)
            .field("pool", &self.pool.len())
            .finish()
    }
}

/// Receiver side of the silent COT generator: holds one `(x, z)` pair per
/// produced COT. In ABNN² this is the server (the fragment-OT chooser).
#[derive(Clone)]
pub struct SilentCotReceiver {
    iknp: IknpReceiver,
    params: LpnParams,
    hash: RoHash,
    rng: StdRng,
    reserve: Vec<(bool, Block)>,
    pool: VecDeque<(bool, Block)>,
    tweak: u64,
}

impl std::fmt::Debug for SilentCotReceiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SilentCotReceiver")
            .field("tweak", &self.tweak)
            .field("pool", &self.pool.len())
            .finish()
    }
}

impl SilentCotSender {
    /// One-time setup: κ base OTs seeding the bootstrap IKNP extension,
    /// whose global secret becomes the silent correlation Δ.
    ///
    /// # Errors
    ///
    /// Propagates base-OT failures.
    pub fn setup<T: Transport, R: Rng + ?Sized>(ch: &mut T, rng: &mut R) -> Result<Self, OtError> {
        Self::setup_with_params(ch, LpnParams::default(), rng)
    }

    /// [`setup`](Self::setup) with an explicit [`LpnParams`] preset. Both
    /// parties must pass the same preset — the refill schedule and every
    /// frame size derive from it.
    ///
    /// # Errors
    ///
    /// Propagates base-OT failures.
    ///
    /// # Panics
    ///
    /// Panics if the preset violates [`LpnParams::validate`].
    pub fn setup_with_params<T: Transport, R: Rng + ?Sized>(
        ch: &mut T,
        params: LpnParams,
        rng: &mut R,
    ) -> Result<Self, OtError> {
        params.validate();
        let iknp = IknpSender::setup(ch, rng)?;
        let delta = iknp.delta();
        Ok(SilentCotSender {
            iknp,
            params,
            delta,
            hash: RoHash::new(),
            rng: StdRng::seed_from_u64(rng.next_u64()),
            reserve: Vec::new(),
            pool: VecDeque::new(),
            tweak: 0,
        })
    }

    /// The global correlation block: `z = y ⊕ x·Δ` for every COT produced.
    #[must_use]
    pub fn delta(&self) -> Block {
        self.delta
    }

    /// Takes `count` COT sender blocks from the pool, running refills as
    /// needed (in lockstep with the receiver's identical decision).
    ///
    /// # Errors
    ///
    /// Returns an error on disconnection or malformed refill messages.
    pub fn take<T: Transport>(&mut self, ch: &mut T, count: usize) -> Result<Vec<Block>, OtError> {
        while self.pool.len() < count {
            self.refill(ch)?;
        }
        Ok(self.pool.drain(..count).collect())
    }

    fn refill<T: Transport>(&mut self, ch: &mut T) -> Result<(), OtError> {
        let p = self.params;
        if self.reserve.is_empty() {
            self.reserve = self.iknp.extend_cot(ch, p.reserve())?;
        }
        let base = std::mem::take(&mut self.reserve);
        let (v, ys) = base.split_at(p.k);

        let SilentDerand(derand) = ch.recv_frame()?;
        if derand.len() != (p.t * p.tree_depth).div_ceil(8) {
            return Err(OtError::Malformed("SPCOT derandomization batch has wrong length"));
        }
        let mut masks = Vec::with_capacity(p.t * p.tree_depth * 32);
        let mut sums = Vec::with_capacity(p.t * 16);
        let mut s = Vec::with_capacity(p.n);
        for tree in 0..p.t {
            let root = Block::random(&mut self.rng);
            let (leaves, level_sums) = spcot::expand(&self.hash, root, p.tree_depth);
            let mut correction = self.delta;
            for &leaf in &leaves {
                correction ^= leaf;
            }
            // Whiten both mask keys of every level, hash the tree in one
            // batch, then XOR in the level sums.
            let mut h = Vec::with_capacity(2 * p.tree_depth);
            for l in 0..p.tree_depth {
                let d = get_bit(&derand, tree * p.tree_depth + l);
                let y = ys[tree * p.tree_depth + l];
                let tw = Block::from(SPCOT_TWEAK | u128::from(self.bump_tweak()));
                h.push(if d { y ^ self.delta } else { y } ^ tw);
                h.push(if d { y } else { y ^ self.delta } ^ tw);
            }
            self.hash.hash_blocks(&mut h);
            for (&(k0, k1), hm) in level_sums.iter().zip(h.chunks_exact(2)) {
                masks.extend_from_slice(&(k0 ^ hm[0]).to_bytes());
                masks.extend_from_slice(&(k1 ^ hm[1]).to_bytes());
            }
            sums.extend_from_slice(&correction.to_bytes());
            s.extend(leaves);
        }
        ch.send_frame(&SilentSpcotMasks(masks))?;
        ch.send_frame(&SilentSpcotSums(sums))?;

        let idx = lpn_indices(p);
        let mut out = Vec::with_capacity(p.n);
        for (j, &sj) in s.iter().enumerate() {
            let mut y = sj;
            for &i in &idx[j * p.d..(j + 1) * p.d] {
                y ^= v[i as usize];
            }
            out.push(y);
        }
        self.reserve = out.split_off(p.n - p.reserve());
        self.pool.extend(out);
        Ok(())
    }

    fn bump_tweak(&mut self) -> u64 {
        let t = self.tweak;
        self.tweak += 1;
        t
    }
}

impl SilentCotReceiver {
    /// One-time setup: κ base OTs seeding the bootstrap IKNP extension plus
    /// an internal replay-deterministic RNG drawn once from `rng`.
    ///
    /// # Errors
    ///
    /// Propagates base-OT failures.
    pub fn setup<T: Transport, R: Rng + ?Sized>(ch: &mut T, rng: &mut R) -> Result<Self, OtError> {
        Self::setup_with_params(ch, LpnParams::default(), rng)
    }

    /// [`setup`](Self::setup) with an explicit [`LpnParams`] preset. Both
    /// parties must pass the same preset — the refill schedule and every
    /// frame size derive from it.
    ///
    /// # Errors
    ///
    /// Propagates base-OT failures.
    ///
    /// # Panics
    ///
    /// Panics if the preset violates [`LpnParams::validate`].
    pub fn setup_with_params<T: Transport, R: Rng + ?Sized>(
        ch: &mut T,
        params: LpnParams,
        rng: &mut R,
    ) -> Result<Self, OtError> {
        params.validate();
        let iknp = IknpReceiver::setup(ch, rng)?;
        Ok(SilentCotReceiver {
            iknp,
            params,
            hash: RoHash::new(),
            rng: StdRng::seed_from_u64(rng.next_u64()),
            reserve: Vec::new(),
            pool: VecDeque::new(),
            tweak: 0,
        })
    }

    /// Takes `count` COT receiver pairs `(x, z)` from the pool, running
    /// refills as needed.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnection or malformed refill messages.
    pub fn take<T: Transport>(
        &mut self,
        ch: &mut T,
        count: usize,
    ) -> Result<Vec<(bool, Block)>, OtError> {
        while self.pool.len() < count {
            self.refill(ch)?;
        }
        Ok(self.pool.drain(..count).collect())
    }

    fn refill<T: Transport>(&mut self, ch: &mut T) -> Result<(), OtError> {
        let p = self.params;
        if self.reserve.is_empty() {
            let choices: Vec<bool> = (0..p.reserve()).map(|_| self.rng.gen()).collect();
            let ts = self.iknp.extend_cot(ch, &choices)?;
            self.reserve = choices.into_iter().zip(ts).collect();
        }
        let base = std::mem::take(&mut self.reserve);
        let (uw, xz) = base.split_at(p.k);

        let alphas: Vec<usize> =
            (0..p.t).map(|_| self.rng.gen_range(0..1u64 << p.tree_depth) as usize).collect();
        let mut bits = vec![false; p.t * p.tree_depth];
        for (tree, &alpha) in alphas.iter().enumerate() {
            for l in 0..p.tree_depth {
                let complement = ((alpha >> (p.tree_depth - 1 - l)) & 1) ^ 1;
                bits[tree * p.tree_depth + l] = xz[tree * p.tree_depth + l].0 ^ (complement == 1);
            }
        }
        ch.send_frame(&SilentDerand(pack_bits(&bits)))?;

        let SilentSpcotMasks(masks) = ch.recv_frame()?;
        if masks.len() != p.t * p.tree_depth * 32 {
            return Err(OtError::Malformed("SPCOT mask batch has wrong length"));
        }
        let SilentSpcotSums(sums) = ch.recv_frame()?;
        if sums.len() != p.t * 16 {
            return Err(OtError::Malformed("SPCOT correction batch has wrong length"));
        }

        let mut sparse: Vec<(bool, Block)> = Vec::with_capacity(p.n);
        for (tree, &alpha) in alphas.iter().enumerate() {
            // One batched unmasking hash per tree.
            let mut h = Vec::with_capacity(p.tree_depth);
            for l in 0..p.tree_depth {
                let z = xz[tree * p.tree_depth + l].1;
                let tw = Block::from(SPCOT_TWEAK | u128::from(self.bump_tweak()));
                h.push(z ^ tw);
            }
            self.hash.hash_blocks(&mut h);
            let mut ks = Vec::with_capacity(p.tree_depth);
            for (l, &hz) in h.iter().enumerate() {
                let complement = ((alpha >> (p.tree_depth - 1 - l)) & 1) ^ 1;
                let off = (tree * p.tree_depth + l) * 32 + complement * 16;
                let m = Block::from_bytes(masks[off..off + 16].try_into().expect("16 bytes"));
                ks.push(m ^ hz);
            }
            let mut leaves = spcot::reconstruct(&self.hash, alpha, p.tree_depth, &ks);
            let mut punctured =
                Block::from_bytes(sums[tree * 16..(tree + 1) * 16].try_into().expect("16 bytes"));
            for (j, &leaf) in leaves.iter().enumerate() {
                if j != alpha {
                    punctured ^= leaf;
                }
            }
            leaves[alpha] = punctured;
            for (j, leaf) in leaves.into_iter().enumerate() {
                sparse.push((j == alpha, leaf));
            }
        }

        let idx = lpn_indices(p);
        let mut out = Vec::with_capacity(p.n);
        for (j, &(e, r)) in sparse.iter().enumerate() {
            let mut x = e;
            let mut z = r;
            for &i in &idx[j * p.d..(j + 1) * p.d] {
                let (u, w) = uw[i as usize];
                x ^= u;
                z ^= w;
            }
            out.push((x, z));
        }
        self.reserve = out.split_off(p.n - p.reserve());
        self.pool.extend(out);
        Ok(())
    }

    fn bump_tweak(&mut self) -> u64 {
        let t = self.tweak;
        self.tweak += 1;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_net::{run_pair, Endpoint, NetworkModel};

    fn run_cot<A: Send, B: Send>(
        f_s: impl FnOnce(&mut SilentCotSender, &mut Endpoint) -> A + Send,
        f_r: impl FnOnce(&mut SilentCotReceiver, &mut Endpoint) -> B + Send,
    ) -> (A, B) {
        let (a, b, _) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = StdRng::seed_from_u64(21);
                let mut s = SilentCotSender::setup(ch, &mut rng).expect("sender setup");
                f_s(&mut s, ch)
            },
            move |ch| {
                let mut rng = StdRng::seed_from_u64(22);
                let mut r = SilentCotReceiver::setup(ch, &mut rng).expect("receiver setup");
                f_r(&mut r, ch)
            },
        );
        (a, b)
    }

    #[test]
    fn expanded_cots_satisfy_the_correlation() {
        let m = 100;
        let ((ys, delta), xzs) = run_cot(
            move |s, ch| {
                let ys = s.take(ch, m).expect("sender take");
                (ys, s.delta())
            },
            move |r, ch| r.take(ch, m).expect("receiver take"),
        );
        let mut ones = 0;
        for (j, (&y, &(x, z))) in ys.iter().zip(&xzs).enumerate() {
            let want = if x { y ^ delta } else { y };
            assert_eq!(z, want, "cot {j}");
            ones += usize::from(x);
        }
        // Choice bits are pseudorandom, not constant.
        assert!(ones > m / 4 && ones < 3 * m / 4, "suspicious bit balance: {ones}/{m}");
    }

    #[test]
    fn pool_survives_multiple_refills() {
        // Drain past one refill's yield so a second refill (self-seeded
        // from the reserve, no new bootstrap) must run.
        let m = LpnParams::CI.refill_yield() + 10;
        let ((ys, delta), xzs) = run_cot(
            move |s, ch| {
                let a = s.take(ch, m).expect("take 1");
                let b = s.take(ch, 5).expect("take 2");
                (([a, b].concat()), s.delta())
            },
            move |r, ch| {
                let a = r.take(ch, m).expect("take 1");
                let b = r.take(ch, 5).expect("take 2");
                [a, b].concat()
            },
        );
        for (j, (&y, &(x, z))) in ys.iter().zip(&xzs).enumerate() {
            assert_eq!(z, if x { y ^ delta } else { y }, "cot {j}");
        }
    }

    #[test]
    fn lpn_code_is_deterministic_and_in_range() {
        let p = LpnParams::CI;
        let a = lpn_indices(p);
        let b = lpn_indices(p);
        assert_eq!(a, b);
        assert_eq!(a.len(), p.n * p.d);
        assert!(a.iter().all(|&i| (i as usize) < p.k));
    }
}
