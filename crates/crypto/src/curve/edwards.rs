//! Twisted-Edwards points in extended coordinates (RFC 8032 formulas).

use super::field::Fe;
use super::hex_to_le_bytes;
use std::sync::OnceLock;

/// Affine x of the ed25519 base point (big-endian hex).
const BASE_X_HEX: &str = "216936d3cd6e53fec0a4e231fdd6dc5c692cc7609525a7b2c9562d608f25d51a";
/// Affine y of the ed25519 base point (big-endian hex).
const BASE_Y_HEX: &str = "6666666666666666666666666666666666666666666666666666666666666658";
/// The prime group order ℓ (big-endian hex).
const ORDER_HEX: &str = "1000000000000000000000000000000014def9dea2f79cd65812631a5cf5d3ed";

fn curve_d() -> &'static Fe {
    static D: OnceLock<Fe> = OnceLock::new();
    D.get_or_init(|| {
        // d = -121665 / 121666 mod p
        Fe::from_u64(121665).neg().mul(&Fe::from_u64(121666).invert())
    })
}

/// Error returned when a received 64-byte encoding is not a curve point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidPointError;

impl std::fmt::Display for InvalidPointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "encoding does not describe a point on the curve")
    }
}

impl std::error::Error for InvalidPointError {}

/// A point on the ed25519 twisted-Edwards curve in extended coordinates
/// `(X : Y : Z : T)` with `x = X/Z`, `y = Y/Z`, `T = XY/Z`.
///
/// ```
/// use abnn2_crypto::curve::EdwardsPoint;
/// let b = EdwardsPoint::base();
/// let two_b = b.add(&b);
/// assert_eq!(two_b, b.double());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct EdwardsPoint {
    x: Fe,
    y: Fe,
    z: Fe,
    t: Fe,
}

impl EdwardsPoint {
    /// The neutral element (0, 1).
    #[must_use]
    pub fn identity() -> Self {
        EdwardsPoint { x: Fe::ZERO, y: Fe::ONE, z: Fe::ONE, t: Fe::ZERO }
    }

    /// The standard base point of prime order ℓ.
    #[must_use]
    pub fn base() -> Self {
        static B: OnceLock<EdwardsPoint> = OnceLock::new();
        *B.get_or_init(|| {
            let x = Fe::from_bytes(&hex_to_le_bytes(BASE_X_HEX));
            let y = Fe::from_bytes(&hex_to_le_bytes(BASE_Y_HEX));
            let p = EdwardsPoint { x, y, z: Fe::ONE, t: x.mul(&y) };
            assert!(p.is_on_curve(), "hardcoded base point must lie on the curve");
            p
        })
    }

    /// The group order ℓ as little-endian bytes (useful for tests and for
    /// sampling scalars below the order).
    #[must_use]
    pub fn order_le_bytes() -> [u8; 32] {
        hex_to_le_bytes(ORDER_HEX)
    }

    /// Point addition (RFC 8032 §5.1.4, complete for a = −1).
    #[must_use]
    pub fn add(&self, rhs: &EdwardsPoint) -> EdwardsPoint {
        let a = self.y.sub(&self.x).mul(&rhs.y.sub(&rhs.x));
        let b = self.y.add(&self.x).mul(&rhs.y.add(&rhs.x));
        let two_d = curve_d().add(curve_d());
        let c = self.t.mul(&two_d).mul(&rhs.t);
        let d = self.z.add(&self.z).mul(&rhs.z);
        let e = b.sub(&a);
        let f = d.sub(&c);
        let g = d.add(&c);
        let h = b.add(&a);
        EdwardsPoint { x: e.mul(&f), y: g.mul(&h), z: f.mul(&g), t: e.mul(&h) }
    }

    /// Point doubling (RFC 8032 §5.1.4).
    #[must_use]
    pub fn double(&self) -> EdwardsPoint {
        let a = self.x.square();
        let b = self.y.square();
        let c = self.z.square().add(&self.z.square());
        let h = a.add(&b);
        let e = h.sub(&self.x.add(&self.y).square());
        let g = a.sub(&b);
        let f = c.add(&g);
        EdwardsPoint { x: e.mul(&f), y: g.mul(&h), z: f.mul(&g), t: e.mul(&h) }
    }

    /// Point negation.
    #[must_use]
    pub fn neg(&self) -> EdwardsPoint {
        EdwardsPoint { x: self.x.neg(), y: self.y, z: self.z, t: self.t.neg() }
    }

    /// `self - rhs`.
    #[must_use]
    pub fn sub(&self, rhs: &EdwardsPoint) -> EdwardsPoint {
        self.add(&rhs.neg())
    }

    /// Scalar multiplication by a little-endian 256-bit scalar
    /// (double-and-add; not constant-time — see crate security note).
    #[must_use]
    pub fn scalar_mul(&self, scalar_le: &[u8; 32]) -> EdwardsPoint {
        let mut acc = EdwardsPoint::identity();
        for bit in (0..256).rev() {
            acc = acc.double();
            if (scalar_le[bit / 8] >> (bit % 8)) & 1 == 1 {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// Checks the curve equation `(−X² + Y²)·Z² = Z⁴ + d·X²·Y²` and the
    /// extended-coordinate invariant `T·Z = X·Y`.
    #[must_use]
    pub fn is_on_curve(&self) -> bool {
        let xx = self.x.square();
        let yy = self.y.square();
        let zz = self.z.square();
        let lhs = yy.sub(&xx).mul(&zz);
        let rhs = zz.square().add(&curve_d().mul(&xx).mul(&yy));
        lhs == rhs && self.t.mul(&self.z) == self.x.mul(&self.y)
    }

    /// Uncompressed affine encoding `x || y` (64 bytes).
    #[must_use]
    pub fn to_bytes(&self) -> [u8; 64] {
        let zinv = self.z.invert();
        let x = self.x.mul(&zinv);
        let y = self.y.mul(&zinv);
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&x.to_bytes());
        out[32..].copy_from_slice(&y.to_bytes());
        out
    }

    /// Decodes and validates an uncompressed encoding.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidPointError`] if the coordinates do not satisfy the
    /// curve equation — a mandatory check when receiving points from the
    /// other (possibly misbehaving) party.
    pub fn from_bytes(bytes: &[u8; 64]) -> Result<EdwardsPoint, InvalidPointError> {
        let x = Fe::from_bytes(bytes[..32].try_into().expect("32 bytes"));
        let y = Fe::from_bytes(bytes[32..].try_into().expect("32 bytes"));
        let p = EdwardsPoint { x, y, z: Fe::ONE, t: x.mul(&y) };
        if p.is_on_curve() {
            Ok(p)
        } else {
            Err(InvalidPointError)
        }
    }
}

impl PartialEq for EdwardsPoint {
    fn eq(&self, other: &Self) -> bool {
        // (X1/Z1 == X2/Z2) && (Y1/Z1 == Y2/Z2) via cross-multiplication.
        self.x.mul(&other.z) == other.x.mul(&self.z) && self.y.mul(&other.z) == other.y.mul(&self.z)
    }
}

impl Eq for EdwardsPoint {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_scalar(seed: u64) -> [u8; 32] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut s = [0u8; 32];
        rng.fill(&mut s);
        s[31] &= 0x0f; // stay well below 2^252 for clean group-order behaviour
        s
    }

    #[test]
    fn base_point_is_on_curve() {
        assert!(EdwardsPoint::base().is_on_curve());
    }

    #[test]
    fn identity_laws() {
        let b = EdwardsPoint::base();
        let id = EdwardsPoint::identity();
        assert_eq!(b.add(&id), b);
        assert_eq!(id.add(&b), b);
        assert_eq!(b.sub(&b), id);
    }

    #[test]
    fn double_matches_add() {
        let b = EdwardsPoint::base();
        assert_eq!(b.double(), b.add(&b));
        let four = b.double().double();
        assert_eq!(four, b.add(&b).add(&b).add(&b));
        assert!(four.is_on_curve());
    }

    #[test]
    fn order_annihilates_base() {
        let b = EdwardsPoint::base();
        let order = EdwardsPoint::order_le_bytes();
        assert_eq!(b.scalar_mul(&order), EdwardsPoint::identity());
    }

    #[test]
    fn scalar_mul_distributes() {
        let b = EdwardsPoint::base();
        let s1 = random_scalar(1);
        let s2 = random_scalar(2);
        // (s1)B + (s2)B == (s1+s2)B  (no overflow: both < 2^252, sum < 2^253)
        let mut sum = [0u8; 32];
        let mut carry = 0u16;
        for i in 0..32 {
            let v = s1[i] as u16 + s2[i] as u16 + carry;
            sum[i] = v as u8;
            carry = v >> 8;
        }
        assert_eq!(b.scalar_mul(&s1).add(&b.scalar_mul(&s2)), b.scalar_mul(&sum));
    }

    #[test]
    fn diffie_hellman_agreement() {
        // a(bB) == b(aB) — the property the base OT relies on.
        let b = EdwardsPoint::base();
        let sa = random_scalar(10);
        let sb = random_scalar(11);
        let shared1 = b.scalar_mul(&sa).scalar_mul(&sb);
        let shared2 = b.scalar_mul(&sb).scalar_mul(&sa);
        assert_eq!(shared1, shared2);
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = EdwardsPoint::base().scalar_mul(&random_scalar(3));
        let q = EdwardsPoint::from_bytes(&p.to_bytes()).expect("valid point");
        assert_eq!(p, q);
    }

    #[test]
    fn invalid_point_rejected() {
        let mut bytes = EdwardsPoint::base().to_bytes();
        bytes[0] ^= 1; // corrupt x
        assert_eq!(EdwardsPoint::from_bytes(&bytes), Err(InvalidPointError));
    }

    #[test]
    fn negation_cancels() {
        let p = EdwardsPoint::base().scalar_mul(&random_scalar(4));
        assert_eq!(p.add(&p.neg()), EdwardsPoint::identity());
        assert!(p.neg().is_on_curve());
    }
}
