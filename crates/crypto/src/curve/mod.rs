//! Curve25519 in twisted-Edwards form (the ed25519 curve), built from
//! scratch for the Chou–Orlandi base OT.
//!
//! The curve is `-x² + y² = 1 + d·x²·y²` over GF(2²⁵⁵ − 19) with
//! `d = -121665/121666`. We provide field arithmetic ([`field::Fe`]),
//! extended-coordinate points ([`EdwardsPoint`]) and scalar multiplication —
//! everything a Diffie-Hellman-style base OT needs. Points travel
//! uncompressed (64 bytes, validated on receipt) to avoid needing a field
//! square root; base OT bandwidth is negligible so the 2× size is harmless.
//!
//! Not constant-time; see the crate-level security note.

pub mod edwards;
pub mod field;

pub use edwards::EdwardsPoint;
pub use field::Fe;

/// Parses a big-endian hex string into 32 little-endian bytes.
///
/// # Panics
///
/// Panics if the string is not 64 hex characters.
#[must_use]
pub fn hex_to_le_bytes(hex: &str) -> [u8; 32] {
    assert_eq!(hex.len(), 64, "expected 64 hex chars");
    let mut out = [0u8; 32];
    for i in 0..32 {
        let byte = u8::from_str_radix(&hex[2 * i..2 * i + 2], 16).expect("valid hex");
        out[31 - i] = byte;
    }
    out
}
