//! Arithmetic in GF(2²⁵⁵ − 19) with 5 × 51-bit limbs.

const MASK51: u64 = (1u64 << 51) - 1;

/// A field element of GF(2²⁵⁵ − 19).
///
/// Limbs are little-endian base-2⁵¹ digits kept loosely reduced (< 2⁵² after
/// every public operation), which keeps all intermediate products within
/// `u128` range.
#[derive(Debug, Clone, Copy)]
pub struct Fe(pub(crate) [u64; 5]);

impl Fe {
    /// The additive identity.
    pub const ZERO: Fe = Fe([0; 5]);
    /// The multiplicative identity.
    pub const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    /// Embeds a small integer.
    #[must_use]
    pub fn from_u64(x: u64) -> Fe {
        let mut f = Fe::ZERO;
        f.0[0] = x & MASK51;
        f.0[1] = x >> 51;
        f
    }

    /// Loads 32 little-endian bytes; the top bit (bit 255) is ignored, as in
    /// all Curve25519 codecs.
    #[must_use]
    pub fn from_bytes(b: &[u8; 32]) -> Fe {
        let load = |off: usize| -> u64 {
            let mut v = [0u8; 8];
            v.copy_from_slice(&b[off..off + 8]);
            u64::from_le_bytes(v)
        };
        Fe([
            load(0) & MASK51,
            (load(6) >> 3) & MASK51,
            (load(12) >> 6) & MASK51,
            (load(19) >> 1) & MASK51,
            (load(24) >> 12) & MASK51,
        ])
    }

    /// Canonical 32-byte little-endian encoding (fully reduced mod p).
    #[must_use]
    pub fn to_bytes(self) -> [u8; 32] {
        let mut h = self;
        h.carry();
        h.carry();
        // Compute h mod p exactly: q = 1 iff h >= p.
        let mut q = (h.0[0].wrapping_add(19)) >> 51;
        for i in 1..5 {
            q = (h.0[i].wrapping_add(q)) >> 51;
        }
        h.0[0] = h.0[0].wrapping_add(19 * q);
        let mut carry = 0u64;
        for limb in &mut h.0 {
            let v = limb.wrapping_add(carry);
            *limb = v & MASK51;
            carry = v >> 51;
        }
        // The final carry (the subtracted 2^255) is dropped.

        let mut out = [0u8; 32];
        let mut acc: u128 = 0;
        let mut acc_bits = 0u32;
        let mut idx = 0usize;
        for &limb in &h.0 {
            acc |= (limb as u128) << acc_bits;
            acc_bits += 51;
            while acc_bits >= 8 && idx < 32 {
                out[idx] = acc as u8;
                acc >>= 8;
                acc_bits -= 8;
                idx += 1;
            }
        }
        while idx < 32 {
            out[idx] = acc as u8;
            acc >>= 8;
            idx += 1;
        }
        out
    }

    fn carry(&mut self) {
        let mut c: u64 = 0;
        for limb in &mut self.0 {
            let v = *limb + c;
            *limb = v & MASK51;
            c = v >> 51;
        }
        self.0[0] += 19 * c;
    }

    /// Field addition.
    #[must_use]
    pub fn add(&self, rhs: &Fe) -> Fe {
        let mut out = Fe([
            self.0[0] + rhs.0[0],
            self.0[1] + rhs.0[1],
            self.0[2] + rhs.0[2],
            self.0[3] + rhs.0[3],
            self.0[4] + rhs.0[4],
        ]);
        out.carry();
        out
    }

    /// Field subtraction (adds 2p before subtracting to stay non-negative).
    #[must_use]
    pub fn sub(&self, rhs: &Fe) -> Fe {
        const TWO_P: [u64; 5] = [
            0x000f_ffff_ffff_ffda, // 2*(2^51-19)
            0x000f_ffff_ffff_fffe,
            0x000f_ffff_ffff_fffe,
            0x000f_ffff_ffff_fffe,
            0x000f_ffff_ffff_fffe,
        ];
        let mut out = Fe([
            self.0[0] + TWO_P[0] - rhs.0[0],
            self.0[1] + TWO_P[1] - rhs.0[1],
            self.0[2] + TWO_P[2] - rhs.0[2],
            self.0[3] + TWO_P[3] - rhs.0[3],
            self.0[4] + TWO_P[4] - rhs.0[4],
        ]);
        out.carry();
        out
    }

    /// Field negation.
    #[must_use]
    pub fn neg(&self) -> Fe {
        Fe::ZERO.sub(self)
    }

    /// Field multiplication.
    #[must_use]
    pub fn mul(&self, rhs: &Fe) -> Fe {
        let a = &self.0;
        let b = &rhs.0;
        let m = |x: u64, y: u64| -> u128 { (x as u128) * (y as u128) };

        let mut c0 =
            m(a[0], b[0]) + 19 * (m(a[1], b[4]) + m(a[2], b[3]) + m(a[3], b[2]) + m(a[4], b[1]));
        let mut c1 =
            m(a[0], b[1]) + m(a[1], b[0]) + 19 * (m(a[2], b[4]) + m(a[3], b[3]) + m(a[4], b[2]));
        let mut c2 =
            m(a[0], b[2]) + m(a[1], b[1]) + m(a[2], b[0]) + 19 * (m(a[3], b[4]) + m(a[4], b[3]));
        let mut c3 =
            m(a[0], b[3]) + m(a[1], b[2]) + m(a[2], b[1]) + m(a[3], b[0]) + 19 * m(a[4], b[4]);
        let mut c4 = m(a[0], b[4]) + m(a[1], b[3]) + m(a[2], b[2]) + m(a[3], b[1]) + m(a[4], b[0]);

        c1 += c0 >> 51;
        c0 &= MASK51 as u128;
        c2 += c1 >> 51;
        c1 &= MASK51 as u128;
        c3 += c2 >> 51;
        c2 &= MASK51 as u128;
        c4 += c3 >> 51;
        c3 &= MASK51 as u128;
        let carry = (c4 >> 51) as u64;
        c4 &= MASK51 as u128;
        let mut out = Fe([c0 as u64, c1 as u64, c2 as u64, c3 as u64, c4 as u64]);
        out.0[0] += 19 * carry;
        out.carry();
        out
    }

    /// Field squaring.
    #[must_use]
    pub fn square(&self) -> Fe {
        self.mul(self)
    }

    /// Exponentiation by a little-endian 32-byte exponent.
    #[must_use]
    pub fn pow(&self, exp_le: &[u8; 32]) -> Fe {
        let mut acc = Fe::ONE;
        for bit in (0..256).rev() {
            acc = acc.square();
            if (exp_le[bit / 8] >> (bit % 8)) & 1 == 1 {
                acc = acc.mul(self);
            }
        }
        acc
    }

    /// Multiplicative inverse via Fermat (x^{p−2}).
    ///
    /// Returns zero for zero input.
    #[must_use]
    pub fn invert(&self) -> Fe {
        // p - 2 = 2^255 - 21, little-endian bytes: eb ff … ff 7f
        let mut exp = [0xffu8; 32];
        exp[0] = 0xeb;
        exp[31] = 0x7f;
        self.pow(&exp)
    }

    /// True if the canonical encoding is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.to_bytes() == [0u8; 32]
    }
}

impl PartialEq for Fe {
    fn eq(&self, other: &Self) -> bool {
        self.to_bytes() == other.to_bytes()
    }
}

impl Eq for Fe {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fe_rand(seed: u64) -> Fe {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = [0u8; 32];
        rng.fill(&mut b);
        b[31] &= 0x7f;
        Fe::from_bytes(&b)
    }

    #[test]
    fn byte_round_trip_small() {
        for v in [0u64, 1, 19, 0xffff_ffff] {
            let f = Fe::from_u64(v);
            let b = f.to_bytes();
            assert_eq!(Fe::from_bytes(&b), f);
            assert_eq!(u64::from_le_bytes(b[..8].try_into().unwrap()), v);
        }
    }

    #[test]
    fn p_reduces_to_zero() {
        // p = 2^255 - 19 encoded little-endian.
        let mut p = [0xffu8; 32];
        p[0] = 0xed;
        p[31] = 0x7f;
        assert!(Fe::from_bytes(&p).is_zero());
    }

    #[test]
    fn p_minus_one_is_minus_one() {
        let mut pm1 = [0xffu8; 32];
        pm1[0] = 0xec;
        pm1[31] = 0x7f;
        let f = Fe::from_bytes(&pm1);
        assert_eq!(f.add(&Fe::ONE).to_bytes(), [0u8; 32]);
        assert_eq!(Fe::ZERO.sub(&Fe::ONE), f);
    }

    #[test]
    fn invert_small_values() {
        for v in [1u64, 2, 3, 121666] {
            let f = Fe::from_u64(v);
            assert_eq!(f.mul(&f.invert()), Fe::ONE, "v = {v}");
        }
    }

    #[test]
    fn known_product_sqrt_m1() {
        // sqrt(-1) = 2^((p-1)/4); check that its square is -1.
        let mut exp = [0u8; 32];
        // (p-1)/4 = (2^255 - 20)/4 = 2^253 - 5, LE bytes: fb ff .. ff 1f
        exp[0] = 0xfb;
        for b in exp.iter_mut().take(31).skip(1) {
            *b = 0xff;
        }
        exp[31] = 0x1f;
        let i = Fe::from_u64(2).pow(&exp);
        assert_eq!(i.square(), Fe::ZERO.sub(&Fe::ONE));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn field_axioms(s1: u64, s2: u64, s3: u64) {
            let (a, b, c) = (fe_rand(s1), fe_rand(s2), fe_rand(s3));
            prop_assert_eq!(a.add(&b), b.add(&a));
            prop_assert_eq!(a.mul(&b), b.mul(&a));
            prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
            prop_assert_eq!(a.sub(&b).add(&b), a);
            prop_assert_eq!(a.add(&a.neg()).to_bytes(), [0u8; 32]);
        }

        #[test]
        fn inverse_is_two_sided(s: u64) {
            let a = fe_rand(s);
            prop_assume!(!a.is_zero());
            prop_assert_eq!(a.mul(&a.invert()), Fe::ONE);
            prop_assert_eq!(a.invert().invert(), a);
        }

        #[test]
        fn square_matches_mul(s: u64) {
            let a = fe_rand(s);
            prop_assert_eq!(a.square(), a.mul(&a));
        }

        #[test]
        fn bytes_round_trip(s: u64) {
            let a = fe_rand(s);
            prop_assert_eq!(Fe::from_bytes(&a.to_bytes()), a);
        }
    }
}
