//! Fixed-key AES random-oracle instantiation.
//!
//! OT extension and half-gates garbling both model their hash `H(i, x)` as a
//! (tweakable, correlation-robust) random oracle. We instantiate it the way
//! practical MPC systems do: a Matyas–Meyer–Oseas compression function over
//! a fixed-key AES permutation π,
//!
//! ```text
//! H(tweak, x) = π(x ⊕ tweak) ⊕ (x ⊕ tweak)
//! ```
//!
//! with a Merkle–Damgård chain for inputs longer than one block and a
//! length/tweak finalization. The permutation key is a nothing-up-my-sleeve
//! constant. This is *heuristically* a random oracle (as in the paper's RO
//! model); see the crate-level security note.

use crate::{Aes128, Block, Prg};

/// Tweakable hash with 128-bit output backed by fixed-key AES.
///
/// ```
/// use abnn2_crypto::RoHash;
/// let h = RoHash::new();
/// let a = h.hash_block(0, 7u128.into());
/// let b = h.hash_block(1, 7u128.into());
/// assert_ne!(a, b); // tweak separates instances
/// ```
#[derive(Debug, Clone)]
pub struct RoHash {
    pi: Aes128,
}

impl RoHash {
    /// Creates the oracle with the standard fixed key.
    #[must_use]
    pub fn new() -> Self {
        // "ABNN2 fixed key!" as bytes — an arbitrary public constant.
        let key = Block::from_bytes(*b"ABNN2 fixed key!");
        RoHash { pi: Aes128::new(key) }
    }

    /// One-block hash `H(tweak, x)` (MMO with tweak).
    #[must_use]
    pub fn hash_block(&self, tweak: u128, x: Block) -> Block {
        let sigma = x ^ Block::from(tweak);
        self.pi.encrypt_block(sigma) ^ sigma
    }

    /// Batched MMO hashing through the selected
    /// [`crate::backend::CryptoBackend`]: each `sigmas[i]` must hold the
    /// whitened input `xᵢ ⊕ tweakᵢ` on entry and holds
    /// `H(tweakᵢ, xᵢ) = π(σᵢ) ⊕ σᵢ` on return.
    ///
    /// Callers build the σ array (the tweak XOR is free next to the hash
    /// cost) so one flat slice drives the whole batch. Bit-identical to
    /// per-call [`hash_block`](Self::hash_block) on every backend.
    pub fn hash_blocks(&self, sigmas: &mut [Block]) {
        crate::backend::backend().mmo_hash_blocks(&self.pi, sigmas);
    }

    /// [`hash_blocks`](Self::hash_blocks) sharded over `threads` scoped
    /// workers. Each lane is independent, so the output is byte-identical
    /// for any thread count; small batches stay on the calling thread.
    pub fn hash_blocks_par(&self, sigmas: &mut [Block], threads: usize) {
        // Below this, thread spawn/join overhead beats the hashing itself.
        const MIN_PAR: usize = 4096;
        if threads <= 1 || sigmas.len() < MIN_PAR {
            self.hash_blocks(sigmas);
            return;
        }
        let shard = sigmas.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for chunk in sigmas.chunks_mut(shard) {
                scope.spawn(move || self.hash_blocks(chunk));
            }
        });
    }

    /// Hashes an arbitrary byte string to one block under a tweak.
    ///
    /// Zero-padded Merkle–Damgård over the MMO compression function, with the
    /// input length mixed into the finalization so padding cannot collide.
    #[must_use]
    pub fn hash_bytes(&self, tweak: u128, data: &[u8]) -> Block {
        let mut h = Block::ZERO;
        for chunk in data.chunks(16) {
            let mut buf = [0u8; 16];
            buf[..chunk.len()].copy_from_slice(chunk);
            h = self.hash_block(0, h ^ Block::from_bytes(buf));
        }
        self.hash_block(tweak ^ ((data.len() as u128) << 64).rotate_left(32), h)
    }

    /// Hashes a byte string and expands the digest to `out_len` bytes via an
    /// AES-CTR PRG keyed by the digest.
    ///
    /// This is the "output of the random oracle can pack multiple
    /// multiplications" packing from SecureML/§4.1.3: one oracle call yields
    /// a mask of arbitrary width.
    #[must_use]
    pub fn hash_expand(&self, tweak: u128, data: &[u8], out_len: usize) -> Vec<u8> {
        let seed = self.hash_bytes(tweak, data);
        Prg::from_seed(seed).bytes(out_len)
    }
}

impl Default for RoHash {
    fn default() -> Self {
        RoHash::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_hash_is_tweak_and_input_sensitive() {
        let h = RoHash::new();
        let x = Block::from(99u128);
        assert_eq!(h.hash_block(5, x), h.hash_block(5, x));
        assert_ne!(h.hash_block(5, x), h.hash_block(6, x));
        assert_ne!(h.hash_block(5, x), h.hash_block(5, Block::from(100u128)));
    }

    #[test]
    fn byte_hash_distinguishes_lengths() {
        let h = RoHash::new();
        // Same prefix, different zero padding lengths must not collide.
        assert_ne!(h.hash_bytes(0, &[1, 2, 3]), h.hash_bytes(0, &[1, 2, 3, 0]));
        assert_ne!(h.hash_bytes(0, &[]), h.hash_bytes(0, &[0u8; 16]));
    }

    #[test]
    fn byte_hash_matches_block_hash_semantics() {
        let h = RoHash::new();
        let a = h.hash_bytes(7, b"hello world, this is more than 16 bytes");
        let b = h.hash_bytes(7, b"hello world, this is more than 16 bytes");
        assert_eq!(a, b);
    }

    #[test]
    fn expand_produces_requested_length_and_is_deterministic() {
        let h = RoHash::new();
        let a = h.hash_expand(1, b"seed", 100);
        let b = h.hash_expand(1, b"seed", 100);
        assert_eq!(a.len(), 100);
        assert_eq!(a, b);
        let c = h.hash_expand(2, b"seed", 100);
        assert_ne!(a, c);
    }

    #[test]
    fn expand_prefix_consistency() {
        let h = RoHash::new();
        let long = h.hash_expand(1, b"seed", 64);
        let short = h.hash_expand(1, b"seed", 32);
        assert_eq!(&long[..32], &short[..]);
    }
}
