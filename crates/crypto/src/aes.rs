//! Portable AES-128 (encrypt-only).
//!
//! Used as the PRG/random-oracle engine throughout the OT and garbling
//! stacks, mirroring the fixed-key AES constructions of modern MPC
//! implementations. Verified against the FIPS-197 appendix vectors.

use crate::Block;

const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

#[inline]
fn xtime(x: u8) -> u8 {
    (x << 1) ^ (((x >> 7) & 1) * 0x1b)
}

/// The four classic encryption T-tables, derived from the S-box at first
/// use. `TE[0][x] = (2·S(x), S(x), S(x), 3·S(x))` packed big-endian, and
/// `TE[k]` is `TE[0]` rotated right by `k` bytes.
fn te_tables() -> &'static [[u32; 256]; 4] {
    use std::sync::OnceLock;
    static TE: OnceLock<[[u32; 256]; 4]> = OnceLock::new();
    TE.get_or_init(|| {
        let mut te = [[0u32; 256]; 4];
        for x in 0..256 {
            let s = SBOX[x];
            let s2 = xtime(s);
            let s3 = s2 ^ s;
            let w = u32::from_be_bytes([s2, s, s, s3]);
            te[0][x] = w;
            te[1][x] = w.rotate_right(8);
            te[2][x] = w.rotate_right(16);
            te[3][x] = w.rotate_right(24);
        }
        te
    })
}

/// An AES-128 cipher with a fixed expanded key (encryption direction only —
/// MPC constructions never need decryption). Uses the T-table formulation;
/// the straightforward byte-wise rounds are kept as a test reference.
///
/// ```
/// use abnn2_crypto::{Aes128, Block};
/// let key = Block::from_bytes([0u8; 16]);
/// let aes = Aes128::new(key);
/// let c = aes.encrypt_block(Block::ZERO);
/// assert_ne!(c, Block::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
    round_key_words: [[u32; 4]; 11],
}

impl Aes128 {
    /// Expands `key` into the 11 round keys.
    #[must_use]
    pub fn new(key: Block) -> Self {
        let kb = key.to_bytes();
        let mut w = [[0u8; 4]; 44];
        for (i, chunk) in kb.chunks_exact(4).enumerate() {
            w[i].copy_from_slice(chunk);
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        let mut round_key_words = [[0u32; 4]; 11];
        for r in 0..11 {
            for c in 0..4 {
                round_keys[r][4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
                round_key_words[r][c] = u32::from_be_bytes(w[4 * r + c]);
            }
        }
        Aes128 { round_keys, round_key_words }
    }

    /// The 11 expanded round keys, each in AES state byte order. Exposed
    /// for batched backends ([`mod@crate::backend`]) that re-load the schedule
    /// into vector registers.
    #[must_use]
    pub fn round_keys(&self) -> &[[u8; 16]; 11] {
        &self.round_keys
    }

    /// Encrypts a batch of blocks in place through the selected
    /// [`crate::backend::CryptoBackend`]. Bit-identical to per-block
    /// [`encrypt_block`](Self::encrypt_block) on every backend.
    pub fn encrypt_blocks(&self, blocks: &mut [Block]) {
        crate::backend::backend().aes_encrypt_blocks(self, blocks);
    }

    /// Encrypts one 16-byte block.
    ///
    /// Always the portable T-table path — scalar call sites keep zero
    /// dispatch overhead and double as the oracle for the batched API.
    #[must_use]
    pub fn encrypt_block(&self, pt: Block) -> Block {
        let te = te_tables();
        let b = pt.to_bytes();
        let rk = &self.round_key_words;
        let mut s = [0u32; 4];
        for c in 0..4 {
            s[c] =
                u32::from_be_bytes([b[4 * c], b[4 * c + 1], b[4 * c + 2], b[4 * c + 3]]) ^ rk[0][c];
        }
        for rkr in rk.iter().take(10).skip(1) {
            let mut t = [0u32; 4];
            for c in 0..4 {
                t[c] = te[0][(s[c] >> 24) as usize]
                    ^ te[1][((s[(c + 1) % 4] >> 16) & 0xff) as usize]
                    ^ te[2][((s[(c + 2) % 4] >> 8) & 0xff) as usize]
                    ^ te[3][(s[(c + 3) % 4] & 0xff) as usize]
                    ^ rkr[c];
            }
            s = t;
        }
        // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
        let mut out = [0u8; 16];
        for c in 0..4 {
            let w = u32::from_be_bytes([
                SBOX[(s[c] >> 24) as usize],
                SBOX[((s[(c + 1) % 4] >> 16) & 0xff) as usize],
                SBOX[((s[(c + 2) % 4] >> 8) & 0xff) as usize],
                SBOX[(s[(c + 3) % 4] & 0xff) as usize],
            ]) ^ rk[10][c];
            out[4 * c..4 * c + 4].copy_from_slice(&w.to_be_bytes());
        }
        Block::from_bytes(out)
    }

    /// Reference byte-wise implementation, kept to cross-check the T-table
    /// fast path in tests.
    #[must_use]
    pub fn encrypt_block_reference(&self, pt: Block) -> Block {
        let mut s = pt.to_bytes();
        add_round_key(&mut s, &self.round_keys[0]);
        for r in 1..10 {
            sub_bytes(&mut s);
            shift_rows(&mut s);
            mix_columns(&mut s);
            add_round_key(&mut s, &self.round_keys[r]);
        }
        sub_bytes(&mut s);
        shift_rows(&mut s);
        add_round_key(&mut s, &self.round_keys[10]);
        Block::from_bytes(s)
    }
}

#[inline]
fn add_round_key(s: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        s[i] ^= rk[i];
    }
}

#[inline]
fn sub_bytes(s: &mut [u8; 16]) {
    for b in s.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

/// State layout is column-major: byte `s[4c + r]` is row r, column c.
#[inline]
fn shift_rows(s: &mut [u8; 16]) {
    let t = *s;
    for c in 0..4 {
        s[4 * c + 1] = t[4 * ((c + 1) % 4) + 1];
        s[4 * c + 2] = t[4 * ((c + 2) % 4) + 2];
        s[4 * c + 3] = t[4 * ((c + 3) % 4) + 3];
    }
}

#[inline]
fn mix_columns(s: &mut [u8; 16]) {
    for c in 0..4 {
        let col = &mut s[4 * c..4 * c + 4];
        let (a0, a1, a2, a3) = (col[0], col[1], col[2], col[3]);
        let t = a0 ^ a1 ^ a2 ^ a3;
        col[0] = a0 ^ t ^ xtime(a0 ^ a1);
        col[1] = a1 ^ t ^ xtime(a1 ^ a2);
        col[2] = a2 ^ t ^ xtime(a2 ^ a3);
        col[3] = a3 ^ t ^ xtime(a3 ^ a0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_197_appendix_b() {
        // Key = 2b7e151628aed2a6abf7158809cf4f3c, PT = 3243f6a8885a308d313198a2e0370734
        let key = Block::from_bytes([
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ]);
        let pt = Block::from_bytes([
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ]);
        let expect = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        assert_eq!(Aes128::new(key).encrypt_block(pt).to_bytes(), expect);
    }

    #[test]
    fn fips_197_appendix_c1() {
        // Key = 000102030405060708090a0b0c0d0e0f, PT = 00112233445566778899aabbccddeeff
        let key = Block::from_bytes(std::array::from_fn(|i| i as u8));
        let pt = Block::from_bytes(std::array::from_fn(|i| (i as u8) * 0x11));
        let expect = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        assert_eq!(Aes128::new(key).encrypt_block(pt).to_bytes(), expect);
    }

    #[test]
    fn t_table_matches_reference() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..64 {
            let key = Block::from(rng.gen::<u128>());
            let pt = Block::from(rng.gen::<u128>());
            let aes = Aes128::new(key);
            assert_eq!(aes.encrypt_block(pt), aes.encrypt_block_reference(pt));
        }
    }

    #[test]
    fn deterministic_and_key_sensitive() {
        let k1 = Block::from(1u128);
        let k2 = Block::from(2u128);
        let pt = Block::from(42u128);
        assert_eq!(Aes128::new(k1).encrypt_block(pt), Aes128::new(k1).encrypt_block(pt));
        assert_ne!(Aes128::new(k1).encrypt_block(pt), Aes128::new(k2).encrypt_block(pt));
    }
}
