//! Backend-dispatched batched crypto primitives.
//!
//! Every hot loop in the OT and garbling stacks bottoms out in one of three
//! fixed-key-AES shapes: raw block encryption (PRG, label encryption), the
//! MMO compression `π(σ) ⊕ σ` (random-oracle hashing), and CTR-mode stream
//! expansion. [`CryptoBackend`] exposes exactly those three as slice-batched
//! operations so one implementation choice accelerates all of them:
//!
//! * [`Portable`] — the T-table software AES that has always been here. It
//!   is the test oracle: every other backend must be bit-identical to it.
//! * [`AesNi`] — hardware AES via `aesenc`/`aesenclast`, 8 blocks in
//!   flight per iteration to cover the instruction latency. Only
//!   constructed after `is_x86_feature_detected!("aes")` succeeds.
//!
//! The process-wide backend is chosen once, on first use, by [`backend`]:
//! AES-NI when the CPU has it, otherwise portable. The `ABNN2_CRYPTO_BACKEND`
//! environment variable (`portable` | `aesni`) overrides detection — CI runs
//! the whole suite under `portable` so the fallback path cannot rot.
//!
//! Both backends compute the *same function* (AES-128 is deterministic), so
//! the choice can never change protocol transcripts — only wall-clock time.

use crate::{Aes128, Block};
use std::sync::OnceLock;

/// Slice-batched fixed-key-AES primitives.
///
/// All methods operate in place and must be bit-identical across backends;
/// [`Portable`] is the defining implementation.
pub trait CryptoBackend: Send + Sync {
    /// Short stable identifier (`"portable"`, `"aesni"`) for logs/benches.
    fn name(&self) -> &'static str;

    /// Encrypts every block in place under `aes`.
    fn aes_encrypt_blocks(&self, aes: &Aes128, blocks: &mut [Block]);

    /// Batched Matyas–Meyer–Oseas compression: each `sigmas[i]` holds the
    /// whitened input σᵢ on entry and `π(σᵢ) ⊕ σᵢ` on return.
    fn mmo_hash_blocks(&self, pi: &Aes128, sigmas: &mut [Block]);

    /// CTR-mode fill: `out[i] = AES_key(counter + i)` (wrapping).
    fn prg_fill(&self, aes: &Aes128, counter: u128, out: &mut [Block]) {
        for (i, b) in out.iter_mut().enumerate() {
            *b = Block::from(counter.wrapping_add(i as u128));
        }
        self.aes_encrypt_blocks(aes, out);
    }
}

/// The software T-table backend — always available, and the oracle the
/// accelerated backends are tested against.
#[derive(Debug)]
pub struct Portable;

impl CryptoBackend for Portable {
    fn name(&self) -> &'static str {
        "portable"
    }

    fn aes_encrypt_blocks(&self, aes: &Aes128, blocks: &mut [Block]) {
        for b in blocks {
            *b = aes.encrypt_block(*b);
        }
    }

    fn mmo_hash_blocks(&self, pi: &Aes128, sigmas: &mut [Block]) {
        for s in sigmas {
            *s = pi.encrypt_block(*s) ^ *s;
        }
    }
}

/// Hardware AES-NI backend. Not publicly constructible: the only instance
/// is handed out by [`backend`]/[`choose_backend`] after CPU-feature
/// detection, so its `unsafe` intrinsic calls are always sound.
#[cfg(target_arch = "x86_64")]
#[derive(Debug)]
pub struct AesNi(());

#[cfg(target_arch = "x86_64")]
mod aesni {
    use super::{Aes128, Block};
    use core::arch::x86_64::{
        __m128i, _mm_aesenc_si128, _mm_aesenclast_si128, _mm_loadu_si128, _mm_setzero_si128,
        _mm_storeu_si128, _mm_xor_si128,
    };

    /// Blocks kept in flight per main-loop iteration: enough independent
    /// chains to hide `aesenc` latency on every µarch that has the
    /// instruction.
    const LANES: usize = 8;

    #[inline]
    #[target_feature(enable = "aes,sse2")]
    unsafe fn load_round_keys(aes: &Aes128) -> [__m128i; 11] {
        let mut rk = [_mm_setzero_si128(); 11];
        for (r, key) in aes.round_keys().iter().enumerate() {
            rk[r] = _mm_loadu_si128(key.as_ptr().cast());
        }
        rk
    }

    /// Runs the 10 AES rounds over `LANES` independent states.
    #[inline]
    #[target_feature(enable = "aes,sse2")]
    unsafe fn rounds(rk: &[__m128i; 11], s: &mut [__m128i; LANES]) {
        for x in s.iter_mut() {
            *x = _mm_xor_si128(*x, rk[0]);
        }
        for r in rk.iter().take(10).skip(1) {
            for x in s.iter_mut() {
                *x = _mm_aesenc_si128(*x, *r);
            }
        }
        for x in s.iter_mut() {
            *x = _mm_aesenclast_si128(*x, rk[10]);
        }
    }

    #[inline]
    #[target_feature(enable = "aes,sse2")]
    unsafe fn rounds_one(rk: &[__m128i; 11], mut x: __m128i) -> __m128i {
        x = _mm_xor_si128(x, rk[0]);
        for r in rk.iter().take(10).skip(1) {
            x = _mm_aesenc_si128(x, *r);
        }
        _mm_aesenclast_si128(x, rk[10])
    }

    /// # Safety
    ///
    /// Requires the `aes` and `sse2` CPU features.
    #[target_feature(enable = "aes,sse2")]
    pub unsafe fn encrypt_blocks(aes: &Aes128, blocks: &mut [Block]) {
        let rk = load_round_keys(aes);
        // Block is repr(transparent) over u128; on x86-64 its in-memory
        // bytes are exactly the AES state byte order (`Block::to_bytes`).
        let ptr = blocks.as_mut_ptr().cast::<__m128i>();
        let n = blocks.len();
        let mut i = 0;
        while i + LANES <= n {
            let mut s = [_mm_setzero_si128(); LANES];
            for (j, x) in s.iter_mut().enumerate() {
                *x = _mm_loadu_si128(ptr.add(i + j));
            }
            rounds(&rk, &mut s);
            for (j, x) in s.iter().enumerate() {
                _mm_storeu_si128(ptr.add(i + j), *x);
            }
            i += LANES;
        }
        while i < n {
            let x = rounds_one(&rk, _mm_loadu_si128(ptr.add(i)));
            _mm_storeu_si128(ptr.add(i), x);
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Requires the `aes` and `sse2` CPU features.
    #[target_feature(enable = "aes,sse2")]
    pub unsafe fn mmo_hash_blocks(pi: &Aes128, sigmas: &mut [Block]) {
        let rk = load_round_keys(pi);
        let ptr = sigmas.as_mut_ptr().cast::<__m128i>();
        let n = sigmas.len();
        let mut i = 0;
        while i + LANES <= n {
            let mut inp = [_mm_setzero_si128(); LANES];
            for (j, x) in inp.iter_mut().enumerate() {
                *x = _mm_loadu_si128(ptr.add(i + j));
            }
            let mut s = inp;
            rounds(&rk, &mut s);
            for (j, x) in s.iter().enumerate() {
                _mm_storeu_si128(ptr.add(i + j), _mm_xor_si128(*x, inp[j]));
            }
            i += LANES;
        }
        while i < n {
            let inp = _mm_loadu_si128(ptr.add(i));
            let x = rounds_one(&rk, inp);
            _mm_storeu_si128(ptr.add(i), _mm_xor_si128(x, inp));
            i += 1;
        }
    }
}

#[cfg(target_arch = "x86_64")]
impl CryptoBackend for AesNi {
    fn name(&self) -> &'static str {
        "aesni"
    }

    fn aes_encrypt_blocks(&self, aes: &Aes128, blocks: &mut [Block]) {
        // SAFETY: AesNi is only handed out after `aes_ni_available()`.
        unsafe { aesni::encrypt_blocks(aes, blocks) }
    }

    fn mmo_hash_blocks(&self, pi: &Aes128, sigmas: &mut [Block]) {
        // SAFETY: AesNi is only handed out after `aes_ni_available()`.
        unsafe { aesni::mmo_hash_blocks(pi, sigmas) }
    }
}

static PORTABLE: Portable = Portable;
#[cfg(target_arch = "x86_64")]
static AES_NI: AesNi = AesNi(());

/// Whether the running CPU supports the AES-NI backend.
#[must_use]
pub fn aes_ni_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("aes") && std::arch::is_x86_feature_detected!("sse2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Resolves a backend from an explicit request (the value of
/// `ABNN2_CRYPTO_BACKEND`) or, with `None`, from CPU-feature detection.
///
/// Pure and side-effect free — tests use it to obtain both backends
/// simultaneously for parity checks regardless of what [`backend`] chose.
///
/// # Panics
///
/// Panics if `requested` names an unknown backend, or `"aesni"` on a CPU
/// without AES-NI.
#[must_use]
pub fn choose_backend(requested: Option<&str>) -> &'static dyn CryptoBackend {
    match requested {
        Some("portable") => &PORTABLE,
        Some("aesni") => {
            assert!(
                aes_ni_available(),
                "ABNN2_CRYPTO_BACKEND=aesni but this CPU has no AES-NI support"
            );
            #[cfg(target_arch = "x86_64")]
            {
                &AES_NI
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                unreachable!("aes_ni_available() is false off x86_64")
            }
        }
        Some(other) => {
            panic!(
                "unknown ABNN2_CRYPTO_BACKEND value {other:?} (expected \"portable\" or \"aesni\")"
            )
        }
        None => {
            #[cfg(target_arch = "x86_64")]
            if aes_ni_available() {
                return &AES_NI;
            }
            &PORTABLE
        }
    }
}

/// The process-wide backend: chosen on first call from
/// `ABNN2_CRYPTO_BACKEND` (if set) or CPU-feature detection, then cached
/// for the lifetime of the process.
#[must_use]
pub fn backend() -> &'static dyn CryptoBackend {
    static CHOSEN: OnceLock<&'static dyn CryptoBackend> = OnceLock::new();
    *CHOSEN.get_or_init(|| choose_backend(std::env::var("ABNN2_CRYPTO_BACKEND").ok().as_deref()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn portable_batch_matches_scalar() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let aes = Aes128::new(Block::random(&mut rng));
        let inputs: Vec<Block> = (0..37).map(|_| Block::random(&mut rng)).collect();
        let mut batch = inputs.clone();
        Portable.aes_encrypt_blocks(&aes, &mut batch);
        for (inp, out) in inputs.iter().zip(&batch) {
            assert_eq!(*out, aes.encrypt_block(*inp));
        }
    }

    #[test]
    fn portable_mmo_matches_definition() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let pi = Aes128::new(Block::random(&mut rng));
        let sigma = Block::random(&mut rng);
        let mut batch = [sigma];
        Portable.mmo_hash_blocks(&pi, &mut batch);
        assert_eq!(batch[0], pi.encrypt_block(sigma) ^ sigma);
    }

    #[test]
    fn prg_fill_is_ctr_mode() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let aes = Aes128::new(Block::random(&mut rng));
        let mut out = [Block::ZERO; 5];
        Portable.prg_fill(&aes, 40, &mut out);
        for (i, b) in out.iter().enumerate() {
            assert_eq!(*b, aes.encrypt_block(Block::from(40 + i as u128)));
        }
    }

    #[test]
    fn prg_fill_counter_wraps() {
        let aes = Aes128::new(Block::from(7u128));
        let mut out = [Block::ZERO; 2];
        Portable.prg_fill(&aes, u128::MAX, &mut out);
        assert_eq!(out[0], aes.encrypt_block(Block::from(u128::MAX)));
        assert_eq!(out[1], aes.encrypt_block(Block::ZERO));
    }

    #[test]
    fn requested_portable_is_portable() {
        assert_eq!(choose_backend(Some("portable")).name(), "portable");
    }

    #[test]
    #[should_panic(expected = "unknown ABNN2_CRYPTO_BACKEND")]
    fn unknown_backend_rejected() {
        let _ = choose_backend(Some("vaes512"));
    }

    #[test]
    fn detection_choice_is_consistent() {
        let chosen = choose_backend(None);
        if aes_ni_available() {
            assert_eq!(chosen.name(), "aesni");
        } else {
            assert_eq!(chosen.name(), "portable");
        }
    }

    #[test]
    fn aesni_bit_equals_portable_when_available() {
        if !aes_ni_available() {
            return;
        }
        let ni = choose_backend(Some("aesni"));
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        // Odd length exercises both the 8-wide main loop and the remainder.
        for len in [0usize, 1, 7, 8, 9, 64, 203] {
            let aes = Aes128::new(Block::random(&mut rng));
            let inputs: Vec<Block> = (0..len).map(|_| Block::random(&mut rng)).collect();
            let (mut a, mut b) = (inputs.clone(), inputs.clone());
            Portable.aes_encrypt_blocks(&aes, &mut a);
            ni.aes_encrypt_blocks(&aes, &mut b);
            assert_eq!(a, b, "aes len={len}");
            let (mut a, mut b) = (inputs.clone(), inputs.clone());
            Portable.mmo_hash_blocks(&aes, &mut a);
            ni.mmo_hash_blocks(&aes, &mut b);
            assert_eq!(a, b, "mmo len={len}");
            let ctr: u128 = rng.gen();
            let mut a = vec![Block::ZERO; len];
            let mut b = vec![Block::ZERO; len];
            Portable.prg_fill(&aes, ctr, &mut a);
            ni.prg_fill(&aes, ctr, &mut b);
            assert_eq!(a, b, "prg len={len}");
        }
    }
}
