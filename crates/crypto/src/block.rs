//! The 128-bit block type used for OT messages, wire labels and PRG seeds.

use rand::Rng;
use std::fmt;
use std::ops::{BitAnd, BitXor, BitXorAssign};

/// A 128-bit value with XOR arithmetic.
///
/// ```
/// use abnn2_crypto::Block;
/// let a = Block::from(1u128);
/// let b = Block::from(3u128);
/// assert_eq!((a ^ b).as_u128(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(transparent)]
pub struct Block(u128);

impl Block {
    /// The all-zero block.
    pub const ZERO: Block = Block(0);
    /// The all-one block.
    pub const ONES: Block = Block(u128::MAX);

    /// Creates a block from raw little-endian bytes.
    #[must_use]
    pub fn from_bytes(b: [u8; 16]) -> Self {
        Block(u128::from_le_bytes(b))
    }

    /// Little-endian byte representation.
    #[must_use]
    pub fn to_bytes(self) -> [u8; 16] {
        self.0.to_le_bytes()
    }

    /// The raw 128-bit value.
    #[must_use]
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// Least significant bit, used as the point-and-permute color bit in
    /// garbling.
    #[must_use]
    pub fn lsb(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns the block with its least significant bit forced to `bit`.
    #[must_use]
    pub fn with_lsb(self, bit: bool) -> Block {
        Block((self.0 & !1) | bit as u128)
    }

    /// Samples a uniformly random block.
    #[must_use]
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Block(rng.gen())
    }

    /// XORs a slice of blocks together.
    #[must_use]
    pub fn xor_all(blocks: &[Block]) -> Block {
        blocks.iter().fold(Block::ZERO, |a, &b| a ^ b)
    }
}

impl From<u128> for Block {
    fn from(v: u128) -> Self {
        Block(v)
    }
}

impl From<u64> for Block {
    fn from(v: u64) -> Self {
        Block(v as u128)
    }
}

impl BitXor for Block {
    type Output = Block;
    fn bitxor(self, rhs: Block) -> Block {
        Block(self.0 ^ rhs.0)
    }
}

impl BitXorAssign for Block {
    fn bitxor_assign(&mut self, rhs: Block) {
        self.0 ^= rhs.0;
    }
}

impl BitAnd for Block {
    type Output = Block;
    fn bitand(self, rhs: Block) -> Block {
        Block(self.0 & rhs.0)
    }
}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Block({:032x})", self.0)
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xor_identities() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = Block::random(&mut rng);
        assert_eq!(a ^ Block::ZERO, a);
        assert_eq!(a ^ a, Block::ZERO);
        assert_eq!(a ^ Block::ONES ^ Block::ONES, a);
    }

    #[test]
    fn byte_round_trip() {
        let b = Block::from(0x0123_4567_89ab_cdef_u128);
        assert_eq!(Block::from_bytes(b.to_bytes()), b);
    }

    #[test]
    fn lsb_manipulation() {
        let b = Block::from(6u128);
        assert!(!b.lsb());
        assert!(b.with_lsb(true).lsb());
        assert_eq!(b.with_lsb(true).as_u128(), 7);
        assert_eq!(b.with_lsb(false), b);
    }

    #[test]
    fn xor_all_folds() {
        let xs = [Block::from(1u128), Block::from(2u128), Block::from(4u128)];
        assert_eq!(Block::xor_all(&xs).as_u128(), 7);
        assert_eq!(Block::xor_all(&[]), Block::ZERO);
    }

    #[test]
    fn debug_is_nonempty_hex() {
        assert_eq!(format!("{:?}", Block::from(15u128)), format!("Block({:032x})", 15));
    }
}
