//! Cryptographic substrate for the ABNN² reproduction.
//!
//! The original system leans on the ABY framework, which in turn uses AES-NI
//! based hashing, OT-friendly PRGs and an elliptic-curve base OT. This crate
//! rebuilds those primitives from scratch:
//!
//! * [`Block`] — the ubiquitous 128-bit label/seed type,
//! * [`Aes128`] — a portable AES-128 (encrypt-only, FIPS-197 tested),
//! * [`RoHash`] — a fixed-key Matyas–Meyer–Oseas random-oracle instantiation
//!   with tweaks, as used by OT extension and garbling,
//! * [`Prg`] — an AES-CTR pseudorandom generator,
//! * [`mod@backend`] — slice-batched AES/MMO/PRG primitives behind a
//!   runtime-selected [`CryptoBackend`] (portable T-tables everywhere,
//!   AES-NI where the CPU has it; `ABNN2_CRYPTO_BACKEND` overrides),
//! * [`sha256`] — SHA-256 (FIPS 180-4 tested) for base-OT key derivation,
//! * [`curve`] — Curve25519 in twisted-Edwards form for the Chou–Orlandi
//!   base OT.
//!
//! # Security note
//!
//! This is a research reproduction: the implementations are tested for
//! correctness against standard vectors but are **not** constant-time and
//! have not been audited. Do not reuse for production secrets.

pub mod aes;
pub mod backend;
pub mod block;
pub mod curve;
pub mod hash;
pub mod prg;
pub mod sha256;

pub use aes::Aes128;
pub use backend::{aes_ni_available, backend, choose_backend, CryptoBackend};
pub use block::Block;
pub use hash::RoHash;
pub use prg::Prg;
