//! Baseline protocols the paper compares against, reimplemented from their
//! published descriptions over the same substrates as ABNN² (so measured
//! differences reflect protocol design, not implementation stacks):
//!
//! * [`secureml`] — SecureML's (S&P'17) OT-based multiplication triplets:
//!   ℓ correlated OTs per scalar product, independent of weight bitwidth
//!   (Table 3's comparison),
//! * [`minionn`] — MiniONN's (CCS'17) offline linear phase on additively
//!   homomorphic encryption with plaintext slot packing (Table 4's
//!   comparison; see `DESIGN.md` for the SEAL→Paillier substitution),
//! * [`quotient`] — QUOTIENT's (CCS'19) ternary multiplication via two
//!   binary correlated OTs per weight (Table 5's comparison).
//!
//! All baselines share ABNN²'s online machinery (`abnn2_core::relu`,
//! `abnn2_core::inference::layer_share`) exactly as the paper shares its GC
//! layer across systems.

pub mod minionn;
pub mod quotient;
pub mod secureml;
