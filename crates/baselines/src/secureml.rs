//! SecureML's OT-based multiplication triplets (Mohassel–Zhang, S&P 2017).
//!
//! For shares of `w·r` with an ℓ-bit `w`, SecureML runs ℓ correlated OTs —
//! one per bit of `w`, with correlation `2ᵇ·r` — regardless of how few bits
//! the weight actually needs. This is exactly the `(1,…,1)` fragmentation
//! in ABNN² terms but over the *full* ring width, which is why the paper's
//! advantage grows as quantization shrinks η below ℓ (Tables 1 and 3).
//!
//! Matrix–vector only (`o = 1`), which is all Table 3 exercises.

use abnn2_core::ProtocolError;
use abnn2_math::Ring;
use abnn2_net::Transport;
use abnn2_ot::{IknpReceiver, IknpSender};

/// Upper bound on OTs per extension batch, to bound peak memory on the
/// multi-million-OT workloads of Table 3.
const CHUNK: usize = 1 << 20;

/// Server side (weight holder, OT chooser): learns `u` with
/// `u + v = W·r (mod 2^ℓ)` for its ring-encoded `m×n` weight matrix.
///
/// # Errors
///
/// Returns [`ProtocolError`] on dimension mismatch or OT failure.
pub fn matvec_server<T: Transport>(
    ch: &mut T,
    ot: &mut IknpReceiver,
    weights: &[u64],
    m: usize,
    n: usize,
    ring: Ring,
) -> Result<Vec<u64>, ProtocolError> {
    if weights.len() != m * n {
        return Err(ProtocolError::Dimension("weights length must be m*n"));
    }
    let l = ring.bits() as usize;
    let total = m * n * l;
    let mut u = vec![0u64; m];
    let mut done = 0usize;
    while done < total {
        let count = CHUNK.min(total - done);
        let choices: Vec<bool> = (done..done + count)
            .map(|t| {
                let (idx, b) = (t / l, t % l);
                (weights[idx] >> b) & 1 == 1
            })
            .collect();
        let got = ot.recv_correlated(ch, &choices, ring)?;
        for (off, &x) in got.iter().enumerate() {
            let idx = (done + off) / l;
            let i = idx / n;
            u[i] = ring.add(u[i], x);
        }
        done += count;
    }
    Ok(u)
}

/// Client side (vector holder, OT sender): learns `v` with
/// `u + v = W·r (mod 2^ℓ)`.
///
/// # Errors
///
/// Returns [`ProtocolError`] on OT failure.
pub fn matvec_client<T: Transport>(
    ch: &mut T,
    ot: &mut IknpSender,
    r: &[u64],
    m: usize,
    ring: Ring,
) -> Result<Vec<u64>, ProtocolError> {
    let n = r.len();
    let l = ring.bits() as usize;
    let total = m * n * l;
    let mut v = vec![0u64; m];
    let mut done = 0usize;
    while done < total {
        let count = CHUNK.min(total - done);
        let deltas: Vec<u64> = (done..done + count)
            .map(|t| {
                let (idx, b) = (t / l, t % l);
                let j = idx % n;
                ring.mul(1u64.checked_shl(b as u32).unwrap_or(0) & ring.mask(), r[j])
            })
            .collect();
        let x0s = ot.send_correlated(ch, &deltas, ring)?;
        for (off, &x0) in x0s.iter().enumerate() {
            let idx = (done + off) / l;
            let i = idx / n;
            v[i] = ring.sub(v[i], x0);
        }
        done += count;
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_net::{run_pair, NetworkModel};
    use rand::SeedableRng;

    fn run_matvec(
        weights: Vec<u64>,
        m: usize,
        n: usize,
        ring: Ring,
        seed: u64,
    ) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let r = ring.sample_vec(&mut rng, n);
        let r2 = r.clone();
        let (u, v, _) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 1);
                let mut ot = IknpReceiver::setup(ch, &mut rng).expect("setup");
                matvec_server(ch, &mut ot, &weights, m, n, ring).expect("server")
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 2);
                let mut ot = IknpSender::setup(ch, &mut rng).expect("setup");
                matvec_client(ch, &mut ot, &r2, m, ring).expect("client")
            },
        );
        (u, v, r)
    }

    #[test]
    fn triplets_are_correct_32_bit() {
        let ring = Ring::new(32);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let (m, n) = (3, 5);
        let weights = ring.sample_vec(&mut rng, m * n);
        let (u, v, r) = run_matvec(weights.clone(), m, n, ring, 10);
        for i in 0..m {
            let expect = ring.dot(&weights[i * n..(i + 1) * n], &r);
            assert_eq!(ring.add(u[i], v[i]), expect, "row {i}");
        }
    }

    #[test]
    fn triplets_are_correct_64_bit() {
        let ring = Ring::new(64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let (m, n) = (2, 4);
        let weights = ring.sample_vec(&mut rng, m * n);
        let (u, v, r) = run_matvec(weights.clone(), m, n, ring, 20);
        for i in 0..m {
            let expect = ring.dot(&weights[i * n..(i + 1) * n], &r);
            assert_eq!(ring.add(u[i], v[i]), expect, "row {i}");
        }
    }

    #[test]
    fn abnn2_uses_fewer_ots_for_quantized_weights() {
        // Structural check of the Table 1 relationship: SecureML runs ℓ OTs
        // per weight; ABNN² runs γ. For 8-bit weights in (2,2,2,2) over
        // ℤ_{2^64}, that is 64 vs 4.
        let ring = Ring::new(64);
        let secureml_ots = ring.bits() as usize; // per weight
        let abnn2_ots = abnn2_math::FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]).gamma();
        assert_eq!(secureml_ots, 64);
        assert_eq!(abnn2_ots, 4);
    }
}
