//! QUOTIENT's ternary multiplication (Agrawal et al., CCS 2019).
//!
//! QUOTIENT restricts weights to {−1, 0, 1} and evaluates each ternary
//! product as **two binary products** via correlated 1-out-of-2 OTs:
//! `w = w⁺ − w⁻` with `w⁺ = [w = 1]`, `w⁻ = [w = −1]`, so
//! `w·r = w⁺·r − w⁻·r`. ABNN² instead spends a single 1-out-of-3 OT
//! (Table 5's comparison).
//!
//! As in [`crate::secureml`], the server (weight holder) is the OT chooser
//! and the client supplies correlations built from its randomness `r`.

use abnn2_core::ProtocolError;
use abnn2_math::{Matrix, Ring};
use abnn2_net::Transport;
use abnn2_ot::{IknpReceiver, IknpSender};

/// Server side: learns `u` with `u + v = W·r (mod 2^ℓ)` for ternary
/// weights.
///
/// # Errors
///
/// Returns [`ProtocolError`] on dimension mismatch, out-of-domain weights,
/// or OT failure.
pub fn matvec_server<T: Transport>(
    ch: &mut T,
    ot: &mut IknpReceiver,
    weights: &[i64],
    m: usize,
    n: usize,
    ring: Ring,
) -> Result<Vec<u64>, ProtocolError> {
    if weights.len() != m * n {
        return Err(ProtocolError::Dimension("weights length must be m*n"));
    }
    if !weights.iter().all(|&w| (-1..=1).contains(&w)) {
        return Err(ProtocolError::Dimension("weight outside ternary domain"));
    }
    // Two choice bits per weight: [w = 1] then [w = −1].
    let choices: Vec<bool> = weights.iter().flat_map(|&w| [w == 1, w == -1]).collect();
    let got = ot.recv_correlated(ch, &choices, ring)?;
    let mut u = vec![0u64; m];
    for (t, &x) in got.iter().enumerate() {
        let idx = t / 2;
        let i = idx / n;
        // The second OT of each pair carries the negative branch.
        if t % 2 == 0 {
            u[i] = ring.add(u[i], x);
        } else {
            u[i] = ring.sub(u[i], x);
        }
    }
    Ok(u)
}

/// Client side: learns `v` with `u + v = W·r (mod 2^ℓ)`.
///
/// # Errors
///
/// Returns [`ProtocolError`] on OT failure.
pub fn matvec_client<T: Transport>(
    ch: &mut T,
    ot: &mut IknpSender,
    r: &[u64],
    m: usize,
    ring: Ring,
) -> Result<Vec<u64>, ProtocolError> {
    let n = r.len();
    // Correlation r_j for both the positive and the negative OT of each
    // weight.
    let deltas: Vec<u64> = (0..m * n * 2).map(|t| r[(t / 2) % n]).collect();
    let x0s = ot.send_correlated(ch, &deltas, ring)?;
    let mut v = vec![0u64; m];
    for (t, &x0) in x0s.iter().enumerate() {
        let idx = t / 2;
        let i = idx / n;
        if t % 2 == 0 {
            v[i] = ring.sub(v[i], x0);
        } else {
            v[i] = ring.add(v[i], x0);
        }
    }
    Ok(v)
}

/// Batched matrix-triplet server: like [`matvec_server`] but each OT packs
/// the whole batch row (QUOTIENT amortizes across a batch the same way
/// ABNN²'s multi-batch mode does). Output `U` is `m×o`.
///
/// # Errors
///
/// Returns [`ProtocolError`] on dimension mismatch or OT failure.
pub fn matmul_server<T: Transport>(
    ch: &mut T,
    ot: &mut IknpReceiver,
    weights: &[i64],
    m: usize,
    n: usize,
    o: usize,
    ring: Ring,
) -> Result<Matrix, ProtocolError> {
    if weights.len() != m * n {
        return Err(ProtocolError::Dimension("weights length must be m*n"));
    }
    if !weights.iter().all(|&w| (-1..=1).contains(&w)) {
        return Err(ProtocolError::Dimension("weight outside ternary domain"));
    }
    let choices: Vec<bool> = weights.iter().flat_map(|&w| [w == 1, w == -1]).collect();
    let got = ot.recv_correlated_vec(ch, &choices, o, ring)?;
    let mut u = Matrix::zeros(m, o);
    for (t, xs) in got.iter().enumerate() {
        let i = (t / 2) / n;
        for (k, &x) in xs.iter().enumerate() {
            let cur = u.get(i, k);
            u.set(i, k, if t % 2 == 0 { ring.add(cur, x) } else { ring.sub(cur, x) });
        }
    }
    Ok(u)
}

/// Batched matrix-triplet client for its random `R` (`n×o`).
///
/// # Errors
///
/// Returns [`ProtocolError`] on OT failure.
pub fn matmul_client<T: Transport>(
    ch: &mut T,
    ot: &mut IknpSender,
    r: &Matrix,
    m: usize,
    ring: Ring,
) -> Result<Matrix, ProtocolError> {
    let n = r.rows();
    let o = r.cols();
    let deltas: Vec<Vec<u64>> = (0..m * n * 2).map(|t| r.row((t / 2) % n).to_vec()).collect();
    let x0s = ot.send_correlated_vec(ch, &deltas, ring)?;
    let mut v = Matrix::zeros(m, o);
    for (t, xs) in x0s.iter().enumerate() {
        let i = (t / 2) / n;
        for (k, &x0) in xs.iter().enumerate() {
            let cur = v.get(i, k);
            v.set(i, k, if t % 2 == 0 { ring.sub(cur, x0) } else { ring.add(cur, x0) });
        }
    }
    Ok(v)
}

pub use inference::{QuotientClient, QuotientServer};

/// End-to-end QUOTIENT inference: their ternary triplets for the offline
/// linear layers, ABNN²'s shared online machinery for everything else.
pub mod inference {
    use super::{matmul_client, matmul_server};
    use abnn2_core::inference::{layer_share, PublicModelInfo};
    use abnn2_core::relu::{relu_client, relu_server, ReluVariant};
    use abnn2_core::ProtocolError;
    use abnn2_gc::{YaoEvaluator, YaoGarbler};
    use abnn2_math::Matrix;
    use abnn2_net::Transport;
    use abnn2_nn::quant::QuantizedNetwork;
    use abnn2_ot::{IknpReceiver, IknpSender};
    use rand::Rng;

    /// The QUOTIENT model-serving party (ternary weights only).
    #[derive(Debug, Clone)]
    pub struct QuotientServer {
        net: QuantizedNetwork,
    }

    /// The QUOTIENT data-owning party.
    #[derive(Debug, Clone)]
    pub struct QuotientClient {
        info: PublicModelInfo,
    }

    impl QuotientServer {
        /// Serves a ternary-quantized network.
        ///
        /// # Panics
        ///
        /// Panics if any weight is outside {−1, 0, 1}.
        #[must_use]
        pub fn new(net: QuantizedNetwork) -> Self {
            assert!(
                net.layers.iter().all(|l| l.weights.iter().all(|&w| (-1..=1).contains(&w))),
                "QUOTIENT requires ternary weights"
            );
            QuotientServer { net }
        }

        /// The public model description.
        #[must_use]
        pub fn public_info(&self) -> PublicModelInfo {
            PublicModelInfo::from(&self.net)
        }

        /// Offline + online secure inference, server side.
        ///
        /// # Errors
        ///
        /// Returns [`ProtocolError`] on any failure.
        pub fn run<T: Transport, R: Rng + ?Sized>(
            &self,
            ch: &mut T,
            batch: usize,
            rng: &mut R,
        ) -> Result<(), ProtocolError> {
            let ring = self.net.config.ring;
            let fw = self.net.config.weight_frac_bits;
            let mut ot = IknpReceiver::setup(ch, rng)?;
            let mut yao = YaoEvaluator::setup(ch, rng)?;
            let mut us = Vec::with_capacity(self.net.layers.len());
            for layer in &self.net.layers {
                us.push(matmul_server(
                    ch,
                    &mut ot,
                    &layer.weights,
                    layer.out_dim,
                    layer.in_dim,
                    batch,
                    ring,
                )?);
            }
            let n0 = self.net.layers[0].in_dim;
            let x0_bytes = ch.recv()?;
            if x0_bytes.len() != n0 * batch * ring.byte_len() {
                return Err(ProtocolError::Malformed("blinded input length"));
            }
            let mut cur = Matrix::new(n0, batch, ring.decode_slice(&x0_bytes));
            let last = self.net.layers.len() - 1;
            for (l, layer) in self.net.layers.iter().enumerate() {
                let y0 = layer_share(layer, &cur, &us[l], ring);
                if l == last {
                    ch.send(&ring.encode_slice(y0.as_slice()))?;
                    return Ok(());
                }
                let z0 =
                    relu_server(ch, &mut yao, y0.as_slice(), ring, fw, ReluVariant::Oblivious)?;
                cur = Matrix::new(layer.out_dim, batch, z0);
            }
            unreachable!("loop returns at the last layer")
        }
    }

    impl QuotientClient {
        /// Creates a client for a served ternary model.
        #[must_use]
        pub fn new(info: PublicModelInfo) -> Self {
            QuotientClient { info }
        }

        /// Offline + online secure inference, client side; returns the raw
        /// reconstructed outputs (`out_dim × batch`).
        ///
        /// # Errors
        ///
        /// Returns [`ProtocolError`] on any failure.
        pub fn run<T: Transport, R: Rng + ?Sized>(
            &self,
            ch: &mut T,
            inputs_fp: &[Vec<u64>],
            rng: &mut R,
        ) -> Result<Matrix, ProtocolError> {
            let ring = self.info.config.ring;
            let fw = self.info.config.weight_frac_bits;
            let batch = inputs_fp.len();
            let n0 = self.info.dims[0];
            if batch == 0 || inputs_fp.iter().any(|x| x.len() != n0) {
                return Err(ProtocolError::Dimension("inputs must be batch × n0"));
            }
            let mut ot = IknpSender::setup(ch, rng)?;
            let mut yao = YaoGarbler::setup(ch, rng)?;
            let n_layers = self.info.dims.len() - 1;
            let mut rs = Vec::with_capacity(n_layers);
            let mut vs = Vec::with_capacity(n_layers);
            for l in 0..n_layers {
                let r = Matrix::random(self.info.dims[l], batch, &ring, rng);
                let v = matmul_client(ch, &mut ot, &r, self.info.dims[l + 1], ring)?;
                rs.push(r);
                vs.push(v);
            }
            let mut x = Matrix::zeros(n0, batch);
            for (k, sample) in inputs_fp.iter().enumerate() {
                for (j, &val) in sample.iter().enumerate() {
                    x.set(j, k, ring.reduce(val));
                }
            }
            let x0 = x.sub(&rs[0], &ring);
            ch.send(&ring.encode_slice(x0.as_slice()))?;
            for l in 0..n_layers {
                let y1 = &vs[l];
                if l == n_layers - 1 {
                    let m = self.info.dims[n_layers];
                    let y0_bytes = ch.recv()?;
                    if y0_bytes.len() != m * batch * ring.byte_len() {
                        return Err(ProtocolError::Malformed("output share length"));
                    }
                    let y0 = Matrix::new(m, batch, ring.decode_slice(&y0_bytes));
                    return Ok(y0.add(y1, &ring));
                }
                relu_client(
                    ch,
                    &mut yao,
                    y1.as_slice(),
                    rs[l + 1].as_slice(),
                    ring,
                    fw,
                    ReluVariant::Oblivious,
                    rng,
                )?;
            }
            unreachable!("loop returns at the last layer")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_net::{run_pair, NetworkModel};
    use rand::{Rng, SeedableRng};

    fn run_matvec(
        weights: Vec<i64>,
        m: usize,
        n: usize,
        seed: u64,
    ) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
        let ring = Ring::new(32);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let r = ring.sample_vec(&mut rng, n);
        let r2 = r.clone();
        let (u, v, _) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 1);
                let mut ot = IknpReceiver::setup(ch, &mut rng).expect("setup");
                matvec_server(ch, &mut ot, &weights, m, n, ring).expect("server")
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 2);
                let mut ot = IknpSender::setup(ch, &mut rng).expect("setup");
                matvec_client(ch, &mut ot, &r2, m, ring).expect("client")
            },
        );
        (u, v, r)
    }

    #[test]
    fn ternary_triplets_correct() {
        let ring = Ring::new(32);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let (m, n) = (4, 7);
        let weights: Vec<i64> = (0..m * n).map(|_| rng.gen_range(-1i64..=1)).collect();
        let (u, v, r) = run_matvec(weights.clone(), m, n, 30);
        for i in 0..m {
            let mut expect = 0u64;
            for j in 0..n {
                expect = ring.add(expect, ring.mul_signed(r[j], weights[i * n + j]));
            }
            assert_eq!(ring.add(u[i], v[i]), expect, "row {i}");
        }
    }

    #[test]
    fn all_weight_values_exercised() {
        let (u, v, r) = run_matvec(vec![-1, 0, 1], 1, 3, 40);
        let ring = Ring::new(32);
        let expect = ring.sub(r[2], r[0]);
        assert_eq!(ring.add(u[0], v[0]), expect);
    }

    #[test]
    fn batched_matmul_triplets_correct() {
        let ring = Ring::new(32);
        let mut rng = rand::rngs::StdRng::seed_from_u64(50);
        let (m, n, o) = (3, 5, 4);
        let weights: Vec<i64> = (0..m * n).map(|_| rng.gen_range(-1i64..=1)).collect();
        let r = abnn2_math::Matrix::random(n, o, &ring, &mut rng);
        let (w2, r2) = (weights.clone(), r.clone());
        let (u, v, _) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(51);
                let mut ot = IknpReceiver::setup(ch, &mut rng).expect("setup");
                matmul_server(ch, &mut ot, &w2, m, n, o, ring).expect("server")
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(52);
                let mut ot = IknpSender::setup(ch, &mut rng).expect("setup");
                matmul_client(ch, &mut ot, &r2, m, ring).expect("client")
            },
        );
        let w_ring: Vec<u64> = weights.iter().map(|&w| ring.from_i64(w)).collect();
        let expect = abnn2_math::Matrix::new(m, n, w_ring).mul(&r, &ring);
        assert_eq!(u.add(&v, &ring), expect);
    }

    #[test]
    fn quotient_end_to_end_matches_plaintext() {
        use abnn2_math::FragmentScheme;
        use abnn2_nn::quant::{QuantConfig, QuantizedNetwork};
        use abnn2_nn::{Network, SyntheticMnist};
        let data = SyntheticMnist::generate(60, 0, 55);
        let mut net = Network::new(&[784, 8, 10], 55);
        net.train_epoch(&data.train, 0.05);
        let config = QuantConfig {
            ring: Ring::new(32),
            frac_bits: 8,
            weight_frac_bits: 0,
            scheme: FragmentScheme::ternary(),
        };
        let q = QuantizedNetwork::quantize(&net, config);
        let batch = 2;
        let codec = q.config.activation_codec();
        let inputs_fp: Vec<Vec<u64>> =
            data.train.iter().take(batch).map(|s| codec.encode_vec(&s.pixels)).collect();
        let expected: Vec<Vec<u64>> = inputs_fp.iter().map(|x| q.forward_exact(x)).collect();
        let server = inference::QuotientServer::new(q.clone());
        let client = inference::QuotientClient::new(server.public_info());
        let inputs2 = inputs_fp.clone();
        let (srv, y, _) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(56);
                server.run(ch, batch, &mut rng)
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(57);
                client.run(ch, &inputs2, &mut rng).expect("client")
            },
        );
        srv.expect("server");
        for k in 0..batch {
            assert_eq!(y.col(k), expected[k], "sample {k}");
        }
    }

    #[test]
    fn out_of_domain_rejected() {
        let ring = Ring::new(32);
        // Weight 5 is not ternary: the server errors before any OT and the
        // client observes the aborted protocol.
        let (server_res, client_res, _) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(1);
                let mut ot = IknpReceiver::setup(ch, &mut rng).expect("setup");
                matvec_server(ch, &mut ot, &[5], 1, 1, ring)
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(2);
                let mut ot = IknpSender::setup(ch, &mut rng).expect("setup");
                matvec_client(ch, &mut ot, &[9], 1, ring)
            },
        );
        assert!(matches!(server_res, Err(ProtocolError::Dimension(_))));
        assert!(client_res.is_err());
    }
}
