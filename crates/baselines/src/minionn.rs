//! MiniONN's offline linear phase on additively homomorphic encryption
//! (Liu et al., CCS 2017).
//!
//! The client encrypts its per-layer randomness `R`; the server evaluates
//! the linear layers *homomorphically* (ciphertext exponentiation by each
//! weight) and returns masked results — so offline communication and
//! compute are proportional to ciphertext size and **independent of the
//! weight bitwidth**, which is the structural property the paper's Table 4
//! comparison exercises.
//!
//! Substitutions vs the original (documented in `DESIGN.md` §2):
//!
//! * SEAL's lattice SIMD batching → Paillier plaintext **slot packing**:
//!   several batch elements share one ciphertext at `stride`-bit offsets,
//!   and one ciphertext exponentiation acts on all slots at once;
//! * signed weights are handled by the standard shift `w' = w − lo ≥ 0`,
//!   with the client removing the `lo·Σⱼ rⱼ` correction locally (it knows
//!   `R`).
//!
//! The online phase is byte-identical to ABNN²'s (shared linear step and
//! GC activations), as in the paper's experimental setup.

use abnn2_core::inference::{layer_share, PublicModelInfo};
use abnn2_core::relu::{relu_client, relu_server, ReluVariant};
use abnn2_core::ProtocolError;
use abnn2_gc::{YaoEvaluator, YaoGarbler};
use abnn2_he::paillier::{Ciphertext, Keypair, PublicKey};
use abnn2_he::BigUint;
use abnn2_math::Matrix;
use abnn2_net::Transport;
use abnn2_nn::quant::QuantizedNetwork;
use rand::Rng;

/// Key size used by the full-scale benchmarks (research-scale Paillier).
pub const DEFAULT_KEY_BITS: usize = 1024;

/// Statistical masking slack in bits.
const MASK_SLACK: usize = 40;

fn ceil_log2(x: usize) -> usize {
    x.next_power_of_two().trailing_zeros() as usize
}

/// Slot stride for a layer: room for the dot product plus the mask.
/// Always exceeds 64 bits, so a slot's low `u64` never straddles slots.
fn stride(ring_bits: usize, n_inputs: usize, weight_span_bits: usize) -> usize {
    (ring_bits + ceil_log2(n_inputs) + weight_span_bits + MASK_SLACK + 2).max(65)
}

/// Slots per ciphertext for a given key and stride.
fn slots_per_ct(key_bits: usize, stride: usize) -> usize {
    ((key_bits - 2) / stride).max(1)
}

/// Weight span: bits of `hi − lo` for the scheme's weight range.
fn weight_span_bits(info: &PublicModelInfo) -> usize {
    let (lo, hi) = info.config.scheme.weight_range();
    64 - ((hi - lo) as u64).leading_zeros() as usize
}

/// The MiniONN model-serving party.
#[derive(Debug, Clone)]
pub struct MinionnServer {
    net: QuantizedNetwork,
    variant: ReluVariant,
    key_bits: usize,
}

/// Server state after the offline phase.
#[derive(Debug)]
pub struct MinionnServerOffline {
    yao: YaoEvaluator,
    us: Vec<Matrix>,
    batch: usize,
}

/// The MiniONN data-owning party.
#[derive(Debug, Clone)]
pub struct MinionnClient {
    info: PublicModelInfo,
    variant: ReluVariant,
    key_bits: usize,
}

/// Client state after the offline phase.
#[derive(Debug)]
pub struct MinionnClientOffline {
    yao: YaoGarbler,
    rs: Vec<Matrix>,
    vs: Vec<Matrix>,
    batch: usize,
}

impl MinionnServer {
    /// Serves `net` with `key_bits`-bit Paillier keys (use
    /// [`DEFAULT_KEY_BITS`] for benchmark fidelity, smaller for tests).
    #[must_use]
    pub fn new(net: QuantizedNetwork, key_bits: usize) -> Self {
        MinionnServer { net, variant: ReluVariant::Oblivious, key_bits }
    }

    /// The public model description.
    #[must_use]
    pub fn public_info(&self) -> PublicModelInfo {
        PublicModelInfo::from(&self.net)
    }

    /// Offline phase: homomorphic triplet generation for `batch`
    /// predictions.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on any failure.
    pub fn offline<T: Transport, R: Rng + ?Sized>(
        &self,
        ch: &mut T,
        batch: usize,
        rng: &mut R,
    ) -> Result<MinionnServerOffline, ProtocolError> {
        if batch == 0 {
            return Err(ProtocolError::Dimension("batch must be positive"));
        }
        let info = self.public_info();
        let ring = self.net.config.ring;
        // Receive the client's public key (modulus only — g = n + 1).
        let n_bytes = ch.recv()?;
        let pk = PublicKey::from_modulus(BigUint::from_bytes_le(&n_bytes))
            .map_err(|_| ProtocolError::Malformed("even Paillier modulus"))?;
        let yao = YaoEvaluator::setup(ch, rng)?;

        let span = weight_span_bits(&info);
        let (lo, _) = info.config.scheme.weight_range();
        let mut us = Vec::with_capacity(self.net.layers.len());
        for layer in &self.net.layers {
            let st = stride(ring.bits() as usize, layer.in_dim, span);
            let slots = slots_per_ct(self.key_bits, st);
            let groups = batch.div_ceil(slots);
            // Receive the client's encrypted randomness: n_l × groups cts.
            let ct_len = Ciphertext::byte_len(&pk);
            let data = ch.recv()?;
            if data.len() != layer.in_dim * groups * ct_len {
                return Err(ProtocolError::Malformed("encrypted randomness batch length"));
            }
            let cts: Vec<Ciphertext> =
                data.chunks_exact(ct_len).map(Ciphertext::from_bytes).collect();

            let mut u = Matrix::zeros(layer.out_dim, batch);
            let mut reply = Vec::with_capacity(layer.out_dim * groups * ct_len);
            for i in 0..layer.out_dim {
                let row = layer.row(i);
                for g in 0..groups {
                    // Packed per-slot masks.
                    let mut mask_pack = BigUint::zero();
                    for s in 0..slots {
                        let k = g * slots + s;
                        if k >= batch {
                            break;
                        }
                        let mask = BigUint::random_bits(st - 2, rng);
                        u.set(i, k, ring.neg(mask.low_u64() & ring.mask()));
                        mask_pack = mask_pack.add(&mask.shl(s * st));
                    }
                    let mut acc = pk.encrypt(&mask_pack.rem(pk.modulus()), rng);
                    for (j, &w) in row.iter().enumerate() {
                        let w_shifted = (w - lo) as u64;
                        if w_shifted == 0 {
                            continue;
                        }
                        let term =
                            pk.scalar_mul(&cts[j * groups + g], &BigUint::from_u64(w_shifted));
                        acc = pk.add(&acc, &term);
                    }
                    reply.extend_from_slice(&acc.to_bytes(&pk));
                }
            }
            ch.send(&reply)?;
            us.push(u);
        }
        Ok(MinionnServerOffline { yao, us, batch })
    }

    /// Online phase (identical to ABNN²'s: shared linear step, GC ReLU).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on any failure.
    pub fn online<T: Transport>(
        &self,
        ch: &mut T,
        state: MinionnServerOffline,
    ) -> Result<(), ProtocolError> {
        let MinionnServerOffline { mut yao, us, batch } = state;
        let ring = self.net.config.ring;
        let fw = self.net.config.weight_frac_bits;
        let n0 = self.net.layers[0].in_dim;
        let x0_bytes = ch.recv()?;
        if x0_bytes.len() != n0 * batch * ring.byte_len() {
            return Err(ProtocolError::Malformed("blinded input length"));
        }
        let mut cur = Matrix::new(n0, batch, ring.decode_slice(&x0_bytes));
        let last = self.net.layers.len() - 1;
        for (l, layer) in self.net.layers.iter().enumerate() {
            let y0 = layer_share(layer, &cur, &us[l], ring);
            if l == last {
                ch.send(&ring.encode_slice(y0.as_slice()))?;
                return Ok(());
            }
            let z0 = relu_server(ch, &mut yao, y0.as_slice(), ring, fw, self.variant)?;
            cur = Matrix::new(layer.out_dim, batch, z0);
        }
        unreachable!("loop returns at the last layer")
    }

    /// Offline followed by online.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on any failure.
    pub fn run<T: Transport, R: Rng + ?Sized>(
        &self,
        ch: &mut T,
        batch: usize,
        rng: &mut R,
    ) -> Result<(), ProtocolError> {
        let st = self.offline(ch, batch, rng)?;
        self.online(ch, st)
    }
}

impl MinionnClient {
    /// Creates a client for a served model.
    #[must_use]
    pub fn new(info: PublicModelInfo, key_bits: usize) -> Self {
        MinionnClient { info, variant: ReluVariant::Oblivious, key_bits }
    }

    /// Offline phase: generate a key, encrypt per-layer randomness, decrypt
    /// the server's masked results into triplet shares.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on any failure.
    pub fn offline<T: Transport, R: Rng + ?Sized>(
        &self,
        ch: &mut T,
        batch: usize,
        rng: &mut R,
    ) -> Result<MinionnClientOffline, ProtocolError> {
        if batch == 0 {
            return Err(ProtocolError::Dimension("batch must be positive"));
        }
        let ring = self.info.config.ring;
        let kp = Keypair::generate(self.key_bits, rng);
        ch.send(&kp.public.modulus().to_bytes_le())?;
        let yao = YaoGarbler::setup(ch, rng)?;

        let span = weight_span_bits(&self.info);
        let (lo, _) = self.info.config.scheme.weight_range();
        let n_layers = self.info.dims.len() - 1;
        let mut rs = Vec::with_capacity(n_layers);
        let mut vs = Vec::with_capacity(n_layers);
        for l in 0..n_layers {
            let (n_l, m_l) = (self.info.dims[l], self.info.dims[l + 1]);
            let st = stride(ring.bits() as usize, n_l, span);
            let slots = slots_per_ct(self.key_bits, st);
            let groups = batch.div_ceil(slots);
            let r = Matrix::random(n_l, batch, &ring, rng);

            // Encrypt R packed along the batch dimension.
            let mut payload = Vec::with_capacity(n_l * groups * Ciphertext::byte_len(&kp.public));
            for j in 0..n_l {
                for g in 0..groups {
                    let mut pack = BigUint::zero();
                    for s in 0..slots {
                        let k = g * slots + s;
                        if k >= batch {
                            break;
                        }
                        pack = pack.add(&BigUint::from_u64(r.get(j, k)).shl(s * st));
                    }
                    payload.extend_from_slice(&kp.public.encrypt(&pack, rng).to_bytes(&kp.public));
                }
            }
            ch.send(&payload)?;

            // Receive and decrypt the masked results.
            let ct_len = Ciphertext::byte_len(&kp.public);
            let data = ch.recv()?;
            if data.len() != m_l * groups * ct_len {
                return Err(ProtocolError::Malformed("masked result batch length"));
            }
            // Per-column correction lo·Σⱼ r_jk, computable locally.
            let colsums: Vec<u64> = (0..batch)
                .map(|k| {
                    let mut s = 0u64;
                    for j in 0..n_l {
                        s = ring.add(s, r.get(j, k));
                    }
                    s
                })
                .collect();
            let mut v = Matrix::zeros(m_l, batch);
            for i in 0..m_l {
                for g in 0..groups {
                    let ct = Ciphertext::from_bytes(&data[(i * groups + g) * ct_len..][..ct_len]);
                    let plain = kp.secret.decrypt(&kp.public, &ct);
                    for s in 0..slots {
                        let k = g * slots + s;
                        if k >= batch {
                            break;
                        }
                        // stride > 64, so the slot's low 64 bits are exact.
                        let val = plain.shr(s * st).low_u64() & ring.mask();
                        // v = (Σ w'r + mask) + lo·Σr  (mod 2^ℓ): with
                        // w = w' + lo this reconstructs Σ w·r, and the mask
                        // cancels against the server's u = −mask.
                        v.set(i, k, ring.add(val, ring.mul_signed(colsums[k], lo)));
                    }
                }
            }
            rs.push(r);
            vs.push(v);
        }
        Ok(MinionnClientOffline { yao, rs, vs, batch })
    }

    /// Online phase over ring-encoded inputs; returns reconstructed raw
    /// outputs (`out_dim × batch` at `f + f_w` fractional bits).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on any failure.
    pub fn online_raw<T: Transport, R: Rng + ?Sized>(
        &self,
        ch: &mut T,
        state: MinionnClientOffline,
        inputs_fp: &[Vec<u64>],
        rng: &mut R,
    ) -> Result<Matrix, ProtocolError> {
        let MinionnClientOffline { mut yao, rs, vs, batch } = state;
        let ring = self.info.config.ring;
        let fw = self.info.config.weight_frac_bits;
        let n0 = self.info.dims[0];
        if inputs_fp.len() != batch || inputs_fp.iter().any(|x| x.len() != n0) {
            return Err(ProtocolError::Dimension("inputs must be batch × n0"));
        }
        let mut x = Matrix::zeros(n0, batch);
        for (k, sample) in inputs_fp.iter().enumerate() {
            for (j, &val) in sample.iter().enumerate() {
                x.set(j, k, ring.reduce(val));
            }
        }
        let x0 = x.sub(&rs[0], &ring);
        ch.send(&ring.encode_slice(x0.as_slice()))?;

        let n_layers = self.info.dims.len() - 1;
        for l in 0..n_layers {
            let y1 = &vs[l];
            if l == n_layers - 1 {
                let m = self.info.dims[n_layers];
                let y0_bytes = ch.recv()?;
                if y0_bytes.len() != m * batch * ring.byte_len() {
                    return Err(ProtocolError::Malformed("output share length"));
                }
                let y0 = Matrix::new(m, batch, ring.decode_slice(&y0_bytes));
                return Ok(y0.add(y1, &ring));
            }
            relu_client(
                ch,
                &mut yao,
                y1.as_slice(),
                rs[l + 1].as_slice(),
                ring,
                fw,
                self.variant,
                rng,
            )?;
        }
        unreachable!("loop returns at the last layer")
    }

    /// Offline followed by online.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on any failure.
    pub fn run<T: Transport, R: Rng + ?Sized>(
        &self,
        ch: &mut T,
        inputs_fp: &[Vec<u64>],
        rng: &mut R,
    ) -> Result<Matrix, ProtocolError> {
        let st = self.offline(ch, inputs_fp.len(), rng)?;
        self.online_raw(ch, st, inputs_fp, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_math::{FragmentScheme, Ring};
    use abnn2_net::{run_pair, NetworkModel};
    use abnn2_nn::quant::QuantConfig;
    use abnn2_nn::{Network, SyntheticMnist};
    use rand::SeedableRng;

    fn tiny_quantized(seed: u64) -> QuantizedNetwork {
        let data = SyntheticMnist::generate(80, 0, seed);
        let mut net = Network::new(&[784, 10, 10], seed);
        net.train_epoch(&data.train, 0.05);
        let config = QuantConfig {
            ring: Ring::new(32),
            frac_bits: 8,
            weight_frac_bits: 4,
            scheme: FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]),
        };
        QuantizedNetwork::quantize(&net, config)
    }

    #[test]
    fn minionn_matches_plaintext() {
        let q = tiny_quantized(90);
        let batch = 2;
        let data = SyntheticMnist::generate(batch, 0, 91);
        let codec = q.config.activation_codec();
        let inputs_fp: Vec<Vec<u64>> =
            data.train.iter().map(|s| codec.encode_vec(&s.pixels)).collect();
        let expected: Vec<Vec<u64>> = inputs_fp.iter().map(|x| q.forward_exact(x)).collect();

        let server = MinionnServer::new(q.clone(), 256);
        let client = MinionnClient::new(server.public_info(), 256);
        let inputs2 = inputs_fp.clone();
        let (srv, y, _) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(92);
                server.run(ch, batch, &mut rng)
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(93);
                client.run(ch, &inputs2, &mut rng).expect("client")
            },
        );
        srv.expect("server");
        for k in 0..batch {
            assert_eq!(y.col(k), expected[k], "sample {k}");
        }
    }

    #[test]
    fn packing_math() {
        // 1024-bit key, ℓ = 32, 784 inputs, 8-bit span: stride ≈ 92 → 11 slots.
        let st = stride(32, 784, 8);
        assert!(st >= 32 + 10 + 8 + MASK_SLACK);
        assert!(slots_per_ct(1024, st) >= 8);
        assert_eq!(slots_per_ct(256, 1000), 1);
    }

    #[test]
    fn comm_is_bitwidth_independent() {
        // Structural check: offline bytes depend on ciphertext size only.
        let q = tiny_quantized(94);
        let batch = 1;
        let server = MinionnServer::new(q.clone(), 256);
        let client = MinionnClient::new(server.public_info(), 256);
        let (_, _, report) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(95);
                let st = server.offline(ch, batch, &mut rng).expect("offline");
                drop(st);
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(96);
                let st = client.offline(ch, batch, &mut rng).expect("offline");
                drop(st);
            },
        );
        // (784 + 10) request cts + (10 + 10) reply cts at 64 bytes each,
        // plus key + OT setup: well above the pure-OT cost of ABNN².
        assert!(report.total_bytes() > 50_000, "bytes = {}", report.total_bytes());
    }
}
