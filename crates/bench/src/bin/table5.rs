//! Table 5: comparison with QUOTIENT on the Fig-4 network — LAN and WAN
//! (24.3 MB/s, 40 ms RTT), batch sizes 1 and 128.
//!
//! QUOTIENT's code is not public; like the paper we quote their reported
//! numbers, and additionally *reimplement their protocol* (ternary weights
//! via two binary correlated OTs per weight) so the comparison runs on
//! identical substrates.

use abnn2_bench::{
    fmt_mib, fmt_secs, paper_quantized, print_table, quick_mode, run_abnn2_e2e, run_quotient_e2e,
};
use abnn2_core::relu::ReluVariant;
use abnn2_math::FragmentScheme;
use abnn2_net::NetworkModel;

fn main() {
    let quick = quick_mode();
    let batches: &[usize] = if quick { &[1, 8] } else { &[1, 128] };
    println!("Table 5 reproduction: comparison with QUOTIENT, Fig-4 network, ring Z_2^32");
    if quick {
        println!("(--quick: batches {batches:?})");
    }

    let lan = NetworkModel::lan();
    let wan = NetworkModel::wan_quotient();

    let mut rows = Vec::new();
    rows.push(vec![
        "QUOTIENT (paper-reported)".to_owned(),
        "0.36".to_owned(),
        "2.24".to_owned(),
        "6.80".to_owned(),
        "8.30".to_owned(),
        "-".to_owned(),
        "-".to_owned(),
    ]);

    // Our reimplementation of QUOTIENT's ternary protocol.
    {
        let net = paper_quantized(FragmentScheme::ternary(), 32);
        let mut row = vec!["QUOTIENT (reimplemented)".to_owned()];
        let mut cells = Vec::new();
        for model in [lan, wan] {
            for &b in batches {
                let st = run_quotient_e2e(&net, b, model, 31);
                cells.push(fmt_secs(st.total()));
                eprintln!("  [QUOTIENT b={b}] {:.2}s", st.total().as_secs_f64());
            }
        }
        for &b in batches {
            let st = run_quotient_e2e(&net, b, NetworkModel::instant(), 32);
            cells.push(fmt_mib(st.bytes));
        }
        row.extend(cells);
        rows.push(row);
    }

    // ABNN² binary (the paper's "Our" row in Table 5).
    {
        let net = paper_quantized(FragmentScheme::binary(), 32);
        let mut row = vec!["Our (binary)".to_owned()];
        for model in [lan, wan] {
            for &b in batches {
                let st = run_abnn2_e2e(&net, b, model, ReluVariant::Oblivious, 33);
                row.push(fmt_secs(st.total()));
                eprintln!("  [ours b={b}] {:.2}s", st.total().as_secs_f64());
            }
        }
        for &b in batches {
            let st = run_abnn2_e2e(&net, b, NetworkModel::instant(), ReluVariant::Oblivious, 34);
            row.push(fmt_mib(st.bytes));
        }
        rows.push(row);
    }

    let headers: Vec<String> = std::iter::once("protocol".to_owned())
        .chain(batches.iter().map(|b| format!("LAN(s) b={b}")))
        .chain(batches.iter().map(|b| format!("WAN(s) b={b}")))
        .chain(batches.iter().map(|b| format!("Comm(MiB) b={b}")))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table("Table 5 — comparison with QUOTIENT", &headers_ref, &rows);

    println!("\nPaper reference: QUOTIENT 0.356s/2.24s LAN, 6.8s/8.3s WAN;");
    println!("ours 1.008s/3.13s LAN, 2.44s/10.84s WAN, 4.33/106.06MB.");
    println!(
        "(QUOTIENT's own numbers used 8-15x multi-core parallelism; this harness is single-core.)"
    );
}
