//! Table 1: analytic OT counts and communication of SecureML vs ABNN²
//! (multi-batch and one-batch), instantiated for the paper's workloads.

use abnn2_bench::print_table;
use abnn2_core::complexity::{ours_multi_batch, ours_one_batch, secureml};

fn main() {
    println!("Table 1 reproduction: OT complexity of SecureML and ABNN2");
    println!("(matrix multiplication W[m x n] * R[n x o] over Z_2^l, kappa = 128)");

    println!("\nSymbolic formulas:");
    println!("  SecureML       #OT = l(l+1)/128 * mno   comm = mno*l*(l+1)*(1 + kappa/64) bits");
    println!("  Ours M-Batch   #OT = gamma*m*n           comm = gamma*m*n*(o*l*N + 2*kappa) bits");
    println!(
        "  Ours 1-Batch   #OT = gamma*m*n           comm = gamma*m*n*(l*(N-1) + 2*kappa) bits"
    );

    // Instantiations: the Fig-4 first layer and the Table-3 microbenchmark.
    let cases: [(&str, usize, usize, usize, u32); 4] = [
        ("Fig4 L1, o=1,  l=32", 128, 784, 1, 32),
        ("Fig4 L1, o=128,l=32", 128, 784, 128, 32),
        ("128x1000 vec,  l=64", 128, 1000, 1, 64),
        ("128x100 vec,   l=64", 128, 100, 1, 64),
    ];
    // 8-bit weights as (2,2,2,2): gamma = 4, N = 4.
    let (gamma, big_n) = (4usize, 4u64);

    let mut rows = Vec::new();
    for (name, m, n, o, l) in cases {
        let s = secureml(m, n, o, l);
        let mb = ours_multi_batch(m, n, o, l, big_n, gamma);
        let ob = ours_one_batch(m, n, l, big_n, gamma);
        rows.push(vec![
            name.to_owned(),
            format!("{:.3e}", s.ot_count),
            format!("{:.2}", s.comm_mib()),
            format!("{:.3e}", mb.ot_count),
            format!("{:.2}", mb.comm_mib()),
            format!("{:.3e}", ob.ot_count),
            format!("{:.2}", ob.comm_mib()),
        ]);
    }
    print_table(
        "Table 1 (8-bit weights, (2,2,2,2) fragmentation)",
        &[
            "workload",
            "SecureML #OT",
            "SecureML MiB",
            "M-Batch #OT",
            "M-Batch MiB",
            "1-Batch #OT",
            "1-Batch MiB",
        ],
        &rows,
    );

    // Advantage vs N for one-batch: the paper caps N at 16.
    let mut rows = Vec::new();
    for (label, big_n, gamma) in [
        ("(1,...,1)  N=2,  g=8", 2u64, 8usize),
        ("(2,2,2,2)  N=4,  g=4", 4, 4),
        ("(3,3,2)    N=8,  g=3", 8, 3),
        ("(4,4)      N=16, g=2", 16, 2),
    ] {
        let c = ours_one_batch(128, 784, 32, big_n, gamma);
        rows.push(vec![
            label.to_owned(),
            format!("{:.0}", c.ot_count),
            format!("{:.2}", c.comm_mib()),
        ]);
    }
    print_table(
        "One-batch cost vs fragmentation (Fig4 L1, l=32, 8-bit weights)",
        &["fragmentation", "#OT", "comm MiB"],
        &rows,
    );
}
