//! Table 2: offline dot-product triplet generation for the 3-layer Fig-4
//! network — run time (LAN) and communication, across weight bitwidths η,
//! fragmentations, and batch sizes.

use abnn2_bench::{
    fmt_mib, fmt_secs, paper_quantized, print_table, quick_mode, run_offline_triplets,
};
use abnn2_math::FragmentScheme;
use abnn2_net::NetworkModel;

fn main() {
    let quick = quick_mode();
    let batches: &[usize] = if quick { &[1, 32] } else { &[1, 32, 64, 128] };
    println!("Table 2 reproduction: offline triplet generation, Fig-4 network, ring Z_2^32, LAN");
    if quick {
        println!("(--quick: batch sizes limited to {batches:?})");
    }

    // Rows: η ∈ {8,6,4,3} with the paper's fragmentations, plus ternary and
    // binary. Uniform 1-bit fragmentation is the paper's (1,…,1) row.
    let mut schemes: Vec<(String, FragmentScheme)> = Vec::new();
    for eta in [8u32, 6, 4, 3] {
        for s in FragmentScheme::paper_schemes(eta) {
            schemes.push((format!("eta={eta} {}", s.label()), signed_like(&s)));
        }
    }
    schemes.push(("ternary".to_owned(), FragmentScheme::ternary()));
    schemes.push(("binary".to_owned(), FragmentScheme::binary()));

    let mut headers: Vec<String> = vec!["scheme".into()];
    headers.extend(batches.iter().map(|b| format!("time(s) b={b}")));
    headers.extend(batches.iter().map(|b| format!("comm(MiB) b={b}")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    for (label, scheme) in schemes {
        let net = paper_quantized(scheme, 32);
        let mut times = Vec::new();
        let mut comms = Vec::new();
        for &b in batches {
            let stats = run_offline_triplets(&net, b, NetworkModel::lan(), 7);
            times.push(fmt_secs(stats.time));
            comms.push(fmt_mib(stats.bytes));
            eprintln!(
                "  [{label} batch={b}] {:.2}s {} MiB",
                stats.time.as_secs_f64(),
                fmt_mib(stats.bytes)
            );
        }
        let mut row = vec![label];
        row.extend(times);
        row.extend(comms);
        rows.push(row);
    }
    print_table("Table 2 (offline triplets: run time and communication)", &headers_ref, &rows);
    println!(
        "\nPaper reference (batch 1, eta=8): (1,..,1) 2.07s/32.42MB, (2,2,2,2) 1.58s/19.52MB,"
    );
    println!(
        "(3,3,2) 1.66s/18.47MB, (4,4) 1.99s/20.72MB; ternary 0.59s/4.51MB; binary 0.52s/4.06MB."
    );
}

/// Table 2's tuples denote *bit layouts*; real model weights are signed, so
/// we use the signed variant of each layout (identical OT cost).
fn signed_like(s: &FragmentScheme) -> FragmentScheme {
    // Recover the widths from the label, e.g. "(3,3,2)".
    let label = s.label();
    let widths: Vec<u32> = label
        .trim_matches(|c| c == '(' || c == ')')
        .split(',')
        .filter_map(|t| t.parse().ok())
        .collect();
    if widths.is_empty() {
        s.clone()
    } else {
        FragmentScheme::signed_bit_fields(&widths)
    }
}
