//! Table 4: end-to-end secure prediction vs MiniONN on the Fig-4 network —
//! LAN and WAN (24.3 MB/s, 40 ms RTT), batch sizes 1 and 128, rings ℤ_{2^32}
//! and ℤ_{2^64}, plus communication.

use abnn2_bench::{
    fmt_mib, fmt_secs, paper_quantized, print_table, quick_mode, run_abnn2_e2e, run_minionn_e2e,
};
use abnn2_core::relu::ReluVariant;
use abnn2_math::FragmentScheme;
use abnn2_net::NetworkModel;

fn main() {
    let quick = quick_mode();
    let batches: &[usize] = if quick { &[1, 8] } else { &[1, 128] };
    let rings: &[u32] = if quick { &[32] } else { &[32, 64] };
    let key_bits = if quick { 512 } else { 1024 };
    println!("Table 4 reproduction: end-to-end Fig-4 prediction vs MiniONN");
    println!("WAN = 24.3 MB/s, 40 ms RTT (QUOTIENT's setting, as in the paper)");
    if quick {
        println!("(--quick: batches {batches:?}, ring 32 only, {key_bits}-bit Paillier)");
    }

    let lan = NetworkModel::lan();
    let wan = NetworkModel::wan_quotient();

    for &l in rings {
        let mut rows = Vec::new();

        // MiniONN baseline (8-bit quantized model, HE offline).
        {
            let net = paper_quantized(FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]), l);
            let mut row = vec![format!("MiniONN (l={l})")];
            for &b in batches {
                let st = run_minionn_e2e(&net, b, lan, key_bits, 21);
                row.push(fmt_secs(st.total()));
                eprintln!("  [MiniONN l={l} b={b} LAN] {:.2}s", st.total().as_secs_f64());
            }
            for &b in batches {
                let st = run_minionn_e2e(&net, b, wan, key_bits, 22);
                row.push(fmt_secs(st.total()));
                eprintln!("  [MiniONN l={l} b={b} WAN] {:.2}s", st.total().as_secs_f64());
            }
            for &b in batches {
                let st = run_minionn_e2e(&net, b, NetworkModel::instant(), key_bits, 23);
                row.push(fmt_mib(st.bytes));
            }
            rows.push(row);
        }

        // ABNN² at the paper's bitwidths.
        let schemes = [
            ("Our 4(2,2)", FragmentScheme::signed_bit_fields(&[2, 2])),
            ("Our 3(2,1)", FragmentScheme::signed_bit_fields(&[2, 1])),
            ("Our ternary", FragmentScheme::ternary()),
            ("Our binary", FragmentScheme::binary()),
        ];
        for (name, scheme) in schemes {
            let net = paper_quantized(scheme, l);
            let mut row = vec![format!("{name} (l={l})")];
            for &b in batches {
                let st = run_abnn2_e2e(&net, b, lan, ReluVariant::Oblivious, 24);
                row.push(fmt_secs(st.total()));
                eprintln!("  [{name} l={l} b={b} LAN] {:.2}s", st.total().as_secs_f64());
            }
            for &b in batches {
                let st = run_abnn2_e2e(&net, b, wan, ReluVariant::Oblivious, 25);
                row.push(fmt_secs(st.total()));
                eprintln!("  [{name} l={l} b={b} WAN] {:.2}s", st.total().as_secs_f64());
            }
            for &b in batches {
                let st =
                    run_abnn2_e2e(&net, b, NetworkModel::instant(), ReluVariant::Oblivious, 26);
                row.push(fmt_mib(st.bytes));
            }
            rows.push(row);
        }

        let headers: Vec<String> = std::iter::once("protocol".to_owned())
            .chain(batches.iter().map(|b| format!("LAN(s) b={b}")))
            .chain(batches.iter().map(|b| format!("WAN(s) b={b}")))
            .chain(batches.iter().map(|b| format!("Comm(MiB) b={b}")))
            .collect();
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        print_table(&format!("Table 4 — ring Z_2^{l}"), &headers_ref, &rows);
    }

    println!(
        "\nPaper reference (l=32): MiniONN 1.14s/40.05s LAN, 3.48s/125.68s WAN, 18.1/1621.3MB;"
    );
    println!("ours binary 1.008s/5.93s LAN, 2.81s/27.61s WAN, 5.93/357.75MB.");
}
