//! Machine-readable benchmark emitter: writes a `BENCH_*.json` with one
//! entry per table workload (offline/online bytes plus wall-clock), and —
//! as the **first entry** — the silent-vs-IKNP offline comparison, with
//! the ≥10× OT-extension reduction enforced at generation time so a
//! regression can never be committed inside a fresh benchmark file.
//!
//! Run via `scripts/check.sh --bench`, or directly:
//!
//! ```text
//! cargo run --release -p abnn2-bench --bin bench_json -- BENCH_foo.json
//! ```
//!
//! The output path is the first non-flag argument (default
//! `BENCH_latest.json` in the current directory). The JSON is
//! hand-serialized — the workspace deliberately carries no serde
//! dependency.
//!
//! With `--transformer` the file instead carries the quantized-encoder
//! workload: cold (interactive matrix-triple) and warm (dealer-bundle)
//! offline costs plus the online phase of one transformer prediction,
//! bit-exactness against the plaintext oracle asserted at generation
//! time.
//!
//! With `--crypto` the file carries the primitive-layer microbench:
//! blocks/sec per [`CryptoBackend`] for raw
//! AES, MMO hashing, and CTR-mode PRG fill, plus the IKNP bit-matrix
//! transpose wall time at one and four worker threads. When the CPU has
//! AES-NI the ≥ 4× speedup over the portable backend on AES and MMO is
//! asserted at generation time, so a regression in the accelerated path
//! can never be committed inside a fresh benchmark file.
//! `scripts/check.sh --bench` writes all three files.

use abnn2_bench::{paper_quantized, run_abnn2_e2e, run_offline_triplets_with, run_quotient_e2e};
use abnn2_core::bundle::dealer_bundle_for;
use abnn2_core::complexity;
use abnn2_core::graph::{SecureGraph, ServedModel};
use abnn2_core::inference::{PublicTransformerInfo, SecureClient, SecureServer};
use abnn2_core::matmul::{triplet_client, triplet_server, TripletMode};
use abnn2_core::relu::ReluVariant;
use abnn2_crypto::{aes_ni_available, choose_backend, Aes128, Block, CryptoBackend};
use abnn2_math::{FragmentScheme, Matrix, Ring};
use abnn2_net::wire::tags;
use abnn2_net::{Endpoint, InstrumentedTransport, NetworkModel};
use abnn2_nn::quant::QuantConfig;
use abnn2_nn::transformer::QuantizedTransformer;
use abnn2_ot::{FragmentChooser, FragmentSender, OfflineMode};
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Formats a metric value: integers stay integers, everything else gets
/// four decimals (enough for seconds and reduction factors).
fn num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

/// One JSON entry; `metrics` keys are emitted in order.
fn entry(name: &str, workload: &str, kind: &str, metrics: &[(&str, f64)]) -> String {
    let body: Vec<String> =
        metrics.iter().map(|(k, v)| format!("      \"{k}\": {}", num(*v))).collect();
    format!(
        "    {{\n      \"name\": \"{name}\",\n      \"workload\": \"{workload}\",\n      \
         \"kind\": \"{kind}\",\n{}\n    }}",
        body.join(",\n")
    )
}

/// Per-tag traffic of one triplet generation on a single `m×n` layer
/// (batch `o`) under `ot`: (extension bytes, total bytes).
fn triplet_tagged(ot: OfflineMode, m: usize, n: usize, o: usize) -> (u64, u64) {
    let scheme = FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]);
    let ring = Ring::new(32);
    let weights = {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let (lo, hi) = scheme.weight_range();
        (0..m * n).map(|_| rng.gen_range(lo..=hi)).collect::<Vec<i64>>()
    };
    let (server_ep, client_ep) = Endpoint::pair(NetworkModel::instant());
    let mut client_ch = InstrumentedTransport::new(client_ep);
    let handle = client_ch.handle();
    let (s1, s2) = (scheme.clone(), scheme);
    let mode = TripletMode::for_batch(o);
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let mut ch = server_ep;
            let mut rng = rand::rngs::StdRng::seed_from_u64(42);
            let mut kk = FragmentChooser::setup(&mut ch, ot, &mut rng).expect("setup");
            triplet_server(&mut ch, &mut kk, &weights, m, n, o, &s1, ring, mode).expect("server");
        });
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        let mut kk = FragmentSender::setup(&mut client_ch, ot, &mut rng).expect("setup");
        let r = Matrix::random(n, o, &ring, &mut rng);
        triplet_client(&mut client_ch, &mut kk, &r, m, &s2, ring, mode, &mut rng).expect("client");
    });
    let ext = match ot {
        OfflineMode::Iknp => handle.tag(tags::KK_COLUMNS).total_bytes(),
        OfflineMode::Silent => [
            tags::SILENT_BASE_COLUMNS,
            tags::SILENT_DERAND,
            tags::SILENT_SPCOT_MASKS,
            tags::SILENT_SPCOT_SUMS,
        ]
        .iter()
        .map(|&t| handle.tag(t).total_bytes())
        .sum(),
    };
    (ext, handle.total().total_bytes())
}

/// The transformer workload: one quantized encoder block (4 tokens of
/// width 4, feed-forward 8, 3 classes) predicted end to end, measured
/// cold (interactive Gilboa matrix triples) and warm (dealer bundle).
fn transformer_entries(entries: &mut Vec<String>) {
    let config = QuantConfig {
        ring: Ring::new(16),
        frac_bits: 6,
        weight_frac_bits: 2,
        scheme: FragmentScheme::optimal(4),
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(81);
    let model = QuantizedTransformer::random(4, 4, 8, 3, config, &mut rng).expect("transformer");
    let x: Vec<u64> = (0..model.seq * model.d)
        .map(|_| model.config.ring.reduce(rng.gen_range(-64i64..64) as u64))
        .collect();
    let expected = model.forward_exact(&x);
    let workload = "encoder block seq 4, d 4, d_ff 8, 3 classes, eta 4, ring 2^16, batch 1";

    // Cold path: interactive offline (matrix Beaver triples over Gilboa
    // cross-products) then the online phase, instrumented client-side.
    let (server_ep, client_ep) = Endpoint::pair(NetworkModel::instant());
    let mut cch = InstrumentedTransport::new(client_ep);
    let handle = cch.handle();
    let server = SecureServer::for_model(model.clone());
    let client = SecureClient::for_model(PublicTransformerInfo::from(&model));
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let mut ch = server_ep;
            let mut rng = rand::rngs::StdRng::seed_from_u64(82);
            server.run(&mut ch, 1, &mut rng).expect("bench server");
        });
        let mut rng = rand::rngs::StdRng::seed_from_u64(83);
        let state = client.offline(&mut cch, 1, &mut rng).expect("bench offline");
        let y = client
            .online_raw(&mut cch, state, std::slice::from_ref(&x), &mut rng)
            .expect("bench online");
        assert_eq!(y.col(0), expected, "bench transformer must be bit-exact");
    });
    let wall = t0.elapsed();
    // The executors mark per-op sub-phases (`offline:op3/matmulss`, …);
    // fold them back into the two headline phases by label prefix.
    let sum_prefix = |prefix: &str| -> u64 {
        handle
            .phases()
            .iter()
            .filter(|(n, _)| n.split(':').next() == Some(prefix))
            .map(|(_, s)| s.total_bytes())
            .sum()
    };
    let offline = sum_prefix("offline");
    let online = sum_prefix("online");
    let openings = handle.tag(tags::MATMUL_OPENINGS).total_bytes();
    eprintln!(
        "[transformer_e2e_cold] offline {offline} B + online {online} B \
         (matmul openings {openings} B)"
    );
    entries.push(entry(
        "transformer_e2e_cold",
        workload,
        "measured",
        &[
            ("offline_bytes", offline as f64),
            ("online_bytes", online as f64),
            ("matmul_opening_bytes", openings as f64),
            ("wall_secs", wall.as_secs_f64()),
        ],
    ));

    // Warm path: the dealer bundle a precompute pool would hand over in
    // place of the whole interactive offline phase.
    let served = ServedModel::from(model.clone());
    let sg = SecureGraph::new(model.graph().clone(), 1).expect("secure graph");
    let t1 = Instant::now();
    let (_, cb) = dealer_bundle_for(&served, &sg, &mut rng);
    let deal_wall = t1.elapsed();
    let bundle_bytes = cb.encode(model.config.ring).len() as u64;
    eprintln!("[transformer_warm_bundle] bundle {bundle_bytes} B vs cold offline {offline} B");
    entries.push(entry(
        "transformer_warm_bundle",
        workload,
        "measured",
        &[
            ("bundle_bytes", bundle_bytes as f64),
            ("cold_offline_bytes", offline as f64),
            ("offline_reduction", offline as f64 / bundle_bytes as f64),
            ("deal_wall_secs", deal_wall.as_secs_f64()),
        ],
    ));
}

/// Blocks per primitive-microbench batch: large enough that the 8-lane
/// AES-NI main loop dominates, small enough to stay L2-resident.
const CRYPTO_BATCH: usize = 1 << 14;

/// Runs `op` on a fresh `CRYPTO_BATCH`-block buffer, doubling the
/// repetition count until the timed region exceeds 50 ms, and returns
/// blocks/sec from the final (longest, least noisy) run.
fn blocks_per_sec(mut op: impl FnMut(&mut [Block])) -> f64 {
    let mut reps = 1usize;
    loop {
        let mut buf: Vec<Block> = (0..CRYPTO_BATCH)
            .map(|i| Block::from(0x9e37_79b9_7f4a_7c15u128.wrapping_mul(i as u128 + 1)))
            .collect();
        let t0 = Instant::now();
        for _ in 0..reps {
            op(&mut buf);
        }
        let secs = t0.elapsed().as_secs_f64();
        if secs >= 0.05 || reps >= 1 << 20 {
            return (reps * CRYPTO_BATCH) as f64 / secs;
        }
        reps *= 2;
    }
}

/// Times one IKNP-shaped bit-matrix transpose (κ = 128 columns of `m`
/// bits) under `threads` workers, returning seconds per transpose.
fn transpose_secs(m: usize, threads: usize) -> f64 {
    let cols: Vec<Vec<u8>> = (0..abnn2_ot::KAPPA)
        .map(|i| (0..m.div_ceil(8)).map(|j| (i * 31 + j * 7) as u8).collect())
        .collect();
    let mut reps = 1usize;
    loop {
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(abnn2_ot::bits::transpose_columns_par(
                std::hint::black_box(&cols),
                m,
                threads,
            ));
        }
        let secs = t0.elapsed().as_secs_f64();
        if secs >= 0.05 || reps >= 1 << 20 {
            return secs / reps as f64;
        }
        reps *= 2;
    }
}

/// The `--crypto` workload: per-backend blocks/sec for the three
/// [`CryptoBackend`] primitives plus the IKNP transpose wall time. With
/// AES-NI present, asserts the ≥ 4× AES/MMO speedup the backend exists
/// to deliver.
fn crypto_entries(entries: &mut Vec<String>) {
    let workload = format!("{CRYPTO_BATCH} blocks/batch, fixed key, single core per backend");
    let mut throughput = Vec::new(); // (backend name, aes, mmo, prg)
    let mut backends: Vec<&'static dyn CryptoBackend> = vec![choose_backend(Some("portable"))];
    if aes_ni_available() {
        backends.push(choose_backend(Some("aesni")));
    }
    for be in backends {
        let aes = Aes128::new(Block::from(0x2b7e_1516_28ae_d2a6_abf7_1588_09cf_4f3cu128));
        let aes_bps = blocks_per_sec(|buf| be.aes_encrypt_blocks(&aes, buf));
        let mmo_bps = blocks_per_sec(|buf| be.mmo_hash_blocks(&aes, buf));
        let prg_bps = blocks_per_sec(|buf| be.prg_fill(&aes, 7, buf));
        eprintln!(
            "[crypto_backend_{}] aes {:.1} Mblk/s, mmo {:.1} Mblk/s, prg {:.1} Mblk/s",
            be.name(),
            aes_bps / 1e6,
            mmo_bps / 1e6,
            prg_bps / 1e6
        );
        entries.push(entry(
            &format!("crypto_backend_{}", be.name()),
            &workload,
            "measured",
            &[
                ("aes_blocks_per_sec", aes_bps),
                ("mmo_blocks_per_sec", mmo_bps),
                ("prg_blocks_per_sec", prg_bps),
            ],
        ));
        throughput.push((be.name(), aes_bps, mmo_bps, prg_bps));
    }

    if let [(_, p_aes, p_mmo, _), (_, n_aes, n_mmo, _)] = throughput[..] {
        let (aes_x, mmo_x) = (n_aes / p_aes, n_mmo / p_mmo);
        assert!(
            aes_x >= 4.0 && mmo_x >= 4.0,
            "AES-NI backend must be >= 4x portable: aes {aes_x:.2}x, mmo {mmo_x:.2}x"
        );
        entries.push(entry(
            "crypto_backend_speedup",
            &workload,
            "pinned",
            &[("aes_speedup", aes_x), ("mmo_speedup", mmo_x)],
        ));
    } else {
        eprintln!("[crypto_backend_speedup] skipped: CPU has no AES-NI");
    }

    // The other half of the offline hot path: the KAPPA-column bit-matrix
    // transpose, at the silent-OT refill size, single-threaded and with
    // the parallel schedule's sharded workers.
    let m = 1 << 13;
    let t1 = transpose_secs(m, 1);
    let t4 = transpose_secs(m, 4);
    eprintln!("[iknp_transpose] {m} OTs: {:.3} ms at 1 thread, {:.3} ms at 4", t1 * 1e3, t4 * 1e3);
    entries.push(entry(
        "iknp_transpose",
        &format!("128 columns x {m} bits, sharded rows"),
        "measured",
        &[("wall_secs_1_thread", t1), ("wall_secs_4_threads", t4)],
    ));
}

fn main() {
    let transformer = std::env::args().any(|a| a == "--transformer");
    let crypto = std::env::args().any(|a| a == "--crypto");
    let out_path = std::env::args().skip(1).find(|a| !a.starts_with("--")).unwrap_or_else(|| {
        if transformer {
            "BENCH_transformer.json"
        } else if crypto {
            "BENCH_crypto.json"
        } else {
            "BENCH_latest.json"
        }
        .to_owned()
    });
    let mut entries = Vec::new();

    if transformer || crypto {
        if transformer {
            transformer_entries(&mut entries);
        } else {
            crypto_entries(&mut entries);
        }
        let json = format!(
            "{{\n  \"schema\": \"abnn2-bench/v1\",\n  \"entries\": [\n{}\n  ]\n}}\n",
            entries.join(",\n")
        );
        std::fs::write(&out_path, &json).expect("write BENCH json");
        println!("wrote {out_path}");
        return;
    }

    // First entry: the silent subsystem's headline, on the Fig-4 first
    // layer (128×784) at η = 8. The ≥10× extension-bytes reduction is
    // asserted here so every generated BENCH file re-proves the claim.
    {
        let (m, n, o) = (128usize, 784usize, 1usize);
        let t0 = Instant::now();
        let (iknp_ext, iknp_total) = triplet_tagged(OfflineMode::Iknp, m, n, o);
        let iknp_wall = t0.elapsed();
        let t1 = Instant::now();
        let (silent_ext, silent_total) = triplet_tagged(OfflineMode::Silent, m, n, o);
        let silent_wall = t1.elapsed();
        let ext_reduction = iknp_ext as f64 / silent_ext as f64;
        assert!(
            silent_ext * 10 <= iknp_ext,
            "silent extension bytes regressed below 10x: {silent_ext} vs {iknp_ext}"
        );
        eprintln!(
            "[silent_vs_iknp_offline] extension {iknp_ext} -> {silent_ext} B ({ext_reduction:.1}x), \
             offline total {iknp_total} -> {silent_total} B"
        );
        entries.push(entry(
            "silent_vs_iknp_offline",
            "Fig-4 layer 1 (128x784), eta 8 (2,2,2,2), ring 2^32, batch 1",
            "pinned",
            &[
                ("iknp_extension_bytes", iknp_ext as f64),
                ("silent_extension_bytes", silent_ext as f64),
                ("extension_reduction", ext_reduction),
                ("iknp_offline_bytes", iknp_total as f64),
                ("silent_offline_bytes", silent_total as f64),
                ("offline_reduction", iknp_total as f64 / silent_total as f64),
                ("iknp_wall_secs", iknp_wall.as_secs_f64()),
                ("silent_wall_secs", silent_wall.as_secs_f64()),
            ],
        ));
    }

    // Table 1: analytic OT complexity — no wire traffic to measure.
    {
        let (m, n, l) = (128usize, 784usize, 32u32);
        let sml = complexity::secureml(m, n, 1, l);
        let ours = complexity::ours_one_batch(m, n, l, 4, 4);
        entries.push(entry(
            "table1_analytic_complexity",
            "128x784 matrix-vector, ring 2^32, eta 8 (gamma=4, N=4)",
            "analytic",
            &[
                ("secureml_comm_bytes", sml.comm_bits / 8.0),
                ("ours_comm_bytes", ours.comm_bits / 8.0),
                ("secureml_ot_count", sml.ot_count),
                ("ours_ot_count", ours.ot_count),
            ],
        ));
    }

    // Table 2: offline triplet generation for the whole Fig-4 network.
    {
        let net = paper_quantized(FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]), 32);
        let t0 = Instant::now();
        let iknp =
            run_offline_triplets_with(&net, 1, NetworkModel::instant(), OfflineMode::Iknp, 51);
        let iknp_wall = t0.elapsed();
        let t1 = Instant::now();
        let silent =
            run_offline_triplets_with(&net, 1, NetworkModel::instant(), OfflineMode::Silent, 51);
        let silent_wall = t1.elapsed();
        eprintln!("[table2_offline_triplets] iknp {} B, silent {} B", iknp.bytes, silent.bytes);
        entries.push(entry(
            "table2_offline_triplets",
            "Fig-4 network (784-128-128-10), eta 8 (2,2,2,2), ring 2^32, batch 1",
            "measured",
            &[
                ("iknp_offline_bytes", iknp.bytes as f64),
                ("silent_offline_bytes", silent.bytes as f64),
                ("iknp_simulated_secs", iknp.time.as_secs_f64()),
                ("silent_simulated_secs", silent.time.as_secs_f64()),
                ("iknp_wall_secs", iknp_wall.as_secs_f64()),
                ("silent_wall_secs", silent_wall.as_secs_f64()),
            ],
        ));
    }

    // Table 3: single-layer matmul microbenchmark (quick shape d=100).
    {
        let t0 = Instant::now();
        let (_, bytes) = triplet_tagged(OfflineMode::Iknp, 128, 100, 1);
        let wall = t0.elapsed();
        entries.push(entry(
            "table3_matmul_microbench",
            "128x100 matrix-vector triplet, eta 8 (2,2,2,2), ring 2^32",
            "measured",
            &[("offline_bytes", bytes as f64), ("wall_secs", wall.as_secs_f64())],
        ));
    }

    // Table 4: end-to-end secure prediction (quick shape: batch 1, LAN).
    {
        let net = paper_quantized(FragmentScheme::signed_bit_fields(&[2, 2]), 32);
        let t0 = Instant::now();
        let st = run_abnn2_e2e(&net, 1, NetworkModel::lan(), ReluVariant::Oblivious, 61);
        let wall = t0.elapsed();
        eprintln!(
            "[table4_e2e] offline {} B + online {} B, simulated {:.2}s",
            st.offline_bytes,
            st.online_bytes,
            st.total().as_secs_f64()
        );
        entries.push(entry(
            "table4_e2e_prediction",
            "Fig-4 network, eta 4 (2,2), ring 2^32, batch 1, LAN",
            "measured",
            &[
                ("offline_bytes", st.offline_bytes as f64),
                ("online_bytes", st.online_bytes as f64),
                ("total_bytes", st.bytes as f64),
                ("offline_simulated_secs", st.offline.as_secs_f64()),
                ("online_simulated_secs", st.online.as_secs_f64()),
                ("wall_secs", wall.as_secs_f64()),
            ],
        ));
    }

    // Table 5: QUOTIENT comparison at ternary weights (quick shape).
    {
        let net = paper_quantized(FragmentScheme::ternary(), 32);
        let t0 = Instant::now();
        let ours = run_abnn2_e2e(&net, 1, NetworkModel::lan(), ReluVariant::Oblivious, 71);
        let quo = run_quotient_e2e(&net, 1, NetworkModel::lan(), 72);
        let wall = t0.elapsed();
        entries.push(entry(
            "table5_quotient_comparison",
            "Fig-4 network, ternary, ring 2^32, batch 1, LAN",
            "measured",
            &[
                ("ours_offline_bytes", ours.offline_bytes as f64),
                ("ours_online_bytes", ours.online_bytes as f64),
                ("ours_simulated_secs", ours.total().as_secs_f64()),
                ("quotient_total_bytes", quo.bytes as f64),
                ("quotient_simulated_secs", quo.total().as_secs_f64()),
                ("wall_secs", wall.as_secs_f64()),
            ],
        ));
    }

    let json = format!(
        "{{\n  \"schema\": \"abnn2-bench/v1\",\n  \"entries\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write BENCH json");
    println!("wrote {out_path}");
}
