//! Table 3: offline matrix-multiplication microbenchmark vs SecureML —
//! a `128×d` quantized matrix times a `d`-vector over ℤ_{2^64}, in LAN and
//! in the 9 MB/s / 72 ms-RTT WAN, plus communication.

use abnn2_bench::{fmt_mib, fmt_secs, print_table, quick_mode, random_weights};
use abnn2_core::matmul::{triplet_client, triplet_server, TripletMode};
use abnn2_math::{FragmentScheme, Matrix, Ring};
use abnn2_net::{run_pair, NetworkModel};
use abnn2_ot::{FragmentChooser, FragmentSender, IknpReceiver, IknpSender, OfflineMode};
use rand::SeedableRng;
use std::time::Duration;

const M: usize = 128;

fn run_abnn2(scheme: &FragmentScheme, d: usize, model: NetworkModel, seed: u64) -> (Duration, u64) {
    let ring = Ring::new(64);
    let weights = random_weights(scheme, M * d, seed);
    let (s1, s2) = (scheme.clone(), scheme.clone());
    let ((), (), report) = run_pair(
        model,
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 1);
            let mut kk = FragmentChooser::setup(ch, OfflineMode::Iknp, &mut rng).expect("setup");
            let _ =
                triplet_server(ch, &mut kk, &weights, M, d, 1, &s1, ring, TripletMode::OneBatch)
                    .expect("server");
        },
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 2);
            let mut kk = FragmentSender::setup(ch, OfflineMode::Iknp, &mut rng).expect("setup");
            let r = Matrix::random(d, 1, &ring, &mut rng);
            let _ = triplet_client(ch, &mut kk, &r, M, &s2, ring, TripletMode::OneBatch, &mut rng)
                .expect("client");
        },
    );
    (report.simulated_time(), report.total_bytes())
}

fn run_secureml(d: usize, model: NetworkModel, seed: u64) -> (Duration, u64) {
    use abnn2_baselines::secureml::{matvec_client, matvec_server};
    let ring = Ring::new(64);
    let ((), (), report) = run_pair(
        model,
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 1);
            let weights = ring.sample_vec(&mut rng, M * d);
            let mut ot = IknpReceiver::setup(ch, &mut rng).expect("setup");
            let _ = matvec_server(ch, &mut ot, &weights, M, d, ring).expect("server");
        },
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 2);
            let r = ring.sample_vec(&mut rng, d);
            let mut ot = IknpSender::setup(ch, &mut rng).expect("setup");
            let _ = matvec_client(ch, &mut ot, &r, M, ring).expect("client");
        },
    );
    (report.simulated_time(), report.total_bytes())
}

fn main() {
    let quick = quick_mode();
    let ds: &[usize] = if quick { &[100, 500] } else { &[100, 500, 1000] };
    println!("Table 3 reproduction: 128 x d matrix-vector triplets, ring Z_2^64");
    if quick {
        println!("(--quick: d limited to {ds:?})");
    }

    let schemes = [
        ("binary", FragmentScheme::binary()),
        ("ternary", FragmentScheme::ternary()),
        ("8(2,2,2,2)", FragmentScheme::signed_bit_fields(&[2, 2, 2, 2])),
    ];

    for (setting, model) in
        [("LAN", NetworkModel::lan()), ("WAN 9MB/s 72ms", NetworkModel::wan_secureml())]
    {
        let mut rows = Vec::new();
        for &d in ds {
            let mut row = vec![d.to_string()];
            for (name, scheme) in &schemes {
                let (t, _) = run_abnn2(scheme, d, model, 11);
                row.push(fmt_secs(t));
                eprintln!("  [{setting} d={d} {name}] {:.2}s", t.as_secs_f64());
            }
            let (t, _) = run_secureml(d, model, 12);
            row.push(fmt_secs(t));
            eprintln!("  [{setting} d={d} SecureML] {:.2}s", t.as_secs_f64());
            rows.push(row);
        }
        print_table(
            &format!("Table 3 — {setting} (seconds)"),
            &["d", "ours binary", "ours ternary", "ours 8(2,2,2,2)", "SecureML"],
            &rows,
        );
    }

    // Communication (network-independent).
    let mut rows = Vec::new();
    for &d in ds {
        let mut row = vec![d.to_string()];
        for (_, scheme) in &schemes {
            let (_, b) = run_abnn2(scheme, d, NetworkModel::instant(), 13);
            row.push(fmt_mib(b));
        }
        let (_, b) = run_secureml(d, NetworkModel::instant(), 14);
        row.push(fmt_mib(b));
        rows.push(row);
    }
    print_table(
        "Table 3 — communication (MiB)",
        &["d", "ours binary", "ours ternary", "ours 8(2,2,2,2)", "SecureML"],
        &rows,
    );
    println!("\nPaper reference (d=1000): LAN ours 2.69/3.24/15.39s vs SecureML 7.9s;");
    println!("WAN ours 12.74/16.58/75.01s vs SecureML 463.2s; comm 78/94/438MB vs 1.9GB.");
}
