//! Shared harness for the table-regeneration binaries.
//!
//! Each `table{1..5}` binary reproduces one table of the paper's evaluation
//! (see `DESIGN.md` §4 for the index and `EXPERIMENTS.md` for recorded
//! paper-vs-measured numbers). All binaries accept `--quick` (or the
//! environment variable `ABNN2_BENCH_QUICK=1`) to run reduced parameter
//! sweeps on slow machines.

use abnn2_core::inference::{SecureClient, SecureServer};
use abnn2_core::relu::ReluVariant;
use abnn2_math::{FragmentScheme, Matrix, Ring};
use abnn2_net::{run_pair, CommSnapshot, NetworkModel};
use abnn2_nn::quant::{QuantConfig, QuantizedNetwork};
use abnn2_nn::{Network, SyntheticMnist};
use rand::SeedableRng;
use std::time::Duration;

/// True when a reduced sweep was requested.
#[must_use]
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("ABNN2_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// Prints a fixed-width ASCII table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i.min(widths.len() - 1)]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| (*h).to_owned()).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats seconds with 2–3 significant decimals.
#[must_use]
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Formats a byte count in MiB.
#[must_use]
pub fn fmt_mib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Builds the Fig-4 network (784→128→128→10) quantized under `scheme`,
/// with deterministic weights (training is irrelevant to protocol cost).
#[must_use]
pub fn paper_quantized(scheme: FragmentScheme, ring_bits: u32) -> QuantizedNetwork {
    let net = Network::new(&abnn2_nn::model::paper_network_dims(), 42);
    let weight_frac_bits = if scheme.eta() <= 2 { 0 } else { scheme.eta().min(4) };
    let config = QuantConfig { ring: Ring::new(ring_bits), frac_bits: 8, weight_frac_bits, scheme };
    QuantizedNetwork::quantize(&net, config)
}

/// Random weights uniformly drawn from a scheme's domain (for matmul
/// microbenchmarks, where the values are irrelevant to cost).
#[must_use]
pub fn random_weights(scheme: &FragmentScheme, count: usize, seed: u64) -> Vec<i64> {
    use rand::Rng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let (lo, hi) = scheme.weight_range();
    (0..count).map(|_| rng.gen_range(lo..=hi)).collect()
}

/// Timing/traffic outcome of one offline triplet generation.
#[derive(Debug, Clone, Copy)]
pub struct PhaseStats {
    /// Simulated end-to-end duration (compute + modelled network).
    pub time: Duration,
    /// Bytes on the wire, both directions.
    pub bytes: u64,
}

/// Runs the ABNN² offline triplet generation for a whole network's layers
/// over the IKNP/KK13 backend.
#[must_use]
pub fn run_offline_triplets(
    net: &QuantizedNetwork,
    batch: usize,
    model: NetworkModel,
    seed: u64,
) -> PhaseStats {
    run_offline_triplets_with(net, batch, model, abnn2_ot::OfflineMode::Iknp, seed)
}

/// As [`run_offline_triplets`], but over the selected offline OT backend,
/// so callers can put silent-OT and IKNP traffic side by side.
#[must_use]
pub fn run_offline_triplets_with(
    net: &QuantizedNetwork,
    batch: usize,
    model: NetworkModel,
    ot: abnn2_ot::OfflineMode,
    seed: u64,
) -> PhaseStats {
    use abnn2_core::matmul::{triplet_client, triplet_server, TripletMode};
    use abnn2_ot::{FragmentChooser, FragmentSender};
    let ring = net.config.ring;
    let scheme = net.config.scheme.clone();
    let scheme2 = scheme.clone();
    let layers: Vec<(Vec<i64>, usize, usize)> =
        net.layers.iter().map(|l| (l.weights.clone(), l.out_dim, l.in_dim)).collect();
    let dims_in: Vec<usize> = net.layers.iter().map(|l| l.in_dim).collect();
    let dims_out: Vec<usize> = net.layers.iter().map(|l| l.out_dim).collect();
    let mode = TripletMode::for_batch(batch);
    let ((), (), report) = run_pair(
        model,
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut kk = FragmentChooser::setup(ch, ot, &mut rng).expect("chooser setup");
            for (w, m, n) in &layers {
                let _ = triplet_server(ch, &mut kk, w, *m, *n, batch, &scheme, ring, mode)
                    .expect("server");
            }
        },
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 1);
            let mut kk = FragmentSender::setup(ch, ot, &mut rng).expect("sender setup");
            for (n, m) in dims_in.iter().zip(&dims_out) {
                let r = Matrix::random(*n, batch, &ring, &mut rng);
                let _ = triplet_client(ch, &mut kk, &r, *m, &scheme2, ring, mode, &mut rng)
                    .expect("client");
            }
        },
    );
    PhaseStats { time: report.simulated_time(), bytes: report.total_bytes() }
}

/// End-to-end statistics (offline + online split).
#[derive(Debug, Clone, Copy)]
pub struct E2eStats {
    /// Simulated offline duration.
    pub offline: Duration,
    /// Simulated online duration.
    pub online: Duration,
    /// Total bytes on the wire.
    pub bytes: u64,
    /// Bytes on the wire during the offline phase only.
    pub offline_bytes: u64,
    /// Bytes on the wire during the online phase only.
    pub online_bytes: u64,
}

impl E2eStats {
    /// Offline + online.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.offline + self.online
    }
}

/// Runs a full secure inference (ABNN²) and reports phase timings.
#[must_use]
pub fn run_abnn2_e2e(
    net: &QuantizedNetwork,
    batch: usize,
    model: NetworkModel,
    variant: ReluVariant,
    seed: u64,
) -> E2eStats {
    let data = SyntheticMnist::generate(batch, 0, seed);
    let inputs: Vec<Vec<f64>> = data.train.iter().map(|s| s.pixels.clone()).collect();
    let server = SecureServer::new(net.clone()).with_variant(variant);
    let client = SecureClient::new(server.public_info()).with_variant(variant);
    let (s_mid, c_mid, report) = run_pair(
        model,
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 1);
            let state = server.offline(ch, batch, &mut rng).expect("offline");
            let mid = ch.snapshot();
            server.online(ch, state).expect("online");
            mid
        },
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 2);
            let state = client.offline(ch, batch, &mut rng).expect("offline");
            let mid = ch.snapshot();
            let _ = client.online(ch, state, &inputs, &mut rng).expect("online");
            mid
        },
    );
    split_phases(s_mid, c_mid, report.server, report.client, report.total_bytes())
}

/// Runs a full secure inference through the MiniONN baseline.
#[must_use]
pub fn run_minionn_e2e(
    net: &QuantizedNetwork,
    batch: usize,
    model: NetworkModel,
    key_bits: usize,
    seed: u64,
) -> E2eStats {
    use abnn2_baselines::minionn::{MinionnClient, MinionnServer};
    let data = SyntheticMnist::generate(batch, 0, seed);
    let codec = net.config.activation_codec();
    let inputs_fp: Vec<Vec<u64>> = data.train.iter().map(|s| codec.encode_vec(&s.pixels)).collect();
    let server = MinionnServer::new(net.clone(), key_bits);
    let client = MinionnClient::new(server.public_info(), key_bits);
    let (s_mid, c_mid, report) = run_pair(
        model,
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 1);
            let state = server.offline(ch, batch, &mut rng).expect("offline");
            let mid = ch.snapshot();
            server.online(ch, state).expect("online");
            mid
        },
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 2);
            let state = client.offline(ch, batch, &mut rng).expect("offline");
            let mid = ch.snapshot();
            let _ = client.online_raw(ch, state, &inputs_fp, &mut rng).expect("online");
            mid
        },
    );
    split_phases(s_mid, c_mid, report.server, report.client, report.total_bytes())
}

/// Runs a full secure inference through the QUOTIENT baseline (ternary
/// model required). Offline/online are not split (QUOTIENT interleaves
/// them); the total lands in `online = 0`-style reporting via `offline`.
#[must_use]
pub fn run_quotient_e2e(
    net: &QuantizedNetwork,
    batch: usize,
    model: NetworkModel,
    seed: u64,
) -> E2eStats {
    use abnn2_baselines::quotient::{QuotientClient, QuotientServer};
    let data = SyntheticMnist::generate(batch, 0, seed);
    let codec = net.config.activation_codec();
    let inputs_fp: Vec<Vec<u64>> = data.train.iter().map(|s| codec.encode_vec(&s.pixels)).collect();
    let server = QuotientServer::new(net.clone());
    let client = QuotientClient::new(server.public_info());
    let ((), _, report) = run_pair(
        model,
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 1);
            server.run(ch, batch, &mut rng).expect("server");
        },
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 2);
            client.run(ch, &inputs_fp, &mut rng).expect("client")
        },
    );
    E2eStats {
        offline: report.simulated_time(),
        online: Duration::ZERO,
        bytes: report.total_bytes(),
        offline_bytes: report.total_bytes(),
        online_bytes: 0,
    }
}

/// Derives offline/online phase stats from mid-run snapshots.
#[must_use]
pub fn split_phases(
    s_mid: CommSnapshot,
    c_mid: CommSnapshot,
    s_end: CommSnapshot,
    c_end: CommSnapshot,
    total_bytes: u64,
) -> E2eStats {
    let offline = s_mid.vtime.max(c_mid.vtime);
    let total = s_end.vtime.max(c_end.vtime);
    let offline_bytes = s_mid.bytes_sent + c_mid.bytes_sent;
    E2eStats {
        offline,
        online: total.saturating_sub(offline),
        bytes: total_bytes,
        offline_bytes,
        online_bytes: total_bytes.saturating_sub(offline_bytes),
    }
}
