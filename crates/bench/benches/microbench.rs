//! Criterion micro-benchmarks for the cryptographic substrates: AES/PRG
//! throughput, SHA-256, curve scalar multiplication, OT extension, garbling
//! and fragment-multiplication triplets.

use abnn2_core::matmul::{triplet_client, triplet_server, TripletMode};
use abnn2_crypto::{sha256::sha256, Aes128, Block, Prg, RoHash};
use abnn2_gc::{circuits, garble};
use abnn2_math::{FragmentScheme, Matrix, Ring};
use abnn2_net::{run_pair, NetworkModel};
use abnn2_ot::{FragmentChooser, FragmentSender, OfflineMode};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::SeedableRng;

fn bench_aes(c: &mut Criterion) {
    let aes = Aes128::new(Block::from(1u128));
    let mut g = c.benchmark_group("aes128");
    g.throughput(Throughput::Bytes(16));
    g.bench_function("encrypt_block", |b| {
        let mut x = Block::from(7u128);
        b.iter(|| {
            x = aes.encrypt_block(x);
            x
        });
    });
    g.finish();
}

fn bench_prg_and_hash(c: &mut Criterion) {
    let mut g = c.benchmark_group("prg_hash");
    g.throughput(Throughput::Bytes(1024));
    g.bench_function("prg_1kib", |b| {
        let mut prg = Prg::from_seed(Block::from(2u128));
        b.iter(|| prg.bytes(1024));
    });
    g.bench_function("sha256_1kib", |b| {
        let data = vec![0xABu8; 1024];
        b.iter(|| sha256(&data));
    });
    g.bench_function("ro_hash_expand_64B", |b| {
        let h = RoHash::new();
        b.iter(|| h.hash_expand(3, b"0123456789abcdef0123456789abcdef", 64));
    });
    g.finish();
}

fn bench_curve(c: &mut Criterion) {
    use abnn2_crypto::curve::EdwardsPoint;
    c.bench_function("curve25519_scalar_mul", |b| {
        let base = EdwardsPoint::base();
        let scalar = [0x5Au8; 32];
        b.iter(|| base.scalar_mul(&scalar));
    });
}

fn bench_garbling(c: &mut Criterion) {
    let circuit = circuits::relu_reshare_vec_circuit(32, 16);
    let mut g = c.benchmark_group("garbling");
    g.throughput(Throughput::Elements(circuit.and_count() as u64));
    g.bench_function("garble_relu16x32", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        b.iter(|| garble::garble(&circuit, &mut rng));
    });
    g.finish();
}

fn bench_triplets(c: &mut Criterion) {
    let ring = Ring::new(32);
    let mut g = c.benchmark_group("triplets_64x64");
    g.sample_size(10);
    for scheme in [
        FragmentScheme::binary(),
        FragmentScheme::ternary(),
        FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]),
    ] {
        let label = scheme.label();
        g.bench_function(format!("one_batch_{label}"), |b| {
            b.iter(|| {
                let (m, n) = (64, 64);
                let mut rng = rand::rngs::StdRng::seed_from_u64(5);
                let weights = {
                    use rand::Rng;
                    let (lo, hi) = scheme.weight_range();
                    (0..m * n).map(|_| rng.gen_range(lo..=hi)).collect::<Vec<i64>>()
                };
                let (s1, s2) = (scheme.clone(), scheme.clone());
                run_pair(
                    NetworkModel::instant(),
                    move |ch| {
                        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
                        let mut kk =
                            FragmentChooser::setup(ch, OfflineMode::Iknp, &mut rng).expect("setup");
                        triplet_server(
                            ch,
                            &mut kk,
                            &weights,
                            m,
                            n,
                            1,
                            &s1,
                            ring,
                            TripletMode::OneBatch,
                        )
                        .expect("server")
                    },
                    move |ch| {
                        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
                        let mut kk =
                            FragmentSender::setup(ch, OfflineMode::Iknp, &mut rng).expect("setup");
                        let r = Matrix::random(n, 1, &ring, &mut rng);
                        triplet_client(
                            ch,
                            &mut kk,
                            &r,
                            m,
                            &s2,
                            ring,
                            TripletMode::OneBatch,
                            &mut rng,
                        )
                        .expect("client")
                    },
                )
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_aes,
    bench_prg_and_hash,
    bench_curve,
    bench_garbling,
    bench_triplets
);
criterion_main!(benches);
