//! Ablation benches for the design choices called out in `DESIGN.md` §5:
//! fragment width, one-batch vs multi-batch messages, multi-batch packing
//! vs repeated OTs, optimized vs oblivious ReLU, and GC adders with free
//! carry-drop vs explicit modular reduction.

use abnn2_core::matmul::{
    triplet_client, triplet_client_with, triplet_server, triplet_server_with, TripletConfig,
    TripletMode,
};
use abnn2_core::relu::{relu_client, relu_server, ReluVariant};
use abnn2_gc::circuit::CircuitBuilder;
use abnn2_gc::{circuits, garble, YaoEvaluator, YaoGarbler};
use abnn2_math::{FragmentScheme, Matrix, Ring};
use abnn2_net::{run_pair, NetworkModel};
use abnn2_ot::{FragmentChooser, FragmentSender, OfflineMode};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;

fn run_triplet(scheme: &FragmentScheme, m: usize, n: usize, o: usize, mode: TripletMode) -> u64 {
    let ring = Ring::new(32);
    let (s1, s2) = (scheme.clone(), scheme.clone());
    let weights = {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let (lo, hi) = scheme.weight_range();
        (0..m * n).map(|_| rng.gen_range(lo..=hi)).collect::<Vec<i64>>()
    };
    let (_, _, report) = run_pair(
        NetworkModel::instant(),
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(2);
            let mut kk = FragmentChooser::setup(ch, OfflineMode::Iknp, &mut rng).expect("setup");
            triplet_server(ch, &mut kk, &weights, m, n, o, &s1, ring, mode).expect("server")
        },
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            let mut kk = FragmentSender::setup(ch, OfflineMode::Iknp, &mut rng).expect("setup");
            let r = Matrix::random(n, o, &ring, &mut rng);
            triplet_client(ch, &mut kk, &r, m, &s2, ring, mode, &mut rng).expect("client")
        },
    );
    report.total_bytes()
}

/// Fragment-width trade-off: (1,…,1) vs (2,2,2,2) vs (4,4) for 8-bit
/// weights.
fn ablation_fragments(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_fragments_8bit_32x32");
    g.sample_size(10);
    for widths in [vec![1u32; 8], vec![2, 2, 2, 2], vec![4, 4]] {
        let scheme = FragmentScheme::signed_bit_fields(&widths);
        g.bench_function(scheme.label(), |b| {
            b.iter(|| run_triplet(&scheme, 32, 32, 1, TripletMode::OneBatch));
        });
    }
    g.finish();
}

/// §4.1.3 one-batch trick (N−1 messages) vs plain N messages at o = 1.
fn ablation_onebatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_onebatch_44_32x32");
    g.sample_size(10);
    let scheme = FragmentScheme::signed_bit_fields(&[4, 4]);
    for (name, mode) in
        [("one_batch", TripletMode::OneBatch), ("multi_batch", TripletMode::MultiBatch)]
    {
        let s = scheme.clone();
        g.bench_function(name, |b| {
            b.iter(|| run_triplet(&s, 32, 32, 1, mode));
        });
    }
    g.finish();
}

/// §4.1.2 multi-batch packing (one OT, o-wide messages) vs o repeated
/// one-batch runs.
fn ablation_multibatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_multibatch_2222_16x16_o8");
    g.sample_size(10);
    let scheme = FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]);
    let s1 = scheme.clone();
    g.bench_function("packed_o8", |b| {
        b.iter(|| run_triplet(&s1, 16, 16, 8, TripletMode::MultiBatch));
    });
    let s2 = scheme.clone();
    g.bench_function("repeated_8x_o1", |b| {
        b.iter(|| {
            for _ in 0..8 {
                run_triplet(&s2, 16, 16, 1, TripletMode::OneBatch);
            }
        });
    });
    g.finish();
}

/// §4.2 optimized (comparison-first) ReLU vs Algorithm 2, half the neurons
/// negative.
fn ablation_relu(c: &mut Criterion) {
    let ring = Ring::new(32);
    let n = 64;
    let mut g = c.benchmark_group("ablation_relu_64neurons");
    g.sample_size(10);
    for (name, variant) in
        [("oblivious", ReluVariant::Oblivious), ("optimized", ReluVariant::Optimized)]
    {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(4);
                let y: Vec<i64> =
                    (0..n).map(|i| if i % 2 == 0 { 100 + i } else { -100 - i }).collect();
                let y_ring: Vec<u64> = y.iter().map(|&v| ring.from_i64(v)).collect();
                let y1 = ring.sample_vec(&mut rng, n as usize);
                let y0 = ring.sub_vec(&y_ring, &y1);
                let z1 = ring.sample_vec(&mut rng, n as usize);
                run_pair(
                    NetworkModel::instant(),
                    move |ch| {
                        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
                        let mut yao = YaoEvaluator::setup(ch, &mut rng).expect("setup");
                        relu_server(ch, &mut yao, &y0, ring, 0, variant).expect("server")
                    },
                    move |ch| {
                        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
                        let mut yao = YaoGarbler::setup(ch, &mut rng).expect("setup");
                        relu_client(ch, &mut yao, &y1, &z1, ring, 0, variant, &mut rng)
                            .expect("client");
                    },
                )
            });
        });
    }
    g.finish();
}

/// Carry-drop ring adder (ℓ−1 ANDs) vs an adder followed by an explicit
/// conditional modular subtraction (the cost the paper's ring choice
/// avoids).
fn ablation_gc_modulus(c: &mut Criterion) {
    let bits = 32;
    let mut g = c.benchmark_group("ablation_gc_modulus");
    // Carry-drop adder.
    let ring_add = {
        let mut b = CircuitBuilder::new();
        let x = b.garbler_word(bits);
        let y = b.evaluator_word(bits);
        let s = circuits::add(&mut b, &x, &y);
        b.build(s.0)
    };
    // Adder with an extra (wasteful) comparison + mux, modelling explicit
    // modular reduction in a non-power-of-two ring.
    let explicit_mod = {
        let mut b = CircuitBuilder::new();
        let x = b.garbler_word(bits);
        let y = b.evaluator_word(bits);
        let s = circuits::add(&mut b, &x, &y);
        let lt = circuits::lt_signed(&mut b, &s, &x);
        let reduced = circuits::sub(&mut b, &s, &y);
        let out = circuits::mux(&mut b, lt, &reduced, &s);
        b.build(out.0)
    };
    println!(
        "AND gates: carry-drop {} vs explicit-mod {}",
        ring_add.and_count(),
        explicit_mod.and_count()
    );
    for (name, circuit) in [("carry_drop", &ring_add), ("explicit_mod", &explicit_mod)] {
        g.bench_function(name, |b| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            b.iter(|| garble::garble(circuit, &mut rng));
        });
    }
    g.finish();
}

/// The paper's future-work multi-core parallelization: identical
/// transcripts, sharded mask computation.
fn ablation_threads(c: &mut Criterion) {
    let ring = Ring::new(32);
    let scheme = FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]);
    let mut g = c.benchmark_group("ablation_threads_8bit_64x64");
    g.sample_size(10);
    for threads in [1usize, 2, 4] {
        let s = scheme.clone();
        g.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| {
                use rand::Rng;
                let (m, n) = (64, 64);
                let mut rng = rand::rngs::StdRng::seed_from_u64(8);
                let (lo, hi) = s.weight_range();
                let weights: Vec<i64> = (0..m * n).map(|_| rng.gen_range(lo..=hi)).collect();
                let (s1, s2) = (s.clone(), s.clone());
                let cfg = TripletConfig::new(TripletMode::OneBatch).with_threads(threads);
                run_pair(
                    NetworkModel::instant(),
                    move |ch| {
                        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
                        let mut kk =
                            FragmentChooser::setup(ch, OfflineMode::Iknp, &mut rng).expect("setup");
                        triplet_server_with(ch, &mut kk, &weights, m, n, 1, &s1, ring, cfg)
                            .expect("server")
                    },
                    move |ch| {
                        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
                        let mut kk =
                            FragmentSender::setup(ch, OfflineMode::Iknp, &mut rng).expect("setup");
                        let r = Matrix::random(n, 1, &ring, &mut rng);
                        triplet_client_with(ch, &mut kk, &r, m, &s2, ring, cfg, &mut rng)
                            .expect("client")
                    },
                )
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablation_fragments,
    ablation_onebatch,
    ablation_multibatch,
    ablation_relu,
    ablation_gc_modulus,
    ablation_threads
);
criterion_main!(benches);
