//! Pure-integer fixed-point reference operators for the nonlinear op family.
//!
//! Every function here is the *plaintext oracle* for a garbled-circuit
//! builder in `abnn2-gc` (`circuits::{softmax,gelu,layernorm}_*`): the two
//! sides implement the identical bit-level wrapping algorithm over
//! `ring.bits()`-wide words, so secure evaluation is bit-exact against this
//! module by construction, regardless of overflow. None of these functions
//! use floating point.
//!
//! Conventions shared with the circuits:
//!
//! * values are ring residues; "signed" means the two's-complement lift,
//! * `f` is the activation fraction-bit count (`QuantConfig::frac_bits`),
//! * division by zero yields the all-ones word (restoring division with a
//!   zero divisor subtracts successfully every round),
//! * `isqrt` is floor-sqrt of the *unsigned* lift; LayerNorm calls it on
//!   `var + 1` so the divisor is always positive.

use crate::ring::Ring;

/// Arithmetic (sign-extending) right shift by `k` of the signed lift of `v`.
///
/// This is the exact-truncation primitive: inside a garbled circuit it is
/// free rewiring (`sar_word`), and the executors only ever truncate through
/// it so shares stay bit-exact.
pub fn sar(ring: &Ring, v: u64, k: u32) -> u64 {
    if k == 0 {
        return ring.reduce(v);
    }
    let bits = ring.bits();
    let k = k.min(bits - 1);
    // Sign-extend the ring value to 64 bits, shift, reduce.
    let shifted = (ring.to_i64(v)) >> k;
    ring.from_i64(shifted)
}

/// Left shift by `k` with zero fill, wrapping in the ring.
pub fn shl(ring: &Ring, v: u64, k: u32) -> u64 {
    if k >= ring.bits() {
        return 0;
    }
    ring.reduce(v << k)
}

/// `max(v, 0)` under the signed interpretation.
pub fn relu(ring: &Ring, v: u64) -> u64 {
    if ring.is_negative(v) {
        0
    } else {
        ring.reduce(v)
    }
}

/// Signed maximum of two ring values.
pub fn max_signed(ring: &Ring, a: u64, b: u64) -> u64 {
    if ring.to_i64(a) >= ring.to_i64(b) {
        ring.reduce(a)
    } else {
        ring.reduce(b)
    }
}

/// Clamp `v` into `[lo, hi]` under the signed interpretation. `lo` and `hi`
/// are ring residues with `lo ≤ hi` as signed values.
pub fn clamp(ring: &Ring, v: u64, lo: u64, hi: u64) -> u64 {
    let vi = ring.to_i64(v);
    if vi < ring.to_i64(lo) {
        ring.reduce(lo)
    } else if vi > ring.to_i64(hi) {
        ring.reduce(hi)
    } else {
        ring.reduce(v)
    }
}

/// Unsigned `ring.bits()`-wide division. A zero divisor yields the all-ones
/// word, matching restoring division in the circuit (every trial
/// subtraction of 0 succeeds, so every quotient bit is set).
pub fn udiv(ring: &Ring, x: u64, y: u64) -> u64 {
    let x = ring.reduce(x);
    let y = ring.reduce(y);
    x.checked_div(y).unwrap_or_else(|| ring.mask())
}

/// Signed division with truncation toward zero, as a sign/magnitude wrapper
/// around [`udiv`]. The divisor is interpreted *unsigned* (LayerNorm's σ is
/// always positive); only the dividend carries a sign.
pub fn sdiv(ring: &Ring, x: u64, y: u64) -> u64 {
    let neg = ring.is_negative(x);
    let mag = if neg { ring.neg(x) } else { ring.reduce(x) };
    let q = udiv(ring, mag, y);
    if neg {
        ring.neg(q)
    } else {
        q
    }
}

/// Floor square root of the unsigned lift of `x`.
pub fn isqrt(ring: &Ring, x: u64) -> u64 {
    let x = ring.reduce(x);
    if x < 2 {
        return x;
    }
    // Digit-by-digit (base 4) method: same algorithm the circuit unrolls.
    let mut rem: u64 = 0;
    let mut root: u64 = 0;
    let half = ring.bits().div_ceil(2);
    for i in (0..half).rev() {
        let pair = (x >> (2 * i)) & 0b11;
        rem = (rem << 2) | pair;
        let trial = (root << 2) | 1;
        root <<= 1;
        if rem >= trial {
            rem -= trial;
            root |= 1;
        }
    }
    root
}

/// Positive-range exponential approximation `e^u ≈ ((1 + u/4)⁺)⁴` for
/// `u ≤ 0`, at `f` fraction bits. Returns a value in `[0, 2^f]`.
///
/// Softmax only ever evaluates the exponential at `u = v − max(v) ≤ 0`, so
/// this fourth-order limit approximation is monotone, hits `2^f` exactly at
/// `u = 0`, and decays to 0 for `u ≤ −4`.
pub fn exp_pos(ring: &Ring, f: u32, u: u64) -> u64 {
    let one = shl(ring, 1, f);
    let t = relu(ring, ring.add(one, sar(ring, u, 2)));
    let t2 = sar(ring, ring.mul(t, t), f);
    sar(ring, ring.mul(t2, t2), f)
}

/// Fixed-point softmax over one row of logits at `f` fraction bits.
///
/// `p_j = (e_j << f) / Σ e` with `e_j = exp_pos(v_j − max v)`. Outputs are
/// unsigned probabilities in `[0, 2^f]` at `f` fraction bits.
pub fn softmax_row(ring: &Ring, f: u32, row: &[u64]) -> Vec<u64> {
    assert!(!row.is_empty(), "softmax row must be non-empty");
    let mut m = ring.reduce(row[0]);
    for &v in &row[1..] {
        m = max_signed(ring, v, m);
    }
    let es: Vec<u64> = row.iter().map(|&v| exp_pos(ring, f, ring.sub(v, m))).collect();
    let mut sum = 0u64;
    for &e in &es {
        sum = ring.add(sum, e);
    }
    es.iter().map(|&e| udiv(ring, shl(ring, e, f), sum)).collect()
}

/// Fixed-point GELU via the hard-sigmoid approximation
/// `gelu(v) ≈ v · clamp((v + 3) / 6, 0, 1)` at `f` fraction bits.
pub fn gelu(ring: &Ring, f: u32, v: u64) -> u64 {
    let one = shl(ring, 1, f);
    let three = shl(ring, 3, f);
    // round(2^f / 6) as a public constant; the circuit bakes the same value.
    let inv6 = ((1u64 << f) + 3) / 6;
    let s = sar(ring, ring.mul(ring.add(v, three), inv6), f);
    let s = clamp(ring, s, 0, one);
    sar(ring, ring.mul(v, s), f)
}

/// Fixed-point LayerNorm over one token of `d` values (`d` a power of two).
///
/// Inputs arrive as two addends at different scales: `x_i = (a_i >> shift_a)
/// + (b_i >> shift_b)` (the residual-add is folded into the op). Then
/// `y_i = ((x_i − μ) << f) / isqrt(var + 1)` with `μ` and `var` computed by
/// shift-division (hence the power-of-two `d`).
pub fn layernorm_token(
    ring: &Ring,
    f: u32,
    a: &[u64],
    b: &[u64],
    shift_a: u32,
    shift_b: u32,
) -> Vec<u64> {
    let d = a.len();
    assert_eq!(d, b.len(), "layernorm operands must have equal length");
    assert!(d.is_power_of_two(), "layernorm width must be a power of two");
    let log2d = d.trailing_zeros();
    let xs: Vec<u64> = a
        .iter()
        .zip(b)
        .map(|(&ai, &bi)| ring.add(sar(ring, ai, shift_a), sar(ring, bi, shift_b)))
        .collect();
    let mut sum = 0u64;
    for &x in &xs {
        sum = ring.add(sum, x);
    }
    let mu = sar(ring, sum, log2d);
    let cs: Vec<u64> = xs.iter().map(|&x| ring.sub(x, mu)).collect();
    let mut sq = 0u64;
    for &c in &cs {
        sq = ring.add(sq, ring.mul(c, c));
    }
    let var = sar(ring, sq, log2d);
    let sigma = isqrt(ring, ring.add(var, 1));
    cs.iter().map(|&c| sdiv(ring, shl(ring, c, f), sigma)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r16() -> Ring {
        Ring::new(16)
    }

    #[test]
    fn sar_matches_signed_shift() {
        let ring = r16();
        for v in [-300i64, -1, 0, 1, 511, -32768, 32767] {
            for k in [0u32, 1, 3, 6, 15] {
                assert_eq!(sar(&ring, ring.from_i64(v), k), ring.from_i64(v >> k));
            }
        }
    }

    #[test]
    fn udiv_by_zero_is_all_ones() {
        let ring = r16();
        assert_eq!(udiv(&ring, 1234, 0), ring.mask());
    }

    #[test]
    fn isqrt_is_floor_sqrt_exhaustive_16bit() {
        let ring = r16();
        for x in 0u64..=0xFFFF {
            let r = isqrt(&ring, x);
            assert!(r * r <= x && (r + 1) * (r + 1) > x, "isqrt({x}) = {r}");
        }
    }

    #[test]
    fn exp_pos_endpoints() {
        let ring = r16();
        let f = 6;
        // e^0 = 1.0 exactly.
        assert_eq!(exp_pos(&ring, f, 0), 1 << f);
        // Deeply negative input decays to 0.
        assert_eq!(exp_pos(&ring, f, ring.from_i64(-8 << f)), 0);
    }

    #[test]
    fn softmax_uniform_row_is_uniform() {
        let ring = r16();
        let f = 6;
        let row = vec![ring.from_i64(5 << f); 4];
        let p = softmax_row(&ring, f, &row);
        for &pi in &p {
            assert_eq!(pi, (1u64 << f) / 4);
        }
    }

    #[test]
    fn gelu_limits() {
        let ring = r16();
        let f = 6;
        // Large positive input passes through ~identity.
        let v = ring.from_i64(4 << f);
        assert_eq!(gelu(&ring, f, v), v);
        // Large negative input is killed.
        assert_eq!(gelu(&ring, f, ring.from_i64(-4 << f)), 0);
    }

    #[test]
    fn layernorm_constant_token_is_zero() {
        let ring = r16();
        let f = 6;
        let a = vec![ring.from_i64(7 << f); 4];
        let b = vec![0u64; 4];
        let y = layernorm_token(&ring, f, &a, &b, 0, 0);
        assert_eq!(y, vec![0u64; 4]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn sdiv_truncates_toward_zero(x in -2000i64..2000, y in 1u64..500) {
            let ring = r16();
            let q = sdiv(&ring, ring.from_i64(x), y);
            prop_assert_eq!(ring.to_i64(q), x / y as i64);
        }

        #[test]
        fn softmax_probs_in_range_and_nearly_normalized(
            v0 in -40i64..40, v1 in -40i64..40, v2 in -40i64..40, v3 in -40i64..40,
        ) {
            let ring = r16();
            let f = 6;
            let row: Vec<u64> = [v0, v1, v2, v3].iter().map(|&v| ring.from_i64(v << 2)).collect();
            let p = softmax_row(&ring, f, &row);
            let total: u64 = p.iter().sum();
            for &pi in &p {
                prop_assert!(pi <= 1 << f);
            }
            // Rounding loses at most 1 ulp per element.
            prop_assert!(total <= 1 << f);
            prop_assert!(total + p.len() as u64 >= 1 << f);
        }

        #[test]
        fn layernorm_output_is_mean_free(
            // Range keeps Σ(x−μ)² inside 15 bits so the ring does not wrap.
            v0 in -60i64..60, v1 in -60i64..60, v2 in -60i64..60, v3 in -60i64..60,
        ) {
            let ring = r16();
            let f = 6;
            let vs = [v0, v1, v2, v3];
            let a: Vec<u64> = vs.iter().map(|&v| ring.from_i64(v)).collect();
            let b = vec![0u64; 4];
            let y = layernorm_token(&ring, f, &a, &b, 0, 0);
            let total: i64 = y.iter().map(|&v| ring.to_i64(v)).sum();
            // Mean of outputs is ~0 up to truncation: the floor-μ leaves
            // Σc ∈ [0, d), and each division truncates at most 1 ulp.
            let sum: i64 = vs.iter().sum();
            let mu = sum >> 2;
            let var = vs.iter().map(|&x| (x - mu) * (x - mu)).sum::<i64>() >> 2;
            let sigma = isqrt(&ring, (var + 1) as u64) as i64;
            prop_assert!(total.abs() <= 4 + 3 * (1 << f) / sigma.max(1));
        }
    }
}
