//! Fixed-point encoding of real values into ℤ_{2^ℓ}.
//!
//! Activations in ABNN² "will be in float-point form and be encoded as
//! fixed-point to utilize the cryptographic protocol" (§2.2). We use the
//! standard two's-complement encoding with `frac_bits` fractional bits:
//! `encode(x) = round(x · 2^f) mod 2^ℓ`.

use crate::Ring;
use serde::{Deserialize, Serialize};

/// A fixed-point codec over a [`Ring`].
///
/// ```
/// use abnn2_math::{FixedPoint, Ring};
/// let fp = FixedPoint::new(Ring::new(32), 8);
/// let e = fp.encode(-1.5);
/// assert_eq!(fp.decode(e), -1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FixedPoint {
    ring: Ring,
    frac_bits: u32,
}

impl FixedPoint {
    /// Creates a codec with `frac_bits` fractional bits over `ring`.
    ///
    /// # Panics
    ///
    /// Panics if `frac_bits >= ring.bits()` (no integer part would remain).
    #[must_use]
    pub fn new(ring: Ring, frac_bits: u32) -> Self {
        assert!(
            frac_bits < ring.bits(),
            "frac_bits ({frac_bits}) must be smaller than the ring width ({})",
            ring.bits()
        );
        FixedPoint { ring, frac_bits }
    }

    /// The underlying ring.
    #[must_use]
    pub fn ring(self) -> Ring {
        self.ring
    }

    /// Number of fractional bits `f`.
    #[must_use]
    pub fn frac_bits(self) -> u32 {
        self.frac_bits
    }

    /// The representable resolution `2^{-f}`.
    #[must_use]
    pub fn resolution(self) -> f64 {
        (self.frac_bits as f64).exp2().recip()
    }

    /// Encodes a real value as `round(x · 2^f)` in the ring.
    ///
    /// Values outside the representable range wrap (two's complement), like
    /// the fixed-point arithmetic of the secure protocol itself.
    #[must_use]
    pub fn encode(self, x: f64) -> u64 {
        let scaled = (x * (self.frac_bits as f64).exp2()).round();
        self.ring.from_i64(scaled as i64)
    }

    /// Decodes a ring element via the signed lift.
    #[must_use]
    pub fn decode(self, e: u64) -> f64 {
        self.ring.to_i64(e) as f64 / (self.frac_bits as f64).exp2()
    }

    /// Encodes a slice of reals.
    #[must_use]
    pub fn encode_vec(self, xs: &[f64]) -> Vec<u64> {
        xs.iter().map(|&x| self.encode(x)).collect()
    }

    /// Decodes a slice of ring elements.
    #[must_use]
    pub fn decode_vec(self, es: &[u64]) -> Vec<f64> {
        es.iter().map(|&e| self.decode(e)).collect()
    }

    /// Truncates a product back to `f` fractional bits.
    ///
    /// Multiplying two fixed-point values yields `2f` fractional bits; this
    /// performs the signed arithmetic right shift by `f` used after each
    /// linear layer (the standard local truncation of SecureML, which both
    /// parties apply to their shares — see `abnn2-core` for the shared
    /// variant and its off-by-one behaviour).
    #[must_use]
    pub fn truncate(self, e: u64) -> u64 {
        self.ring.from_i64(self.ring.to_i64(e) >> self.frac_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fp32() -> FixedPoint {
        FixedPoint::new(Ring::new(32), 12)
    }

    #[test]
    fn encode_decode_exact_values() {
        let fp = fp32();
        for x in [0.0, 1.0, -1.0, 0.5, -0.25, 123.0625] {
            assert_eq!(fp.decode(fp.encode(x)), x);
        }
    }

    #[test]
    #[should_panic(expected = "frac_bits")]
    fn frac_bits_must_leave_integer_part() {
        let _ = FixedPoint::new(Ring::new(16), 16);
    }

    #[test]
    fn addition_is_exact_in_encoding() {
        let fp = fp32();
        let r = fp.ring();
        let a = fp.encode(1.25);
        let b = fp.encode(-3.5);
        assert_eq!(fp.decode(r.add(a, b)), -2.25);
    }

    #[test]
    fn product_truncation() {
        let fp = fp32();
        let r = fp.ring();
        let a = fp.encode(1.5);
        let b = fp.encode(-2.0);
        let prod = r.mul(a, b); // 2f fractional bits
        assert_eq!(fp.decode(fp.truncate(prod)), -3.0);
    }

    #[test]
    fn resolution_matches_frac_bits() {
        assert_eq!(FixedPoint::new(Ring::new(32), 10).resolution(), 1.0 / 1024.0);
    }

    proptest! {
        #[test]
        fn round_trip_within_resolution(x in -1.0e4f64..1.0e4) {
            let fp = fp32();
            let err = (fp.decode(fp.encode(x)) - x).abs();
            prop_assert!(err <= fp.resolution() / 2.0 + 1e-12, "err = {err}");
        }

        #[test]
        fn encoding_is_additively_homomorphic(a in -1000.0f64..1000.0, b in -1000.0f64..1000.0) {
            // Exact on values already representable at resolution 2^-f.
            let fp = fp32();
            let r = fp.ring();
            let (a, b) = (fp.decode(fp.encode(a)), fp.decode(fp.encode(b)));
            prop_assert_eq!(fp.decode(r.add(fp.encode(a), fp.encode(b))), a + b);
        }

        #[test]
        // The double-width product carries 2f = 24 fractional bits, so the
        // product magnitude must stay below 2^{31-24} = 128 to avoid wrap.
        fn truncate_halves_scale(a in -8.0f64..8.0, b in -8.0f64..8.0) {
            let fp = fp32();
            let r = fp.ring();
            let (a, b) = (fp.decode(fp.encode(a)), fp.decode(fp.encode(b)));
            let got = fp.decode(fp.truncate(r.mul(fp.encode(a), fp.encode(b))));
            prop_assert!((got - a * b).abs() <= fp.resolution() + 1e-9);
        }
    }
}
