//! Dense row-major matrices over ℤ_{2^ℓ}.
//!
//! The linear layers of the paper's workloads are matrix–matrix products
//! `W (m×n) · X (n×o)` where `o` is the prediction batch size. Elements are
//! raw `u64` ring residues; the [`Ring`] is passed to the operations that
//! need a modulus.

use crate::Ring;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of ring elements.
///
/// ```
/// use abnn2_math::{Matrix, Ring};
/// let ring = Ring::new(16);
/// let w = Matrix::from_rows(&[vec![1, 2], vec![3, 4]]);
/// let x = Matrix::from_rows(&[vec![5], vec![6]]);
/// let y = w.mul(&x, &ring);
/// assert_eq!(y.as_slice(), &[17, 39]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u64>,
}

impl Matrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn new(rows: usize, cols: usize, data: Vec<u64>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Creates an all-zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0; rows * cols] }
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or `rows` is empty.
    #[must_use]
    pub fn from_rows(rows: &[Vec<u64>]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        Matrix { rows: rows.len(), cols, data: rows.concat() }
    }

    /// Creates a column vector (n×1 matrix).
    #[must_use]
    pub fn column(data: Vec<u64>) -> Self {
        Matrix { rows: data.len(), cols: 1, data }
    }

    /// Creates a uniformly random matrix over the ring.
    #[must_use]
    pub fn random<R: Rng + ?Sized>(rows: usize, cols: usize, ring: &Ring, rng: &mut R) -> Self {
        Matrix { rows, cols, data: ring.sample_vec(rng, rows * cols) }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix has no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major view of the elements.
    #[must_use]
    pub fn as_slice(&self) -> &[u64] {
        &self.data
    }

    /// Mutable row-major view of the elements.
    pub fn as_mut_slice(&mut self) -> &mut [u64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major data.
    #[must_use]
    pub fn into_vec(self) -> Vec<u64> {
        self.data
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> u64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c]
    }

    /// Element setter.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: u64) {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrowed view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[must_use]
    pub fn row(&self, r: usize) -> &[u64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    #[must_use]
    pub fn col(&self, c: usize) -> Vec<u64> {
        assert!(c < self.cols, "column {c} out of bounds");
        (0..self.rows).map(|r| self.data[r * self.cols + c]).collect()
    }

    /// Matrix product `self · rhs` mod `2^ℓ`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    #[must_use]
    pub fn mul(&self, rhs: &Matrix, ring: &Ring) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0 {
                    continue;
                }
                let row_rhs = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let row_out = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in row_out.iter_mut().zip(row_rhs) {
                    *o = o.wrapping_add(a.wrapping_mul(b));
                }
            }
        }
        for v in &mut out.data {
            *v = ring.reduce(*v);
        }
        out
    }

    /// Element-wise sum mod `2^ℓ`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    #[must_use]
    pub fn add(&self, rhs: &Matrix, ring: &Ring) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        Matrix { rows: self.rows, cols: self.cols, data: ring.add_vec(&self.data, &rhs.data) }
    }

    /// Element-wise difference mod `2^ℓ`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    #[must_use]
    pub fn sub(&self, rhs: &Matrix, ring: &Ring) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        Matrix { rows: self.rows, cols: self.cols, data: ring.sub_vec(&self.data, &rhs.data) }
    }

    /// Transposed copy.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place<F: FnMut(u64) -> u64>(&mut self, mut f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn identity_multiplication() {
        let ring = Ring::new(32);
        let id = Matrix::from_rows(&[vec![1, 0], vec![0, 1]]);
        let m = Matrix::from_rows(&[vec![7, 8], vec![9, 10]]);
        assert_eq!(id.mul(&m, &ring), m);
        assert_eq!(m.mul(&id, &ring), m);
    }

    #[test]
    fn known_product() {
        let ring = Ring::new(32);
        let a = Matrix::from_rows(&[vec![1, 2, 3], vec![4, 5, 6]]);
        let b = Matrix::from_rows(&[vec![7, 8], vec![9, 10], vec![11, 12]]);
        let c = a.mul(&b, &ring);
        assert_eq!(c.as_slice(), &[58, 64, 139, 154]);
    }

    #[test]
    fn product_wraps_mod_ring() {
        let ring = Ring::new(8);
        let a = Matrix::from_rows(&[vec![200]]);
        let b = Matrix::from_rows(&[vec![2]]);
        assert_eq!(a.mul(&b, &ring).as_slice(), &[(200 * 2) % 256]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_dims_panic() {
        let ring = Ring::new(8);
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.mul(&b, &ring);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_rows(&[vec![1, 2, 3], vec![4, 5, 6]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().row(0), &[1, 4]);
        assert_eq!(m.col(2), vec![3, 6]);
    }

    #[test]
    fn column_constructor() {
        let v = Matrix::column(vec![1, 2, 3]);
        assert_eq!((v.rows(), v.cols()), (3, 1));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn matmul_matches_reference(seed: u64, m in 1usize..6, n in 1usize..6, o in 1usize..6, bits in 1u32..=64) {
            let ring = Ring::new(bits);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a = Matrix::random(m, n, &ring, &mut rng);
            let b = Matrix::random(n, o, &ring, &mut rng);
            let c = a.mul(&b, &ring);
            for i in 0..m {
                for j in 0..o {
                    let expect = ring.dot(a.row(i), &b.col(j));
                    prop_assert_eq!(c.get(i, j), expect);
                }
            }
        }

        #[test]
        fn matmul_distributes_over_add(seed: u64, m in 1usize..5, n in 1usize..5) {
            let ring = Ring::new(32);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let w = Matrix::random(m, n, &ring, &mut rng);
            let x = Matrix::random(n, 1, &ring, &mut rng);
            let y = Matrix::random(n, 1, &ring, &mut rng);
            let lhs = w.mul(&x.add(&y, &ring), &ring);
            let rhs = w.mul(&x, &ring).add(&w.mul(&y, &ring), &ring);
            prop_assert_eq!(lhs, rhs);
        }
    }
}
