//! Numeric substrate for the ABNN² reproduction.
//!
//! The paper performs all secure computation over the ring ℤ_{2^ℓ} with
//! fixed-point encodings of real values, and decomposes η-bit quantized
//! weights into base-N fragments (§4.1 of the paper). This crate provides:
//!
//! * [`Ring`] — modular arithmetic over ℤ_{2^ℓ} for any ℓ ∈ 1..=64,
//! * [`FixedPoint`] — fixed-point encode/decode between `f64` and the ring,
//! * [`Matrix`] — dense row-major matrices with ring matmul,
//! * [`FragmentScheme`] — the N-base (possibly mixed-radix) weight
//!   decomposition `w = Σᵢ Nⁱ·w[i]` that drives the 1-out-of-N OTs.
//!
//! ```
//! use abnn2_math::{Ring, FragmentScheme};
//! let ring = Ring::new(32);
//! let scheme = FragmentScheme::unsigned(&[2, 2, 2, 2]);
//! let w = 0b10_11_01_10i64; // an 8-bit weight
//! let digits = scheme.decompose(w);
//! assert_eq!(scheme.recompose(&digits, &ring), w as u64);
//! ```

pub mod fixed;
pub mod fixedops;
pub mod fragment;
pub mod matrix;
pub mod ring;

pub use fixed::FixedPoint;
pub use fragment::{Fragment, FragmentScheme};
pub use matrix::Matrix;
pub use ring::Ring;
