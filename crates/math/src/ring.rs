//! Arithmetic over the ring ℤ_{2^ℓ}.
//!
//! Elements are stored as `u64` values already reduced into `0..2^ℓ`. All
//! operations wrap modulo `2^ℓ`, matching the paper's choice of ring for both
//! shares and plaintext values.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The ring ℤ_{2^ℓ} for a bit length `ℓ ∈ 1..=64`.
///
/// A `Ring` is a small value object describing the modulus; elements are
/// plain `u64` values reduced by [`Ring::reduce`]. Keeping elements untyped
/// keeps hot protocol loops allocation-free while the `Ring` parameter makes
/// the modulus explicit at every call site.
///
/// ```
/// use abnn2_math::Ring;
/// let r = Ring::new(8);
/// assert_eq!(r.add(200, 100), 44); // wraps mod 256
/// assert_eq!(r.neg(1), 255);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ring {
    bits: u32,
    mask: u64,
}

impl Ring {
    /// Creates the ring ℤ_{2^bits}.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 64.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        assert!((1..=64).contains(&bits), "ring bit length must be 1..=64, got {bits}");
        let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        Ring { bits, mask }
    }

    /// The bit length ℓ.
    #[must_use]
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// The value `2^ℓ - 1`, i.e. the largest element.
    #[must_use]
    pub fn mask(self) -> u64 {
        self.mask
    }

    /// Number of bytes needed to serialize one element (⌈ℓ/8⌉).
    #[must_use]
    pub fn byte_len(self) -> usize {
        self.bits.div_ceil(8) as usize
    }

    /// Reduces an arbitrary `u64` into the ring.
    #[must_use]
    pub fn reduce(self, x: u64) -> u64 {
        x & self.mask
    }

    /// Addition mod `2^ℓ`.
    #[must_use]
    pub fn add(self, a: u64, b: u64) -> u64 {
        a.wrapping_add(b) & self.mask
    }

    /// Subtraction mod `2^ℓ`.
    #[must_use]
    pub fn sub(self, a: u64, b: u64) -> u64 {
        a.wrapping_sub(b) & self.mask
    }

    /// Negation mod `2^ℓ`.
    #[must_use]
    pub fn neg(self, a: u64) -> u64 {
        a.wrapping_neg() & self.mask
    }

    /// Multiplication mod `2^ℓ`.
    #[must_use]
    pub fn mul(self, a: u64, b: u64) -> u64 {
        a.wrapping_mul(b) & self.mask
    }

    /// Multiplies by a signed factor (used for signed weight digits).
    #[must_use]
    pub fn mul_signed(self, a: u64, k: i64) -> u64 {
        a.wrapping_mul(k as u64) & self.mask
    }

    /// Embeds a signed integer by its two's-complement residue.
    ///
    /// ```
    /// use abnn2_math::Ring;
    /// let r = Ring::new(16);
    /// assert_eq!(r.from_i64(-1), 0xFFFF);
    /// ```
    #[must_use]
    pub fn from_i64(self, x: i64) -> u64 {
        (x as u64) & self.mask
    }

    /// Interprets an element as a signed integer in `[-2^{ℓ-1}, 2^{ℓ-1})`.
    ///
    /// This is the canonical "lift" used when decoding fixed-point results.
    #[must_use]
    pub fn to_i64(self, x: u64) -> i64 {
        let x = x & self.mask;
        if self.bits == 64 {
            x as i64
        } else if x >> (self.bits - 1) == 1 {
            (x as i64) - (1i64 << self.bits)
        } else {
            x as i64
        }
    }

    /// True if the element is negative under the signed interpretation,
    /// i.e. its most significant (ℓ-1) bit is set.
    #[must_use]
    pub fn is_negative(self, x: u64) -> bool {
        (x >> (self.bits - 1)) & 1 == 1
    }

    /// Samples a uniformly random element.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> u64 {
        rng.gen::<u64>() & self.mask
    }

    /// Samples a vector of uniformly random elements.
    #[must_use]
    pub fn sample_vec<R: Rng + ?Sized>(self, rng: &mut R, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Element-wise sum of two slices mod `2^ℓ`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    #[must_use]
    pub fn add_vec(self, a: &[u64], b: &[u64]) -> Vec<u64> {
        assert_eq!(a.len(), b.len(), "vector length mismatch");
        a.iter().zip(b).map(|(&x, &y)| self.add(x, y)).collect()
    }

    /// Element-wise difference of two slices mod `2^ℓ`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    #[must_use]
    pub fn sub_vec(self, a: &[u64], b: &[u64]) -> Vec<u64> {
        assert_eq!(a.len(), b.len(), "vector length mismatch");
        a.iter().zip(b).map(|(&x, &y)| self.sub(x, y)).collect()
    }

    /// Dot product of two slices mod `2^ℓ`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    #[must_use]
    pub fn dot(self, a: &[u64], b: &[u64]) -> u64 {
        assert_eq!(a.len(), b.len(), "vector length mismatch");
        let mut acc = 0u64;
        for (&x, &y) in a.iter().zip(b) {
            acc = acc.wrapping_add(x.wrapping_mul(y));
        }
        acc & self.mask
    }

    /// Serializes a slice of elements into `byte_len()`-wide little-endian
    /// chunks. This is the wire format used by all protocols so that
    /// communication costs reflect ⌈ℓ/8⌉ bytes per element.
    #[must_use]
    pub fn encode_slice(self, xs: &[u64]) -> Vec<u8> {
        let w = self.byte_len();
        let mut out = Vec::with_capacity(w * xs.len());
        for &x in xs {
            out.extend_from_slice(&x.to_le_bytes()[..w]);
        }
        out
    }

    /// Inverse of [`Ring::encode_slice`].
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len()` is not a multiple of `byte_len()`.
    #[must_use]
    pub fn decode_slice(self, bytes: &[u8]) -> Vec<u64> {
        let w = self.byte_len();
        assert_eq!(bytes.len() % w, 0, "byte buffer not a multiple of element width");
        bytes
            .chunks_exact(w)
            .map(|c| {
                let mut b = [0u8; 8];
                b[..w].copy_from_slice(c);
                u64::from_le_bytes(b) & self.mask
            })
            .collect()
    }
}

impl Default for Ring {
    /// The ring ℤ_{2^32}, the paper's default for Table 2.
    fn default() -> Self {
        Ring::new(32)
    }
}

impl std::fmt::Display for Ring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Z_2^{}", self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn construction_and_mask() {
        assert_eq!(Ring::new(1).mask(), 1);
        assert_eq!(Ring::new(8).mask(), 0xFF);
        assert_eq!(Ring::new(32).mask(), 0xFFFF_FFFF);
        assert_eq!(Ring::new(64).mask(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "ring bit length")]
    fn zero_bits_rejected() {
        let _ = Ring::new(0);
    }

    #[test]
    #[should_panic(expected = "ring bit length")]
    fn oversized_bits_rejected() {
        let _ = Ring::new(65);
    }

    #[test]
    fn signed_round_trip() {
        let r = Ring::new(16);
        for x in [-32768i64, -1, 0, 1, 32767] {
            assert_eq!(r.to_i64(r.from_i64(x)), x);
        }
    }

    #[test]
    fn signed_lift_64_bits() {
        let r = Ring::new(64);
        assert_eq!(r.to_i64(u64::MAX), -1);
        assert_eq!(r.to_i64(0), 0);
    }

    #[test]
    fn is_negative_matches_lift() {
        let r = Ring::new(12);
        for x in 0..(1u64 << 12) {
            assert_eq!(r.is_negative(x), r.to_i64(x) < 0);
        }
    }

    #[test]
    fn dot_product_small() {
        let r = Ring::new(8);
        assert_eq!(r.dot(&[1, 2, 3], &[4, 5, 6]), (4 + 10 + 18) % 256);
    }

    #[test]
    fn encode_decode_slice_round_trip() {
        let r = Ring::new(24);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let xs = r.sample_vec(&mut rng, 100);
        assert_eq!(r.decode_slice(&r.encode_slice(&xs)), xs);
        assert_eq!(r.byte_len(), 3);
    }

    #[test]
    fn display_shows_modulus() {
        assert_eq!(Ring::new(32).to_string(), "Z_2^32");
    }

    proptest! {
        #[test]
        fn add_is_commutative_and_associative(bits in 1u32..=64, a: u64, b: u64, c: u64) {
            let r = Ring::new(bits);
            let (a, b, c) = (r.reduce(a), r.reduce(b), r.reduce(c));
            prop_assert_eq!(r.add(a, b), r.add(b, a));
            prop_assert_eq!(r.add(r.add(a, b), c), r.add(a, r.add(b, c)));
        }

        #[test]
        fn sub_inverts_add(bits in 1u32..=64, a: u64, b: u64) {
            let r = Ring::new(bits);
            let (a, b) = (r.reduce(a), r.reduce(b));
            prop_assert_eq!(r.sub(r.add(a, b), b), a);
            prop_assert_eq!(r.add(a, r.neg(a)), 0);
        }

        #[test]
        fn mul_distributes_over_add(bits in 1u32..=64, a: u64, b: u64, c: u64) {
            let r = Ring::new(bits);
            let (a, b, c) = (r.reduce(a), r.reduce(b), r.reduce(c));
            prop_assert_eq!(r.mul(a, r.add(b, c)), r.add(r.mul(a, b), r.mul(a, c)));
        }

        #[test]
        fn signed_embedding_is_homomorphic(a in -1000i64..1000, b in -1000i64..1000) {
            let r = Ring::new(32);
            prop_assert_eq!(r.add(r.from_i64(a), r.from_i64(b)), r.from_i64(a + b));
            prop_assert_eq!(r.mul(r.from_i64(a), r.from_i64(b)), r.from_i64(a * b));
        }

        #[test]
        fn sample_stays_in_ring(bits in 1u32..=64, seed: u64) {
            let r = Ring::new(bits);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let x = r.sample(&mut rng);
            prop_assert_eq!(x, r.reduce(x));
        }
    }
}
