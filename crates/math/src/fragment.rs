//! N-base fragment decomposition of quantized weights (§4.1 of the paper).
//!
//! An η-bit weight `w` is split into γ fragments so that
//! `w · r = Σᵢ scaleᵢ · w[i] · r`, and each fragment multiplication is done
//! with one 1-out-of-Nᵢ OT. The paper allows mixed fragment widths — e.g.
//! η = 8 split as `(2,2,2,2)`, `(3,3,2)` or `(4,4)` (Table 2) — plus the
//! special *ternary* ({−1,0,1}) and *binary* ({0,1}) weight domains.
//!
//! Signed weights are handled by interpreting the **top** fragment of a
//! bit-field scheme in two's complement: the OT sender simply enumerates the
//! digit values, so a signed digit costs nothing extra.

use crate::Ring;
use serde::{Deserialize, Serialize};

/// One fragment of a decomposition: a digit in `0..n` scaled by `scale`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fragment {
    /// Radix of the digit; the fragment's OT is a 1-out-of-`n` OT.
    pub n: u64,
    /// Multiplier applied to the digit value (`Nⁱ`, i.e. `2^offset` for
    /// bit-field schemes).
    pub scale: u64,
    /// How a choice index `j ∈ 0..n` maps to an integer digit value.
    pub kind: DigitKind,
}

/// Interpretation of a fragment's choice index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DigitKind {
    /// `value = j`.
    Unsigned,
    /// `value = j` if `j < n/2`, else `j − n` (two's complement top field).
    TwosComplement,
    /// `value = j − (n−1)/2` (e.g. ternary digits −1, 0, 1 for n = 3).
    Centered,
}

impl Fragment {
    /// Integer value of choice index `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= n`.
    #[must_use]
    pub fn digit_value(&self, j: u64) -> i64 {
        assert!(j < self.n, "digit index {j} out of radix {}", self.n);
        match self.kind {
            DigitKind::Unsigned => j as i64,
            DigitKind::TwosComplement => {
                if j < self.n / 2 {
                    j as i64
                } else {
                    j as i64 - self.n as i64
                }
            }
            DigitKind::Centered => j as i64 - ((self.n - 1) / 2) as i64,
        }
    }

    /// The ring element `digit_value(j) · scale · r`, i.e. the plaintext of
    /// the j-th OT message in the fragment-multiplication protocol.
    #[must_use]
    pub fn contribution(&self, j: u64, r: u64, ring: &Ring) -> u64 {
        ring.mul_signed(ring.mul(self.scale & ring.mask(), r), self.digit_value(j))
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
enum Repr {
    /// Contiguous bit fields, lowest field first; if `signed`, the top field
    /// is two's complement.
    BitFields { widths: Vec<u32>, signed: bool },
    /// A single centered digit (ternary `n = 3`, or any odd radix).
    Centered { n: u64 },
    /// A single unsigned digit (binary `n = 2` weights `{0,1}`).
    Plain { n: u64 },
    /// Uniform base-N with γ digits for **arbitrary** N (the paper's "all
    /// possible combinations of N and γ"). Unsigned digits; when `signed`,
    /// the top digit is interpreted radix-complement style (for even N) —
    /// for odd N use [`Repr::Balanced`] instead.
    BaseN { n: u64, gamma: u32, signed: bool },
    /// Balanced (signed-digit) base-N for odd N: every digit is in
    /// `[−(N−1)/2, (N−1)/2]`, giving a symmetric weight range.
    Balanced { n: u64, gamma: u32 },
}

/// A complete decomposition scheme for one weight domain.
///
/// ```
/// use abnn2_math::FragmentScheme;
/// let s = FragmentScheme::signed_bit_fields(&[3, 3, 2]); // η = 8, signed
/// let digits = s.decompose(-100);
/// assert_eq!(s.recompose_i64(&digits), -100);
/// assert_eq!(s.gamma(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FragmentScheme {
    repr: Repr,
    fragments: Vec<Fragment>,
}

impl FragmentScheme {
    fn from_repr(repr: Repr) -> Self {
        let fragments = match &repr {
            Repr::BitFields { widths, signed } => {
                assert!(!widths.is_empty(), "at least one fragment required");
                assert!(
                    widths.iter().all(|&w| (1..=16).contains(&w)),
                    "fragment widths must be 1..=16 bits"
                );
                let eta: u32 = widths.iter().sum();
                assert!(eta <= 32, "total weight bitwidth must be <= 32");
                let mut out = Vec::with_capacity(widths.len());
                let mut offset = 0u32;
                for (i, &w) in widths.iter().enumerate() {
                    let top = i + 1 == widths.len();
                    out.push(Fragment {
                        n: 1u64 << w,
                        scale: 1u64 << offset,
                        kind: if *signed && top {
                            DigitKind::TwosComplement
                        } else {
                            DigitKind::Unsigned
                        },
                    });
                    offset += w;
                }
                out
            }
            Repr::Centered { n } => {
                assert!(*n >= 2, "radix must be >= 2");
                vec![Fragment { n: *n, scale: 1, kind: DigitKind::Centered }]
            }
            Repr::Plain { n } => {
                assert!(*n >= 2, "radix must be >= 2");
                vec![Fragment { n: *n, scale: 1, kind: DigitKind::Unsigned }]
            }
            Repr::BaseN { n, gamma, signed } => {
                assert!((2..=256).contains(n), "radix must be 2..=256");
                assert!(*gamma >= 1, "at least one fragment required");
                assert!(
                    !*signed || *n % 2 == 0,
                    "signed base-N needs an even radix (use balanced for odd)"
                );
                capacity(*n, *gamma); // panics on overflow
                (0..*gamma)
                    .map(|i| Fragment {
                        n: *n,
                        scale: n.pow(i),
                        kind: if *signed && i + 1 == *gamma {
                            DigitKind::TwosComplement
                        } else {
                            DigitKind::Unsigned
                        },
                    })
                    .collect()
            }
            Repr::Balanced { n, gamma } => {
                assert!(
                    (3..=255).contains(n) && *n % 2 == 1,
                    "balanced radix must be odd and 3..=255"
                );
                assert!(*gamma >= 1, "at least one fragment required");
                capacity(*n, *gamma);
                (0..*gamma)
                    .map(|i| Fragment { n: *n, scale: n.pow(i), kind: DigitKind::Centered })
                    .collect()
            }
        };
        FragmentScheme { repr, fragments }
    }

    /// Bit-field scheme with unsigned weights in `[0, 2^η)`.
    ///
    /// `widths` lists the fragment bit lengths from the **lowest** bits to
    /// the highest, following the paper's tuple notation — `(3,3,2)` means
    /// "the rightmost 3 bits are the first fragment".
    #[must_use]
    pub fn unsigned(widths: &[u32]) -> Self {
        Self::from_repr(Repr::BitFields { widths: widths.to_vec(), signed: false })
    }

    /// Bit-field scheme with two's-complement weights in `[−2^{η−1}, 2^{η−1})`.
    #[must_use]
    pub fn signed_bit_fields(widths: &[u32]) -> Self {
        Self::from_repr(Repr::BitFields { widths: widths.to_vec(), signed: true })
    }

    /// Uniform base-N scheme: γ = ⌈η / log₂N⌉ fragments of `frag_bits` bits
    /// each (Equation 2 of the paper), unsigned.
    #[must_use]
    pub fn uniform(eta: u32, frag_bits: u32) -> Self {
        assert!(frag_bits >= 1 && eta >= 1, "eta and frag_bits must be positive");
        let gamma = eta.div_ceil(frag_bits);
        let mut widths = vec![frag_bits; gamma as usize];
        let last = eta - frag_bits * (gamma - 1);
        *widths.last_mut().expect("gamma >= 1") = last;
        Self::unsigned(&widths)
    }

    /// The ternary weight domain {−1, 0, 1} served by a single 1-out-of-3 OT.
    #[must_use]
    pub fn ternary() -> Self {
        Self::from_repr(Repr::Centered { n: 3 })
    }

    /// The binary weight domain {0, 1} served by a single 1-out-of-2 OT.
    #[must_use]
    pub fn binary() -> Self {
        Self::from_repr(Repr::Plain { n: 2 })
    }

    /// Uniform base-N decomposition with γ unsigned digits for **any**
    /// radix 2..=256 — the full parameter space the paper's "all possible
    /// combinations of N and γ" sweep refers to. Weight domain `[0, N^γ)`.
    #[must_use]
    pub fn base_n(n: u64, gamma: u32) -> Self {
        Self::from_repr(Repr::BaseN { n, gamma, signed: false })
    }

    /// Signed uniform base-N (even radix): the top digit is interpreted
    /// radix-complement style, giving the domain `[−N^γ/2, N^γ/2)`.
    #[must_use]
    pub fn base_n_signed(n: u64, gamma: u32) -> Self {
        Self::from_repr(Repr::BaseN { n, gamma, signed: true })
    }

    /// Balanced (signed-digit) base-N for odd radixes: every digit lies in
    /// `[−(N−1)/2, (N−1)/2]`, weight domain `±(N^γ−1)/2`.
    #[must_use]
    pub fn balanced(n: u64, gamma: u32) -> Self {
        Self::from_repr(Repr::Balanced { n, gamma })
    }

    /// One-batch communication cost per weight in bits under this scheme:
    /// `Σ_fragments (ℓ·(N−1) + 2κ)` with κ = 128 (§4.1.3 / Table 1).
    #[must_use]
    pub fn one_batch_bits_per_weight(&self, ring_bits: u32) -> u64 {
        self.fragments.iter().map(|f| u64::from(ring_bits) * (f.n - 1) + 256).sum()
    }

    /// Multi-batch communication cost per weight in bits for batch `o`:
    /// `Σ_fragments (o·ℓ·N + 2κ)` (§4.1.2 / Table 1).
    #[must_use]
    pub fn multi_batch_bits_per_weight(&self, o: usize, ring_bits: u32) -> u64 {
        self.fragments.iter().map(|f| o as u64 * u64::from(ring_bits) * f.n + 256).sum()
    }

    /// Searches **all** radixes N ∈ 2..=16 (the paper's cap) for the
    /// signed scheme with minimum predicted communication for η-bit weights
    /// at batch size `o` over ℤ_{2^ring_bits} — the "optimal parameter
    /// values for different bitwidth" of the paper's contribution list,
    /// extended to non-power-of-two radixes.
    ///
    /// ```
    /// use abnn2_math::FragmentScheme;
    /// // 8-bit weights, one-batch, ℓ = 32: balanced base-7 with 3 digits
    /// // beats the paper's (2,2,2,2) by ~5%.
    /// let best = FragmentScheme::optimize(8, 1, 32);
    /// assert_eq!(best.label(), "balanced-7^3");
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `eta` is 0 or greater than 30.
    #[must_use]
    pub fn optimize(eta: u32, o: usize, ring_bits: u32) -> Self {
        assert!((1..=30).contains(&eta), "eta must be 1..=30");
        let mut best: Option<(u64, FragmentScheme)> = None;
        for n in 2u64..=16 {
            // Smallest γ whose capacity covers the 2^eta-value domain.
            let mut gamma = 1u32;
            while capacity_checked(n, gamma).is_some_and(|c| c < (1u128 << eta)) {
                gamma += 1;
            }
            let scheme = if n % 2 == 0 {
                FragmentScheme::base_n_signed(n, gamma)
            } else {
                FragmentScheme::balanced(n, gamma)
            };
            let cost = if o <= 1 {
                scheme.one_batch_bits_per_weight(ring_bits)
            } else {
                scheme.multi_batch_bits_per_weight(o, ring_bits)
            };
            if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                best = Some((cost, scheme));
            }
        }
        best.expect("non-empty search space").1
    }

    /// Number of fragments γ.
    #[must_use]
    pub fn gamma(&self) -> usize {
        self.fragments.len()
    }

    /// The fragments, lowest scale first.
    #[must_use]
    pub fn fragments(&self) -> &[Fragment] {
        &self.fragments
    }

    /// The largest radix N over all fragments (the paper caps this at 16).
    #[must_use]
    pub fn max_radix(&self) -> u64 {
        self.fragments.iter().map(|f| f.n).max().expect("non-empty")
    }

    /// Total bitwidth η of the represented weights (⌈log₂ of the domain
    /// size⌉ for non-power-of-two domains).
    #[must_use]
    pub fn eta(&self) -> u32 {
        match &self.repr {
            Repr::BitFields { widths, .. } => widths.iter().sum(),
            Repr::Centered { n } | Repr::Plain { n } => 64 - (n - 1).leading_zeros(),
            Repr::BaseN { n, gamma, .. } | Repr::Balanced { n, gamma } => {
                128 - (capacity(*n, *gamma) - 1).leading_zeros()
            }
        }
    }

    /// Inclusive range of representable weight values.
    #[must_use]
    pub fn weight_range(&self) -> (i64, i64) {
        match &self.repr {
            Repr::BitFields { widths, signed } => {
                let eta: u32 = widths.iter().sum();
                if *signed {
                    (-(1i64 << (eta - 1)), (1i64 << (eta - 1)) - 1)
                } else {
                    (0, (1i64 << eta) - 1)
                }
            }
            Repr::Centered { n } => {
                let half = ((n - 1) / 2) as i64;
                (-half, (*n as i64 - 1) - half)
            }
            Repr::Plain { n } => (0, *n as i64 - 1),
            Repr::BaseN { n, gamma, signed } => {
                let cap = capacity(*n, *gamma) as i64;
                if *signed {
                    (-(cap / 2), cap / 2 - 1)
                } else {
                    (0, cap - 1)
                }
            }
            Repr::Balanced { n, gamma } => {
                let half = ((capacity(*n, *gamma) - 1) / 2) as i64;
                (-half, half)
            }
        }
    }

    /// True if `w` is representable in this scheme.
    #[must_use]
    pub fn contains(&self, w: i64) -> bool {
        let (lo, hi) = self.weight_range();
        (lo..=hi).contains(&w)
    }

    /// Clamps a weight into the representable range.
    #[must_use]
    pub fn clamp(&self, w: i64) -> i64 {
        let (lo, hi) = self.weight_range();
        w.clamp(lo, hi)
    }

    /// Splits a weight into per-fragment choice indices (`w[i]` in the
    /// paper's notation), lowest fragment first.
    ///
    /// # Panics
    ///
    /// Panics if `w` is outside [`FragmentScheme::weight_range`].
    #[must_use]
    pub fn decompose(&self, w: i64) -> Vec<u64> {
        assert!(self.contains(w), "weight {w} outside domain {:?}", self.weight_range());
        match &self.repr {
            Repr::BitFields { widths, .. } => {
                let eta: u32 = widths.iter().sum();
                let mut pattern = (w as u64) & if eta == 64 { u64::MAX } else { (1u64 << eta) - 1 };
                widths
                    .iter()
                    .map(|&b| {
                        let d = pattern & ((1u64 << b) - 1);
                        pattern >>= b;
                        d
                    })
                    .collect()
            }
            Repr::Centered { n } => vec![(w + ((n - 1) / 2) as i64) as u64],
            Repr::Plain { .. } => vec![w as u64],
            Repr::BaseN { n, gamma, .. } => {
                // Radix-complement pattern: reduce into [0, N^γ), then plain
                // base-N digits (the signed top digit falls out naturally).
                let cap = capacity(*n, *gamma) as i64;
                let mut pattern = w.rem_euclid(cap) as u64;
                (0..*gamma)
                    .map(|_| {
                        let d = pattern % n;
                        pattern /= n;
                        d
                    })
                    .collect()
            }
            Repr::Balanced { n, gamma } => {
                let half = ((n - 1) / 2) as i64;
                let mut rem = w;
                let digits: Vec<u64> = (0..*gamma)
                    .map(|_| {
                        let mut d = rem.rem_euclid(*n as i64);
                        if d > half {
                            d -= *n as i64;
                        }
                        rem = (rem - d) / *n as i64;
                        (d + half) as u64
                    })
                    .collect();
                debug_assert_eq!(rem, 0, "balanced decomposition must terminate");
                digits
            }
        }
    }

    /// Reconstructs the integer weight value from choice indices.
    ///
    /// # Panics
    ///
    /// Panics if the digit count or any index is out of range.
    #[must_use]
    pub fn recompose_i64(&self, digits: &[u64]) -> i64 {
        assert_eq!(digits.len(), self.gamma(), "digit count mismatch");
        self.fragments.iter().zip(digits).map(|(f, &j)| f.digit_value(j) * f.scale as i64).sum()
    }

    /// Reconstructs the weight as a residue in `ring` (the value that the
    /// secure fragment multiplications sum to).
    ///
    /// # Panics
    ///
    /// Panics if the digit count or any index is out of range.
    #[must_use]
    pub fn recompose(&self, digits: &[u64], ring: &Ring) -> u64 {
        ring.from_i64(self.recompose_i64(digits))
    }

    /// A short label matching the paper's table notation, e.g. `"(2,2,2,2)"`,
    /// `"ternary"`, `"binary"`.
    #[must_use]
    pub fn label(&self) -> String {
        match &self.repr {
            Repr::BitFields { widths, .. } => {
                let parts: Vec<String> = widths.iter().map(|w| w.to_string()).collect();
                format!("({})", parts.join(","))
            }
            Repr::Centered { n: 3 } => "ternary".to_owned(),
            Repr::Centered { n } => format!("centered-{n}"),
            Repr::Plain { n: 2 } => "binary".to_owned(),
            Repr::Plain { n } => format!("plain-{n}"),
            Repr::BaseN { n, gamma, signed } => {
                format!("{}base-{n}^{gamma}", if *signed { "signed-" } else { "" })
            }
            Repr::Balanced { n, gamma } => format!("balanced-{n}^{gamma}"),
        }
    }

    /// The communication-optimal scheme for η-bit weights per the paper's
    /// Table 2 finding: 2-bit fragments minimize one-batch communication.
    #[must_use]
    pub fn optimal(eta: u32) -> Self {
        match eta {
            1 => Self::binary(),
            2 => Self::ternary(),
            _ => Self::uniform(eta, 2),
        }
    }

    /// All fragmentations evaluated in Table 2 for a given η, with the
    /// paper's labels: `(1,…,1)`, 2-bit, 3-bit and wider splits.
    #[must_use]
    pub fn paper_schemes(eta: u32) -> Vec<Self> {
        match eta {
            8 => vec![
                Self::unsigned(&[1; 8]),
                Self::unsigned(&[2, 2, 2, 2]),
                Self::unsigned(&[3, 3, 2]),
                Self::unsigned(&[4, 4]),
            ],
            6 => vec![Self::unsigned(&[1; 6]), Self::unsigned(&[2, 2, 2]), Self::unsigned(&[3, 3])],
            4 => vec![Self::unsigned(&[1; 4]), Self::unsigned(&[2, 2]), Self::unsigned(&[4])],
            3 => vec![Self::unsigned(&[1; 3]), Self::unsigned(&[2, 1]), Self::unsigned(&[3])],
            _ => vec![Self::uniform(eta, 1), Self::optimal(eta)],
        }
    }
}

/// `n^gamma` as u128, panicking on (absurd) overflow.
fn capacity(n: u64, gamma: u32) -> u128 {
    capacity_checked(n, gamma).expect("fragment domain capacity overflow")
}

fn capacity_checked(n: u64, gamma: u32) -> Option<u128> {
    let mut acc: u128 = 1;
    for _ in 0..gamma {
        acc = acc.checked_mul(n as u128)?;
        if acc > (1u128 << 63) {
            return None;
        }
    }
    Some(acc)
}

impl std::fmt::Display for FragmentScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unsigned_decompose_matches_paper_example() {
        // η = 3 with (2,1): rightmost 2 bits are the first fragment.
        let s = FragmentScheme::unsigned(&[2, 1]);
        assert_eq!(s.decompose(0b110), vec![0b10, 0b1]);
        assert_eq!(s.label(), "(2,1)");
        assert_eq!(s.gamma(), 2);
    }

    #[test]
    fn uniform_gamma_matches_equation_2() {
        // 8-bit weights decomposed into 2-bit fragments: γ = 4.
        let s = FragmentScheme::uniform(8, 2);
        assert_eq!(s.gamma(), 4);
        assert_eq!(s.max_radix(), 4);
        // γ = ⌈η/log N⌉ for η=5, N=4 → 3 fragments (2,2,1).
        let s = FragmentScheme::uniform(5, 2);
        assert_eq!(s.gamma(), 3);
        assert_eq!(s.eta(), 5);
    }

    #[test]
    fn ternary_digits() {
        let s = FragmentScheme::ternary();
        assert_eq!(s.weight_range(), (-1, 1));
        assert_eq!(s.decompose(-1), vec![0]);
        assert_eq!(s.decompose(0), vec![1]);
        assert_eq!(s.decompose(1), vec![2]);
        assert_eq!(s.recompose_i64(&[0]), -1);
        assert_eq!(s.label(), "ternary");
    }

    #[test]
    fn binary_digits() {
        let s = FragmentScheme::binary();
        assert_eq!(s.weight_range(), (0, 1));
        assert_eq!(s.recompose_i64(&s.decompose(1)), 1);
        assert_eq!(s.label(), "binary");
    }

    #[test]
    fn signed_scheme_round_trip_extremes() {
        let s = FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]);
        assert_eq!(s.weight_range(), (-128, 127));
        for w in [-128i64, -1, 0, 1, 127] {
            assert_eq!(s.recompose_i64(&s.decompose(w)), w, "w = {w}");
        }
    }

    #[test]
    fn contribution_matches_scaled_product() {
        let ring = Ring::new(32);
        let s = FragmentScheme::signed_bit_fields(&[3, 3, 2]);
        let r = 0xDEAD_BEEFu64 & ring.mask();
        let w = -97i64;
        let digits = s.decompose(w);
        let mut acc = 0u64;
        for (f, &j) in s.fragments().iter().zip(&digits) {
            acc = ring.add(acc, f.contribution(j, r, &ring));
        }
        assert_eq!(acc, ring.mul(ring.from_i64(w), r));
    }

    #[test]
    fn paper_schemes_cover_table_2() {
        assert_eq!(FragmentScheme::paper_schemes(8).len(), 4);
        assert_eq!(FragmentScheme::paper_schemes(6).len(), 3);
        assert_eq!(FragmentScheme::paper_schemes(4).len(), 3);
        assert_eq!(FragmentScheme::paper_schemes(3).len(), 3);
        let labels: Vec<String> =
            FragmentScheme::paper_schemes(8).iter().map(FragmentScheme::label).collect();
        assert_eq!(labels, vec!["(1,1,1,1,1,1,1,1)", "(2,2,2,2)", "(3,3,2)", "(4,4)"]);
    }

    #[test]
    fn optimal_uses_two_bit_fragments() {
        assert_eq!(FragmentScheme::optimal(8).gamma(), 4);
        assert_eq!(FragmentScheme::optimal(2).label(), "ternary");
        assert_eq!(FragmentScheme::optimal(1).label(), "binary");
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_weight_rejected() {
        let _ = FragmentScheme::binary().decompose(2);
    }

    #[test]
    fn base_n_unsigned_round_trip() {
        let s = FragmentScheme::base_n(5, 3); // domain [0, 125)
        assert_eq!(s.weight_range(), (0, 124));
        for w in [0i64, 1, 4, 5, 24, 124] {
            assert_eq!(s.recompose_i64(&s.decompose(w)), w, "w = {w}");
        }
        assert_eq!(s.label(), "base-5^3");
        assert_eq!(s.eta(), 7);
    }

    #[test]
    fn base_n_signed_round_trip() {
        let s = FragmentScheme::base_n_signed(6, 3); // domain [−108, 108)
        assert_eq!(s.weight_range(), (-108, 107));
        for w in [-108i64, -1, 0, 1, 107] {
            assert_eq!(s.recompose_i64(&s.decompose(w)), w, "w = {w}");
        }
    }

    #[test]
    fn balanced_round_trip() {
        let s = FragmentScheme::balanced(7, 3); // domain ±171
        assert_eq!(s.weight_range(), (-171, 171));
        for w in [-171i64, -100, -1, 0, 1, 100, 171] {
            assert_eq!(s.recompose_i64(&s.decompose(w)), w, "w = {w}");
        }
        assert_eq!(s.gamma(), 3);
        assert_eq!(s.max_radix(), 7);
    }

    #[test]
    #[should_panic(expected = "even radix")]
    fn signed_base_n_rejects_odd_radix() {
        let _ = FragmentScheme::base_n_signed(7, 2);
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn balanced_rejects_even_radix() {
        let _ = FragmentScheme::balanced(6, 2);
    }

    #[test]
    fn optimizer_beats_paper_default_for_8_bit() {
        let best = FragmentScheme::optimize(8, 1, 32);
        let paper = FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]);
        assert!(
            best.one_batch_bits_per_weight(32) <= paper.one_batch_bits_per_weight(32),
            "optimizer must never lose to the paper's default"
        );
        // The full N-sweep finds the balanced base-7 representation.
        assert_eq!(best.label(), "balanced-7^3");
        assert_eq!(best.one_batch_bits_per_weight(32), 3 * (32 * 6 + 256));
    }

    #[test]
    fn optimizer_covers_all_etas() {
        for eta in 1..=16u32 {
            for o in [1usize, 32] {
                let s = FragmentScheme::optimize(eta, o, 32);
                let (lo, hi) = s.weight_range();
                assert!(
                    (hi - lo + 1) as u128 >= (1u128 << eta),
                    "η={eta}: domain {lo}..={hi} too small"
                );
                // Round-trip the extremes of the η-bit domain.
                let need_lo = -(1i64 << (eta - 1));
                let need_hi = (1i64 << (eta - 1)) - 1;
                for w in [need_lo, 0, need_hi] {
                    if s.contains(w) {
                        assert_eq!(s.recompose_i64(&s.decompose(w)), w);
                    }
                }
            }
        }
    }

    #[test]
    fn cost_formulas_match_table_1() {
        // (2,2,2,2): γ = 4, N = 4 → one-batch 4·(3ℓ + 2κ).
        let s = FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]);
        assert_eq!(s.one_batch_bits_per_weight(32), 4 * (3 * 32 + 256));
        assert_eq!(s.multi_batch_bits_per_weight(128, 32), 4 * (128 * 32 * 4 + 256));
    }

    proptest! {
        #[test]
        fn unsigned_round_trip(w in 0i64..256) {
            for s in [FragmentScheme::unsigned(&[2,2,2,2]), FragmentScheme::unsigned(&[3,3,2]),
                      FragmentScheme::unsigned(&[4,4]), FragmentScheme::unsigned(&[1;8])] {
                prop_assert_eq!(s.recompose_i64(&s.decompose(w)), w);
            }
        }

        #[test]
        fn signed_round_trip(w in -128i64..128) {
            for s in [FragmentScheme::signed_bit_fields(&[2,2,2,2]),
                      FragmentScheme::signed_bit_fields(&[3,3,2]),
                      FragmentScheme::signed_bit_fields(&[4,4])] {
                prop_assert_eq!(s.recompose_i64(&s.decompose(w)), w);
            }
        }

        #[test]
        fn ring_recompose_equals_signed_embedding(w in -128i64..128, bits in 2u32..=64) {
            let ring = Ring::new(bits);
            let s = FragmentScheme::signed_bit_fields(&[4, 4]);
            let digits = s.decompose(w);
            prop_assert_eq!(s.recompose(&digits, &ring), ring.from_i64(w));
        }

        #[test]
        fn base_n_round_trip_all(w in -50i64..50, n in 2u64..=16, gamma in 2u32..4) {
            let s = if n % 2 == 0 {
                FragmentScheme::base_n_signed(n, gamma)
            } else {
                FragmentScheme::balanced(n, gamma)
            };
            if s.contains(w) {
                prop_assert_eq!(s.recompose_i64(&s.decompose(w)), w);
            }
        }

        #[test]
        fn base_n_contributions_sum_to_product(w in -50i64..50, r: u64, n in 2u64..=16) {
            let ring = Ring::new(32);
            let r = ring.reduce(r);
            let s = if n % 2 == 0 {
                FragmentScheme::base_n_signed(n, 3)
            } else {
                FragmentScheme::balanced(n, 3)
            };
            prop_assume!(s.contains(w));
            let digits = s.decompose(w);
            let mut acc = 0u64;
            for (f, &j) in s.fragments().iter().zip(&digits) {
                acc = ring.add(acc, f.contribution(j, r, &ring));
            }
            prop_assert_eq!(acc, ring.mul(ring.from_i64(w), r));
        }

        #[test]
        fn fragment_contributions_sum_to_product(w in -8i64..8, r: u64, bits in 8u32..=64) {
            let ring = Ring::new(bits);
            let r = ring.reduce(r);
            for s in [FragmentScheme::signed_bit_fields(&[2, 2]), FragmentScheme::ternary(), FragmentScheme::binary()] {
                if !s.contains(w) { continue; }
                let digits = s.decompose(w);
                let mut acc = 0u64;
                for (f, &j) in s.fragments().iter().zip(&digits) {
                    acc = ring.add(acc, f.contribution(j, r, &ring));
                }
                prop_assert_eq!(acc, ring.mul(ring.from_i64(w), r));
            }
        }
    }
}
