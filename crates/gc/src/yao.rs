//! Yao's two-party protocol over a channel: garble → transfer → evaluate.
//!
//! The garbler ships the garbled tables, its own selected input labels and
//! the output decode bits in one message; the evaluator fetches its input
//! labels through IKNP OT and evaluates locally. Outputs are revealed to the
//! **evaluator only** (in ABNN² the server evaluates and learns its fresh
//! share `z₀`).

use crate::circuit::Circuit;
use crate::frames::{GcDecodeMap, GcLabels, GcTables};
use crate::garble::{evaluate, garble};
use crate::GcError;
use abnn2_crypto::Block;
use abnn2_net::Transport;
use abnn2_ot::bits::{get_bit, pack_bits};
use abnn2_ot::{IknpReceiver, IknpSender};
use rand::Rng;

/// The garbling party (ABNN²'s client). Owns the OT-sender state used to
/// deliver evaluator input labels.
#[derive(Debug)]
pub struct YaoGarbler {
    ot: IknpSender,
}

/// The evaluating party (ABNN²'s server). Owns the OT-receiver state.
#[derive(Debug, Clone)]
pub struct YaoEvaluator {
    ot: IknpReceiver,
}

impl YaoGarbler {
    /// One-time setup (runs the base OTs). Must be paired with
    /// [`YaoEvaluator::setup`] on the other side.
    ///
    /// # Errors
    ///
    /// Propagates OT setup failures.
    pub fn setup<T: Transport, R: Rng + ?Sized>(ch: &mut T, rng: &mut R) -> Result<Self, GcError> {
        Ok(YaoGarbler { ot: IknpSender::setup(ch, rng)? })
    }

    /// Wraps an existing OT sender (to share one OT session across GC and
    /// other subprotocols).
    #[must_use]
    pub fn from_ot(ot: IknpSender) -> Self {
        YaoGarbler { ot }
    }

    /// Garbles `circuit`, transfers everything, and serves the evaluator's
    /// input-label OTs. Returns nothing: outputs go to the evaluator.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnection or OT failure.
    ///
    /// # Panics
    ///
    /// Panics if `my_bits` does not match the circuit's garbler inputs.
    pub fn run<T: Transport, R: Rng + ?Sized>(
        &mut self,
        ch: &mut T,
        circuit: &Circuit,
        my_bits: &[bool],
        rng: &mut R,
    ) -> Result<(), GcError> {
        let (gc, labels) = garble(circuit, rng);
        let own = labels.select_garbler(my_bits);
        ch.send_frame(&GcLabels(own))?;
        let mut tables = Vec::with_capacity(gc.and_tables.len() * 2);
        for (tg, te) in &gc.and_tables {
            tables.push(*tg);
            tables.push(*te);
        }
        ch.send_frame(&GcTables(tables))?;
        ch.send_frame(&GcDecodeMap(pack_bits(&gc.output_decode)))?;
        self.ot.send_chosen(ch, &labels.evaluator_inputs)?;
        Ok(())
    }
}

impl YaoEvaluator {
    /// One-time setup (runs the base OTs); pairs with [`YaoGarbler::setup`].
    ///
    /// # Errors
    ///
    /// Propagates OT setup failures.
    pub fn setup<T: Transport, R: Rng + ?Sized>(ch: &mut T, rng: &mut R) -> Result<Self, GcError> {
        Ok(YaoEvaluator { ot: IknpReceiver::setup(ch, rng)? })
    }

    /// Wraps an existing OT receiver.
    #[must_use]
    pub fn from_ot(ot: IknpReceiver) -> Self {
        YaoEvaluator { ot }
    }

    /// Receives a garbled circuit, obtains labels for `my_bits` via OT,
    /// evaluates, and returns the decoded output bits.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnection, OT failure, or material that does
    /// not match `circuit`.
    pub fn run<T: Transport>(
        &mut self,
        ch: &mut T,
        circuit: &Circuit,
        my_bits: &[bool],
    ) -> Result<Vec<bool>, GcError> {
        let GcLabels(garbler_labels) = ch.recv_frame()?;
        let GcTables(table_blocks) = ch.recv_frame()?;
        if table_blocks.len() != 2 * circuit.and_count() {
            return Err(GcError::Malformed("AND table stream length"));
        }
        let GcDecodeMap(decode_bytes) = ch.recv_frame()?;
        if decode_bytes.len() != circuit.outputs().len().div_ceil(8) {
            return Err(GcError::Malformed("output decode length"));
        }
        let and_tables: Vec<(Block, Block)> =
            table_blocks.chunks_exact(2).map(|p| (p[0], p[1])).collect();
        let output_decode: Vec<bool> =
            (0..circuit.outputs().len()).map(|i| get_bit(&decode_bytes, i)).collect();
        let my_labels = self.ot.recv(ch, my_bits)?;
        let gc = crate::garble::GarbledCircuit { and_tables, output_decode };
        evaluate(circuit, &gc, &garbler_labels, &my_labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{bits_to_u64, u64_to_bits};
    use crate::circuits;
    use abnn2_math::Ring;
    use abnn2_net::{run_pair, NetworkModel};
    use rand::SeedableRng;

    fn yao_run(circuit: &Circuit, g_bits: Vec<bool>, e_bits: Vec<bool>) -> Vec<bool> {
        let c1 = circuit.clone();
        let c2 = circuit.clone();
        let (_, out, _) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(21);
                let mut g = YaoGarbler::setup(ch, &mut rng).expect("garbler setup");
                g.run(ch, &c1, &g_bits, &mut rng).expect("garbler run");
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(22);
                let mut e = YaoEvaluator::setup(ch, &mut rng).expect("evaluator setup");
                e.run(ch, &c2, &e_bits).expect("evaluator run")
            },
        );
        out
    }

    #[test]
    fn two_party_relu_reshare() {
        let bits = 16;
        let ring = Ring::new(bits as u32);
        let circuit = circuits::relu_reshare_circuit(bits);
        for y in [-2000i64, -1, 0, 1, 12345] {
            let y_ring = ring.from_i64(y);
            let y1 = 0x3C3Cu64;
            let y0 = ring.sub(y_ring, y1);
            let z1 = 0x00FFu64;
            let mut g_bits = u64_to_bits(y1, bits);
            g_bits.extend(u64_to_bits(z1, bits));
            let out = yao_run(&circuit, g_bits, u64_to_bits(y0, bits));
            let z0 = bits_to_u64(&out);
            let expect = if y >= 0 { y as u64 } else { 0 };
            assert_eq!(ring.add(z0, z1), expect, "y = {y}");
        }
    }

    #[test]
    fn two_party_sign_circuit() {
        let bits = 12;
        let ring = Ring::new(bits as u32);
        let circuit = circuits::relu_sign_circuit(bits);
        for y in [-100i64, 100] {
            let y1 = 0x123u64 & ring.mask();
            let y0 = ring.sub(ring.from_i64(y), y1);
            let out = yao_run(&circuit, u64_to_bits(y1, bits), u64_to_bits(y0, bits));
            assert_eq!(out, vec![y >= 0]);
        }
    }

    #[test]
    fn consecutive_circuits_reuse_session() {
        let bits = 8;
        let circuit = circuits::reconstruct_reshare_circuit(bits);
        let c1 = circuit.clone();
        let c2 = circuit.clone();
        let ring = Ring::new(8);
        let (_, outs, _) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(31);
                let mut g = YaoGarbler::setup(ch, &mut rng).expect("setup");
                for (y1, z1) in [(5u64, 9u64), (250, 3)] {
                    let mut bits_in = u64_to_bits(y1, bits);
                    bits_in.extend(u64_to_bits(z1, bits));
                    g.run(ch, &c1, &bits_in, &mut rng).expect("run");
                }
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(32);
                let mut e = YaoEvaluator::setup(ch, &mut rng).expect("setup");
                [(7u64,), (100,)]
                    .iter()
                    .map(|&(y0,)| {
                        bits_to_u64(&e.run(ch, &c2, &u64_to_bits(y0, bits)).expect("run"))
                    })
                    .collect::<Vec<u64>>()
            },
        );
        // z0 = (y0 + y1) - z1 mod 256
        assert_eq!(outs[0], ring.sub(ring.add(7, 5), 9));
        assert_eq!(outs[1], ring.sub(ring.add(100, 250), 3));
    }
}
