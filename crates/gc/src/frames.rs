//! Typed wire frames for the garbled-circuit transfer.
//!
//! The garbler ships three frames per circuit execution — its own input
//! labels, the AND-gate tables, and the output decode bits — and the
//! evaluator receives them through
//! [`Transport::recv_frame`](abnn2_net::Transport::recv_frame). Frame-level
//! checks cover block granularity; circuit-dependent exact counts stay with
//! [`YaoEvaluator`](crate::yao::YaoEvaluator), which reports them as
//! [`GcError::Malformed`](crate::GcError::Malformed).

use abnn2_net::wire::tags;
use abnn2_net::{block_frame, byte_frame};

block_frame! {
    /// The garbler's selected input labels, one block per garbler wire.
    pub struct GcLabels, tag = tags::GC_LABELS, name = "garbler input labels", unit = 1
}

block_frame! {
    /// The garbled AND tables: two ciphertext blocks per AND gate.
    pub struct GcTables, tag = tags::GC_TABLES, name = "garbled table stream", unit = 2
}

byte_frame! {
    /// The output decode map: packed point-and-permute bits, one bit per
    /// circuit output.
    pub struct GcDecodeMap, tag = tags::GC_DECODE_MAP, name = "output decode map", unit = 1
}
