//! Boolean circuits: representation, builder, and plaintext evaluation.

/// Index of a wire in a [`Circuit`].
pub type WireId = usize;

/// A little-endian group of wires carrying an ℓ-bit ring element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Word(pub Vec<WireId>);

impl Word {
    /// Bit width of the word.
    #[must_use]
    pub fn bits(&self) -> usize {
        self.0.len()
    }

    /// The most significant wire (the sign bit under two's complement).
    ///
    /// # Panics
    ///
    /// Panics if the word is empty.
    #[must_use]
    pub fn msb(&self) -> WireId {
        *self.0.last().expect("non-empty word")
    }
}

/// A gate in topological order. Input wires always precede the output wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// `out = a ⊕ b` — free under free-XOR garbling.
    Xor { a: WireId, b: WireId, out: WireId },
    /// `out = a ∧ b` — two ciphertexts under half-gates.
    And { a: WireId, b: WireId, out: WireId },
    /// `out = ¬a` — free (label semantics flip).
    Inv { a: WireId, out: WireId },
}

/// An immutable boolean circuit with two-party input ownership.
#[derive(Debug, Clone)]
pub struct Circuit {
    pub(crate) gates: Vec<Gate>,
    pub(crate) n_wires: usize,
    pub(crate) garbler_inputs: Vec<WireId>,
    pub(crate) evaluator_inputs: Vec<WireId>,
    pub(crate) outputs: Vec<WireId>,
}

impl Circuit {
    /// Number of AND gates — the communication-relevant size.
    #[must_use]
    pub fn and_count(&self) -> usize {
        self.gates.iter().filter(|g| matches!(g, Gate::And { .. })).count()
    }

    /// Total gate count.
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of wires.
    #[must_use]
    pub fn wire_count(&self) -> usize {
        self.n_wires
    }

    /// Wires owned by the garbler, in declaration order.
    #[must_use]
    pub fn garbler_inputs(&self) -> &[WireId] {
        &self.garbler_inputs
    }

    /// Wires owned by the evaluator, in declaration order.
    #[must_use]
    pub fn evaluator_inputs(&self) -> &[WireId] {
        &self.evaluator_inputs
    }

    /// Output wires, in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[WireId] {
        &self.outputs
    }

    /// Plaintext evaluation — the correctness reference for garbling.
    ///
    /// # Panics
    ///
    /// Panics if input lengths do not match the declared input wires.
    #[must_use]
    pub fn eval(&self, garbler_bits: &[bool], evaluator_bits: &[bool]) -> Vec<bool> {
        assert_eq!(garbler_bits.len(), self.garbler_inputs.len(), "garbler input count");
        assert_eq!(evaluator_bits.len(), self.evaluator_inputs.len(), "evaluator input count");
        let mut values = vec![false; self.n_wires];
        for (&w, &b) in self.garbler_inputs.iter().zip(garbler_bits) {
            values[w] = b;
        }
        for (&w, &b) in self.evaluator_inputs.iter().zip(evaluator_bits) {
            values[w] = b;
        }
        for gate in &self.gates {
            match *gate {
                Gate::Xor { a, b, out } => values[out] = values[a] ^ values[b],
                Gate::And { a, b, out } => values[out] = values[a] & values[b],
                Gate::Inv { a, out } => values[out] = !values[a],
            }
        }
        self.outputs.iter().map(|&w| values[w]).collect()
    }
}

/// Incremental circuit builder.
///
/// ```
/// use abnn2_gc::CircuitBuilder;
/// let mut b = CircuitBuilder::new();
/// let x = b.garbler_input();
/// let y = b.evaluator_input();
/// let z = b.and(x, y);
/// let c = b.build(vec![z]);
/// assert_eq!(c.eval(&[true], &[true]), vec![true]);
/// ```
#[derive(Debug, Default)]
pub struct CircuitBuilder {
    gates: Vec<Gate>,
    n_wires: usize,
    garbler_inputs: Vec<WireId>,
    evaluator_inputs: Vec<WireId>,
}

impl CircuitBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        CircuitBuilder::default()
    }

    fn fresh(&mut self) -> WireId {
        let w = self.n_wires;
        self.n_wires += 1;
        w
    }

    /// Declares one garbler-owned input bit.
    pub fn garbler_input(&mut self) -> WireId {
        let w = self.fresh();
        self.garbler_inputs.push(w);
        w
    }

    /// Declares one evaluator-owned input bit.
    pub fn evaluator_input(&mut self) -> WireId {
        let w = self.fresh();
        self.evaluator_inputs.push(w);
        w
    }

    /// Declares a garbler-owned ℓ-bit word (little-endian).
    pub fn garbler_word(&mut self, bits: usize) -> Word {
        Word((0..bits).map(|_| self.garbler_input()).collect())
    }

    /// Declares an evaluator-owned ℓ-bit word (little-endian).
    pub fn evaluator_word(&mut self, bits: usize) -> Word {
        Word((0..bits).map(|_| self.evaluator_input()).collect())
    }

    /// Adds an XOR gate (free).
    pub fn xor(&mut self, a: WireId, b: WireId) -> WireId {
        let out = self.fresh();
        self.gates.push(Gate::Xor { a, b, out });
        out
    }

    /// Adds an AND gate (two garbled ciphertexts).
    pub fn and(&mut self, a: WireId, b: WireId) -> WireId {
        let out = self.fresh();
        self.gates.push(Gate::And { a, b, out });
        out
    }

    /// Adds an inverter (free).
    pub fn inv(&mut self, a: WireId) -> WireId {
        let out = self.fresh();
        self.gates.push(Gate::Inv { a, out });
        out
    }

    /// `a ∨ b = ¬(¬a ∧ ¬b)` — one AND gate.
    pub fn or(&mut self, a: WireId, b: WireId) -> WireId {
        let na = self.inv(a);
        let nb = self.inv(b);
        let n = self.and(na, nb);
        self.inv(n)
    }

    /// Finalizes the circuit with the given output wires.
    ///
    /// # Panics
    ///
    /// Panics if any output wire is undefined.
    #[must_use]
    pub fn build(self, outputs: Vec<WireId>) -> Circuit {
        assert!(outputs.iter().all(|&w| w < self.n_wires), "undefined output wire");
        Circuit {
            gates: self.gates,
            n_wires: self.n_wires,
            garbler_inputs: self.garbler_inputs,
            evaluator_inputs: self.evaluator_inputs,
            outputs,
        }
    }
}

/// Converts a ring element to `bits` little-endian booleans.
#[must_use]
pub fn u64_to_bits(x: u64, bits: usize) -> Vec<bool> {
    (0..bits).map(|i| (x >> i) & 1 == 1).collect()
}

/// Converts little-endian booleans back to a ring element.
///
/// # Panics
///
/// Panics if more than 64 bits are supplied.
#[must_use]
pub fn bits_to_u64(bits: &[bool]) -> u64 {
    assert!(bits.len() <= 64, "too many bits for u64");
    bits.iter().enumerate().fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tables() {
        let mut b = CircuitBuilder::new();
        let x = b.garbler_input();
        let y = b.evaluator_input();
        let xor = b.xor(x, y);
        let and = b.and(x, y);
        let or = b.or(x, y);
        let nx = b.inv(x);
        let c = b.build(vec![xor, and, or, nx]);
        for (gx, gy) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = c.eval(&[gx], &[gy]);
            assert_eq!(out, vec![gx ^ gy, gx & gy, gx | gy, !gx]);
        }
    }

    #[test]
    fn gate_counts() {
        let mut b = CircuitBuilder::new();
        let x = b.garbler_input();
        let y = b.evaluator_input();
        let a = b.and(x, y);
        let _ = b.xor(a, x);
        let c = b.build(vec![a]);
        assert_eq!(c.and_count(), 1);
        assert_eq!(c.gate_count(), 2);
        assert_eq!(c.wire_count(), 4);
    }

    #[test]
    fn bit_conversions_round_trip() {
        for x in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(bits_to_u64(&u64_to_bits(x, 64)), x);
        }
        assert_eq!(bits_to_u64(&u64_to_bits(0xFF, 4)), 0x0F);
    }

    #[test]
    #[should_panic(expected = "garbler input count")]
    fn wrong_input_count_panics() {
        let mut b = CircuitBuilder::new();
        let x = b.garbler_input();
        let c = b.build(vec![x]);
        let _ = c.eval(&[], &[]);
    }

    #[test]
    fn word_helpers() {
        let mut b = CircuitBuilder::new();
        let w = b.garbler_word(8);
        assert_eq!(w.bits(), 8);
        assert_eq!(w.msb(), w.0[7]);
    }
}
