//! Error type for garbled-circuit protocols.

use abnn2_net::TransportError;
use abnn2_ot::OtError;

/// Errors raised while garbling, transferring or evaluating a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcError {
    /// The peer disconnected.
    Channel,
    /// The peer went silent past the configured transport deadline.
    TimedOut,
    /// The embedded oblivious transfer failed.
    Ot(OtError),
    /// A received message had an unexpected length or structure.
    Malformed(&'static str),
}

impl GcError {
    /// Whether reconnecting and retrying could plausibly clear the error.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        match self {
            GcError::Channel | GcError::TimedOut => true,
            GcError::Ot(e) => e.is_retryable(),
            GcError::Malformed(_) => false,
        }
    }
}

impl std::fmt::Display for GcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GcError::Channel => write!(f, "peer disconnected during garbled-circuit protocol"),
            GcError::TimedOut => {
                write!(f, "peer silent past deadline during garbled-circuit protocol")
            }
            GcError::Ot(e) => write!(f, "oblivious transfer failed: {e}"),
            GcError::Malformed(what) => write!(f, "malformed garbled-circuit message: {what}"),
        }
    }
}

impl std::error::Error for GcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GcError::Ot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransportError> for GcError {
    fn from(e: TransportError) -> Self {
        match e {
            TransportError::Closed => GcError::Channel,
            // WouldBlock is intercepted by the session driver's replay
            // channel; the stray case maps to the retryable TimedOut.
            TransportError::TimedOut | TransportError::WouldBlock => GcError::TimedOut,
            TransportError::Malformed(what) => GcError::Malformed(what),
        }
    }
}

impl From<OtError> for GcError {
    fn from(e: OtError) -> Self {
        GcError::Ot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: GcError = TransportError::Closed.into();
        assert_eq!(e, GcError::Channel);
        let e: GcError = TransportError::Malformed("block message length").into();
        assert_eq!(e, GcError::Malformed("block message length"));
        let e: GcError = OtError::Channel.into();
        assert!(matches!(e, GcError::Ot(_)));
        assert!(e.to_string().contains("oblivious transfer"));
        assert!(std::error::Error::source(&e).is_some());
        let e: GcError = TransportError::TimedOut.into();
        assert_eq!(e, GcError::TimedOut);
    }

    #[test]
    fn retryability_tracks_transience() {
        assert!(GcError::Channel.is_retryable());
        assert!(GcError::TimedOut.is_retryable());
        assert!(GcError::Ot(OtError::TimedOut).is_retryable());
        assert!(!GcError::Ot(OtError::InvalidPoint).is_retryable());
        assert!(!GcError::Malformed("x").is_retryable());
    }
}
