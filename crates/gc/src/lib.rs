//! Garbled circuits for ABNN²'s non-linear layers.
//!
//! The paper evaluates activation functions with Yao's protocol (§4.2),
//! exploiting that all linear-layer outputs live in ℤ_{2^ℓ} so the modular
//! reduction after an ℓ-bit adder is *free* — the carry out of the top bit
//! is simply dropped, costing no extra non-XOR gates.
//!
//! Layers of this crate:
//!
//! * [`circuit`] — boolean circuits with XOR/AND/INV gates, a builder, and a
//!   plaintext evaluator (the correctness reference),
//! * [`circuits`] — ring-arithmetic circuit library: ℓ-bit adder/subtractor
//!   (carry-drop = mod 2^ℓ), MUX, comparison, and the ReLU circuits of §4.2
//!   (Algorithm 2 and the optimized comparison-first variant),
//! * [`mod@garble`] — half-gates garbling \[ZRE15\] with free-XOR and
//!   point-and-permute (2 ciphertexts per AND, 0 per XOR/INV),
//! * [`yao`] — the two-party protocol: garbler sends material, evaluator
//!   obtains its input labels via IKNP OT and returns the decoded outputs.

pub mod circuit;
pub mod circuits;
pub mod error;
pub mod frames;
pub mod garble;
pub mod yao;

pub use circuit::{Circuit, CircuitBuilder, WireId, Word};
pub use error::GcError;
pub use garble::{evaluate, garble, GarbledCircuit};
pub use yao::{YaoEvaluator, YaoGarbler};
