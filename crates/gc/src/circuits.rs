//! Ring-arithmetic circuit library.
//!
//! All words are little-endian over ℤ_{2^ℓ}. Because the ring modulus is a
//! power of two, the adder and subtractor simply drop the top carry/borrow —
//! this is exactly the paper's observation that "there will be no extra cost
//! required to complete the non-XOR gates corresponding to the modulo
//! operation".

use crate::circuit::{CircuitBuilder, WireId, Word};
use crate::Circuit;

/// ℓ-bit addition mod 2^ℓ (ℓ − 1 AND gates: the last carry is dropped).
///
/// Full-adder: `s = a ⊕ b ⊕ c`, `c' = ((a⊕c) ∧ (b⊕c)) ⊕ c`.
///
/// # Panics
///
/// Panics if the word widths differ.
pub fn add(b: &mut CircuitBuilder, x: &Word, y: &Word) -> Word {
    assert_eq!(x.bits(), y.bits(), "word width mismatch");
    let n = x.bits();
    let mut out = Vec::with_capacity(n);
    let mut carry: Option<WireId> = None;
    for i in 0..n {
        let (a, bb) = (x.0[i], y.0[i]);
        match carry {
            None => {
                out.push(b.xor(a, bb));
                if i + 1 < n {
                    carry = Some(b.and(a, bb));
                }
            }
            Some(c) => {
                let axc = b.xor(a, c);
                let s = b.xor(axc, bb);
                out.push(s);
                if i + 1 < n {
                    let bxc = b.xor(bb, c);
                    let t = b.and(axc, bxc);
                    carry = Some(b.xor(t, c));
                }
            }
        }
    }
    Word(out)
}

/// ℓ-bit subtraction mod 2^ℓ (ℓ − 1 AND gates).
///
/// Borrow recurrence: `d = a ⊕ b ⊕ bor`, `bor' = ((¬a⊕bor) ∧ (b⊕bor)) ⊕ bor`
/// (majority of ¬a, b, bor).
///
/// # Panics
///
/// Panics if the word widths differ.
pub fn sub(b: &mut CircuitBuilder, x: &Word, y: &Word) -> Word {
    assert_eq!(x.bits(), y.bits(), "word width mismatch");
    let n = x.bits();
    let mut out = Vec::with_capacity(n);
    let mut borrow: Option<WireId> = None;
    for i in 0..n {
        let (a, bb) = (x.0[i], y.0[i]);
        match borrow {
            None => {
                out.push(b.xor(a, bb));
                if i + 1 < n {
                    let na = b.inv(a);
                    borrow = Some(b.and(na, bb));
                }
            }
            Some(bor) => {
                let axb = b.xor(a, bb);
                let d = b.xor(axb, bor);
                out.push(d);
                if i + 1 < n {
                    let na = b.inv(a);
                    let naxbor = b.xor(na, bor);
                    let bxbor = b.xor(bb, bor);
                    let t = b.and(naxbor, bxbor);
                    borrow = Some(b.xor(t, bor));
                }
            }
        }
    }
    Word(out)
}

/// Per-bit multiplexer: `sel ? x : y` (ℓ AND gates).
///
/// # Panics
///
/// Panics if the word widths differ.
pub fn mux(b: &mut CircuitBuilder, sel: WireId, x: &Word, y: &Word) -> Word {
    assert_eq!(x.bits(), y.bits(), "word width mismatch");
    Word(
        x.0.iter()
            .zip(&y.0)
            .map(|(&xi, &yi)| {
                let d = b.xor(xi, yi);
                let m = b.and(sel, d);
                b.xor(m, yi)
            })
            .collect(),
    )
}

/// Bitwise AND of every bit of `x` with a single control bit (ℓ ANDs).
pub fn gate_word(b: &mut CircuitBuilder, ctrl: WireId, x: &Word) -> Word {
    Word(x.0.iter().map(|&xi| b.and(ctrl, xi)).collect())
}

/// ReLU of a two's-complement word: zero if the sign bit is set, otherwise
/// the value itself (ℓ AND gates).
pub fn relu(b: &mut CircuitBuilder, x: &Word) -> Word {
    let non_neg = b.inv(x.msb());
    gate_word(b, non_neg, x)
}

/// The sign bit (`1` iff `x < 0` under two's complement). Free.
#[must_use]
pub fn is_negative(x: &Word) -> WireId {
    x.msb()
}

/// Algorithm 2's circuit for `f = ReLU` (the fully-oblivious activation):
///
/// * evaluator (server) input: share `y₀`,
/// * garbler (client) inputs: share `y₁` and fresh mask `z₁`,
/// * output to evaluator: `z₀ = ReLU(y₀ + y₁) − z₁  (mod 2^ℓ)`.
///
/// AND-gate cost: (ℓ−1) add + ℓ relu + (ℓ−1) sub = 3ℓ − 2.
#[must_use]
pub fn relu_reshare_circuit(bits: usize) -> Circuit {
    let mut b = CircuitBuilder::new();
    let y1 = b.garbler_word(bits);
    let z1 = b.garbler_word(bits);
    let y0 = b.evaluator_word(bits);
    let y = add(&mut b, &y0, &y1);
    let r = relu(&mut b, &y);
    let z0 = sub(&mut b, &r, &z1);
    b.build(z0.0)
}

/// Phase 1 of the paper's *optimized* ReLU: only the comparison
/// `y₀ + y₁ ≥ 0` is computed inside the circuit and revealed (ℓ−1 ANDs).
///
/// Inputs: garbler `y₁`, evaluator `y₀`; output: one bit (1 iff the neuron
/// is non-negative). Revealing it is the paper's trade-off: negative
/// neurons then skip the reconstruction circuit entirely.
#[must_use]
pub fn relu_sign_circuit(bits: usize) -> Circuit {
    let mut b = CircuitBuilder::new();
    let y1 = b.garbler_word(bits);
    let y0 = b.evaluator_word(bits);
    let y = add(&mut b, &y0, &y1);
    let non_neg = b.inv(y.msb());
    b.build(vec![non_neg])
}

/// Phase 2 of the optimized ReLU, run only for non-negative neurons:
/// reconstruct and re-share, `z₀ = (y₀ + y₁) − z₁` (2ℓ−2 ANDs).
#[must_use]
pub fn reconstruct_reshare_circuit(bits: usize) -> Circuit {
    let mut b = CircuitBuilder::new();
    let y1 = b.garbler_word(bits);
    let z1 = b.garbler_word(bits);
    let y0 = b.evaluator_word(bits);
    let y = add(&mut b, &y0, &y1);
    let z0 = sub(&mut b, &y, &z1);
    b.build(z0.0)
}

/// A generic activation circuit à la Algorithm 2 for any bitwise function
/// `f` expressible over the reconstructed word. Provided with `f = max(0,·)`
/// this equals [`relu_reshare_circuit`]; it also serves for variants such as
/// leaky-style gating in tests.
pub fn activation_circuit<F>(bits: usize, f: F) -> Circuit
where
    F: FnOnce(&mut CircuitBuilder, &Word) -> Word,
{
    let mut b = CircuitBuilder::new();
    let y1 = b.garbler_word(bits);
    let z1 = b.garbler_word(bits);
    let y0 = b.evaluator_word(bits);
    let y = add(&mut b, &y0, &y1);
    let fy = f(&mut b, &y);
    let z0 = sub(&mut b, &fy, &z1);
    b.build(z0.0)
}

/// Arithmetic shift right by `k` bits — free (pure rewiring): low bits are
/// dropped and the sign wire is replicated at the top.
///
/// # Panics
///
/// Panics if `k >= bits` (nothing would remain).
#[must_use]
pub fn sar_word(x: &Word, k: usize) -> Word {
    assert!(k < x.bits(), "shift {k} must be smaller than width {}", x.bits());
    let msb = x.msb();
    let mut out: Vec<WireId> = x.0[k..].to_vec();
    out.extend(std::iter::repeat_n(msb, k));
    Word(out)
}

/// Vectorized Algorithm-2 ReLU: `n` neurons in one circuit.
///
/// Garbler inputs: all `y₁` words then all `z₁` words; evaluator inputs:
/// all `y₀` words; outputs: all `z₀` words — each group in neuron order.
#[must_use]
pub fn relu_reshare_vec_circuit(bits: usize, n: usize) -> Circuit {
    relu_trunc_reshare_vec_circuit(bits, n, 0)
}

/// Vectorized Algorithm-2 ReLU with a built-in fixed-point truncation: each
/// neuron computes `z₀ = ReLU((y₀ + y₁) ≫ₐ shift) − z₁`.
///
/// The arithmetic shift is free inside the circuit (rewiring), which is how
/// the secure pipeline truncates products *exactly* instead of using
/// probabilistic local share truncation.
#[must_use]
pub fn relu_trunc_reshare_vec_circuit(bits: usize, n: usize, shift: usize) -> Circuit {
    let mut b = CircuitBuilder::new();
    let y1: Vec<Word> = (0..n).map(|_| b.garbler_word(bits)).collect();
    let z1: Vec<Word> = (0..n).map(|_| b.garbler_word(bits)).collect();
    let y0: Vec<Word> = (0..n).map(|_| b.evaluator_word(bits)).collect();
    let mut outs = Vec::with_capacity(n * bits);
    for j in 0..n {
        let y = add(&mut b, &y0[j], &y1[j]);
        let t = sar_word(&y, shift);
        let r = relu(&mut b, &t);
        let z0 = sub(&mut b, &r, &z1[j]);
        outs.extend(z0.0);
    }
    b.build(outs)
}

/// Vectorized phase-1 comparison for the optimized ReLU: one output bit per
/// neuron (`1` iff non-negative).
#[must_use]
pub fn relu_sign_vec_circuit(bits: usize, n: usize) -> Circuit {
    let mut b = CircuitBuilder::new();
    let y1: Vec<Word> = (0..n).map(|_| b.garbler_word(bits)).collect();
    let y0: Vec<Word> = (0..n).map(|_| b.evaluator_word(bits)).collect();
    let mut outs = Vec::with_capacity(n);
    for j in 0..n {
        let y = add(&mut b, &y0[j], &y1[j]);
        outs.push(b.inv(y.msb()));
    }
    b.build(outs)
}

/// Vectorized phase-2 reconstruct-and-reshare for the optimized ReLU, over
/// the subset of non-negative neurons only.
#[must_use]
pub fn reconstruct_reshare_vec_circuit(bits: usize, n: usize) -> Circuit {
    reconstruct_trunc_reshare_vec_circuit(bits, n, 0)
}

/// Vectorized phase-2 reconstruct-truncate-reshare:
/// `z₀ = ((y₀ + y₁) ≫ₐ shift) − z₁` per neuron.
#[must_use]
pub fn reconstruct_trunc_reshare_vec_circuit(bits: usize, n: usize, shift: usize) -> Circuit {
    let mut b = CircuitBuilder::new();
    let y1: Vec<Word> = (0..n).map(|_| b.garbler_word(bits)).collect();
    let z1: Vec<Word> = (0..n).map(|_| b.garbler_word(bits)).collect();
    let y0: Vec<Word> = (0..n).map(|_| b.evaluator_word(bits)).collect();
    let mut outs = Vec::with_capacity(n * bits);
    for j in 0..n {
        let y = add(&mut b, &y0[j], &y1[j]);
        let t = sar_word(&y, shift);
        let z0 = sub(&mut b, &t, &z1[j]);
        outs.extend(z0.0);
    }
    b.build(outs)
}

/// Word-wise XOR (free).
///
/// # Panics
///
/// Panics if the word widths differ.
pub fn xor_word(b: &mut CircuitBuilder, x: &Word, y: &Word) -> Word {
    assert_eq!(x.bits(), y.bits(), "word width mismatch");
    Word(x.0.iter().zip(&y.0).map(|(&xi, &yi)| b.xor(xi, yi)).collect())
}

/// Masked-argmax circuit: reconstructs `n` shared values, finds the index
/// of the (signed) maximum, and outputs `index ⊕ mask` — so the evaluator
/// can forward the masked index and only the garbler (who chose the mask)
/// learns the class. Used by the secure-classification extension.
///
/// Garbler inputs, in order: all `y₁` value words, the ⌈log₂n⌉-bit mask,
/// then the `n` public index constants (⌈log₂n⌉ bits each, supplied by the
/// garbler since the circuit model has no constant wires). Evaluator
/// inputs: all `y₀` value words. Output: ⌈log₂n⌉ masked index bits.
///
/// # Panics
///
/// Panics if `n` is zero.
#[must_use]
pub fn argmax_mask_circuit(bits: usize, n: usize) -> Circuit {
    assert!(n > 0, "argmax needs at least one value");
    let idx_bits = usize::BITS as usize - (n - 1).leading_zeros() as usize;
    let idx_bits = idx_bits.max(1);
    let mut b = CircuitBuilder::new();
    let y1: Vec<Word> = (0..n).map(|_| b.garbler_word(bits)).collect();
    let mask = b.garbler_word(idx_bits);
    let consts: Vec<Word> = (0..n).map(|_| b.garbler_word(idx_bits)).collect();
    let y0: Vec<Word> = (0..n).map(|_| b.evaluator_word(bits)).collect();

    let mut best_val = add(&mut b, &y0[0], &y1[0]);
    let mut best_idx = consts[0].clone();
    for i in 1..n {
        let v = add(&mut b, &y0[i], &y1[i]);
        let take = lt_signed(&mut b, &best_val, &v);
        best_val = mux(&mut b, take, &v, &best_val);
        best_idx = mux(&mut b, take, &consts[i], &best_idx);
    }
    let out = xor_word(&mut b, &best_idx, &mask);
    b.build(out.0)
}

/// Number of index bits [`argmax_mask_circuit`] uses for `n` values.
#[must_use]
pub fn argmax_index_bits(n: usize) -> usize {
    (usize::BITS as usize - (n.saturating_sub(1)).leading_zeros() as usize).max(1)
}

/// Vectorized max-pool-and-reshare circuit for the CNN extension: for each
/// of `n_windows` windows of `window` shared values, reconstruct the
/// values, take the (signed) maximum, and re-share it as `z₀ = max − z₁`.
///
/// Garbler inputs: all `y₁` window values (window-major), then one `z₁`
/// word per window; evaluator inputs: all `y₀` window values; outputs: one
/// `z₀` word per window.
///
/// # Panics
///
/// Panics if `window` is zero.
#[must_use]
pub fn max_pool_reshare_vec_circuit(bits: usize, window: usize, n_windows: usize) -> Circuit {
    assert!(window > 0, "window must be positive");
    let mut b = CircuitBuilder::new();
    let y1: Vec<Word> = (0..n_windows * window).map(|_| b.garbler_word(bits)).collect();
    let z1: Vec<Word> = (0..n_windows).map(|_| b.garbler_word(bits)).collect();
    let y0: Vec<Word> = (0..n_windows * window).map(|_| b.evaluator_word(bits)).collect();
    let mut outs = Vec::with_capacity(n_windows * bits);
    for (w, z1w) in z1.iter().enumerate() {
        let mut m: Option<Word> = None;
        for e in 0..window {
            let idx = w * window + e;
            let v = add(&mut b, &y0[idx], &y1[idx]);
            m = Some(match m {
                None => v,
                Some(cur) => max(&mut b, &cur, &v),
            });
        }
        let z0 = sub(&mut b, &m.expect("window non-empty"), z1w);
        outs.extend(z0.0);
    }
    b.build(outs)
}

/// Signed comparison `x < y` for two's-complement words (ℓ AND gates).
///
/// Both operands are sign-extended by one bit (free: the extension reuses
/// the sign wire) so the subtraction cannot overflow.
///
/// # Panics
///
/// Panics if the word widths differ.
pub fn lt_signed(b: &mut CircuitBuilder, x: &Word, y: &Word) -> WireId {
    assert_eq!(x.bits(), y.bits(), "word width mismatch");
    let xe = Word(x.0.iter().copied().chain([x.msb()]).collect());
    let ye = Word(y.0.iter().copied().chain([y.msb()]).collect());
    let d = sub(b, &xe, &ye);
    d.msb()
}

/// Maximum of two two's-complement words (used by the max-pooling
/// extension): `max(x, y) = (x < y) ? y : x` (2ℓ AND gates).
pub fn max(b: &mut CircuitBuilder, x: &Word, y: &Word) -> Word {
    let x_less = lt_signed(b, x, y);
    mux(b, x_less, y, x)
}

// ---------------------------------------------------------------------------
// Arithmetic word library for the nonlinear op family (Softmax/GELU/
// LayerNorm). Every builder here mirrors, bit for bit, a reference function
// in `abnn2_math::fixedops`, which is what makes secure evaluation of the
// transformer ops exact against the plaintext oracle.
// ---------------------------------------------------------------------------

/// A constant-0 wire derived from any existing wire (`w ⊕ w`). Free: XOR.
pub fn zero_wire(b: &mut CircuitBuilder, anchor: WireId) -> WireId {
    b.xor(anchor, anchor)
}

/// A word holding the public constant `value`. The circuit model has no
/// constant wires, but `w ⊕ w = 0` and `¬0 = 1` synthesize them for free —
/// no garbler-supplied inputs needed (unlike the argmax index constants,
/// which predate this helper).
pub fn const_word(b: &mut CircuitBuilder, anchor: WireId, value: u64, bits: usize) -> Word {
    let zero = zero_wire(b, anchor);
    let one = b.inv(zero);
    Word((0..bits).map(|i| if (value >> i) & 1 == 1 { one } else { zero }).collect())
}

/// Left shift by `k` with zero fill, wrapping at the word width. Free.
///
/// # Panics
///
/// Panics if `k >= bits` (nothing would remain).
pub fn shl_word(b: &mut CircuitBuilder, x: &Word, k: usize) -> Word {
    let n = x.bits();
    assert!(k < n, "shift {k} must be smaller than width {n}");
    let zero = zero_wire(b, x.0[0]);
    let mut out = vec![zero; k];
    out.extend_from_slice(&x.0[..n - k]);
    Word(out)
}

/// ℓ-bit wrapping product (schoolbook shift-and-add, ~ℓ²/2 + ℓ² AND gates).
///
/// # Panics
///
/// Panics if the word widths differ.
pub fn mul_word(b: &mut CircuitBuilder, x: &Word, y: &Word) -> Word {
    assert_eq!(x.bits(), y.bits(), "word width mismatch");
    let n = x.bits();
    let zero = zero_wire(b, x.0[0]);
    let mut acc = Word(vec![zero; n]);
    for i in 0..n {
        let mut pp = vec![zero; n];
        for j in 0..n - i {
            pp[i + j] = b.and(y.0[i], x.0[j]);
        }
        acc = add(b, &acc, &Word(pp));
    }
    acc
}

/// Unsigned ℓ-bit restoring division. A zero divisor yields the all-ones
/// quotient (every trial subtraction succeeds), matching
/// `fixedops::udiv`.
///
/// # Panics
///
/// Panics if the word widths differ.
pub fn udiv_word(b: &mut CircuitBuilder, x: &Word, y: &Word) -> Word {
    assert_eq!(x.bits(), y.bits(), "word width mismatch");
    let n = x.bits();
    let zero = zero_wire(b, x.0[0]);
    let mut rem = Word(vec![zero; n]);
    let mut q = vec![zero; n];
    for i in (0..n).rev() {
        // Shift the next dividend bit into the remainder; the bit shifted
        // out the top still matters, so compare in n+2 bits (both operands
        // zero-extended — the subtraction then cannot wrap).
        let top = rem.0[n - 1];
        let mut sh = Vec::with_capacity(n);
        sh.push(x.0[i]);
        sh.extend_from_slice(&rem.0[..n - 1]);
        let sh = Word(sh);
        let a_ext = Word(sh.0.iter().copied().chain([top, zero]).collect());
        let y_ext = Word(y.0.iter().copied().chain([zero, zero]).collect());
        let d = sub(b, &a_ext, &y_ext);
        let ge = b.inv(d.msb());
        q[i] = ge;
        let d_low = Word(d.0[..n].to_vec());
        rem = mux(b, ge, &d_low, &sh);
    }
    Word(q)
}

/// Signed division truncating toward zero, as a sign/magnitude wrapper
/// around [`udiv_word`]. The divisor is interpreted unsigned, matching
/// `fixedops::sdiv`.
pub fn sdiv_word(b: &mut CircuitBuilder, x: &Word, y: &Word) -> Word {
    let n = x.bits();
    let neg = x.msb();
    let zero = const_word(b, x.0[0], 0, n);
    let neg_x = sub(b, &zero, x);
    let mag = mux(b, neg, &neg_x, x);
    let q = udiv_word(b, &mag, y);
    let neg_q = sub(b, &zero, &q);
    mux(b, neg, &neg_q, &q)
}

/// Floor square root of the unsigned lift (digit-by-digit base-4 method,
/// the same algorithm `fixedops::isqrt` runs in plain integers). Output is
/// an ℓ-bit word whose high half is zero.
pub fn isqrt_word(b: &mut CircuitBuilder, x: &Word) -> Word {
    let n = x.bits();
    let half = n.div_ceil(2);
    // Working width: rem ≤ 2·root keeps every intermediate under 2^(half+3).
    let w = half + 3;
    let zero = zero_wire(b, x.0[0]);
    let one = b.inv(zero);
    let mut rem = Word(vec![zero; w]);
    let mut root = Word(vec![zero; w]);
    for i in (0..half).rev() {
        let b1 = if 2 * i + 1 < n { x.0[2 * i + 1] } else { zero };
        let b0 = x.0[2 * i];
        let mut rem2 = vec![b0, b1];
        rem2.extend_from_slice(&rem.0[..w - 2]);
        let rem2 = Word(rem2);
        let mut trial = vec![one, zero];
        trial.extend_from_slice(&root.0[..w - 2]);
        let trial = Word(trial);
        let a_ext = Word(rem2.0.iter().copied().chain([zero]).collect());
        let t_ext = Word(trial.0.iter().copied().chain([zero]).collect());
        let d = sub(b, &a_ext, &t_ext);
        let ge = b.inv(d.msb());
        rem = mux(b, ge, &Word(d.0[..w].to_vec()), &rem2);
        let mut r2 = vec![ge];
        r2.extend_from_slice(&root.0[..w - 1]);
        root = Word(r2);
    }
    let mut out: Vec<WireId> = root.0.iter().copied().take(n).collect();
    out.resize(n, zero);
    Word(out)
}

/// Clamp `x` into the signed interval `[lo, hi]` (2ℓ comparisons + muxes).
pub fn clamp_word(b: &mut CircuitBuilder, x: &Word, lo: &Word, hi: &Word) -> Word {
    let below = lt_signed(b, x, lo);
    let t = mux(b, below, lo, x);
    let above = lt_signed(b, hi, &t);
    mux(b, above, hi, &t)
}

/// `e^u ≈ ((1 + u/4)⁺)⁴` for `u ≤ 0` at `f` fraction bits — the circuit
/// twin of `fixedops::exp_pos`.
fn exp_pos_word(b: &mut CircuitBuilder, u: &Word, f: usize) -> Word {
    let n = u.bits();
    let one = const_word(b, u.0[0], 1 << f, n);
    let q = sar_word(u, 2);
    let s = add(b, &one, &q);
    let t = relu(b, &s);
    let t2full = mul_word(b, &t, &t);
    let t2 = sar_word(&t2full, f);
    let t4full = mul_word(b, &t2, &t2);
    sar_word(&t4full, f)
}

/// Fixed-point GELU via hard sigmoid — the circuit twin of
/// `fixedops::gelu`.
fn gelu_word(b: &mut CircuitBuilder, v: &Word, f: usize) -> Word {
    let n = v.bits();
    let one = const_word(b, v.0[0], 1 << f, n);
    let three = const_word(b, v.0[0], 3 << f, n);
    let inv6 = const_word(b, v.0[0], ((1u64 << f) + 3) / 6, n);
    let zero = const_word(b, v.0[0], 0, n);
    let a = add(b, v, &three);
    let prod = mul_word(b, &a, &inv6);
    let s = sar_word(&prod, f);
    let s = clamp_word(b, &s, &zero, &one);
    let g = mul_word(b, v, &s);
    sar_word(&g, f)
}

/// Fixed-point softmax over one row — the circuit twin of
/// `fixedops::softmax_row`.
fn softmax_row_words(b: &mut CircuitBuilder, vs: &[Word], f: usize) -> Vec<Word> {
    let mut m = vs[0].clone();
    for v in &vs[1..] {
        m = max(b, &m, v);
    }
    let es: Vec<Word> = vs
        .iter()
        .map(|v| {
            let u = sub(b, v, &m);
            exp_pos_word(b, &u, f)
        })
        .collect();
    let mut sum = es[0].clone();
    for e in &es[1..] {
        sum = add(b, &sum, e);
    }
    es.iter()
        .map(|e| {
            let num = shl_word(b, e, f);
            udiv_word(b, &num, &sum)
        })
        .collect()
}

/// Fixed-point LayerNorm over one token — the circuit twin of
/// `fixedops::layernorm_token`. `xs` are the already-reconstructed,
/// already-shifted token values.
fn layernorm_token_words(b: &mut CircuitBuilder, xs: &[Word], f: usize) -> Vec<Word> {
    let d = xs.len();
    assert!(d.is_power_of_two(), "layernorm width must be a power of two");
    let log2d = d.trailing_zeros() as usize;
    let n = xs[0].bits();
    let mut sum = xs[0].clone();
    for x in &xs[1..] {
        sum = add(b, &sum, x);
    }
    let mu = sar_word(&sum, log2d);
    let cs: Vec<Word> = xs.iter().map(|x| sub(b, x, &mu)).collect();
    let mut sq: Option<Word> = None;
    for c in &cs {
        let c2 = mul_word(b, c, c);
        sq = Some(match sq {
            None => c2,
            Some(acc) => add(b, &acc, &c2),
        });
    }
    let var = sar_word(&sq.expect("token non-empty"), log2d);
    let one = const_word(b, xs[0].0[0], 1, n);
    let vp1 = add(b, &var, &one);
    let sigma = isqrt_word(b, &vp1);
    cs.iter()
        .map(|c| {
            let num = shl_word(b, c, f);
            sdiv_word(b, &num, &sigma)
        })
        .collect()
}

/// Softmax-and-reshare circuit for the `Softmax` op: reconstructs
/// `rows × cols` shared logits, truncates each by `shift`, applies the
/// fixed-point row softmax at `f` fraction bits, and re-shares.
///
/// Garbler inputs: all `y₁` words (row-major), then all `z₁` mask words;
/// evaluator inputs: all `y₀` words; outputs: all `z₀ = p − z₁` words.
#[must_use]
pub fn softmax_reshare_vec_circuit(
    bits: usize,
    rows: usize,
    cols: usize,
    shift: usize,
    f: usize,
) -> Circuit {
    assert!(rows > 0 && cols > 0, "softmax needs a non-empty matrix");
    let n = rows * cols;
    let mut b = CircuitBuilder::new();
    let y1: Vec<Word> = (0..n).map(|_| b.garbler_word(bits)).collect();
    let z1: Vec<Word> = (0..n).map(|_| b.garbler_word(bits)).collect();
    let y0: Vec<Word> = (0..n).map(|_| b.evaluator_word(bits)).collect();
    let mut outs = Vec::with_capacity(n * bits);
    for r in 0..rows {
        let vs: Vec<Word> = (0..cols)
            .map(|c| {
                let j = r * cols + c;
                let y = add(&mut b, &y0[j], &y1[j]);
                sar_word(&y, shift)
            })
            .collect();
        let ps = softmax_row_words(&mut b, &vs, f);
        for (c, p) in ps.iter().enumerate() {
            let z0 = sub(&mut b, p, &z1[r * cols + c]);
            outs.extend(z0.0.clone());
        }
    }
    b.build(outs)
}

/// GELU-and-reshare circuit for the `Gelu` op:
/// `z₀ = gelu((y₀ + y₁) ≫ₐ shift) − z₁` per neuron, gelu at `f` fraction
/// bits.
///
/// Garbler inputs: all `y₁` then all `z₁`; evaluator: all `y₀`.
#[must_use]
pub fn gelu_trunc_reshare_vec_circuit(bits: usize, n: usize, shift: usize, f: usize) -> Circuit {
    let mut b = CircuitBuilder::new();
    let y1: Vec<Word> = (0..n).map(|_| b.garbler_word(bits)).collect();
    let z1: Vec<Word> = (0..n).map(|_| b.garbler_word(bits)).collect();
    let y0: Vec<Word> = (0..n).map(|_| b.evaluator_word(bits)).collect();
    let mut outs = Vec::with_capacity(n * bits);
    for j in 0..n {
        let y = add(&mut b, &y0[j], &y1[j]);
        let v = sar_word(&y, shift);
        let g = gelu_word(&mut b, &v, f);
        let z0 = sub(&mut b, &g, &z1[j]);
        outs.extend(z0.0);
    }
    b.build(outs)
}

/// LayerNorm-and-reshare circuit for the `LayerNorm` op over `tokens`
/// tokens of `d` values each (`d` a power of two). The op folds a residual
/// add at mismatched scales into the normalization:
/// `x = ((a₀+a₁) ≫ₐ shift_a) + ((b₀+b₁) ≫ₐ shift_b)` per element, then each
/// token is normalized at `f` fraction bits and re-shared.
///
/// Garbler inputs: all `a₁`, all `b₁`, then all `z₁` (token-major);
/// evaluator inputs: all `a₀`, then all `b₀`.
#[must_use]
pub fn layernorm_reshare_vec_circuit(
    bits: usize,
    tokens: usize,
    d: usize,
    shift_a: usize,
    shift_b: usize,
    f: usize,
) -> Circuit {
    assert!(tokens > 0 && d > 0, "layernorm needs a non-empty matrix");
    let n = tokens * d;
    let mut b = CircuitBuilder::new();
    let a1: Vec<Word> = (0..n).map(|_| b.garbler_word(bits)).collect();
    let b1: Vec<Word> = (0..n).map(|_| b.garbler_word(bits)).collect();
    let z1: Vec<Word> = (0..n).map(|_| b.garbler_word(bits)).collect();
    let a0: Vec<Word> = (0..n).map(|_| b.evaluator_word(bits)).collect();
    let b0: Vec<Word> = (0..n).map(|_| b.evaluator_word(bits)).collect();
    let mut outs = Vec::with_capacity(n * bits);
    for t in 0..tokens {
        let xs: Vec<Word> = (0..d)
            .map(|i| {
                let j = t * d + i;
                let a = add(&mut b, &a0[j], &a1[j]);
                let bb = add(&mut b, &b0[j], &b1[j]);
                let at = sar_word(&a, shift_a);
                let bt = sar_word(&bb, shift_b);
                add(&mut b, &at, &bt)
            })
            .collect();
        let ys = layernorm_token_words(&mut b, &xs, f);
        for (i, y) in ys.iter().enumerate() {
            let z0 = sub(&mut b, y, &z1[t * d + i]);
            outs.extend(z0.0.clone());
        }
    }
    b.build(outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{bits_to_u64, u64_to_bits};
    use abnn2_math::Ring;
    use proptest::prelude::*;

    fn eval_two_words(c: &Circuit, g: &[u64], e: &[u64], bits: usize) -> u64 {
        let gbits: Vec<bool> = g.iter().flat_map(|&x| u64_to_bits(x, bits)).collect();
        let ebits: Vec<bool> = e.iter().flat_map(|&x| u64_to_bits(x, bits)).collect();
        bits_to_u64(&c.eval(&gbits, &ebits))
    }

    fn adder_circuit(bits: usize) -> Circuit {
        let mut b = CircuitBuilder::new();
        let x = b.garbler_word(bits);
        let y = b.evaluator_word(bits);
        let s = add(&mut b, &x, &y);
        b.build(s.0)
    }

    fn sub_circuit(bits: usize) -> Circuit {
        let mut b = CircuitBuilder::new();
        let x = b.garbler_word(bits);
        let y = b.evaluator_word(bits);
        let s = sub(&mut b, &x, &y);
        b.build(s.0)
    }

    #[test]
    fn adder_and_count_is_l_minus_1() {
        assert_eq!(adder_circuit(32).and_count(), 31);
        assert_eq!(sub_circuit(32).and_count(), 31);
    }

    #[test]
    fn relu_reshare_and_count() {
        assert_eq!(relu_reshare_circuit(32).and_count(), 3 * 32 - 2);
        assert_eq!(relu_sign_circuit(32).and_count(), 31);
        assert_eq!(reconstruct_reshare_circuit(32).and_count(), 2 * 32 - 2);
    }

    #[test]
    fn relu_known_values() {
        let ring = Ring::new(16);
        let c = relu_reshare_circuit(16);
        for (y, expect) in [(5i64, 5u64), (-5, 0), (0, 0), (32767, 32767), (-32768, 0)] {
            let y_ring = ring.from_i64(y);
            let y1 = 0x1234u64 & ring.mask();
            let y0 = ring.sub(y_ring, y1);
            let z1 = 0x0F0Fu64;
            let z0 = eval_two_words(&c, &[y1, z1], &[y0], 16);
            assert_eq!(ring.add(z0, z1), expect, "y = {y}");
        }
    }

    #[test]
    fn sign_circuit_known_values() {
        let ring = Ring::new(8);
        let c = relu_sign_circuit(8);
        for y in [-128i64, -1, 0, 1, 127] {
            let y_ring = ring.from_i64(y);
            let y1 = 0x5Au64;
            let y0 = ring.sub(y_ring, y1);
            let out = c.eval(&u64_to_bits(y1, 8), &u64_to_bits(y0, 8));
            assert_eq!(out[0], y >= 0, "y = {y}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn adder_matches_ring(bits in 2usize..=32, a: u64, b: u64) {
            let ring = Ring::new(bits as u32);
            let (a, b) = (ring.reduce(a), ring.reduce(b));
            let c = adder_circuit(bits);
            prop_assert_eq!(eval_two_words(&c, &[a], &[b], bits), ring.add(a, b));
        }

        #[test]
        fn subtractor_matches_ring(bits in 2usize..=32, a: u64, b: u64) {
            let ring = Ring::new(bits as u32);
            let (a, b) = (ring.reduce(a), ring.reduce(b));
            let c = sub_circuit(bits);
            prop_assert_eq!(eval_two_words(&c, &[a], &[b], bits), ring.sub(a, b));
        }

        #[test]
        fn relu_reshare_matches_plaintext(bits in 2usize..=32, y0: u64, y1: u64, z1: u64) {
            let ring = Ring::new(bits as u32);
            let (y0, y1, z1) = (ring.reduce(y0), ring.reduce(y1), ring.reduce(z1));
            let c = relu_reshare_circuit(bits);
            let z0 = eval_two_words(&c, &[y1, z1], &[y0], bits);
            let y = ring.add(y0, y1);
            let expect = if ring.is_negative(y) { 0 } else { y };
            prop_assert_eq!(ring.add(z0, z1), expect);
        }

        #[test]
        fn relu_trunc_matches_plaintext(bits in 4usize..=24, shift in 0usize..3, y0: u64, y1: u64, z1: u64) {
            let ring = Ring::new(bits as u32);
            let (y0, y1, z1) = (ring.reduce(y0), ring.reduce(y1), ring.reduce(z1));
            let c = relu_trunc_reshare_vec_circuit(bits, 1, shift);
            let z0 = eval_two_words(&c, &[y1, z1], &[y0], bits);
            let y = ring.add(y0, y1);
            let t = ring.from_i64(ring.to_i64(y) >> shift);
            let expect = if ring.is_negative(t) { 0 } else { t };
            prop_assert_eq!(ring.add(z0, z1), expect);
        }

        #[test]
        fn reconstruct_trunc_matches_plaintext(bits in 4usize..=24, shift in 0usize..3, y0: u64, y1: u64, z1: u64) {
            let ring = Ring::new(bits as u32);
            let (y0, y1, z1) = (ring.reduce(y0), ring.reduce(y1), ring.reduce(z1));
            let c = reconstruct_trunc_reshare_vec_circuit(bits, 1, shift);
            let z0 = eval_two_words(&c, &[y1, z1], &[y0], bits);
            let y = ring.add(y0, y1);
            let t = ring.from_i64(ring.to_i64(y) >> shift);
            prop_assert_eq!(ring.add(z0, z1), t);
        }

        #[test]
        fn max_matches_plaintext(bits in 2usize..=16, a: u64, b: u64) {
            let ring = Ring::new(bits as u32);
            let (a, b) = (ring.reduce(a), ring.reduce(b));
            let mut builder = CircuitBuilder::new();
            let x = builder.garbler_word(bits);
            let y = builder.evaluator_word(bits);
            let m = max(&mut builder, &x, &y);
            let c = builder.build(m.0);
            let got = eval_two_words(&c, &[a], &[b], bits);
            let expect = if ring.to_i64(a) >= ring.to_i64(b) { a } else { b };
            prop_assert_eq!(got, expect);
        }

        #[test]
        fn argmax_mask_matches_plaintext(bits in 6usize..=16, seed: u64, n in 2usize..6) {
            use rand::SeedableRng;
            let ring = Ring::new(bits as u32);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let values: Vec<u64> = ring.sample_vec(&mut rng, n);
            let y1: Vec<u64> = ring.sample_vec(&mut rng, n);
            let y0: Vec<u64> = ring.sub_vec(&values, &y1);
            let idx_bits = argmax_index_bits(n);
            let mask = (seed % (1 << idx_bits)) as u64;
            let c = argmax_mask_circuit(bits, n);
            let mut gbits: Vec<bool> = y1.iter().flat_map(|&v| u64_to_bits(v, bits)).collect();
            gbits.extend(u64_to_bits(mask, idx_bits));
            for i in 0..n as u64 {
                gbits.extend(u64_to_bits(i, idx_bits));
            }
            let ebits: Vec<bool> = y0.iter().flat_map(|&v| u64_to_bits(v, bits)).collect();
            let out = bits_to_u64(&c.eval(&gbits, &ebits));
            // First-max semantics (strict comparison in the circuit).
            let mut expect_idx = 0u64;
            let mut best = ring.to_i64(values[0]);
            for (i, &v) in values.iter().enumerate().skip(1) {
                if ring.to_i64(v) > best {
                    best = ring.to_i64(v);
                    expect_idx = i as u64;
                }
            }
            prop_assert_eq!(out ^ mask, expect_idx);
        }

        #[test]
        fn max_pool_reshare_matches_plaintext(bits in 6usize..=20, seed: u64) {
            use rand::{Rng, SeedableRng};
            let ring = Ring::new(bits as u32);
            let (window, n_windows) = (4usize, 2usize);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let y: Vec<u64> = ring.sample_vec(&mut rng, window * n_windows);
            let y1: Vec<u64> = ring.sample_vec(&mut rng, window * n_windows);
            let y0: Vec<u64> = ring.sub_vec(&y, &y1);
            let z1: Vec<u64> = ring.sample_vec(&mut rng, n_windows);
            let _ = rng.gen::<bool>();
            let c = max_pool_reshare_vec_circuit(bits, window, n_windows);
            let mut gbits: Vec<bool> = y1.iter().flat_map(|&v| u64_to_bits(v, bits)).collect();
            gbits.extend(z1.iter().flat_map(|&v| u64_to_bits(v, bits)));
            let ebits: Vec<bool> = y0.iter().flat_map(|&v| u64_to_bits(v, bits)).collect();
            let out = c.eval(&gbits, &ebits);
            for w in 0..n_windows {
                let z0 = bits_to_u64(&out[w * bits..(w + 1) * bits]);
                let expect = y[w * window..(w + 1) * window]
                    .iter()
                    .map(|&v| ring.to_i64(v))
                    .max()
                    .expect("non-empty");
                prop_assert_eq!(ring.to_i64(ring.add(z0, z1[w])), expect, "window {}", w);
            }
        }

        #[test]
        fn mul_matches_ring(bits in 2usize..=16, a: u64, b: u64) {
            let ring = Ring::new(bits as u32);
            let (a, b) = (ring.reduce(a), ring.reduce(b));
            let mut builder = CircuitBuilder::new();
            let x = builder.garbler_word(bits);
            let y = builder.evaluator_word(bits);
            let m = mul_word(&mut builder, &x, &y);
            let c = builder.build(m.0);
            prop_assert_eq!(eval_two_words(&c, &[a], &[b], bits), ring.mul(a, b));
        }

        #[test]
        fn udiv_matches_fixedops(bits in 2usize..=16, a: u64, b: u64) {
            let ring = Ring::new(bits as u32);
            let (a, b) = (ring.reduce(a), ring.reduce(b));
            let mut builder = CircuitBuilder::new();
            let x = builder.garbler_word(bits);
            let y = builder.evaluator_word(bits);
            let q = udiv_word(&mut builder, &x, &y);
            let c = builder.build(q.0);
            prop_assert_eq!(
                eval_two_words(&c, &[a], &[b], bits),
                abnn2_math::fixedops::udiv(&ring, a, b)
            );
        }

        #[test]
        fn sdiv_matches_fixedops(bits in 2usize..=16, a: u64, b: u64) {
            let ring = Ring::new(bits as u32);
            let (a, b) = (ring.reduce(a), ring.reduce(b));
            let mut builder = CircuitBuilder::new();
            let x = builder.garbler_word(bits);
            let y = builder.evaluator_word(bits);
            let q = sdiv_word(&mut builder, &x, &y);
            let c = builder.build(q.0);
            prop_assert_eq!(
                eval_two_words(&c, &[a], &[b], bits),
                abnn2_math::fixedops::sdiv(&ring, a, b)
            );
        }

        #[test]
        fn isqrt_matches_fixedops(bits in 2usize..=20, a: u64) {
            let ring = Ring::new(bits as u32);
            let a = ring.reduce(a);
            let mut builder = CircuitBuilder::new();
            let x = builder.garbler_word(bits);
            let _ = builder.evaluator_word(1);
            let r = isqrt_word(&mut builder, &x);
            let c = builder.build(r.0);
            let gbits = u64_to_bits(a, bits);
            let got = bits_to_u64(&c.eval(&gbits, &[false]));
            prop_assert_eq!(got, abnn2_math::fixedops::isqrt(&ring, a));
        }

        #[test]
        fn clamp_and_const_match_fixedops(bits in 4usize..=16, a: u64) {
            let ring = Ring::new(bits as u32);
            let a = ring.reduce(a);
            let lo = ring.from_i64(-3);
            let hi = ring.from_i64(5);
            let mut builder = CircuitBuilder::new();
            let x = builder.garbler_word(bits);
            let _ = builder.evaluator_word(1);
            let low = const_word(&mut builder, x.0[0], lo, bits);
            let high = const_word(&mut builder, x.0[0], hi, bits);
            let r = clamp_word(&mut builder, &x, &low, &high);
            let c = builder.build(r.0);
            let got = bits_to_u64(&c.eval(&u64_to_bits(a, bits), &[false]));
            prop_assert_eq!(got, abnn2_math::fixedops::clamp(&ring, a, lo, hi));
        }

        #[test]
        fn gelu_reshare_matches_fixedops(y0: u64, y1: u64, z1: u64) {
            let bits = 16;
            let (f, shift) = (6usize, 2usize);
            let ring = Ring::new(bits as u32);
            let (y0, y1, z1) = (ring.reduce(y0), ring.reduce(y1), ring.reduce(z1));
            let c = gelu_trunc_reshare_vec_circuit(bits, 1, shift, f);
            let z0 = eval_two_words(&c, &[y1, z1], &[y0], bits);
            let v = abnn2_math::fixedops::sar(&ring, ring.add(y0, y1), shift as u32);
            let expect = abnn2_math::fixedops::gelu(&ring, f as u32, v);
            prop_assert_eq!(ring.add(z0, z1), expect);
        }

        #[test]
        fn softmax_reshare_matches_fixedops(seed: u64) {
            use rand::SeedableRng;
            let bits = 16;
            let (rows, cols, f, shift) = (2usize, 3usize, 6usize, 1usize);
            let ring = Ring::new(bits as u32);
            let n = rows * cols;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            // Keep logits in a sane fixed-point range (±8.0 at f=6).
            let v: Vec<u64> = (0..n)
                .map(|_| ring.from_i64((ring.sample(&mut rng) as i64 % 512) - 256))
                .collect();
            let y1: Vec<u64> = ring.sample_vec(&mut rng, n);
            let shifted: Vec<u64> = v.iter().map(|&x| ring.reduce(x << shift)).collect();
            let y0: Vec<u64> = ring.sub_vec(&shifted, &y1);
            let z1: Vec<u64> = ring.sample_vec(&mut rng, n);
            let c = softmax_reshare_vec_circuit(bits, rows, cols, shift, f);
            let mut g: Vec<u64> = y1.clone();
            g.extend(&z1);
            let gbits: Vec<bool> = g.iter().flat_map(|&x| u64_to_bits(x, bits)).collect();
            let ebits: Vec<bool> = y0.iter().flat_map(|&x| u64_to_bits(x, bits)).collect();
            let out = c.eval(&gbits, &ebits);
            for r in 0..rows {
                let expect =
                    abnn2_math::fixedops::softmax_row(&ring, f as u32, &v[r * cols..(r + 1) * cols]);
                for cc in 0..cols {
                    let j = r * cols + cc;
                    let z0 = bits_to_u64(&out[j * bits..(j + 1) * bits]);
                    prop_assert_eq!(ring.add(z0, z1[j]), expect[cc], "row {} col {}", r, cc);
                }
            }
        }

        #[test]
        fn layernorm_reshare_matches_fixedops(seed: u64) {
            use rand::SeedableRng;
            let bits = 16;
            let (tokens, d, f) = (2usize, 4usize, 6usize);
            let (shift_a, shift_b) = (2usize, 0usize);
            let ring = Ring::new(bits as u32);
            let n = tokens * d;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a: Vec<u64> = (0..n)
                .map(|_| ring.from_i64((ring.sample(&mut rng) as i64 % 1024) - 512))
                .collect();
            let bv: Vec<u64> = (0..n)
                .map(|_| ring.from_i64((ring.sample(&mut rng) as i64 % 256) - 128))
                .collect();
            let a1: Vec<u64> = ring.sample_vec(&mut rng, n);
            let a0: Vec<u64> = ring.sub_vec(&a, &a1);
            let b1: Vec<u64> = ring.sample_vec(&mut rng, n);
            let b0: Vec<u64> = ring.sub_vec(&bv, &b1);
            let z1: Vec<u64> = ring.sample_vec(&mut rng, n);
            let c = layernorm_reshare_vec_circuit(bits, tokens, d, shift_a, shift_b, f);
            let mut g: Vec<u64> = a1.clone();
            g.extend(&b1);
            g.extend(&z1);
            let mut e: Vec<u64> = a0.clone();
            e.extend(&b0);
            let gbits: Vec<bool> = g.iter().flat_map(|&x| u64_to_bits(x, bits)).collect();
            let ebits: Vec<bool> = e.iter().flat_map(|&x| u64_to_bits(x, bits)).collect();
            let out = c.eval(&gbits, &ebits);
            for t in 0..tokens {
                let expect = abnn2_math::fixedops::layernorm_token(
                    &ring,
                    f as u32,
                    &a[t * d..(t + 1) * d],
                    &bv[t * d..(t + 1) * d],
                    shift_a as u32,
                    shift_b as u32,
                );
                for i in 0..d {
                    let j = t * d + i;
                    let z0 = bits_to_u64(&out[j * bits..(j + 1) * bits]);
                    prop_assert_eq!(ring.add(z0, z1[j]), expect[i], "token {} elem {}", t, i);
                }
            }
        }

        #[test]
        fn mux_selects(bits in 1usize..=16, a: u64, b: u64, sel: bool) {
            let ring = Ring::new(bits as u32);
            let (a, b) = (ring.reduce(a), ring.reduce(b));
            let mut builder = CircuitBuilder::new();
            let s = builder.garbler_input();
            let x = builder.garbler_word(bits);
            let y = builder.evaluator_word(bits);
            let m = mux(&mut builder, s, &x, &y);
            let c = builder.build(m.0);
            let mut gbits = vec![sel];
            gbits.extend(u64_to_bits(a, bits));
            let got = bits_to_u64(&c.eval(&gbits, &u64_to_bits(b, bits)));
            prop_assert_eq!(got, if sel { a } else { b });
        }
    }
}
